#!/usr/bin/env python3
"""Multi-tenant serving: bursty traffic, per-request SLOs, schedulers.

Real RNN serving mixes tenants on shared accelerators: an interactive
translation tenant (tight 5 ms SLO, bursty keystroke traffic) rides
alongside a bulk scoring tenant (big model, relaxed 100 ms SLO, steady
rate).  A FIFO queue lets bulk requests head-of-line-block the
interactive bursts; deadline- and priority-aware schedulers serve the
urgent work first and win back the SLO without hurting the bulk tenant.

This example builds that workload with the traffic combinators (MMPP
bursts + Poisson background, interleaved by ``mix``), runs it through
one GPU engine under every registered scheduler, and prints overall and
per-tenant SLO attainment; it finishes by scaling the best scheduler
across a two-replica fleet.

Run: python examples/multi_tenant_serving.py
"""

from repro.harness.report import format_table
from repro.serving import (
    Fleet,
    ServingEngine,
    available_schedulers,
    mix,
    mmpp_arrivals,
    poisson_arrivals,
)
from repro.workloads.deepbench import task

INTERACTIVE_SLO_MS = 5.0
BULK_SLO_MS = 100.0


def build_workload():
    """Two tenants on one accelerator: bursty interactive + steady bulk."""
    interactive = task("lstm", 512, 25)  # per-keystroke translate step
    bulk = task("lstm", 2048, 25)  # heavyweight batch scoring model
    bursts = mmpp_arrivals(
        interactive,
        quiet_rate_per_s=150,
        burst_rate_per_s=1000,
        quiet_dwell_s=0.3,
        burst_dwell_s=0.04,
        n_requests=800,
        seed=7,
        tenant="interactive",
        priority=1,
        slo_ms=INTERACTIVE_SLO_MS,
    )
    background = poisson_arrivals(
        bulk,
        rate_per_s=60,
        n_requests=400,
        seed=21,
        tenant="bulk",
        priority=0,
        slo_ms=BULK_SLO_MS,
    )
    return mix(bursts, background)


def main() -> None:
    workload = build_workload()

    rows = []
    for name in available_schedulers():
        report = ServingEngine("gpu").serve_stream(workload, scheduler=name)
        tenants = report.per_tenant()
        rows.append(
            [
                name,
                f"{100 * report.slo_attainment:.1f}%",
                round(tenants["interactive"].p99_ms, 2),
                f"{100 * tenants['interactive'].slo_attainment:.1f}%",
                round(tenants["bulk"].p99_ms, 2),
                f"{100 * tenants['bulk'].slo_attainment:.1f}%",
            ]
        )
    print(
        format_table(
            ["scheduler", "SLO attained", "interactive P99 ms", "interactive SLO",
             "bulk P99 ms", "bulk SLO"],
            rows,
            title=(
                f"Two tenants on one GPU (interactive {INTERACTIVE_SLO_MS:.0f} ms "
                f"SLO, bulk {BULK_SLO_MS:.0f} ms SLO)"
            ),
        )
    )
    print(
        "\nFIFO lets 2.6 ms bulk requests head-of-line-block the interactive "
        "bursts; EDF serves the tighter deadlines first and priority pins "
        "the interactive class outright — both recover the 5 ms SLO while "
        "the bulk tenant keeps its relaxed one."
    )

    # -- scale-out: the same workload over a small fleet ------------------
    fleet_rows = []
    for replicas in (1, 2):
        fleet = Fleet("gpu", replicas=replicas, policy="least-loaded")
        report = fleet.serve_stream(workload, scheduler="edf")
        tenants = report.per_tenant()
        fleet_rows.append(
            [
                replicas,
                f"{100 * report.slo_attainment:.1f}%",
                round(tenants["interactive"].p99_ms, 2),
                round(tenants["bulk"].p99_ms, 2),
            ]
        )
    print()
    print(
        format_table(
            ["GPU replicas", "SLO attained", "interactive P99 ms", "bulk P99 ms"],
            fleet_rows,
            title="EDF over a least-loaded fleet",
        )
    )
    print(
        "\nA second replica absorbs the bursts entirely: every deadline "
        "is met with headroom to spare."
    )


if __name__ == "__main__":
    main()
