#!/usr/bin/env python3
"""Real-time serving scenario: latency SLOs under a request stream.

The paper's motivation (Section 1): RNN services "assume that user
requests come in individual samples and need to be served with very
stringent latency window for real-time human computer interaction."

This example drives a Google-Translate-style serving loop through the
library's :class:`~repro.serving.ServingEngine`: Poisson request
arrivals, one in-flight request per accelerator (batch 1), FIFO
queueing.  Each platform compiles the task once and serves the whole
stream from the prepared model.  Reports attained P50/P99 latency
against a 5 ms SLO and the sustainable request rate, then shows how a
least-loaded :class:`~repro.serving.Fleet` of GPUs buys back the SLO
that a single GPU misses at high rate.

Run: python examples/serving_latency.py
"""

from repro.harness.report import format_table
from repro.serving import Fleet, ServingEngine, available_platforms, poisson_arrivals
from repro.workloads.deepbench import task

SLO_MS = 5.0
N_REQUESTS = 2000
ARRIVAL_RATE_PER_S = 400.0  # interactive keystroke-rate traffic


def main() -> None:
    t = task("lstm", 512, 25)  # a realistic per-keystroke translate step
    arrivals = poisson_arrivals(
        t, rate_per_s=ARRIVAL_RATE_PER_S, n_requests=N_REQUESTS, seed=0
    )

    rows = []
    for name in available_platforms():
        engine = ServingEngine(name)
        report = engine.serve_stream(arrivals, slo_ms=SLO_MS)
        service_ms = report.responses[0].service_s * 1e3
        if report.saturated:
            rows.append(
                [name, service_ms, "saturated", "saturated",
                 round(report.max_rate_per_s, 1), "NO"]
            )
            continue
        rows.append(
            [name, service_ms, round(report.p50_ms, 3), round(report.p99_ms, 3),
             round(report.max_rate_per_s, 1), "yes" if report.slo_attained else "NO"]
        )

    print(
        format_table(
            ["platform", "service ms", "P50 ms", "P99 ms", "max req/s", f"P99<={SLO_MS}ms"],
            rows,
            title=(
                f"Serving {t.name} at {ARRIVAL_RATE_PER_S:.0f} req/s "
                f"(batch 1, FIFO, {N_REQUESTS} requests)"
            ),
        )
    )
    print(
        "\nOnly the spatial architectures meet an interactive SLO at this "
        "rate; the CPU saturates outright and the GPU burns its budget on "
        "kernel launch overhead (paper Section 5.2)."
    )

    # -- scale-out: push the GPU past its single-device knee -------------
    hot_rate = 1200.0
    hot = poisson_arrivals(t, rate_per_s=hot_rate, n_requests=N_REQUESTS, seed=0)
    fleet_rows = []
    for replicas in (1, 2, 4):
        fleet = Fleet("gpu", replicas=replicas, policy="least-loaded")
        report = fleet.serve_stream(hot, slo_ms=SLO_MS)
        fleet_rows.append(
            [replicas, round(report.p50_ms, 3), round(report.p99_ms, 3),
             round(report.mean_queue_delay_ms, 3),
             "yes" if report.slo_attained else "NO"]
        )
    print()
    print(
        format_table(
            ["GPU replicas", "P50 ms", "P99 ms", "mean queue ms", f"P99<={SLO_MS}ms"],
            fleet_rows,
            title=f"Scale-out at {hot_rate:.0f} req/s (least-loaded dispatch)",
        )
    )
    print(
        "\nA fleet hides the GPU's queueing tail: doubling replicas "
        "roughly halves the queue delay until the per-request kernel "
        "overhead itself is the floor."
    )


if __name__ == "__main__":
    main()
