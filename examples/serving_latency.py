#!/usr/bin/env python3
"""Real-time serving scenario: latency SLOs under a request stream.

The paper's motivation (Section 1): RNN services "assume that user
requests come in individual samples and need to be served with very
stringent latency window for real-time human computer interaction."

This example simulates a Google-Translate-style serving loop: Poisson
request arrivals, one in-flight request per accelerator (batch 1), FIFO
queueing.  Each platform's per-request service time comes from the
models that reproduce Table 6.  Reports attained P50/P99 latency against
a 5 ms SLO and the sustainable request rate.

Run: python examples/serving_latency.py
"""

import numpy as np

from repro.api import serve_on_brainwave, serve_on_cpu, serve_on_gpu, serve_on_plasticine
from repro.harness.report import format_table
from repro.workloads.deepbench import task

SLO_MS = 5.0
N_REQUESTS = 2000
ARRIVAL_RATE_PER_S = 400.0  # interactive keystroke-rate traffic


def simulate_queue(service_s: float, rng: np.random.Generator) -> np.ndarray:
    """FIFO single-server queue; returns sojourn times (queueing + service)."""
    inter = rng.exponential(1.0 / ARRIVAL_RATE_PER_S, size=N_REQUESTS)
    arrivals = np.cumsum(inter)
    finish = 0.0
    sojourn = np.empty(N_REQUESTS)
    for i, t_arrive in enumerate(arrivals):
        start = max(t_arrive, finish)
        finish = start + service_s
        sojourn[i] = finish - t_arrive
    return sojourn


def main() -> None:
    t = task("lstm", 512, 25)  # a realistic per-keystroke translate step
    rng = np.random.default_rng(0)

    platforms = {
        "cpu": serve_on_cpu(t),
        "gpu": serve_on_gpu(t),
        "brainwave": serve_on_brainwave(t),
        "plasticine": serve_on_plasticine(t),
    }

    rows = []
    for name, result in platforms.items():
        service = result.latency_s
        max_rate = 1.0 / service
        if ARRIVAL_RATE_PER_S >= max_rate:
            rows.append(
                [name, result.latency_ms, "saturated", "saturated",
                 round(max_rate, 1), "NO"]
            )
            continue
        sojourn_ms = simulate_queue(service, rng) * 1e3
        p50, p99 = np.percentile(sojourn_ms, [50, 99])
        rows.append(
            [name, result.latency_ms, round(float(p50), 3), round(float(p99), 3),
             round(max_rate, 1), "yes" if p99 <= SLO_MS else "NO"]
        )

    print(
        format_table(
            ["platform", "service ms", "P50 ms", "P99 ms", "max req/s", f"P99<={SLO_MS}ms"],
            rows,
            title=(
                f"Serving {t.name} at {ARRIVAL_RATE_PER_S:.0f} req/s "
                f"(batch 1, FIFO, {N_REQUESTS} requests)"
            ),
        )
    )
    print(
        "\nOnly the spatial architectures meet an interactive SLO at this "
        "rate; the CPU saturates outright and the GPU burns its budget on "
        "kernel launch overhead (paper Section 5.2)."
    )


if __name__ == "__main__":
    main()
