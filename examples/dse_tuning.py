#!/usr/bin/env python3
"""Design-space exploration over the loop knobs (paper Table 7).

For one DeepBench task, map and cycle-simulate every (hu, ru) candidate
on the Table 3 chip, print the full frontier with resource usage and
feasibility, and compare the optimum against the paper's choice.

Shows the paper's Section 5.2 tuning rule emerging from the search:
small problems unroll the hidden dimension (hu), large problems shift
PCUs to the dot product (ru) — and infeasible points (e.g. LSTM hu=5,
ru=8 needing 210 of 190 usable PCUs) are rejected by resource checks,
not by hand.

Run: python examples/dse_tuning.py [lstm|gru] [hidden]
"""

import sys

from repro.dse import paper_params, tune
from repro.dse.search import evaluate
from repro.harness.report import format_table
from repro.plasticine import PlasticineConfig
from repro.workloads.deepbench import task


def main() -> None:
    kind = sys.argv[1] if len(sys.argv) > 1 else "lstm"
    hidden = int(sys.argv[2]) if len(sys.argv) > 2 else 1024
    t = task(kind, hidden)
    chip = PlasticineConfig.rnn_serving()

    print(f"DSE for {t.name} on {chip.name} "
          f"({chip.usable_pcus} usable PCUs, {chip.n_pmu} PMUs)\n")

    result = tune(t, chip)
    rows = []
    for point in sorted(result.points, key=lambda p: p.total_cycles):
        rows.append(
            [
                f"hu={point.params.hu} ru={point.params.ru}",
                point.cycles_per_step,
                round(point.total_cycles / 1e6, 4),
                point.pcus_used,
                point.pmus_used,
                "yes" if point.fits else "NO",
                "<== best" if point is result.best else "",
            ]
        )
    print(
        format_table(
            ["params", "cycles/step", "latency ms", "PCUs", "PMUs", "fits", ""],
            rows[:20],
            title=f"Design points (best 20 of {len(rows)})",
        )
    )

    pp = paper_params(t)
    if pp is not None:
        paper_point = evaluate(t, pp, chip)
        best = result.best
        print(f"\npaper choice  hu={pp.hu} ru={pp.ru}: "
              f"{paper_point.cycles_per_step} cycles/step")
        print(f"DSE optimum   hu={best.params.hu} ru={best.params.ru}: "
              f"{best.cycles_per_step} cycles/step "
              f"({paper_point.cycles_per_step / best.cycles_per_step:.2f}x)")


if __name__ == "__main__":
    main()
