#!/usr/bin/env python3
"""Regenerate the paper's headline result: Table 6 across four platforms.

Runs every DeepBench point through the CPU (TF+AVX2), GPU (cuDNN/V100),
Brainwave (Stratix 10) and Plasticine models, printing latencies,
effective TFLOPS, the Plasticine speedup columns, simulated power, and
the geometric-mean row — side by side with the paper's published values.

Run: python examples/deepbench_sweep.py
"""

from repro.harness import table6
from repro.harness.paper_data import TABLE6_GEOMEAN_SPEEDUPS


def main() -> None:
    result = table6()
    print(result.text)
    print()
    geo = result.geomean_speedups
    print("Headline claims:")
    print(
        f"  geomean speedup vs CPU:       {geo['cpu']:8.1f}x   "
        f"(paper: {TABLE6_GEOMEAN_SPEEDUPS['cpu']}x)"
    )
    print(
        f"  geomean speedup vs V100:      {geo['gpu']:8.1f}x   "
        f"(paper: {TABLE6_GEOMEAN_SPEEDUPS['gpu']}x — the abstract's '30x')"
    )
    print(
        f"  geomean speedup vs Brainwave: {geo['brainwave']:8.2f}x   "
        f"(paper: {TABLE6_GEOMEAN_SPEEDUPS['brainwave']}x)"
    )
    crossovers = [
        name
        for name, per in result.results.items()
        if per["plasticine"].speedup_over(per["brainwave"]) < 1.0
    ]
    print(f"  Brainwave ahead on: {', '.join(crossovers)} (paper: the largest models)")


if __name__ == "__main__":
    main()
