#!/usr/bin/env python3
"""Numerical study of the serving precisions (paper Sections 3.3 / 4.1).

Runs the same LSTM through:

* the fp32 numpy reference,
* the loop-based DSL program at exact precision (isolates LUT error),
* fp16 and fp8 weight storage with exact arithmetic,
* the full Plasticine datapath (fp8 weights, 16-bit first-stage
  reduction, 32-bit accumulation — "mix f8+16+32"),
* Brainwave's blocked floating point on the weights,

and reports max-abs error and correlation against the reference —
quantifying the paper's claim that low-precision serving preserves
accuracy while quadrupling compute density.

Run: python examples/precision_study.py
"""

import numpy as np

from repro.harness.report import format_table
from repro.precision import BW_BFP, BlockedVector, FP8, FP16
from repro.rnn import LSTMWeights, RNNShape, build_lstm_program, lstm_sequence
from repro.rnn.lstm_loop import LoopParams
from repro.spatial import PrecisionPolicy

H, T = 64, 16


def run_variant(weights, xs, *, weight_dtype=None, state_dtype=None, policy=None):
    prog = build_lstm_program(
        weights, xs, LoopParams(hu=4, ru=2, rv=32),
        weight_dtype=weight_dtype, state_dtype=state_dtype,
    )
    return prog.run(policy=policy or PrecisionPolicy(quantize_storage=True)).state["y_seq"]


def main() -> None:
    shape = RNNShape("lstm", H, H)
    weights = LSTMWeights.random(shape, rng=0)
    xs = np.random.default_rng(1).uniform(-1, 1, size=(T, H))
    reference, _, _ = lstm_sequence(weights, xs)

    def score(name, ys):
        err = float(np.max(np.abs(ys - reference)))
        corr = float(np.corrcoef(ys.ravel(), reference.ravel())[0, 1])
        return [name, f"{err:.2e}", f"{corr:.5f}"]

    # Brainwave BFP: quantize weight rows through shared-exponent blocks.
    bfp_weights = LSTMWeights(
        shape=shape,
        w={g: BlockedVector.quantize_array(weights.w[g], BW_BFP) for g in shape.gate_names},
        b=dict(weights.b),
    )

    rows = [
        score("DSL exact (LUT error only)", run_variant(weights, xs)),
        score("fp16 weights", run_variant(weights, xs, weight_dtype=FP16)),
        score("fp8 weights", run_variant(weights, xs, weight_dtype=FP8)),
        score(
            "full Plasticine datapath (f8+16+32)",
            run_variant(
                weights, xs, weight_dtype=FP8, state_dtype=FP16,
                policy=PrecisionPolicy.plasticine_mixed(),
            ),
        ),
        score("Brainwave blocked FP weights", run_variant(bfp_weights, xs)),
    ]
    print(
        format_table(
            ["configuration", "max |err| vs fp32", "correlation"],
            rows,
            title=f"LSTM H={H}, T={T}: serving-precision accuracy study",
        )
    )
    print(
        "\nStorage per weight: fp32 4 B, fp16 2 B, fp8 1 B, "
        f"Brainwave BFP {BW_BFP.bits_per_value / 8:.3f} B "
        "(shared 5-bit exponent per 400 values)"
    )


if __name__ == "__main__":
    main()
