#!/usr/bin/env python3
"""Quickstart: build, verify, map, and simulate a loop-based LSTM.

Walks the full stack on a small model:

1. build the Figure 5 loop-based LSTM in the Spatial-like DSL,
2. print the program (the shape of the paper's Figure 5),
3. run it functionally and check it against the numpy reference,
4. open a ServingEngine session on the Plasticine platform — prepare()
   maps the design onto the Table 3 chip and cycle-simulates it once,
5. serve requests from the compiled session and print the Table 6-style
   row: latency, effective TFLOPS, power.  Repeat serves hit the
   prepared-model cache and skip the mapper/simulator entirely.

Run: python examples/quickstart.py
"""

import numpy as np

from repro.rnn import LSTMWeights, RNNShape, build_lstm_program, lstm_sequence
from repro.rnn.lstm_loop import LoopParams
from repro.serving import ServingEngine
from repro.spatial import format_program
from repro.workloads.deepbench import RNNTask


def main() -> None:
    # -- 1. a small LSTM: H = D = 64, 8 time steps ------------------------
    shape = RNNShape("lstm", hidden=64, input_dim=64)
    weights = LSTMWeights.random(shape, rng=0)
    xs = np.random.default_rng(1).uniform(-1, 1, size=(8, 64))
    params = LoopParams(hu=4, ru=2, rv=64)
    prog = build_lstm_program(weights, xs, params)

    # -- 2. the program, Figure 5 style -----------------------------------
    print("=" * 72)
    print("The loop-based LSTM program (paper Figure 5):")
    print("=" * 72)
    print(format_program(prog))

    # -- 3. functional check vs the numpy reference -----------------------
    executor = prog.run()
    reference, _, _ = lstm_sequence(
        weights,
        xs,
        sigma=prog.memories.luts["luti"].apply,
        tanh=prog.memories.luts["tanh"].apply,
    )
    max_err = np.max(np.abs(executor.state["y_seq"] - reference))
    print(f"\nFunctional check vs numpy reference: max |err| = {max_err:.2e}")
    assert max_err == 0.0, "DSL execution must match the reference bit-exactly"

    # -- 4 & 5. a compile-once serving session on Plasticine --------------
    task = RNNTask("lstm", 1024, 25)
    engine = ServingEngine("plasticine")
    result = engine.serve(task).result  # prepare(): map + cycle-simulate
    design = result.design
    print("\n" + "=" * 72)
    print(f"Serving {task.name} on Plasticine (Table 3 configuration):")
    print("=" * 72)
    print(f"  design:            hu={design.hu}, ru={design.ru}, rv={design.rv}")
    print(f"  resources:         {design.resources.summary()}")
    print(f"  cycles per step:   {result.cycles_per_step}")
    print(f"  latency:           {result.latency_ms:.4f} ms   (paper: 0.0292 ms)")
    print(f"  effective TFLOPS:  {result.effective_tflops:.1f}      (paper: 14.4)")
    print(f"  simulated power:   {result.power_w:.1f} W    (paper: 97.2 W)")

    # Steady state: later requests for the same task reuse the compiled
    # design — no re-mapping, no re-simulation.
    engine.serve(task)
    stats = engine.cache_stats
    print(f"  session cache:     {stats.hits} hit(s), {stats.misses} compile(s)")


if __name__ == "__main__":
    main()
