#!/usr/bin/env python3
"""Approximate line coverage of ``repro`` under the tier-1 test suite.

A dependency-free stand-in for ``pytest --cov`` used to pin the CI
coverage floor: a ``sys.settrace`` hook records executed lines in
``src/repro`` while the test suite runs, and the denominator is every
line that carries bytecode (via ``code.co_lines`` over compiled
sources).  The result tracks coverage.py within a couple of points —
this tool does not honor ``# pragma: no cover`` and counts a few
compiler artifacts, so it reads slightly *low*; the CI floor derived
from it is therefore conservative.

Run: python tools/measure_coverage.py  (from the repo root)
"""

from __future__ import annotations

import sys
import types
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = str(ROOT / "src" / "repro")

covered: dict[str, set[int]] = {}


def _global_tracer(frame, event, arg):
    if event != "call":
        return None
    filename = frame.f_code.co_filename
    if not filename.startswith(SRC):
        return None
    lines = covered.setdefault(filename, set())

    def _local(frame, event, arg):
        if event == "line":
            lines.add(frame.f_lineno)
        return _local

    return _local


def executable_lines(path: Path) -> set[int]:
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(line for _, _, line in obj.co_lines() if line)
        stack.extend(
            const for const in obj.co_consts if isinstance(const, types.CodeType)
        )
    return lines


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    sys.settrace(_global_tracer)
    import pytest

    rc = pytest.main(["-q", "--no-header", str(ROOT / "tests")])
    sys.settrace(None)
    if rc != 0:
        print(f"test suite failed (exit {rc}); coverage not meaningful")
        return rc

    total_lines = 0
    total_covered = 0
    rows = []
    for path in sorted(Path(SRC).rglob("*.py")):
        want = executable_lines(path)
        got = covered.get(str(path), set()) & want
        total_lines += len(want)
        total_covered += len(got)
        pct = 100.0 * len(got) / len(want) if want else 100.0
        rows.append((pct, str(path.relative_to(ROOT)), len(got), len(want)))

    print(f"\n{'file':58s} {'covered':>8s} {'lines':>6s} {'pct':>7s}")
    for pct, name, got, want in sorted(rows):
        print(f"{name:58s} {got:8d} {want:6d} {pct:6.1f}%")
    overall = 100.0 * total_covered / total_lines
    print(f"\nTOTAL: {total_covered}/{total_lines} lines = {overall:.2f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
