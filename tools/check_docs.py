#!/usr/bin/env python
"""docs-check: keep docs/ARCHITECTURE.md in sync with the code layout.

Fails (exit 1) when a module under ``src/repro/serving/`` or
``src/repro/workloads/`` is not mentioned by name in
``docs/ARCHITECTURE.md``, so new serving or workload modules cannot land
undocumented.  Likewise every registered mapping compiler pass
(``repro.mapping.passes``) must appear in ARCHITECTURE.md by its
registry name — the pass list is read off the live registry, so a new
pass cannot land without a doc entry.  Also sanity-checks that the
docs/ suite and the README cross-link each other.

Run from the repo root (CI does):

    python tools/check_docs.py
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
#: Packages whose every module must appear in docs/ARCHITECTURE.md.
DOCUMENTED_PACKAGES = (
    REPO / "src" / "repro" / "serving",
    REPO / "src" / "repro" / "workloads",
)
ARCHITECTURE = REPO / "docs" / "ARCHITECTURE.md"

#: Docs that must exist and the links each must contain.
REQUIRED_LINKS = {
    REPO / "docs" / "ARCHITECTURE.md": ["PAPER_MAP.md"],
    REPO / "docs" / "PAPER_MAP.md": ["ARCHITECTURE.md", "CLI.md"],
    REPO / "docs" / "CLI.md": ["PAPER_MAP.md"],
    REPO / "README.md": [
        "docs/ARCHITECTURE.md",
        "docs/PAPER_MAP.md",
        "docs/CLI.md",
    ],
}

#: docs/CLI.md must document every long option `repro serve` accepts —
#: the flags are read off the live argparse parser, so a new flag cannot
#: land without a reference row.
CLI_DOC = REPO / "docs" / "CLI.md"


def serve_flags() -> list[str]:
    """Long option strings of the ``repro serve`` subcommand."""
    src = REPO / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    from repro.harness.cli import build_parser

    subparsers = next(
        action
        for action in build_parser()._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    return sorted(
        option
        for action in subparsers.choices["serve"]._actions
        for option in action.option_strings
        if option.startswith("--") and option != "--help"
    )


def mapping_passes() -> list[str]:
    """Registry names of every mapping compiler pass."""
    src = REPO / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    from repro.mapping.passes import available_passes

    return list(available_passes())


def main() -> int:
    failures: list[str] = []

    if not ARCHITECTURE.exists():
        print(f"docs-check: missing {ARCHITECTURE.relative_to(REPO)}")
        return 1
    architecture = ARCHITECTURE.read_text()

    n_modules = 0
    for package in DOCUMENTED_PACKAGES:
        modules = sorted(
            path.name
            for path in package.glob("*.py")
            if path.name != "__init__.py"
        )
        if not modules:
            failures.append(f"no modules found under {package.relative_to(REPO)}")
        n_modules += len(modules)
        for name in modules:
            if name not in architecture:
                failures.append(
                    f"docs/ARCHITECTURE.md does not mention "
                    f"{package.relative_to(REPO)}/{name}"
                )

    for doc, links in REQUIRED_LINKS.items():
        rel = doc.relative_to(REPO)
        if not doc.exists():
            failures.append(f"missing {rel}")
            continue
        text = doc.read_text()
        for link in links:
            if link not in text:
                failures.append(f"{rel} does not link to {link}")

    flags = serve_flags()
    cli_text = CLI_DOC.read_text() if CLI_DOC.exists() else ""
    for flag in flags:
        if flag not in cli_text:
            failures.append(
                f"docs/CLI.md does not document the `repro serve` flag {flag}"
            )

    passes = mapping_passes()
    for name in passes:
        if name not in architecture:
            failures.append(
                f"docs/ARCHITECTURE.md does not mention the mapping "
                f"compiler pass {name!r}"
            )

    if failures:
        print("docs-check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"docs-check ok: {n_modules} serving/workload modules documented, "
        f"{len(flags)} serve flags referenced, "
        f"{len(passes)} mapping passes documented, "
        f"{len(REQUIRED_LINKS)} docs cross-linked"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
