"""Smoke tests: every example script runs end-to-end and prints sense."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "max |err| = 0.00e+00" in out
        assert "latency" in out

    def test_dse_tuning_default(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["dse_tuning.py", "lstm", "512"])
        _load("dse_tuning").main()
        out = capsys.readouterr().out
        assert "DSE" in out
        assert "best" in out
        assert "paper choice" in out

    def test_precision_study(self, capsys):
        _load("precision_study").main()
        out = capsys.readouterr().out
        assert "fp8 weights" in out
        assert "Brainwave blocked FP" in out
        # correlations printed are all near 1
        assert "0.999" in out

    def test_serving_latency(self, capsys):
        _load("serving_latency").main()
        out = capsys.readouterr().out
        assert "plasticine" in out
        assert "saturated" in out  # the CPU cannot keep up

    def test_multi_tenant_serving(self, capsys):
        _load("multi_tenant_serving").main()
        out = capsys.readouterr().out
        assert "edf" in out and "fifo" in out
        assert "Per-tenant" in out or "interactive" in out
        assert "EDF over a least-loaded fleet" in out

    @pytest.mark.slow
    def test_deepbench_sweep(self, capsys):
        _load("deepbench_sweep").main()
        out = capsys.readouterr().out
        assert "geomean" in out
        assert "Brainwave ahead on" in out
