"""Degenerate streams and registry collisions.

Covers the satellite checklist: empty/single-request percentile edge
cases in ``StreamReport`` (including ``per_tenant()``/``per_priority()``
slices that leave one response per class) and duplicate-name
registration errors across the platform/scheduler/batcher registries.
"""

import pytest

from repro.errors import ServingError
from repro.serving import (
    Batcher,
    Platform,
    Scheduler,
    ServeRequest,
    ServingEngine,
    StreamReport,
    register_batcher,
    register_platform,
    register_scheduler,
)
from repro.serving.engine import _percentile
from repro.workloads.deepbench import task

T = task("lstm", 512, 25)


def _single_response(tenant="default", priority=0, arrival=0.0):
    engine = ServingEngine("gpu")
    req = ServeRequest(
        task=T, arrival_s=arrival, request_id=0, tenant=tenant, priority=priority
    )
    return engine.serve(req)


class TestEmptyStreams:
    def test_empty_report_rejected(self):
        with pytest.raises(ServingError, match="no responses"):
            StreamReport(platform="gpu", responses=())

    def test_empty_arrivals_rejected(self):
        with pytest.raises(ServingError, match="at least one request"):
            ServingEngine("gpu").serve_stream([])

    def test_percentile_of_empty_rejected(self):
        with pytest.raises(ServingError, match="empty"):
            _percentile([], 50)


class TestSingleRequestStreams:
    def test_percentiles_collapse_to_the_sample(self):
        report = ServingEngine("gpu").serve_stream([ServeRequest(task=T)],
                                                   slo_ms=5.0)
        assert report.n_requests == 1
        assert report.p50_ms == report.p99_ms == report.mean_ms
        assert report.p50_ms == report.responses[0].sojourn_ms

    def test_single_request_rate_is_zero_not_nan(self):
        report = ServingEngine("gpu").serve_stream([ServeRequest(task=T)])
        assert report.offered_rate_per_s == 0.0
        assert not report.saturated

    def test_simultaneous_arrivals_are_infinite_rate(self):
        reqs = [ServeRequest(task=T, request_id=i) for i in range(3)]
        report = ServingEngine("gpu").serve_stream(reqs)
        assert report.offered_rate_per_s == float("inf")
        assert report.saturated

    def test_per_tenant_single_request_classes(self):
        reqs = [
            ServeRequest(task=T, arrival_s=0.0, request_id=0, tenant="a"),
            ServeRequest(task=T, arrival_s=0.1, request_id=1, tenant="b",
                         priority=1),
        ]
        report = ServingEngine("gpu").serve_stream(reqs, slo_ms=5.0)
        tenants = report.per_tenant()
        assert set(tenants) == {"a", "b"}
        for name, sub in tenants.items():
            assert sub.n_requests == 1
            assert sub.p50_ms == sub.p99_ms == sub.mean_ms
            assert sub.slo_ms == report.slo_ms
            assert sub.scheduler == report.scheduler
            assert sub.batcher == report.batcher
        priorities = report.per_priority()
        assert set(priorities) == {0, 1}
        assert all(sub.n_requests == 1 for sub in priorities.values())

    def test_subset_reports_do_not_inherit_scale_events(self):
        reqs = [
            ServeRequest(task=T, request_id=0, tenant="a"),
            ServeRequest(task=T, arrival_s=0.1, request_id=1, tenant="b"),
        ]
        report = ServingEngine("gpu").serve_stream(reqs)
        for sub in report.per_tenant().values():
            assert sub.scale_events == ()


class TestDuplicateRegistration:
    def test_platform_name_collision_rejected(self):
        with pytest.raises(ServingError, match="already registered"):
            @register_platform("plasticine")
            class ImpostorPlatform(Platform):
                def prepare(self, task):  # pragma: no cover
                    raise NotImplementedError

                def serve(self, prepared):  # pragma: no cover
                    raise NotImplementedError

    def test_scheduler_name_collision_rejected(self):
        with pytest.raises(ServingError, match="already registered"):
            @register_scheduler("edf")
            class ImpostorScheduler(Scheduler):
                def push(self, entry):  # pragma: no cover
                    pass

                def pop(self):  # pragma: no cover
                    raise NotImplementedError

                def __len__(self):  # pragma: no cover
                    return 0

    def test_batcher_name_collision_rejected(self):
        with pytest.raises(ServingError, match="already registered"):
            @register_batcher("adaptive")
            class ImpostorBatcher(Batcher):
                pass

    def test_re_registering_same_class_is_idempotent(self):
        from repro.serving.batching import NoneBatcher

        assert register_batcher("none")(NoneBatcher) is NoneBatcher
