"""Tests for RNN shapes, weights, and the numpy reference cells."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.rnn import (
    GRUWeights,
    LSTMWeights,
    RNNShape,
    gru_sequence,
    gru_step,
    lstm_sequence,
    lstm_step,
    sigmoid,
)


class TestRNNShape:
    def test_lstm_has_four_gates(self):
        s = RNNShape("lstm", 256, 256)
        assert s.gates == 4
        assert s.gate_names == ("i", "j", "f", "o")

    def test_gru_has_three_gates(self):
        s = RNNShape("gru", 512, 512)
        assert s.gates == 3
        assert s.gate_names == ("z", "r", "c")

    def test_concat_dim(self):
        assert RNNShape("lstm", 256, 128).concat_dim == 384

    def test_weight_count_table1(self):
        # Table 1: 4 gates x (H,H) + 4 gates x (H,D) = 4*H*R
        s = RNNShape("lstm", 256, 256)
        assert s.weight_count == 4 * 256 * 512

    def test_mvm_flops_per_step(self):
        s = RNNShape("lstm", 256, 256)
        assert s.mvm_flops_per_step() == 2 * 4 * 256 * 512

    def test_validation(self):
        with pytest.raises(ConfigError):
            RNNShape("rnn", 4, 4)
        with pytest.raises(ConfigError):
            RNNShape("lstm", 0, 4)


class TestWeights:
    def test_random_shapes(self):
        s = RNNShape("lstm", 8, 6)
        w = LSTMWeights.random(s, rng=0)
        assert w.w["i"].shape == (8, 14)
        assert w.b["o"].shape == (8,)

    def test_random_deterministic(self):
        s = RNNShape("lstm", 4, 4)
        a = LSTMWeights.random(s, rng=7)
        b = LSTMWeights.random(s, rng=7)
        np.testing.assert_array_equal(a.w["j"], b.w["j"])

    def test_scale_default_keeps_preactivations_small(self):
        s = RNNShape("lstm", 64, 64)
        w = LSTMWeights.random(s, rng=0)
        assert np.abs(w.w["i"]).max() <= 1.0 / np.sqrt(128)

    def test_kind_mismatch_rejected(self):
        s = RNNShape("gru", 4, 4)
        with pytest.raises(ConfigError):
            LSTMWeights.random(s)

    def test_wrong_gate_keys_rejected(self):
        s = RNNShape("lstm", 4, 4)
        good = LSTMWeights.random(s)
        bad_w = dict(good.w)
        bad_w["z"] = bad_w.pop("i")
        with pytest.raises(ConfigError):
            LSTMWeights(shape=s, w=bad_w, b=good.b)

    def test_wrong_shape_rejected(self):
        s = RNNShape("gru", 4, 4)
        good = GRUWeights.random(s)
        bad_w = dict(good.w)
        bad_w["z"] = np.zeros((4, 7))
        with pytest.raises(ConfigError):
            GRUWeights(shape=s, w=bad_w, b=good.b)


class TestSigmoid:
    def test_known_values(self):
        assert sigmoid(np.array([0.0]))[0] == 0.5
        np.testing.assert_allclose(
            sigmoid(np.array([2.0])), 1 / (1 + np.exp(-2)), rtol=1e-12
        )

    def test_stable_at_extremes(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == 0.0
        assert out[1] == 1.0

    @given(st.floats(min_value=-50, max_value=50, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, x):
        a = sigmoid(np.array([x]))[0]
        b = sigmoid(np.array([-x]))[0]
        assert a + b == pytest.approx(1.0, abs=1e-12)


class TestLSTMReference:
    def test_zero_weights_decay(self):
        # With all weights/biases zero: i=f=o=0.5, j=0, so c halves each
        # step from c0 and h = 0.5 * tanh(c).
        s = RNNShape("lstm", 4, 4)
        w = LSTMWeights(
            shape=s,
            w={g: np.zeros((4, 8)) for g in s.gate_names},
            b={g: np.zeros(4) for g in s.gate_names},
        )
        c0 = np.ones(4)
        h, c = lstm_step(w, np.zeros(4), np.zeros(4), c0)
        np.testing.assert_allclose(c, 0.5)
        np.testing.assert_allclose(h, 0.5 * np.tanh(0.5))

    def test_forget_gate_bias_retains_memory(self):
        # Large forget bias => f ~ 1 keeps c; large negative input bias
        # => i ~ 0 adds nothing.
        s = RNNShape("lstm", 3, 3)
        b = {g: np.zeros(3) for g in s.gate_names}
        b["f"] = np.full(3, 50.0)
        b["i"] = np.full(3, -50.0)
        w = LSTMWeights(shape=s, w={g: np.zeros((3, 6)) for g in s.gate_names}, b=b)
        c0 = np.array([0.3, -0.2, 0.9])
        _, c = lstm_step(w, np.zeros(3), np.zeros(3), c0)
        np.testing.assert_allclose(c, c0, atol=1e-12)

    def test_sequence_threading(self):
        s = RNNShape("lstm", 8, 8)
        w = LSTMWeights.random(s, rng=1)
        xs = np.random.default_rng(2).normal(size=(5, 8))
        ys, h_t, c_t = lstm_sequence(w, xs)
        # Manually thread the steps.
        h = np.zeros(8)
        c = np.zeros(8)
        for t in range(5):
            h, c = lstm_step(w, xs[t], h, c)
            np.testing.assert_allclose(ys[t], h, rtol=1e-12)
        np.testing.assert_array_equal(ys[-1], h_t)
        np.testing.assert_array_equal(c, c_t)

    def test_outputs_bounded(self):
        s = RNNShape("lstm", 16, 16)
        w = LSTMWeights.random(s, rng=3)
        xs = np.random.default_rng(4).normal(size=(20, 16))
        ys, _, _ = lstm_sequence(w, xs)
        # h = o * tanh(c), both factors in (-1, 1)
        assert np.abs(ys).max() < 1.0

    def test_shape_validation(self):
        s = RNNShape("lstm", 4, 6)
        w = LSTMWeights.random(s)
        with pytest.raises(ConfigError):
            lstm_step(w, np.zeros(4), np.zeros(4), np.zeros(4))  # x wrong size
        with pytest.raises(ConfigError):
            lstm_sequence(w, np.zeros((3, 4)))


class TestGRUReference:
    def test_zero_weights_fixed_point(self):
        # z = 0.5, cand = 0 -> h' = 0.5 h each step.
        s = RNNShape("gru", 4, 4)
        w = GRUWeights(
            shape=s,
            w={g: np.zeros((4, 8)) for g in s.gate_names},
            b={g: np.zeros(4) for g in s.gate_names},
        )
        h = gru_step(w, np.zeros(4), np.ones(4))
        np.testing.assert_allclose(h, 0.5)

    def test_update_gate_interpolates(self):
        # Large z bias: h' ~ h (state copied through).
        s = RNNShape("gru", 3, 3)
        b = {g: np.zeros(3) for g in s.gate_names}
        b["z"] = np.full(3, 50.0)
        w = GRUWeights(shape=s, w={g: np.zeros((3, 6)) for g in s.gate_names}, b=b)
        h0 = np.array([0.1, -0.5, 0.8])
        h = gru_step(w, np.ones(3), h0)
        np.testing.assert_allclose(h, h0, atol=1e-12)

    def test_linear_before_reset_variant(self):
        # The reset gate must scale (W_ch h), not h itself: craft a case
        # distinguishing the two formulations.
        s = RNNShape("gru", 1, 1)
        w = {
            "z": np.array([[0.0, 0.0]]),
            "r": np.array([[-100.0, 0.0]]),  # x=1 -> r ~ 0
            "c": np.array([[0.0, 1.0]]),
        }
        b = {g: np.zeros(1) for g in s.gate_names}
        weights = GRUWeights(shape=s, w=w, b=b)
        h = gru_step(weights, np.array([1.0]), np.array([0.9]))
        # r=0 kills the hidden contribution: cand = tanh(0) = 0,
        # z = 0.5 -> h' = 0.5*0 + 0.5*0.9
        np.testing.assert_allclose(h, [0.45], atol=1e-12)

    def test_sequence_threading(self):
        s = RNNShape("gru", 8, 8)
        w = GRUWeights.random(s, rng=5)
        xs = np.random.default_rng(6).normal(size=(4, 8))
        ys, h_t = gru_sequence(w, xs)
        h = np.zeros(8)
        for t in range(4):
            h = gru_step(w, xs[t], h)
            np.testing.assert_allclose(ys[t], h, rtol=1e-12)
        np.testing.assert_array_equal(ys[-1], h_t)

    def test_state_stays_bounded(self):
        s = RNNShape("gru", 16, 16)
        w = GRUWeights.random(s, rng=7)
        xs = np.random.default_rng(8).normal(size=(50, 16))
        ys, _ = gru_sequence(w, xs)
        # h is a convex combination of h and tanh(...) in (-1,1).
        assert np.abs(ys).max() <= 1.0
