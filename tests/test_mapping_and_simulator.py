"""Tests for the pipeline graph, mapper, and cycle-level simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError, SimulationError
from repro.mapping import PipelineGraph, Stage, map_rnn_program
from repro.plasticine import PlasticineConfig, simulate_pipeline
from repro.rnn import GRUWeights, LSTMWeights, RNNShape, build_gru_program, build_lstm_program
from repro.rnn.lstm_loop import LoopParams
from repro.workloads.deepbench import RNNTask


def _chain(iis, lats, routes=None, n_iter=10, steps=1, overhead=0):
    g = PipelineGraph(name="chain", n_iterations=n_iter, steps=steps, step_overhead=overhead)
    names = []
    for k, (ii, lat) in enumerate(zip(iis, lats)):
        g.add_stage(Stage(f"s{k}", ii=ii, latency=lat))
        names.append(f"s{k}")
    routes = routes or [0] * (len(names) - 1)
    for a, b, r in zip(names, names[1:], routes):
        g.connect(a, b, r)
    return g


class TestPipelineGraph:
    def test_duplicate_stage_rejected(self):
        g = PipelineGraph("p", n_iterations=1, steps=1)
        g.add_stage(Stage("a", ii=1, latency=1))
        with pytest.raises(MappingError):
            g.add_stage(Stage("a", ii=1, latency=1))

    def test_unknown_edge_endpoint(self):
        g = PipelineGraph("p", n_iterations=1, steps=1)
        g.add_stage(Stage("a", ii=1, latency=1))
        with pytest.raises(MappingError):
            g.connect("a", "ghost")

    def test_cycle_detected(self):
        g = _chain([1, 1], [1, 1])
        g.connect("s1", "s0")
        with pytest.raises(MappingError):
            g.topological_order()

    def test_stage_validation(self):
        with pytest.raises(MappingError):
            Stage("bad", ii=0, latency=1)
        with pytest.raises(MappingError):
            Stage("bad", ii=1, latency=-1)
        with pytest.raises(MappingError):
            Stage("bad", ii=1, latency=1, n_pcus=-1)

    def test_critical_path_linear(self):
        g = _chain([1, 1, 1], [3, 2, 5], routes=[2, 4])
        assert g.critical_path_cycles() == 3 + 2 + 2 + 4 + 5

    def test_critical_path_diamond(self):
        g = PipelineGraph("d", n_iterations=4, steps=1)
        for name, lat in [("a", 1), ("b", 10), ("c", 2), ("d", 1)]:
            g.add_stage(Stage(name, ii=1, latency=lat))
        g.connect("a", "b")
        g.connect("a", "c")
        g.connect("b", "d")
        g.connect("c", "d")
        assert g.critical_path_cycles() == 1 + 10 + 1

    def test_resources_scale_with_replicas(self):
        g = _chain([1], [1])
        g.stages["s0"] = Stage("s0", ii=1, latency=1, n_pcus=3, n_pmus=2)
        g.replicas = 4
        assert g.total_pcus() == 12
        assert g.total_pmus() == 8


class TestSimulator:
    def test_single_stage_throughput(self):
        g = _chain([2], [5], n_iter=10)
        sim = simulate_pipeline(g)
        # 9 intervals of II=2 plus latency 5.
        assert sim.cycles_per_step == 9 * 2 + 5

    def test_matches_analytic_closed_form_chain(self):
        g = _chain([3, 1, 2], [4, 2, 6], routes=[1, 2], n_iter=17)
        sim = simulate_pipeline(g)
        assert sim.cycles_per_step == g.analytic_step_cycles()

    @given(
        n_stages=st.integers(1, 6),
        n_iter=st.integers(1, 40),
        seed=st.integers(0, 999),
    )
    @settings(max_examples=60, deadline=None)
    def test_event_sim_equals_closed_form_random_chains(self, n_stages, n_iter, seed):
        rng = np.random.default_rng(seed)
        iis = rng.integers(1, 9, n_stages).tolist()
        lats = rng.integers(0, 12, n_stages).tolist()
        routes = rng.integers(0, 5, max(n_stages - 1, 0)).tolist()
        g = _chain(iis, lats, routes, n_iter=n_iter)
        sim = simulate_pipeline(g)
        assert sim.cycles_per_step == g.analytic_step_cycles()

    def test_parallel_branches_join(self):
        g = PipelineGraph("fork", n_iterations=8, steps=1)
        g.add_stage(Stage("src", ii=1, latency=1))
        g.add_stage(Stage("fast", ii=1, latency=2))
        g.add_stage(Stage("slow", ii=4, latency=9))
        g.add_stage(Stage("join", ii=1, latency=1))
        g.connect("src", "fast")
        g.connect("src", "slow")
        g.connect("fast", "join")
        g.connect("slow", "join")
        sim = simulate_pipeline(g)
        assert sim.cycles_per_step == g.analytic_step_cycles()

    def test_sequential_steps_multiply(self):
        g1 = _chain([2], [3], n_iter=5, steps=1, overhead=7)
        g4 = _chain([2], [3], n_iter=5, steps=4, overhead=7)
        s1, s4 = simulate_pipeline(g1), simulate_pipeline(g4)
        assert s4.total_cycles == 4 * s1.total_cycles

    def test_empty_pipeline_rejected(self):
        g = _chain([1], [1], n_iter=0)
        with pytest.raises(SimulationError):
            simulate_pipeline(g)

    def test_activity_occupancy(self):
        g = _chain([2, 4], [1, 1], n_iter=10)
        sim = simulate_pipeline(g)
        act = sim.activities["s1"]
        assert act.busy_cycles == 40
        assert 0 < act.occupancy(sim.cycles_per_step) <= 1

    def test_busy_unit_cycles(self):
        g = _chain([1], [0], n_iter=10)
        g.stages["s0"] = Stage("s0", ii=1, latency=0, n_pcus=2)
        g.replicas = 3
        sim = simulate_pipeline(g)
        assert sim.busy_unit_cycles(g, "pcu") == 10 * 1 * 2 * 3


def _lstm_design(h=256, t=2, hu=4, ru=4, chip=None):
    shape = RNNShape("lstm", h, h)
    w = LSTMWeights.random(shape, rng=0)
    xs = np.zeros((t, h))
    prog = build_lstm_program(w, xs, LoopParams(hu=hu, ru=ru, rv=64))
    return map_rnn_program(prog, chip)


class TestMapper:
    def test_lstm_structure(self):
        design = _lstm_design()
        assert len(design.gates) == 4
        assert design.hu == 4
        assert design.n_iterations == 64
        assert design.steps == 2
        names = set(design.graph.stages)
        assert {"load_x", "ew", "writeback"} <= names
        assert sum(1 for n in names if n.startswith("dot_")) == 4
        assert sum(1 for n in names if n.startswith("accum_")) == 4

    def test_lstm_dot_ii(self):
        # H=256: R=512, rv=64, ru=4 -> ceil(8/4) = 2 blocks per iteration.
        design = _lstm_design()
        for gate in design.gates:
            assert gate.issue_blocks == 2

    def test_gru_groups_parts_by_gate(self):
        shape = RNNShape("gru", 128, 128)
        w = GRUWeights.random(shape, rng=0)
        prog = build_gru_program(w, np.zeros((2, 128)), LoopParams(hu=2, ru=2, rv=64))
        design = map_rnn_program(prog)
        assert len(design.gates) == 3
        # Each GRU gate has two part-dots whose blocks add up.
        for gate in design.gates:
            assert len(gate.reduces) == 2
            assert gate.issue_blocks == 2  # ceil(ceil(128/64)/2) * 2 parts

    def test_resource_counts_lstm(self):
        design = _lstm_design(h=1024, hu=4, ru=8)
        # dots: 4 gates x 8 ru x 4 hu = 128; accum: 4x2x4=32; ew: 2x4=8.
        assert design.resources.pcus_used == 168
        assert design.resources.fits_compute

    def test_infeasible_hu_flagged(self):
        # LSTM hu=5, ru=8 needs 210 PCUs > 190 usable.
        design = _lstm_design(h=1024, hu=5, ru=8)
        assert design.resources.pcus_used > design.resources.pcus_available
        assert not design.resources.fits_compute

    def test_capacity_overflow_flagged(self):
        design = _lstm_design(h=2048, hu=4, ru=8)
        assert not design.resources.fits_capacity
        assert design.resources.capacity_utilization > 1.0

    def test_small_fits_everything(self):
        design = _lstm_design(h=256)
        assert design.resources.fits

    def test_rejects_non_rnn_program(self):
        from repro.spatial import Foreach, Program, Range

        prog = Program("plain")
        x = prog.sram("x", (8,))

        @prog.main
        def body():
            Foreach(Range(8), lambda i: x.write(x[i] * 2.0, i))

        with pytest.raises(MappingError):
            map_rnn_program(prog)

    def test_step_cycles_model_lstm1024(self):
        # The reverse-engineered Table 6 structure:
        # cycles/step ~ ceil(H/hu) * ceil(R/(rv*ru)) + drain.
        design = _lstm_design(h=1024, t=25, hu=4, ru=8)
        sim = simulate_pipeline(design.graph)
        issue = 256 * 4
        drain = sim.cycles_per_step - issue
        assert 100 < drain < 230  # placed critical path, not a constant

    def test_paper_table6_lstm1024_latency(self):
        # Paper: 0.0292 ms. Accept +-10%.
        design = _lstm_design(h=1024, t=25, hu=4, ru=8)
        sim = simulate_pipeline(design.graph)
        ms = sim.total_cycles / 1e6
        assert ms == pytest.approx(0.0292, rel=0.10)

    def test_isca_chip_cannot_map_lowprecision(self):
        # The original 6-stage chip lacks fused/folded low-precision
        # support: an 8-bit map-reduce does not fit its PCU.
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            _lstm_design(chip=PlasticineConfig.isca2017())

    def test_bits_change_rv_requirement(self):
        # At 32-bit, one PCU consumes 16 weights/cycle, so rv=64 gangs
        # 4 PCUs per MapReduce unit.
        shape = RNNShape("lstm", 256, 256)
        w = LSTMWeights.random(shape, rng=0)
        prog = build_lstm_program(w, np.zeros((2, 256)), LoopParams(hu=2, ru=2, rv=64))
        d8 = map_rnn_program(prog, bits=8)
        d32 = map_rnn_program(prog, bits=32)
        assert d32.resources.pcus_used > d8.resources.pcus_used


class TestServingAPI:
    def test_plasticine_result_fields(self):
        from repro import serve_on_plasticine

        task = RNNTask("lstm", 256, 5)
        res = serve_on_plasticine(task, params=LoopParams(hu=2, ru=2, rv=64))
        assert res.platform == "plasticine"
        assert res.latency_s > 0
        assert res.effective_tflops > 0
        assert res.power_w is not None and 10 <= res.power_w <= 160
        assert res.design is not None

    def test_speedup_over(self):
        from repro import serve_on_gpu, serve_on_plasticine

        task = RNNTask("lstm", 512, 25)
        p = serve_on_plasticine(task)
        g = serve_on_gpu(task)
        assert p.speedup_over(g) == pytest.approx(g.latency_s / p.latency_s)
        assert p.speedup_over(g) > 1
