"""Tests for the DeepBench suite and the DSE."""

import pytest

from repro.dse import ParameterSpace, paper_params, search, tune
from repro.dse.search import build_task_program, evaluate
from repro.errors import DSEError, WorkloadError
from repro.plasticine import PlasticineConfig
from repro.rnn.lstm_loop import LoopParams
from repro.workloads import GRU_TASKS, LSTM_TASKS, RNNTask, all_tasks, table6_tasks, task


class TestDeepBenchSuite:
    def test_table6_has_ten_points(self):
        assert len(table6_tasks()) == 10

    def test_suite_includes_gru2816(self):
        names = [t.name for t in all_tasks()]
        assert "gru-h2816-t750" in names
        assert not task("gru", 2816).in_table6

    def test_lstm_points_match_paper(self):
        pts = [(t.hidden, t.timesteps) for t in LSTM_TASKS]
        assert pts == [(256, 150), (512, 25), (1024, 25), (1536, 50), (2048, 25)]

    def test_gru_points_match_paper(self):
        pts = [(t.hidden, t.timesteps) for t in GRU_TASKS]
        assert pts == [
            (512, 1), (1024, 1500), (1536, 375), (2048, 375), (2560, 375), (2816, 750),
        ]

    def test_flops_accounting(self):
        # LSTM 2048 T=25: 25 * 2*4*2048*4096 = 1.678 GFLOP; at the paper's
        # 0.106 ms this is 15.8 effective TFLOPS (Table 6).
        t = task("lstm", 2048)
        assert t.flops == 25 * 2 * 4 * 2048 * 4096
        assert t.effective_tflops(0.106e-3) == pytest.approx(15.8, rel=0.01)

    def test_batch_field_is_gone(self):
        # Regression for the removed RNNTask.batch wart: the field was
        # always 1 and silently ignored by serve_batched.  Batch sizes
        # are a serving-policy outcome (ServingResult.batch_size), not a
        # task attribute, and constructing a task with one must fail
        # loudly rather than be dropped on the floor.
        with pytest.raises(TypeError):
            RNNTask("lstm", 512, 25, batch=1)
        with pytest.raises(TypeError):
            RNNTask("lstm", 512, 25, 1)  # old positional batch slot
        assert not any(hasattr(t, "batch") for t in all_tasks())

    def test_suite_is_single_layer_fixed_length(self):
        assert all(t.layers == 1 and t.decoder_timesteps == 0 for t in all_tasks())
        assert all(t.total_steps == t.timesteps for t in all_tasks())

    def test_lookup_errors(self):
        with pytest.raises(WorkloadError):
            task("lstm", 333)  # unknown size without timesteps
        assert task("lstm", 333, 7).timesteps == 7  # explicit construction

    def test_validation(self):
        with pytest.raises(WorkloadError):
            RNNTask("rnn", 256, 10)
        with pytest.raises(WorkloadError):
            RNNTask("lstm", 0, 10)
        with pytest.raises(WorkloadError):
            task("lstm", 256).effective_tflops(0.0)

    def test_weight_bytes(self):
        t = task("lstm", 1024)
        assert t.weight_bytes(1) == 4 * 1024 * 2048


class TestParameterSpace:
    def test_rv_pinned_to_pcu_width(self):
        space = ParameterSpace()
        chip = PlasticineConfig.rnn_serving()
        assert space.rv_for(chip, 8) == 64
        assert space.rv_for(chip, 32) == 16

    def test_candidates_respect_pcu_bound(self):
        space = ParameterSpace()
        chip = PlasticineConfig.rnn_serving()
        for p in space.candidates(task("lstm", 1024), chip):
            assert 4 * p.hu * p.ru <= chip.usable_pcus

    def test_ru_never_exceeds_blocks(self):
        space = ParameterSpace()
        chip = PlasticineConfig.rnn_serving()
        # H=256: R=512 -> 8 blocks of rv=64; ru=16 must be pruned.
        rus = {p.ru for p in space.candidates(task("lstm", 256), chip)}
        assert 16 not in rus

    def test_empty_space_rejected(self):
        with pytest.raises(DSEError):
            ParameterSpace(max_hu=0)
        with pytest.raises(DSEError):
            ParameterSpace(ru_choices=())


class TestSearch:
    def test_search_small_lstm(self):
        res = search(task("lstm", 256), space=ParameterSpace(max_hu=6, ru_choices=(2, 4, 8)))
        assert res.best.fits
        assert res.best.total_cycles == min(p.total_cycles for p in res.feasible_points())

    def test_dse_beats_or_matches_paper_params(self):
        # The DSE optimum is never slower than the reconstructed paper
        # choice under the same constraints.
        t = task("lstm", 1024)
        chip = PlasticineConfig.rnn_serving()
        res = tune(t, chip, ParameterSpace(max_hu=8, ru_choices=(4, 8)))
        paper_point = evaluate(t, paper_params(t), chip)
        assert res.best.total_cycles <= paper_point.total_cycles

    def test_large_lstm_maxes_dot_resources(self):
        # Section 5.2: large problems spend the PCU budget on the dot
        # product (hu * ru maxed under the 190-PCU constraint; hu=4/ru=8
        # and hu=8/ru=4 tie to within the drain).
        res = tune(task("lstm", 2048), space=ParameterSpace(max_hu=8, ru_choices=(2, 4, 8)))
        assert res.best_params.hu * res.best_params.ru == 32

    def test_lstm_hu5_ru8_infeasible(self):
        # 4 gates x 5 x 8 map-reduce PCUs + accum + ew > 190 usable PCUs.
        point = evaluate(task("lstm", 1024), LoopParams(hu=5, ru=8, rv=64),
                         PlasticineConfig.rnn_serving())
        assert not point.fits

    def test_gru_hu5_ru8_feasible(self):
        point = evaluate(task("gru", 1024), LoopParams(hu=5, ru=8, rv=64),
                         PlasticineConfig.rnn_serving())
        assert point.fits

    def test_build_task_program_zero_weights(self):
        prog = build_task_program(task("lstm", 256), LoopParams(hu=2, ru=2, rv=64))
        assert prog.trace() is not None


class TestPaperParams:
    def test_all_table_points_covered(self):
        for t in all_tasks():
            p = paper_params(t)
            assert p is not None
            assert p.rv == 64
            assert p.hv == 1

    def test_unknown_task_returns_none(self):
        assert paper_params(RNNTask("lstm", 300, 10)) is None

    def test_paper_params_always_feasible(self):
        chip = PlasticineConfig.rnn_serving()
        for t in all_tasks():
            point = evaluate(t, paper_params(t), chip)
            assert point.fits, t.name
