"""Autoscaling: policy decisions and fleet-stream integration."""

import pytest

from repro.errors import ServingError
from repro.serving import (
    Autoscaler,
    Fleet,
    ServingEngine,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.serving.events import run_stream
from repro.serving.scheduler import make_scheduler
from repro.workloads.deepbench import task

T = task("lstm", 512, 25)


class TestPolicy:
    def test_constructor_validation(self):
        with pytest.raises(ServingError, match="min_replicas"):
            Autoscaler(min_replicas=0)
        with pytest.raises(ServingError, match="max_replicas"):
            Autoscaler(min_replicas=4, max_replicas=2)
        with pytest.raises(ServingError, match="depth_per_replica"):
            Autoscaler(depth_per_replica=0)
        with pytest.raises(ServingError, match="slo_headroom"):
            Autoscaler(slo_headroom=0)
        with pytest.raises(ServingError, match="cooldown_s"):
            Autoscaler(cooldown_s=-1)

    def test_scales_up_on_queue_depth(self):
        scaler = Autoscaler(min_replicas=1, max_replicas=8, depth_per_replica=4.0)
        scaler.reset()
        d = scaler.decide(now=0.0, active=1, queue_depth=13,
                          projected_wait_s=0.0, slo_ms=None)
        assert d.action == "up"
        assert d.target == 4  # ceil(13 / 4)

    def test_scale_up_capped_at_max(self):
        scaler = Autoscaler(min_replicas=1, max_replicas=3)
        scaler.reset()
        d = scaler.decide(now=0.0, active=1, queue_depth=100,
                          projected_wait_s=0.0, slo_ms=None)
        assert d.target == 3

    def test_scales_up_on_slo_pressure(self):
        scaler = Autoscaler(min_replicas=1, max_replicas=4, slo_headroom=0.5)
        scaler.reset()
        d = scaler.decide(now=0.0, active=2, queue_depth=1,
                          projected_wait_s=0.004, slo_ms=5.0)
        assert (d.action, d.target) == ("up", 3)
        scaler.reset()
        assert scaler.decide(now=0.0, active=2, queue_depth=1,
                             projected_wait_s=0.001, slo_ms=5.0) is None

    def test_scales_down_when_idle(self):
        scaler = Autoscaler(min_replicas=2, max_replicas=8)
        scaler.reset()
        d = scaler.decide(now=0.0, active=5, queue_depth=0,
                          projected_wait_s=0.0, slo_ms=None)
        assert (d.action, d.target) == ("down", 4)
        scaler.reset()
        assert scaler.decide(now=0.0, active=2, queue_depth=0,
                             projected_wait_s=0.0, slo_ms=None) is None

    def test_cooldown_suppresses_thrash(self):
        scaler = Autoscaler(min_replicas=1, max_replicas=8, cooldown_s=0.1)
        scaler.reset()
        assert scaler.decide(now=0.0, active=1, queue_depth=50,
                             projected_wait_s=0.0, slo_ms=None) is not None
        scaler.note_applied(0.0)
        assert scaler.decide(now=0.05, active=4, queue_depth=50,
                             projected_wait_s=0.0, slo_ms=None) is None
        assert scaler.decide(now=0.11, active=4, queue_depth=50,
                             projected_wait_s=0.0, slo_ms=None) is not None

    def test_unapplied_decision_does_not_charge_cooldown(self):
        # A decision the event loop could not honor (e.g. scale-up with
        # no replica factory) must not start the cooldown window:
        # deciding is free, only note_applied() commits.
        scaler = Autoscaler(min_replicas=1, max_replicas=8, cooldown_s=0.1)
        scaler.reset()
        assert scaler.decide(now=0.0, active=1, queue_depth=50,
                             projected_wait_s=0.0, slo_ms=None) is not None
        assert scaler.decide(now=0.01, active=1, queue_depth=50,
                             projected_wait_s=0.0, slo_ms=None) is not None


class TestFleetIntegration:
    def _bursty(self, n=600, rate=4000.0, seed=3):
        return poisson_arrivals(T, rate_per_s=rate, n_requests=n, seed=seed)

    def test_grows_under_load_and_records_events(self):
        fleet = Fleet("gpu", replicas=1)
        report = fleet.serve_stream(
            self._bursty(),
            slo_ms=5.0,
            autoscaler=Autoscaler(min_replicas=1, max_replicas=8),
        )
        assert report.n_replicas > 1
        assert report.scale_events
        ups = [e for e in report.scale_events if e.action == "up"]
        assert ups
        for event in report.scale_events:
            assert 1 <= event.replicas <= 8
        # Every request still answered exactly once, in arrival order.
        assert sorted(r.request.request_id for r in report.responses) == list(
            range(600)
        )

    def test_scale_down_during_lull(self):
        # A burst then a long quiet tail: the fleet must shed replicas.
        burst = poisson_arrivals(T, rate_per_s=6000.0, n_requests=300, seed=1)
        tail = poisson_arrivals(
            T, rate_per_s=50.0, n_requests=100, seed=2,
            start_s=max(r.arrival_s for r in burst) + 0.01,
        )
        from repro.serving import mix

        fleet = Fleet("gpu", replicas=1)
        report = fleet.serve_stream(
            mix(burst, tail),
            slo_ms=5.0,
            autoscaler=Autoscaler(min_replicas=1, max_replicas=8),
        )
        assert any(e.action == "down" for e in report.scale_events)
        # The report distinguishes peak capacity from what survived the
        # lull: the last scale event's count is the active set at the end.
        assert report.active_replicas == report.scale_events[-1].replicas
        assert report.active_replicas <= report.n_replicas

    def test_autoscaling_beats_fixed_single_replica(self):
        arrivals = self._bursty()
        fixed = Fleet("gpu", replicas=1).serve_stream(arrivals, slo_ms=5.0)
        scaled = Fleet("gpu", replicas=1).serve_stream(
            arrivals,
            slo_ms=5.0,
            autoscaler=Autoscaler(min_replicas=1, max_replicas=8),
        )
        assert scaled.slo_attainment > fixed.slo_attainment
        assert scaled.p99_ms < fixed.p99_ms

    def test_pinned_bounds_equal_fixed_fleet(self):
        # min == max pins the active set, so the run must be bit-identical
        # to the plain fixed fleet (and record no scale events).
        arrivals = self._bursty(n=300)
        fixed = Fleet("gpu", replicas=3, policy="least-loaded").serve_stream(
            arrivals, slo_ms=5.0
        )
        pinned = Fleet("gpu", replicas=3, policy="least-loaded").serve_stream(
            arrivals,
            slo_ms=5.0,
            autoscaler=Autoscaler(min_replicas=3, max_replicas=3),
        )
        assert pinned.scale_events == ()
        assert pinned.p50_ms == fixed.p50_ms
        assert pinned.p99_ms == fixed.p99_ms
        assert pinned.assignments == fixed.assignments

    def test_scaling_is_deterministic_and_reset_between_runs(self):
        arrivals = self._bursty(n=400)
        scaler = Autoscaler(min_replicas=1, max_replicas=6)
        first = Fleet("gpu", replicas=1).serve_stream(
            arrivals, slo_ms=5.0, autoscaler=scaler
        )
        second = Fleet("gpu", replicas=1).serve_stream(
            arrivals, slo_ms=5.0, autoscaler=scaler
        )
        assert first.scale_events == second.scale_events
        assert first.p99_ms == second.p99_ms

    def test_grown_replicas_share_compile_cache(self):
        fleet = Fleet("gpu", replicas=1)
        report = fleet.serve_stream(
            self._bursty(),
            slo_ms=5.0,
            autoscaler=Autoscaler(min_replicas=1, max_replicas=8),
        )
        assert report.n_replicas > 1
        # One task, one compile: every replica (initial or grown) reads
        # the shared cache, so the fleet-wide miss count stays 1.
        misses = sum(e.cache_stats.misses for e in fleet.engines)
        assert misses == 1

    def test_autoscale_starts_at_policy_floor(self):
        # Fleet built with 4 replicas, but the autoscaler floor is 2: the
        # stream starts (and stays, absent load) on 2 active replicas.
        fleet = Fleet("gpu", replicas=4)
        calm = uniform_arrivals(T, rate_per_s=100.0, n_requests=40)
        report = fleet.serve_stream(
            calm,
            slo_ms=50.0,
            autoscaler=Autoscaler(min_replicas=2, max_replicas=6),
        )
        assert set(report.assignments) <= {0, 1}

    def test_run_stream_requires_factory_to_grow(self):
        engine = ServingEngine("gpu")
        with pytest.raises(ServingError, match="replica_factory"):
            run_stream(
                self._bursty(n=200),
                engines=(engine,),
                schedulers=(make_scheduler("fifo"),),
                dispatch=lambda seq, req, work: seq % len(work),
                slo_ms=5.0,
                autoscaler=Autoscaler(min_replicas=1, max_replicas=4),
            )
