"""Scheduler disciplines and the scheduler registry."""

import pytest

from repro.errors import ServingError
from repro.serving import (
    ServeRequest,
    ServingEngine,
    available_schedulers,
    get_scheduler,
    register_scheduler,
)
from repro.serving.scheduler import (
    CoalescingScheduler,
    EDFScheduler,
    FIFOScheduler,
    PriorityScheduler,
    QueuedRequest,
    Scheduler,
    SJFScheduler,
    make_scheduler,
    unregister_scheduler,
)
from repro.workloads.deepbench import task

T = task("lstm", 512, 25)
G = task("gru", 512, 1)


def _entry(seq, *, task=T, priority=0, service_s=1.0, deadline_s=float("inf")):
    req = ServeRequest(task=task, arrival_s=0.0, request_id=seq, priority=priority)
    return QueuedRequest(
        seq=seq, request=req, result=None, service_s=service_s, deadline_s=deadline_s
    )


def _drain(sched):
    out = []
    while len(sched):
        out.append(sched.pop().seq)
    return out


class TestRegistry:
    def test_builtins_registered(self):
        names = available_schedulers()
        for expected in ("fifo", "priority", "edf", "sjf", "coalesce"):
            assert expected in names

    def test_unknown_scheduler_raises(self):
        with pytest.raises(ServingError, match="unknown scheduler 'lifo'"):
            get_scheduler("lifo")

    def test_register_round_trip(self):
        @register_scheduler("lifo-test")
        class LIFOScheduler(Scheduler):
            def __init__(self):
                self._stack = []

            def push(self, entry):
                self._stack.append(entry)

            def pop(self):
                return self._stack.pop()

            def __len__(self):
                return len(self._stack)

        try:
            assert "lifo-test" in available_schedulers()
            sched = get_scheduler("lifo-test")
            assert sched.name == "lifo-test"
            sched.push(_entry(0))
            sched.push(_entry(1))
            assert sched.pop().seq == 1
        finally:
            unregister_scheduler("lifo-test")
        assert "lifo-test" not in available_schedulers()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ServingError, match="already registered"):
            @register_scheduler("fifo")
            class Impostor(Scheduler):
                def push(self, entry):  # pragma: no cover
                    raise NotImplementedError

                def pop(self):  # pragma: no cover
                    raise NotImplementedError

                def __len__(self):  # pragma: no cover
                    return 0

    def test_non_scheduler_rejected(self):
        with pytest.raises(ServingError, match="Scheduler subclass"):
            register_scheduler("bogus")(object)

    def test_make_scheduler_specs(self):
        assert isinstance(make_scheduler("edf"), EDFScheduler)
        inst = FIFOScheduler()
        assert make_scheduler(inst) is inst
        assert isinstance(make_scheduler(SJFScheduler), SJFScheduler)
        with pytest.raises(ServingError, match="factory"):
            make_scheduler(lambda: object())
        with pytest.raises(ServingError):
            make_scheduler(42)

    def test_engine_rejects_unknown_scheduler(self):
        with pytest.raises(ServingError, match="unknown scheduler"):
            ServingEngine("gpu").serve_stream(
                [ServeRequest(task=T)], scheduler="nope"
            )


class TestDisciplines:
    def test_pop_empty_raises(self):
        for name in available_schedulers():
            with pytest.raises(ServingError, match="empty"):
                get_scheduler(name).pop()

    def test_fifo_orders_by_seq(self):
        sched = FIFOScheduler()
        for seq in (2, 0, 1):
            sched.push(_entry(seq))
        assert _drain(sched) == [0, 1, 2]

    def test_priority_orders_high_first_fifo_within(self):
        sched = PriorityScheduler()
        sched.push(_entry(0, priority=0))
        sched.push(_entry(1, priority=5))
        sched.push(_entry(2, priority=5))
        sched.push(_entry(3, priority=1))
        assert _drain(sched) == [1, 2, 3, 0]

    def test_edf_orders_by_deadline(self):
        sched = EDFScheduler()
        sched.push(_entry(0, deadline_s=3.0))
        sched.push(_entry(1, deadline_s=1.0))
        sched.push(_entry(2, deadline_s=2.0))
        sched.push(_entry(3))  # no SLO -> inf deadline, last
        assert _drain(sched) == [1, 2, 0, 3]

    def test_edf_ties_break_fifo(self):
        sched = EDFScheduler()
        sched.push(_entry(1, deadline_s=1.0))
        sched.push(_entry(0, deadline_s=1.0))
        assert _drain(sched) == [0, 1]

    def test_sjf_orders_by_service_time(self):
        sched = SJFScheduler()
        sched.push(_entry(0, service_s=3.0))
        sched.push(_entry(1, service_s=0.5))
        sched.push(_entry(2, service_s=1.5))
        assert _drain(sched) == [1, 2, 0]

    def test_coalesce_groups_same_task_runs(self):
        sched = CoalescingScheduler()
        # Arrival order alternates tasks; coalescing should serve the
        # first task's whole backlog before switching.
        sched.push(_entry(0, task=T))
        sched.push(_entry(1, task=G))
        sched.push(_entry(2, task=T))
        sched.push(_entry(3, task=G))
        sched.push(_entry(4, task=T))
        assert _drain(sched) == [0, 2, 4, 1, 3]

    def test_coalesce_falls_back_to_fifo_between_runs(self):
        sched = CoalescingScheduler()
        sched.push(_entry(0, task=G))
        sched.push(_entry(1, task=T))
        sched.push(_entry(2, task=G))
        # Serve G's run, then the oldest remaining (T).
        assert _drain(sched) == [0, 2, 1]

    def test_coalesce_interleaved_pushes(self):
        sched = CoalescingScheduler()
        sched.push(_entry(0, task=T))
        assert sched.pop().seq == 0
        sched.push(_entry(1, task=G))
        sched.push(_entry(2, task=T))
        # Last served task was T, so its newer request jumps the queue.
        assert sched.pop().seq == 2
        sched.push(_entry(3, task=G))
        assert _drain(sched) == [1, 3]
        assert len(sched) == 0
