"""Differential golden parity: pass pipeline vs the legacy monolith.

The default pass pipeline must reproduce `_map_rnn_monolith`
bit-identically — same stage coords, IIs, latencies, routed edge costs
and the full ResourceReport — across LSTM/GRU, hidden sizes, precisions
and chip variants (including a deliberately tiny chip that exercises
the placement-overflow path on both sides).

Designs are compared through `design_fingerprint` (never `==`: the
recognized gates hold the traced loop tree whose parent/child links make
naive dataclass equality recurse).
"""

import itertools

import pytest

from repro.dse.search import build_task_program
from repro.mapping.mapper import _map_rnn_monolith, map_rnn_program
from repro.mapping.passes import (
    DEFAULT_PIPELINE,
    PassConfig,
    design_fingerprint,
    diff_designs,
)
from repro.plasticine.chip import PlasticineConfig
from repro.plasticine.network import GridLayout
from repro.plasticine.pcu import PCUConfig
from repro.plasticine.pmu import PMUConfig
from repro.plasticine.simulator import simulate_pipeline
from repro.rnn.lstm_loop import LoopParams
from repro.workloads.deepbench import RNNTask


def mini_chip() -> PlasticineConfig:
    """A 12x12 variant-grid chip small enough that real designs overflow
    it — parity must hold through the overflow path too."""
    return PlasticineConfig(
        name="plasticine-mini",
        layout=GridLayout.rnn_variant(12, 12),
        pcu=PCUConfig(lanes=16, stages=4, fused_low_precision=True,
                      folded_reduction=True),
        pmu=PMUConfig(capacity_bytes=84 * 1024, banks=16),
    )


CHIPS = {"table3": PlasticineConfig.rnn_serving, "mini": mini_chip}

MATRIX = list(
    itertools.product(
        ["lstm", "gru"],
        [128, 512, 1152],
        [8, 16, 32],
        sorted(CHIPS),
    )
)


def _program(kind: str, hidden: int):
    return build_task_program(
        RNNTask(kind, hidden, 4), LoopParams(hu=4, ru=4, rv=64)
    )


@pytest.mark.parametrize(
    "kind,hidden,bits,chip_name",
    MATRIX,
    ids=[f"{k}-{h}-{b}b-{c}" for k, h, b, c in MATRIX],
)
class TestGoldenParity:
    def test_bit_identical(self, kind, hidden, bits, chip_name):
        prog = _program(kind, hidden)
        chip = CHIPS[chip_name]()
        legacy = _map_rnn_monolith(prog, chip, bits=bits)
        piped = map_rnn_program(prog, chip, bits=bits)
        assert diff_designs(legacy, piped) == []

    def test_stage_by_stage(self, kind, hidden, bits, chip_name):
        prog = _program(kind, hidden)
        chip = CHIPS[chip_name]()
        legacy = _map_rnn_monolith(prog, chip, bits=bits)
        piped = map_rnn_program(prog, chip, bits=bits)
        assert list(legacy.graph.stages) == list(piped.graph.stages)
        for name, a in legacy.graph.stages.items():
            b = piped.graph.stages[name]
            assert (a.coord, a.ii, a.latency, a.n_pcus, a.n_pmus) == (
                b.coord,
                b.ii,
                b.latency,
                b.n_pcus,
                b.n_pmus,
            ), name
        assert legacy.graph.edges == piped.graph.edges
        assert legacy.resources == piped.resources


class TestParityDetails:
    def test_simulated_cycles_match(self):
        prog = _program("lstm", 512)
        legacy = _map_rnn_monolith(prog)
        piped = map_rnn_program(prog)
        assert (
            simulate_pipeline(legacy.graph).total_cycles
            == simulate_pipeline(piped.graph).total_cycles
        )

    def test_overflow_note_parity_on_mini_chip(self):
        # hu=4, ru=4 LSTM wants far more than the mini chip's 48 PCUs;
        # both paths must flag the identical overflow note.
        prog = _program("lstm", 1152)
        chip = mini_chip()
        legacy = _map_rnn_monolith(prog, chip)
        piped = map_rnn_program(prog, chip)
        assert any("placement overflow" in n for n in legacy.resources.notes)
        assert legacy.resources.notes == piped.resources.notes

    def test_pipeline_records_pass_metadata(self):
        design = map_rnn_program(_program("lstm", 128))
        assert design.passes_applied == DEFAULT_PIPELINE
        # report_resources is still running when the design is frozen,
        # so its own timing is not recorded.
        assert [t.name for t in design.pass_timings] == list(DEFAULT_PIPELINE[:-1])
        assert all(t.seconds >= 0 for t in design.pass_timings)

    def test_monolith_has_no_pass_metadata(self):
        design = _map_rnn_monolith(_program("lstm", 128))
        assert design.passes_applied == ()

    def test_explicit_pass_list_matches_default(self):
        prog = _program("gru", 512)
        by_default = map_rnn_program(prog)
        by_list = map_rnn_program(prog, passes=list(DEFAULT_PIPELINE))
        assert diff_designs(by_default, by_list) == []

    def test_fingerprint_is_json_compatible(self):
        import json

        fp = design_fingerprint(map_rnn_program(_program("gru", 128)))
        assert json.loads(json.dumps(fp)) == fp

    def test_diff_reports_differences(self):
        a = map_rnn_program(_program("lstm", 128))
        b = map_rnn_program(_program("lstm", 128), pass_config=PassConfig(double_buffer=True))
        diffs = diff_designs(a, b)
        assert diffs
        assert any("step_overhead" in d for d in diffs)


class TestOptimizationDirections:
    """fuse_gates / double_buffer must move the measured metrics the way
    their contracts promise (and still pass the IR verifier, which runs
    after every pass by default)."""

    def test_fuse_gates_saves_pcus_never_cycles(self):
        prog = _program("lstm", 512)
        base = map_rnn_program(prog)
        fused = map_rnn_program(prog, pass_config=PassConfig(fuse_gates=True))
        assert fused.resources.pcus_used < base.resources.pcus_used
        assert (
            simulate_pipeline(fused.graph).total_cycles
            <= simulate_pipeline(base.graph).total_cycles
        )
        assert "fuse_gates" in fused.passes_applied
        assert any("fuse_gates" in n for n in fused.resources.notes)
        assert "accum_fused" in fused.graph.stages

    def test_double_buffer_cuts_cycles_costs_pmus(self):
        prog = _program("lstm", 1152)
        base = map_rnn_program(prog)
        dbl = map_rnn_program(prog, pass_config=PassConfig(double_buffer=True))
        assert (
            simulate_pipeline(dbl.graph).total_cycles
            < simulate_pipeline(base.graph).total_cycles
        )
        assert dbl.resources.pmus_used > base.resources.pmus_used
        assert dbl.graph.step_overhead < base.graph.step_overhead
        assert any("double_buffer" in n for n in dbl.resources.notes)

    @pytest.mark.parametrize("kind,hidden", [("lstm", 512), ("gru", 512)])
    def test_combined_config_stacks_both_effects(self, kind, hidden):
        prog = _program(kind, hidden)
        base = map_rnn_program(prog)
        both = map_rnn_program(
            prog, pass_config=PassConfig(fuse_gates=True, double_buffer=True)
        )
        assert (
            simulate_pipeline(both.graph).total_cycles
            < simulate_pipeline(base.graph).total_cycles
        )
        assert both.resources.pcus_used <= base.resources.pcus_used
        assert both.passes_applied == (
            DEFAULT_PIPELINE[:-1]
            + ("fuse_gates", "double_buffer")
            + DEFAULT_PIPELINE[-1:]
        )
