"""Unit consistency of every platform cost model, old and new tasks.

``effective_tflops`` is defined as ``task.flops / latency / 1e12``, so
for every (platform, task) pair — fixed-length DeepBench points, length
variants, stacked, and seq2seq — the product ``effective_tflops x
latency_s x 1e12`` must reproduce the task's FLOPs.  This is the single
assertion that catches any layer/length scaling mistake on either side:
a model that charges T where it should charge ``L * (T + T_dec)`` (or
pads the FLOPs numerator but not the latency) breaks it immediately.
"""

from __future__ import annotations

import pytest

from repro.serving import ServingEngine, available_platforms
from repro.workloads.deepbench import RNNTask, task
from repro.workloads.zoo import seq2seq, stacked, zoo_tasks

#: Fixed-length paper points (hidden sizes with reconstructed Table 7
#: parameters, so plasticine never falls back to the DSE), length
#: variants of them, and the multi-layer / seq2seq shapes.
TASKS = (
    task("lstm", 512, 25),
    task("lstm", 2048, 25),
    task("gru", 512, 1),
    task("gru", 2816, 750),
    task("lstm", 512, 25).with_timesteps(7),
    task("lstm", 512, 25).with_timesteps(500),
    stacked("lstm", 512, 25, layers=2),
    stacked("gru", 1536, 150, layers=3),
    seq2seq("gru", 512, 25, 10),
    seq2seq("lstm", 1024, 30, 30, layers=2),
)


@pytest.fixture(scope="module")
def engines():
    return {name: ServingEngine(name) for name in available_platforms()}


@pytest.mark.parametrize("t", TASKS, ids=lambda t: t.name)
@pytest.mark.parametrize("platform", sorted(available_platforms()))
def test_effective_tflops_times_latency_is_task_flops(engines, platform, t):
    result = engines[platform].serve(t).result
    assert result.latency_s > 0
    assert result.effective_tflops * result.latency_s * 1e12 == pytest.approx(
        t.flops, rel=1e-9
    )
    # The result must be costed for the request's actual task, not for
    # whatever length the shared compiled model was prepared at.
    assert result.task == t


@pytest.mark.parametrize("platform", sorted(available_platforms()))
def test_batched_tflops_count_all_requests(engines, platform):
    t = task("gru", 512, 25)
    for batch in (2, 8):
        result = engines[platform].serve_batched(t, batch)
        assert result.batch_size == batch
        assert result.effective_tflops * result.latency_s * 1e12 == pytest.approx(
            batch * t.flops, rel=1e-9
        )


@pytest.mark.parametrize("platform", sorted(available_platforms()))
def test_total_steps_scaling_is_linear(engines, platform):
    """Doubling the layer count (or adding the same steps as a decoder
    leg) must exactly double/track the steady-state step cost: the
    one-time launch setup is charged once per request, never per layer."""
    engine = engines[platform]
    base = engine.serve(RNNTask("gru", 512, 40, in_table6=False)).result
    double_layers = engine.serve(stacked("gru", 512, 40, layers=2)).result
    s2s = engine.serve(seq2seq("gru", 512, 40, 40)).result
    # Same total step count => identical latency (one setup, 80 steps).
    assert double_layers.latency_s == pytest.approx(s2s.latency_s, rel=1e-12)
    # At most two full launches' worth — and strictly less wherever the
    # platform has a nonzero per-launch init (the analytical baselines),
    # because that init is charged once, not once per layer.  Plasticine
    # has no per-launch constant (the pipeline fill is part of every
    # step), so it is exactly linear.
    assert double_layers.latency_s <= 2 * base.latency_s
    if platform in ("cpu", "gpu", "brainwave"):
        assert double_layers.latency_s < 2 * base.latency_s
    assert double_layers.latency_s > base.latency_s


def test_zoo_tasks_flop_accounting():
    for t in zoo_tasks():
        assert t.flops == t.total_steps * t.shape.mvm_flops_per_step()
        assert t.total_steps == t.layers * (t.timesteps + t.decoder_timesteps)
