"""ServingServer: concurrent clients, conservation, drain, sockets, clocks.

The acceptance bar from the issue: >= 100 concurrent asyncio clients,
zero request loss (every accepted request answered exactly once), and a
clean graceful drain.  Everything runs on the virtual clock unless a
test is specifically about the real one, so the suite never waits wall
time.  No pytest-asyncio in the toolchain — each test drives its own
``asyncio.run``.
"""

import asyncio
import json

import pytest

from repro.errors import ServingError
from repro.serving import (
    RealClock,
    ServeRequest,
    ServingEngine,
    ServingServer,
    VirtualClock,
    request_to_json,
    uniform_arrivals,
)
from repro.workloads.deepbench import task

T = task("lstm", 512, 25)
GRU = task("gru", 256, 50)


def run(coro):
    return asyncio.run(coro)


class TestConservation:
    def test_100_concurrent_clients_zero_loss(self):
        """The acceptance criterion, pinned: 120 concurrent clients, every
        request answered, drain leaves nothing behind."""

        async def main():
            async with ServingServer("gpu", replicas=4, slo_ms=50.0) as server:
                responses = await asyncio.gather(
                    *(server.submit(T) for _ in range(120))
                )
            return server, responses

        server, responses = run(main())
        assert len(responses) == 120
        assert server.accepted == server.served == 120
        assert server.summary.n_requests == 120
        assert len({r.request.request_id for r in responses}) == 120
        assert sum(server.summary.per_replica_counts) == 120

    def test_closed_loop_clients(self):
        async def client(server, n):
            out = []
            for _ in range(n):
                out.append(await server.submit(T))
            return out

        async def main():
            async with ServingServer("gpu", replicas=2) as server:
                batches = await asyncio.gather(
                    *(client(server, 10) for _ in range(12))
                )
            return server, batches

        server, batches = run(main())
        assert server.accepted == server.served == 120
        assert all(len(b) == 10 for b in batches)

    def test_drain_flushes_queue_and_rejects_new(self):
        async def main():
            server = await ServingServer("gpu").start()
            pending = [
                asyncio.ensure_future(server.submit(T)) for _ in range(20)
            ]
            await asyncio.sleep(0)  # let every submit enqueue
            summary = await server.drain()
            responses = await asyncio.gather(*pending)
            with pytest.raises(ServingError, match="draining"):
                await server.submit(T)
            return server, summary, responses

        server, summary, responses = run(main())
        assert len(responses) == 20
        assert server.accepted == server.served == 20
        assert summary.n_requests == 20

    def test_drain_is_idempotent(self):
        async def main():
            async with ServingServer("gpu") as server:
                await server.submit(T)
            await server.drain()
            await server.drain()
            return server

        assert run(main()).served == 1


class TestTimeline:
    def test_single_replica_serializes(self):
        async def main():
            async with ServingServer("gpu", replicas=1) as server:
                return await asyncio.gather(
                    *(server.submit(T) for _ in range(25))
                ), server

        responses, server = run(main())
        latency = ServingEngine("gpu").serve(T).result.latency_s
        by_start = sorted(responses, key=lambda r: r.start_s)
        for prev, nxt in zip(by_start, by_start[1:]):
            assert nxt.start_s >= prev.finish_s - 1e-12
        for resp in responses:
            assert resp.start_s >= resp.request.arrival_s
            assert resp.finish_s == pytest.approx(resp.start_s + latency)
            assert resp.queue_delay_s >= 0.0

    def test_replicas_overlap(self):
        async def main():
            async with ServingServer("gpu", replicas=4) as server:
                return await asyncio.gather(
                    *(server.submit(T) for _ in range(40))
                ), server

        responses, server = run(main())
        single = sorted(r.finish_s for r in responses)[-1]
        # 4 replicas must finish the 40 requests ~4x sooner than one
        # replica's serial chain would.
        latency = ServingEngine("gpu").serve(T).result.latency_s
        assert single < 40 * latency * 0.5
        assert server.summary.n_replicas == 4

    def test_virtual_clock_closed_loop_advances(self):
        async def main():
            clock = VirtualClock()
            async with ServingServer("gpu", clock=clock) as server:
                first = await server.submit(T)
                second = await server.submit(T)
            return first, second

        first, second = run(main())
        # The clock advanced to the first finish, so the closed-loop
        # follow-up arrives there — not at time zero.
        assert second.request.arrival_s >= first.finish_s
        assert second.queue_delay_s == pytest.approx(0.0)

    def test_explicit_arrivals_preserved(self):
        async def main():
            reqs = uniform_arrivals(T, rate_per_s=100, n_requests=5)
            async with ServingServer("gpu") as server:
                return await server.serve_all(reqs)

        responses = run(main())
        assert [r.request.arrival_s for r in responses] == [
            pytest.approx((i + 1) * 0.01) for i in range(5)
        ]


class TestBatchingAndPolicies:
    def test_size_cap_batching_coalesces(self):
        async def main():
            async with ServingServer(
                "gpu", batcher="size-cap", max_batch=8
            ) as server:
                return await asyncio.gather(
                    *(server.submit(T) for _ in range(64))
                ), server

        responses, server = run(main())
        assert server.summary.mean_batch_size > 1.0
        sizes = {r.batch_size for r in responses}
        assert max(sizes) > 1
        for resp in responses:
            assert 0 <= resp.batch_index < resp.batch_size

    def test_batch_members_share_timeline(self):
        async def main():
            async with ServingServer(
                "gpu", batcher="size-cap", max_batch=4
            ) as server:
                return await asyncio.gather(
                    *(server.submit(T) for _ in range(32))
                )

        responses = run(main())
        by_start = {}
        for resp in responses:
            if resp.batch_size > 1:
                by_start.setdefault((resp.start_s, resp.finish_s), []).append(resp)
        assert by_start  # at least one real batch formed
        for (start, finish), members in by_start.items():
            assert len({m.result.latency_s for m in members}) == 1

    def test_closed_loop_batching_terminates(self):
        """Regression: a closed-loop client mix under size-cap batching
        once deadlocked — a batch follower stamped later than the head
        produced a non-positive sojourn, crashed the worker, and left
        every remaining client stranded.  The batch start must cover
        every member's arrival."""

        async def client(server, n):
            return [await server.submit(T) for _ in range(n)]

        async def main():
            async with ServingServer(
                "gpu", batcher="size-cap", max_batch=4, slo_ms=5.0
            ) as server:
                batches = await asyncio.gather(
                    *(client(server, 10) for _ in range(8))
                )
            return server, batches

        server, batches = run(main())
        assert server.accepted == server.served == 80
        for resp in (r for batch in batches for r in batch):
            assert resp.sojourn_s > 0.0
            assert resp.start_s >= resp.request.arrival_s

    def test_crashed_worker_fails_clients_instead_of_hanging(self):
        class _Exploding(list):
            def __getitem__(self, index):
                raise RuntimeError("injected replica failure")

        async def main():
            server = await ServingServer("gpu").start()
            server._free_at = _Exploding(server._free_at)
            return await asyncio.gather(
                *(server.submit(T) for _ in range(5)), return_exceptions=True
            )

        results = run(main())
        assert results and all(
            isinstance(r, RuntimeError) for r in results
        )

    def test_scheduler_registry_plugs_in(self):
        async def main():
            async with ServingServer("gpu", scheduler="edf", slo_ms=5.0) as server:
                await asyncio.gather(*(server.submit(T) for _ in range(10)))
            return server

        assert run(main()).summary.n_requests == 10

    def test_server_summary_matches_responses(self):
        async def main():
            async with ServingServer("gpu", slo_ms=5.0) as server:
                responses = await asyncio.gather(
                    *(server.submit(T) for _ in range(50))
                )
            return server, responses

        server, responses = run(main())
        summary = server.summary
        sojourns = sorted((r.finish_s - r.request.arrival_s) * 1e3 for r in responses)
        assert summary.n_requests == 50
        assert summary.max_sojourn_ms == pytest.approx(sojourns[-1])
        assert summary.mean_ms == pytest.approx(sum(sojourns) / len(sojourns))


class TestLifecycleErrors:
    def test_submit_before_start(self):
        async def main():
            server = ServingServer("gpu")
            with pytest.raises(ServingError, match="not started"):
                await server.submit(T)

        run(main())

    def test_summary_before_drain(self):
        async def main():
            server = await ServingServer("gpu").start()
            with pytest.raises(ServingError, match="drain"):
                server.summary
            await server.drain()
            return server

        server = run(main())
        with pytest.raises(ServingError, match="no responses"):
            server.summary

    def test_drain_without_start(self):
        async def main():
            with pytest.raises(ServingError, match="never started"):
                await ServingServer("gpu").drain()

        run(main())

    def test_bad_replicas(self):
        with pytest.raises(ServingError, match="replica"):
            ServingServer("gpu", replicas=0)


class TestSockets:
    @staticmethod
    async def roundtrip(reader, writer, req):
        writer.write((json.dumps(request_to_json(req)) + "\n").encode())
        await writer.drain()
        return json.loads(await reader.readline())

    def test_tcp_concurrent_connections(self):
        async def client(host, port, i):
            reader, writer = await asyncio.open_connection(host, port)
            reply = await self.roundtrip(
                reader, writer,
                ServeRequest(task=T, request_id=i, tenant=f"t{i % 4}"),
            )
            writer.close()
            await writer.wait_closed()
            return reply

        async def main():
            server = await ServingServer("gpu", replicas=2, slo_ms=50.0).start()
            host, port = await server.listen()
            replies = await asyncio.gather(
                *(client(host, port, i) for i in range(40))
            )
            await server.drain()
            return server, replies

        server, replies = run(main())
        assert all(r["ok"] for r in replies)
        assert {r["request_id"] for r in replies} == set(range(40))
        assert server.accepted == server.served == 40
        assert server.summary.n_requests == 40
        for reply in replies:
            assert reply["sojourn_ms"] >= reply["latency_ms"] - 1e-9
            assert reply["batch_size"] == 1

    def test_malformed_line_gets_error_reply_and_connection_survives(self):
        async def main():
            server = await ServingServer("gpu").start()
            host, port = await server.listen()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"this is not json\n")
            await writer.drain()
            bad = json.loads(await reader.readline())
            writer.write(b'["a","list"]\n')
            await writer.drain()
            not_obj = json.loads(await reader.readline())
            good = await self.roundtrip(
                reader, writer, ServeRequest(task=GRU, request_id=7)
            )
            writer.close()
            await writer.wait_closed()
            await server.drain()
            return bad, not_obj, good, server

        bad, not_obj, good, server = run(main())
        assert bad["ok"] is False and "line 1" in bad["error"]
        assert not_obj["ok"] is False and "line 2" in not_obj["error"]
        assert good["ok"] is True and good["request_id"] == 7
        assert server.served == 1

    def test_invalid_task_record_gets_error_reply_not_a_crash(self):
        """Regression: a well-formed JSON object whose *task* fields are
        invalid used to escape as WorkloadError past the handler's
        ServingError catch, killing the connection with no reply."""

        async def main():
            server = await ServingServer("gpu").start()
            host, port = await server.listen()
            reader, writer = await asyncio.open_connection(host, port)
            for record in (
                {"kind": "nope", "hidden": 512, "timesteps": 25},
                {"kind": "lstm", "hidden": -4, "timesteps": 25},
                {"kind": "lstm", "hidden": "big", "timesteps": 25},
            ):
                writer.write((json.dumps(record) + "\n").encode())
            await writer.drain()
            bad = [json.loads(await reader.readline()) for _ in range(3)]
            good = await self.roundtrip(
                reader, writer, ServeRequest(task=GRU, request_id=9)
            )
            writer.close()
            await writer.wait_closed()
            await server.drain()
            return bad, good, server

        bad, good, server = run(main())
        for i, reply in enumerate(bad):
            assert reply["ok"] is False, reply
            assert f"line {i + 1}" in reply["error"]
        assert good["ok"] is True and good["request_id"] == 9
        assert server.served == 1

    def test_pipelined_requests_one_connection(self):
        async def main():
            server = await ServingServer("gpu", replicas=2).start()
            host, port = await server.listen()
            reader, writer = await asyncio.open_connection(host, port)
            for i in range(16):
                writer.write(
                    (json.dumps(request_to_json(
                        ServeRequest(task=T, request_id=i))) + "\n").encode()
                )
            await writer.drain()
            replies = [json.loads(await reader.readline()) for _ in range(16)]
            writer.close()
            await writer.wait_closed()
            await server.drain()
            return replies, server

        replies, server = run(main())
        assert {r["request_id"] for r in replies} == set(range(16))
        assert server.served == 16

    def test_unix_socket(self, tmp_path):
        path = str(tmp_path / "serving.sock")

        async def main():
            server = await ServingServer("gpu").start()
            await server.listen_unix(path)
            reader, writer = await asyncio.open_unix_connection(path)
            reply = await self.roundtrip(
                reader, writer, ServeRequest(task=T, request_id=1)
            )
            writer.close()
            await writer.wait_closed()
            await server.drain()
            return reply

        reply = run(main())
        assert reply["ok"] is True
        # The drain removed the socket file.
        assert not (tmp_path / "serving.sock").exists()

    def test_trace_schema_is_the_wire_schema(self):
        """A recorded-trace line replays against the socket verbatim."""
        line = json.dumps(request_to_json(
            ServeRequest(task=T, request_id=3, tenant="replayed", slo_ms=9.0)
        ))

        async def main():
            server = await ServingServer("gpu").start()
            host, port = await server.listen()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write((line + "\n").encode())
            await writer.drain()
            reply = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            await server.drain()
            return reply, server

        reply, server = run(main())
        assert reply["ok"] and reply["tenant"] == "replayed"
        assert reply["slo_ms"] == 9.0
        assert server.summary.tenants == ("replayed",)


class TestSubmitTimeout:
    def test_bad_timeout_rejected(self):
        with pytest.raises(ServingError, match="timeout_ms"):
            ServingServer("gpu", timeout_ms=0.0)

    def test_generous_timeout_is_invisible(self):
        async def main():
            async with ServingServer("gpu", timeout_ms=60_000.0) as server:
                return await asyncio.gather(
                    *(server.submit(T) for _ in range(20))
                ), server

        responses, server = run(main())
        assert len(responses) == 20
        assert server.accepted == server.served == 20

    def test_expiry_raises_yet_request_still_drains(self):
        # A real clock slowed far below real time makes the single dwell
        # outlast the 50 ms budget; submit must fail fast with a
        # ServingError while the worker still finishes the execution, so
        # the conservation counters balance after drain.
        async def main():
            server = await ServingServer(
                "gpu", clock=RealClock(speedup=0.002), timeout_ms=50.0
            ).start()
            with pytest.raises(ServingError, match="timed out after 50"):
                await server.submit(T)
            await server.drain()
            return server

        server = run(main())
        assert server.accepted == server.served == 1
        assert server.summary.n_requests == 1


class TestClocks:
    def test_real_clock_dwells_scaled(self):
        async def main():
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            async with ServingServer(
                "gpu", clock=RealClock(speedup=50.0)
            ) as server:
                resp = await server.submit(T)
            return loop.time() - t0, resp

        wall, resp = run(main())
        latency = resp.result.latency_s
        # The dwell is latency/speedup wall seconds (plus scheduling
        # noise); it must be positive yet far below the unscaled latency.
        assert wall >= latency / 50.0 * 0.5

    def test_real_clock_validation(self):
        with pytest.raises(ServingError, match="speedup"):
            RealClock(speedup=0.0)

    def test_virtual_clock_never_waits(self):
        async def main():
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            async with ServingServer("gpu", replicas=2) as server:
                await asyncio.gather(*(server.submit(T) for _ in range(200)))
            return loop.time() - t0

        # 200 requests x ~0.74 ms simulated latency settle instantly.
        assert run(main()) < 5.0

    def test_virtual_clock_monotone(self):
        clock = VirtualClock(start_s=1.0)
        clock.advance_to(3.0)
        clock.advance_to(2.0)
        assert clock.now() == 3.0
