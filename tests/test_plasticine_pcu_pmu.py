"""Unit tests for the PCU/PMU models and the Figure 6 timing laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, ResourceError
from repro.plasticine.isa import Opcode, low_precision_map_reduce_schedule, spec
from repro.plasticine.pcu import PCUConfig
from repro.plasticine.pmu import PMUConfig


class TestISA:
    def test_low_precision_schedule_unfused_has_five_stages(self):
        sched = low_precision_map_reduce_schedule(fused=False)
        assert len(sched) == 5
        assert sched[0] is Opcode.MUL_4x8
        assert sched[-1] is Opcode.ADD_32

    def test_fused_schedule_has_three_stages(self):
        sched = low_precision_map_reduce_schedule(fused=True)
        assert len(sched) == 3
        assert sched[0] is Opcode.FUSED_MUL_4x8_SPLIT

    def test_packing_factors(self):
        assert spec(Opcode.MUL_4x8).values_per_fu == 4
        assert spec(Opcode.ADD_2x16).values_per_fu == 2
        assert spec(Opcode.ADD_32).values_per_fu == 1

    def test_fused_flags(self):
        assert spec(Opcode.FUSED_MUL_4x8_SPLIT).is_fused
        assert not spec(Opcode.MUL_4x8).is_fused
        assert spec(Opcode.MUL_4x8).is_low_precision
        assert not spec(Opcode.ADD_32).is_low_precision


class TestPCUConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            PCUConfig(lanes=3)
        with pytest.raises(ConfigError):
            PCUConfig(lanes=16, stages=0)
        with pytest.raises(ConfigError):
            PCUConfig(regs_per_stage=1)

    def test_packing(self):
        pcu = PCUConfig()
        assert pcu.packing(8) == 4
        assert pcu.packing(16) == 2
        assert pcu.packing(32) == 1
        with pytest.raises(ConfigError):
            pcu.packing(4)

    def test_values_per_cycle_is_rv(self):
        # 16 lanes x 4 packed fp8 = 64: the rv the paper uses.
        assert PCUConfig(lanes=16).values_per_cycle(8) == 64
        assert PCUConfig(lanes=16).values_per_cycle(16) == 32
        assert PCUConfig(lanes=16).values_per_cycle(32) == 16

    def test_paper_timing_law_8bit(self):
        # "a PCU is able to perform all map-reduce that accumulates
        # 4*LANE 8-bit values using 4 stages ... completed in
        # 2 + log2(LANE) + 1 cycles."
        pcu = PCUConfig(lanes=16, stages=4)
        t = pcu.map_reduce_timing(8)
        assert t.stages_used == 4
        assert t.depth_cycles == 2 + 4 + 1
        assert t.elements_per_cycle == 64
        assert t.initiation_interval == 1

    @given(lanes=st.sampled_from([2, 4, 8, 16, 32]))
    @settings(max_examples=10, deadline=None)
    def test_timing_law_scales_with_lanes(self, lanes):
        import math

        pcu = PCUConfig(lanes=lanes, stages=4)
        t = pcu.map_reduce_timing(8)
        assert t.depth_cycles == 2 + int(math.log2(lanes)) + 1

    def test_unfused_needs_more_stages(self):
        fused = PCUConfig(stages=4, fused_low_precision=True, folded_reduction=True)
        assert fused.map_reduce_timing(8).stages_used == 4
        unfused = PCUConfig(stages=12, fused_low_precision=False, folded_reduction=False)
        # 5 map stages + log2(16)+1 tree stages
        assert unfused.map_reduce_timing(8).stages_used == 10

    def test_unfused_does_not_fit_four_stages(self):
        pcu = PCUConfig(stages=4, fused_low_precision=False, folded_reduction=False)
        with pytest.raises(ConfigError):
            pcu.map_reduce_timing(8)

    def test_folded_tree_single_stage(self):
        folded = PCUConfig(folded_reduction=True)
        unfolded = PCUConfig(stages=8, folded_reduction=False)
        assert folded.reduction_stages_used() == 1
        assert unfolded.reduction_stages_used() == 5  # log2(16) + 1

    def test_folding_preserves_latency(self):
        # Figure 6c: folding changes stage usage, not cycle count.
        folded = PCUConfig(folded_reduction=True)
        unfolded = PCUConfig(stages=8, folded_reduction=False)
        assert folded.reduction_cycles() == unfolded.reduction_cycles() == 5

    def test_folding_improves_fu_utilization(self):
        folded = PCUConfig(folded_reduction=True)
        unfolded = PCUConfig(stages=8, folded_reduction=False)
        assert folded.reduction_fu_utilization() > unfolded.reduction_fu_utilization()
        assert folded.reduction_fu_utilization() == 1.0

    def test_full_precision_timing(self):
        pcu = PCUConfig(lanes=16, stages=4)
        t = pcu.map_reduce_timing(32)
        assert t.elements_per_cycle == 16
        assert t.depth_cycles == 1 + 5


class TestPMUConfig:
    def test_defaults_match_table3(self):
        pmu = PMUConfig()
        assert pmu.capacity_bytes == 84 * 1024
        assert pmu.banks == 16

    def test_validation(self):
        with pytest.raises(ConfigError):
            PMUConfig(capacity_bytes=0)
        with pytest.raises(ConfigError):
            PMUConfig(banks=3)
        with pytest.raises(ConfigError):
            PMUConfig(word_bytes=3)
        with pytest.raises(ConfigError):
            PMUConfig(buffering=0)

    def test_bandwidth(self):
        pmu = PMUConfig(banks=16, word_bytes=4)
        assert pmu.bytes_per_cycle == 64
        assert pmu.words_per_cycle() == 16

    def test_one_pmu_feeds_one_dot_pcu(self):
        # A dot PCU consumes 64 fp8 weights/cycle = 64 B/cycle: exactly
        # one PMU's bandwidth — the paper's 2:1 PMU:PCU rationale.
        pmu = PMUConfig()
        from repro.plasticine.pcu import PCUConfig

        assert pmu.bytes_per_cycle == PCUConfig().values_per_cycle(8) * 1

    def test_fits(self):
        pmu = PMUConfig(capacity_bytes=1024, buffering=2)
        assert pmu.fits(1024)
        assert not pmu.fits(1025)
        assert pmu.fits(512, buffered=True)
        assert not pmu.fits(513, buffered=True)
        with pytest.raises(ConfigError):
            pmu.fits(-1)

    def test_banking_plan(self):
        pmu = PMUConfig(banks=16, word_bytes=4)
        # 64 packed fp8 elements = 16 words = all 16 banks.
        plan = pmu.plan_banking(access_par=64, element_bytes=1)
        assert plan.banks_used == 16
        assert plan.conflict_free

    def test_banking_overflow(self):
        pmu = PMUConfig(banks=16, word_bytes=4)
        with pytest.raises(ResourceError):
            pmu.plan_banking(access_par=65, element_bytes=4)

    @given(par=st.integers(1, 64), ebytes=st.sampled_from([1, 2, 4]))
    @settings(max_examples=50, deadline=None)
    def test_banking_never_exceeds_banks(self, par, ebytes):
        pmu = PMUConfig(banks=16, word_bytes=4)
        try:
            plan = pmu.plan_banking(par, ebytes)
        except ResourceError:
            assert par * ebytes > 16 * 4
        else:
            assert plan.banks_used <= 16
