"""serve_parallel: shard parity, pool independence, deterministic seeding.

The load-bearing theorem: a round-robin fleet assigns arrival *i* to
replica ``i % K`` and replicas never interact after dispatch, so serving
shard *i* (every K-th arrival) on its own single-replica event loop
reproduces the fleet's per-replica timelines bit for bit.  These tests
pin that exactly — counters, per-replica counts, and histogram
quantiles — including the K=1 degenerate case against
``serve_stream(mode="summary")``, the ``shards × replicas ≡ K·R fleet``
generalization, and a ~100k-request acceptance stream.

Worker scheduling must be invisible: the same seed and shard count give
the identical merged summary for any pool size (workers=1 serial,
workers=2/4 forked), because results merge in shard order regardless of
which process finished first.
"""

import math
from functools import partial

import pytest

from repro.errors import ServingError
from repro.serving import (
    Autoscaler,
    Fleet,
    ServingEngine,
    mix,
    poisson_arrivals,
    serve_parallel,
    shard_of,
    shard_seed,
    split_requests,
    uniform_arrivals,
)
from repro.serving.request import ServeRequest
from repro.workloads.deepbench import task

T = task("lstm", 512, 25)
GRU = task("gru", 512, 25)

EXACT_ATTRS = (
    "n_requests",
    "slo_attainment",
    "mean_batch_size",
    "max_batch_size",
    "padding_waste_frac",
    "min_sojourn_ms",
    "max_sojourn_ms",
    "p50_ms",
    "p99_ms",
)


def make_stream(n=2000, rate=4000.0, seed=11, **kw):
    return partial(
        poisson_arrivals, T, rate_per_s=rate, n_requests=n, seed=seed,
        materialize=False, **kw,
    )


def two_tenant_stream(n=1200, rate=3000.0, seed=5):
    def factory():
        return mix(
            poisson_arrivals(T, rate_per_s=rate / 2, n_requests=n // 2,
                             seed=seed, tenant="asr", materialize=False),
            poisson_arrivals(GRU, rate_per_s=rate / 2, n_requests=n // 2,
                             seed=seed + 1, tenant="tts", materialize=False),
            presorted=True,
        )

    return factory


def assert_same_summary(a, b, *, bit_exact_floats=False):
    for attr in EXACT_ATTRS:
        assert getattr(a, attr) == getattr(b, attr), attr
    for attr in ("mean_ms", "mean_queue_delay_ms", "throughput_rps"):
        if bit_exact_floats:
            assert getattr(a, attr) == getattr(b, attr), attr
        else:
            assert math.isclose(
                getattr(a, attr), getattr(b, attr), rel_tol=1e-9
            ), attr


class TestReplicaShardParity:
    def test_k1_degenerates_to_serve_stream(self):
        make = make_stream(n=500)
        single = ServingEngine("gpu").serve_stream(
            make(), slo_ms=5.0, mode="summary", presorted=True
        )
        par = serve_parallel(make, "gpu", shards=1, slo_ms=5.0)
        assert_same_summary(par, single, bit_exact_floats=True)
        assert par.per_replica_counts == single.per_replica_counts

    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_matches_round_robin_fleet(self, shards):
        make = make_stream()
        fleet = Fleet("gpu", replicas=shards, policy="round-robin").serve_stream(
            make(), slo_ms=5.0, mode="summary", presorted=True
        )
        par = serve_parallel(make, "gpu", shards=shards, workers=1, slo_ms=5.0)
        assert_same_summary(par, fleet)
        assert par.per_replica_counts == fleet.per_replica_counts
        assert par.n_replicas == shards

    def test_shards_times_replicas_is_kr_fleet(self):
        make = make_stream(n=1600)
        fleet = Fleet("gpu", replicas=6, policy="round-robin").serve_stream(
            make(), slo_ms=5.0, mode="summary", presorted=True
        )
        par = serve_parallel(
            make, "gpu", shards=2, replicas=3, policy="round-robin",
            workers=1, slo_ms=5.0,
        )
        assert_same_summary(par, fleet)
        assert par.n_replicas == 6
        assert sorted(par.per_replica_counts) == sorted(fleet.per_replica_counts)

    def test_with_scheduler_and_batcher(self):
        make = make_stream(n=1500, rate=8000.0)
        fleet = Fleet("gpu", replicas=2, policy="round-robin").serve_stream(
            make(), slo_ms=5.0, scheduler="edf", batcher="size-cap",
            max_batch=4, mode="summary", presorted=True,
        )
        par = serve_parallel(
            make, "gpu", shards=2, workers=1, slo_ms=5.0,
            scheduler="edf", batcher="size-cap", max_batch=4,
        )
        assert_same_summary(par, fleet)
        assert par.mean_batch_size > 1.0

    def test_acceptance_100k_stream_parity(self):
        """ISSUE acceptance: >=100k seeded requests, exact counter parity."""
        make = make_stream(n=100_000, rate=20_000.0, seed=2026)
        fleet = Fleet("gpu", replicas=4, policy="round-robin").serve_stream(
            make(), slo_ms=5.0, mode="summary", presorted=True
        )
        par = serve_parallel(make, "gpu", shards=4, workers=2, slo_ms=5.0)
        assert par.n_requests == 100_000
        assert_same_summary(par, fleet)
        assert par.per_replica_counts == fleet.per_replica_counts


class TestPoolIndependence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_count_is_invisible(self, workers):
        make = make_stream(n=800, seed=21)
        reference = serve_parallel(make, "gpu", shards=4, workers=1, slo_ms=5.0)
        got = serve_parallel(make, "gpu", shards=4, workers=workers, slo_ms=5.0)
        # Shard order fixes the merge order, so even float sums are
        # bit-identical across pool sizes.
        assert_same_summary(got, reference, bit_exact_floats=True)
        assert got.per_replica_counts == reference.per_replica_counts

    def test_same_seed_same_counters_across_runs(self):
        make = make_stream(n=600, seed=33)
        a = serve_parallel(make, "gpu", shards=3, workers=2, slo_ms=5.0)
        b = serve_parallel(make, "gpu", shards=3, workers=2, slo_ms=5.0)
        assert_same_summary(a, b, bit_exact_floats=True)


class TestShardModes:
    def test_tenant_mode_conserves_and_isolates(self):
        factory = two_tenant_stream()
        # With 4 shards the two tenants land on distinct shards
        # (crc32("asr") % 4 == 0, crc32("tts") % 4 == 2); isolation then
        # makes each tenant's slice equal its solo run.
        merged = serve_parallel(
            factory, "gpu", shards=4, workers=1, shard_by="tenant", slo_ms=5.0
        )
        assert merged.n_requests == 1200
        # Each tenant lands whole on one shard, so its slice equals an
        # independent single-replica run of that tenant's sub-stream.
        for tenant in ("asr", "tts"):
            def tenant_only(t=tenant):
                return (r for r in factory() if r.tenant == t)

            solo = ServingEngine("gpu").serve_stream(
                tenant_only(), slo_ms=5.0, mode="summary", presorted=True
            )
            sub = merged.per_tenant()[tenant]
            assert sub.n_requests == solo.n_requests
            assert sub.p99_ms == solo.p99_ms
            assert sub.slo_attainment == solo.slo_attainment

    def test_more_shards_than_tenants_tolerates_empty_shard(self):
        merged = serve_parallel(
            two_tenant_stream(), "gpu", shards=5, workers=1,
            shard_by="tenant", slo_ms=5.0,
        )
        assert merged.n_requests == 1200

    def test_hash_mode_conserves(self):
        make = make_stream(n=900, seed=40)
        merged = serve_parallel(
            make, "gpu", shards=3, workers=1, shard_by="hash", slo_ms=5.0
        )
        assert merged.n_requests == 900

    def test_shard_of_partitions_every_request(self):
        reqs = list(make_stream(n=200)())
        for mode in ("replica", "tenant", "hash"):
            assignments = [shard_of(r, i, 4, mode) for i, r in enumerate(reqs)]
            assert all(0 <= s < 4 for s in assignments)
        with pytest.raises(ServingError, match="shard mode"):
            shard_of(reqs[0], 0, 4, "bogus")

    def test_split_requests_partition(self):
        reqs = list(make_stream(n=100)())
        parts = split_requests(reqs, 3, shard_by="hash")
        assert sum(len(p) for p in parts) == 100
        ids = sorted(r.request_id for p in parts for r in p)
        assert ids == sorted(r.request_id for r in reqs)
        with pytest.raises(ServingError, match="generate"):
            split_requests(reqs, 2, shard_by="generate")

    def test_materialized_sequence_input(self):
        reqs = list(make_stream(n=400)())
        fleet = Fleet("gpu", replicas=2, policy="round-robin").serve_stream(
            reqs, slo_ms=5.0, mode="summary"
        )
        par = serve_parallel(reqs, "gpu", shards=2, workers=2, slo_ms=5.0)
        assert_same_summary(par, fleet)


def _generated_shard(shard: int, shards: int, seed: int):
    """Module-level generate-mode factory (pool workers must pickle it)."""
    return poisson_arrivals(
        T, rate_per_s=1000.0, n_requests=300, seed=seed,
        tenant=f"cell{shard}", materialize=False,
    )


class TestGenerateMode:
    def test_per_shard_generation(self):
        merged = serve_parallel(
            _generated_shard, "gpu", shards=3, workers=1,
            shard_by="generate", slo_ms=5.0, seed=77,
        )
        assert merged.n_requests == 900
        assert set(merged.tenants) == {"cell0", "cell1", "cell2"}

    def test_generate_deterministic_across_pools(self):
        one = serve_parallel(
            _generated_shard, "gpu", shards=3, workers=1,
            shard_by="generate", slo_ms=5.0, seed=77,
        )
        two = serve_parallel(
            _generated_shard, "gpu", shards=3, workers=2,
            shard_by="generate", slo_ms=5.0, seed=77,
        )
        assert_same_summary(one, two, bit_exact_floats=True)

    def test_generate_requires_factory(self):
        reqs = list(make_stream(n=10)())
        with pytest.raises(ServingError, match="generate"):
            serve_parallel(reqs, "gpu", shards=2, shard_by="generate")


class TestShardSeed:
    def test_deterministic_and_distinct(self):
        seeds = [shard_seed(123, s) for s in range(64)]
        assert seeds == [shard_seed(123, s) for s in range(64)]
        assert len(set(seeds)) == 64

    def test_base_seed_changes_everything(self):
        assert shard_seed(1, 0) != shard_seed(2, 0)

    def test_negative_shard_rejected(self):
        with pytest.raises(ServingError):
            shard_seed(1, -1)


class TestValidationAndEdges:
    def test_bad_arguments(self):
        make = make_stream(n=10)
        with pytest.raises(ServingError, match="shards"):
            serve_parallel(make, "gpu", shards=0)
        with pytest.raises(ServingError, match="workers"):
            serve_parallel(make, "gpu", shards=2, workers=0)
        with pytest.raises(ServingError, match="replicas"):
            serve_parallel(make, "gpu", shards=2, replicas=0)
        with pytest.raises(ServingError, match="shard mode"):
            serve_parallel(make, "gpu", shards=2, shard_by="bogus")

    def test_empty_stream_rejected(self):
        with pytest.raises(ServingError, match="at least one request"):
            serve_parallel(lambda: iter(()), "gpu", shards=2, workers=1)

    def test_autoscaler_per_shard(self):
        make = make_stream(n=1000, rate=20_000.0)
        merged = serve_parallel(
            make, "gpu", shards=2, workers=1, replicas=1,
            autoscaler=Autoscaler(min_replicas=1, max_replicas=3),
            slo_ms=5.0,
        )
        assert merged.n_requests == 1000
        # Each shard scales independently; the merged report carries
        # every shard's scale events in time order.
        times = [e.time_s for e in merged.scale_events]
        assert times == sorted(times)

    def test_request_conservation_across_modes(self):
        make = make_stream(n=700, seed=50)
        for mode in ("replica", "tenant", "hash"):
            merged = serve_parallel(
                make, "gpu", shards=3, workers=1, shard_by=mode, slo_ms=5.0
            )
            assert merged.n_requests == 700
