"""Fleet scheduling: round-robin vs least-loaded across engine replicas."""

import pytest

from repro.errors import ServingError
from repro.serving import (
    Fleet,
    ServingEngine,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.workloads.deepbench import task

T = task("lstm", 512, 25)


class TestConstruction:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ServingError, match="unknown scheduling policy"):
            Fleet("gpu", replicas=2, policy="random")

    def test_zero_replicas_rejected(self):
        with pytest.raises(ServingError, match="at least one replica"):
            Fleet("gpu", replicas=0)

    def test_unknown_platform_propagates(self):
        with pytest.raises(ServingError, match="unknown platform"):
            Fleet("tpu", replicas=2)

    def test_platform_instance_with_options_rejected(self):
        from repro.serving import get_platform

        with pytest.raises(ServingError, match="by name"):
            Fleet(get_platform("gpu"), replicas=2, bits=16)


class TestSingleReplica:
    def test_matches_engine_stream(self):
        arrivals = poisson_arrivals(T, rate_per_s=1000.0, n_requests=200, seed=3)
        engine_report = ServingEngine("gpu").serve_stream(arrivals, slo_ms=5.0)
        fleet_report = Fleet("gpu", replicas=1).serve_stream(arrivals, slo_ms=5.0)
        assert fleet_report.p50_ms == engine_report.p50_ms
        assert fleet_report.p99_ms == engine_report.p99_ms
        for e, f in zip(engine_report.responses, fleet_report.responses):
            assert e.sojourn_s == f.sojourn_s


class TestRoundRobin:
    def test_assignment_is_balanced(self):
        fleet = Fleet("brainwave", replicas=3, policy="round-robin")
        report = fleet.serve_stream(
            uniform_arrivals(T, rate_per_s=1000.0, n_requests=90)
        )
        assert report.policy == "round-robin"
        assert report.per_replica_counts == (30, 30, 30)

    def test_assignment_order(self):
        fleet = Fleet("cpu", replicas=2, policy="round-robin")
        report = fleet.serve_stream(
            uniform_arrivals(T, rate_per_s=100.0, n_requests=4)
        )
        assert report.assignments == (0, 1, 0, 1)


class TestLeastLoaded:
    def test_not_worse_than_round_robin(self):
        # On a bursty Poisson stream past one replica's capacity,
        # join-the-shortest-queue dominates load-oblivious round-robin.
        arrivals = poisson_arrivals(T, rate_per_s=2500.0, n_requests=400, seed=11)
        rr = Fleet("gpu", replicas=2, policy="round-robin").serve_stream(arrivals)
        ll = Fleet("gpu", replicas=2, policy="least-loaded").serve_stream(arrivals)
        assert ll.p99_ms <= rr.p99_ms
        assert ll.mean_ms <= rr.mean_ms

    def test_more_replicas_shrink_the_tail(self):
        arrivals = poisson_arrivals(T, rate_per_s=2500.0, n_requests=400, seed=5)
        p99s = [
            Fleet("gpu", replicas=n, policy="least-loaded")
            .serve_stream(arrivals)
            .p99_ms
            for n in (1, 2, 4)
        ]
        assert p99s[0] >= p99s[1] >= p99s[2]
        assert p99s[0] > p99s[2]  # the scale-out genuinely helps

    def test_idle_fleet_serves_at_service_time(self):
        # At a trickle rate every request finds an idle replica: sojourn
        # equals the platform service time, no queueing anywhere.
        fleet = Fleet("gpu", replicas=2, policy="least-loaded")
        report = fleet.serve_stream(
            uniform_arrivals(T, rate_per_s=10.0, n_requests=20)
        )
        service = report.responses[0].service_s
        for resp in report.responses:
            assert resp.queue_delay_s == 0.0
            assert resp.sojourn_s == pytest.approx(service)


class TestPerReplicaSchedulers:
    def test_fleet_accepts_scheduler_name(self):
        arrivals = poisson_arrivals(T, rate_per_s=2500.0, n_requests=100, seed=2)
        report = Fleet("gpu", replicas=2).serve_stream(arrivals, scheduler="edf")
        assert report.scheduler == "edf"
        assert report.n_requests == 100

    def test_fleet_rejects_shared_scheduler_instance(self):
        from repro.serving import FIFOScheduler

        with pytest.raises(ServingError, match="per replica"):
            Fleet("gpu", replicas=2).serve_stream(
                uniform_arrivals(T, rate_per_s=100.0, n_requests=4),
                scheduler=FIFOScheduler(),
            )

    def test_fleet_accepts_scheduler_factory(self):
        from repro.serving import SJFScheduler

        report = Fleet("gpu", replicas=2).serve_stream(
            uniform_arrivals(T, rate_per_s=100.0, n_requests=4),
            scheduler=SJFScheduler,
        )
        assert report.scheduler == "sjf"


class TestSharedCompileCache:
    def test_fleet_compiles_each_task_once(self):
        fleet = Fleet("plasticine", replicas=3, policy="round-robin")
        fleet.serve_stream(uniform_arrivals(T, rate_per_s=1000.0, n_requests=9))
        total_misses = sum(e.cache_stats.misses for e in fleet.engines)
        total_hits = sum(e.cache_stats.hits for e in fleet.engines)
        assert total_misses == 1  # compiled once for the whole fleet
        assert total_hits == 8
        # All replicas serve the same compiled design object.
        prepared = {id(e.prepare(T)) for e in fleet.engines}
        assert len(prepared) == 1

    def test_idle_replicas_still_count_toward_capacity(self):
        fleet = Fleet("gpu", replicas=4, policy="least-loaded")
        # Two spaced requests only ever touch replica 0, but the report
        # must still describe a 4-replica fleet.
        report = fleet.serve_stream(
            uniform_arrivals(T, rate_per_s=10.0, n_requests=2)
        )
        assert report.n_replicas == 4
        assert len(report.per_replica_counts) == 4
        assert sum(report.per_replica_counts) == 2
        single = ServingEngine("gpu").serve_stream(
            uniform_arrivals(T, rate_per_s=10.0, n_requests=2)
        )
        assert report.max_rate_per_s == pytest.approx(4 * single.max_rate_per_s)

    def test_fleet_max_rate_scales_with_replicas(self):
        single = ServingEngine("gpu").serve_stream(
            uniform_arrivals(T, rate_per_s=100.0, n_requests=20)
        )
        double = Fleet("gpu", replicas=2).serve_stream(
            uniform_arrivals(T, rate_per_s=100.0, n_requests=20)
        )
        assert double.max_rate_per_s == pytest.approx(2 * single.max_rate_per_s)
        # A rate one replica cannot sustain but two can is not saturated.
        rate = single.max_rate_per_s * 1.5
        hot = Fleet("gpu", replicas=2).serve_stream(
            uniform_arrivals(T, rate_per_s=rate, n_requests=50)
        )
        assert not hot.saturated

    def test_utilization_sums_sensibly(self):
        fleet = Fleet("brainwave", replicas=2, policy="least-loaded")
        report = fleet.serve_stream(
            uniform_arrivals(T, rate_per_s=5000.0, n_requests=100)
        )
        utils = report.replica_utilization()
        assert len(utils) == 2
        assert all(0.0 <= u <= 1.0 for u in utils)
