"""Property-based tests for the discrete-event loop.

Hand-rolled seeded generators (no hypothesis dependency on the hot
path): each seed builds a random multi-tenant workload — bursty gaps,
mixed tasks, random priorities and SLOs — and the properties must hold
for every scheduler on both the single engine and the fleet:

* conservation — every arrival is served exactly once;
* sane timelines — non-negative queue delays, service starts at or
  after arrival, sojourn = queue + service, and no replica ever serves
  two requests at once;
* FIFO preserves arrival order;
* EDF never has a higher SLO-miss rate than FIFO on deadline-sorted
  workloads;
* per-replica assignment counts sum to the stream total.
"""

import random

import pytest

from repro.serving import Fleet, ServeRequest, ServingEngine, available_schedulers
from repro.workloads.deepbench import task

TASK_POOL = (
    task("lstm", 512, 25),
    task("gru", 512, 1),
    task("lstm", 256, 150),
)

SEEDS = tuple(range(6))


def random_workload(seed: int, n: int = 60) -> tuple[ServeRequest, ...]:
    """A seeded random multi-tenant stream with bursty arrival gaps."""
    rng = random.Random(seed)
    t = 0.0
    requests = []
    for i in range(n):
        # Bursty gaps: mostly tight, occasionally a long lull.
        t += rng.expovariate(2000.0) if rng.random() < 0.8 else rng.expovariate(50.0)
        requests.append(
            ServeRequest(
                task=rng.choice(TASK_POOL),
                arrival_s=t,
                request_id=i,
                tenant=rng.choice(("a", "b", "c")),
                priority=rng.randrange(3),
                slo_ms=rng.choice((None, 1.0, 5.0, 25.0)),
            )
        )
    rng.shuffle(requests)  # the loop must not rely on input order
    return tuple(requests)


def _servers():
    yield "engine", lambda: ServingEngine("gpu")
    yield "fleet", lambda: Fleet("gpu", replicas=3, policy="least-loaded")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scheduler", sorted(available_schedulers()))
class TestUniversalProperties:
    def test_conservation_and_timeline(self, seed, scheduler):
        workload = random_workload(seed)
        for kind, build in _servers():
            report = build().serve_stream(
                workload, slo_ms=5.0, scheduler=scheduler
            )
            # Conservation: every arrival served exactly once.
            served_ids = sorted(r.request.request_id for r in report.responses)
            assert served_ids == sorted(r.request_id for r in workload), kind
            by_id = {r.request_id: r for r in workload}
            for resp in report.responses:
                assert resp.request == by_id[resp.request.request_id], kind
                # Timeline sanity per response.
                assert resp.queue_delay_s >= 0.0, kind
                assert resp.start_s >= resp.request.arrival_s, kind
                assert resp.finish_s == resp.start_s + resp.service_s, kind
                assert resp.sojourn_s == pytest.approx(
                    resp.queue_delay_s + resp.service_s
                ), kind

    def test_replicas_serve_one_at_a_time(self, seed, scheduler):
        workload = random_workload(seed)
        fleet = Fleet("gpu", replicas=3, policy="least-loaded")
        report = fleet.serve_stream(workload, scheduler=scheduler)
        spans: dict[int, list] = {}
        for replica, resp in zip(report.assignments, report.responses):
            spans.setdefault(replica, []).append((resp.start_s, resp.finish_s))
        for replica, intervals in spans.items():
            intervals.sort()
            for (_, prev_finish), (start, _) in zip(intervals, intervals[1:]):
                assert start >= prev_finish, f"replica {replica} double-booked"

    def test_per_replica_counts_sum_to_total(self, seed, scheduler):
        workload = random_workload(seed)
        for policy in ("round-robin", "least-loaded"):
            fleet = Fleet("gpu", replicas=4, policy=policy)
            report = fleet.serve_stream(workload, scheduler=scheduler)
            assert sum(report.per_replica_counts) == report.n_requests
            assert len(report.per_replica_counts) == 4


@pytest.mark.parametrize("seed", SEEDS)
class TestFIFOOrder:
    def test_fifo_preserves_arrival_order(self, seed):
        workload = random_workload(seed)
        report = ServingEngine("gpu").serve_stream(workload, scheduler="fifo")
        ordered = sorted(workload, key=lambda r: (r.arrival_s, r.request_id))
        # Responses come back in arrival order, and with FIFO the service
        # starts are monotone in that same order.
        assert [r.request.request_id for r in report.responses] == [
            r.request_id for r in ordered
        ]
        starts = [r.start_s for r in report.responses]
        assert starts == sorted(starts)


def deadline_sorted_workload(seed: int, n: int = 60) -> tuple[ServeRequest, ...]:
    """Random arrivals whose deadlines ascend in arrival order.

    Each request's SLO grows slightly with its position, so
    ``deadline = arrival + slo`` is strictly increasing — on such
    workloads EDF and FIFO agree on the service order, hence EDF can
    never miss more deadlines than FIFO.
    """
    rng = random.Random(seed)
    t = 0.0
    requests = []
    for i in range(n):
        t += rng.expovariate(2000.0) if rng.random() < 0.8 else rng.expovariate(50.0)
        requests.append(
            ServeRequest(
                task=rng.choice(TASK_POOL),
                arrival_s=t,
                request_id=i,
                slo_ms=4.0 + 0.01 * i,
            )
        )
    return tuple(requests)


@pytest.mark.parametrize("seed", SEEDS)
class TestEDFvsFIFO:
    def test_edf_not_worse_on_deadline_sorted_workloads(self, seed):
        workload = deadline_sorted_workload(seed)
        engine = ServingEngine("gpu")
        fifo = engine.serve_stream(workload, scheduler="fifo")
        edf = engine.serve_stream(workload, scheduler="edf")
        assert edf.slo_miss_rate <= fifo.slo_miss_rate
