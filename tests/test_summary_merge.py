"""StreamSummary.merge: identities, disjoint classes, promotion, associativity.

The sharded parallel runner (``repro.serving.parallel``) depends on the
merge being a true monoid over summaries:

* empty summaries are identities (a shard may draw no traffic),
* disjoint tenant/priority/length-band classes union cleanly,
* the exact-reservoir → histogram promotion commutes with merging —
  ``absorb`` promotes at the same :data:`EXACT_SAMPLE_CAP` threshold as
  single-stream accumulation, so the merged summary lands in the
  *identical* samples-vs-histogram state as a single pass over the whole
  stream and quantiles agree exactly, not just within tolerance,
* merging is associative and order-insensitive for every count-derived
  figure (float sums only to reordering), pinned by a seeded fuzz over
  random partitions of one response set.
"""

import math
import random

import pytest

from repro.errors import ServingError
from repro.serving import (
    Fleet,
    ServingEngine,
    StreamSummary,
    ZipfLength,
    mix,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.serving.stats import EXACT_SAMPLE_CAP
from repro.workloads.deepbench import task

T = task("lstm", 512, 25)
GRU = task("gru", 512, 25)

#: Count-derived figures that must merge exactly.
EXACT_ATTRS = (
    "n_requests",
    "slo_attainment",
    "slo_miss_rate",
    "mean_batch_size",
    "max_batch_size",
    "padding_waste_frac",
    "min_sojourn_ms",
    "max_sojourn_ms",
)
#: Float sums: equal only up to summation order.
CLOSE_ATTRS = ("mean_ms", "mean_queue_delay_ms", "mean_service_ms", "throughput_rps")


def _summary_of(responses, slo_ms=5.0, scheduler="fifo", batcher="none"):
    """Fold a response list into a fresh (unfinalized) summary."""
    summary = StreamSummary("gpu", slo_ms=slo_ms, scheduler=scheduler, batcher=batcher)
    for resp in responses:
        summary.observe_served(
            resp.request, resp.result, resp.start_s, resp.finish_s, resp.batch_size
        )
    return summary


def _responses(n=200, seed=3, rate=2000.0, batcher="none"):
    stream = mix(
        poisson_arrivals(
            T, rate_per_s=rate / 2, n_requests=n // 2, seed=seed,
            tenant="asr", priority=1,
        ),
        poisson_arrivals(
            GRU, rate_per_s=rate / 2, n_requests=n - n // 2, seed=seed + 1,
            tenant="tts", slo_ms=8.0,
        ),
    )
    return ServingEngine("gpu").serve_stream(stream, slo_ms=5.0, batcher=batcher,
                                             max_batch=4).responses


def assert_merged_matches(merged, reference):
    for attr in EXACT_ATTRS:
        assert getattr(merged, attr) == getattr(reference, attr), attr
    for attr in CLOSE_ATTRS:
        assert math.isclose(
            getattr(merged, attr), getattr(reference, attr), rel_tol=1e-9
        ), attr
    # Promotion-state equivalence makes even the quantiles exact.
    for q in (0.25, 0.5, 0.9, 0.99):
        assert merged.percentile_ms(q) == reference.percentile_ms(q), q
    assert merged.tenants == reference.tenants
    assert merged.priorities == reference.priorities
    for tenant, sub in reference.per_tenant().items():
        got = merged.per_tenant()[tenant]
        assert got.n_requests == sub.n_requests
        assert got.percentile_ms(0.99) == sub.percentile_ms(0.99)


class TestMergeIdentity:
    def test_empty_is_identity(self):
        responses = _responses(60)
        full = _summary_of(responses)
        empty = StreamSummary("gpu", slo_ms=5.0)
        for merged in (full.merge(empty), empty.merge(full)):
            assert_merged_matches(merged, _summary_of(responses))
        assert empty.is_empty and not full.is_empty

    def test_empty_merge_empty_is_empty(self):
        a = StreamSummary("gpu", slo_ms=5.0)
        b = StreamSummary("gpu", slo_ms=5.0)
        assert a.merge(b).is_empty

    def test_merge_does_not_mutate_inputs(self):
        responses = _responses(80)
        left = _summary_of(responses[:40])
        right = _summary_of(responses[40:])
        before = (left.n_requests, right.n_requests, left.percentile_ms(0.9))
        merged = left.merge(right)
        assert merged.n_requests == 80
        assert (left.n_requests, right.n_requests, left.percentile_ms(0.9)) == before

    def test_single_merge_matches_self(self):
        responses = _responses(50)
        assert_merged_matches(
            _summary_of(responses).merge(), _summary_of(responses)
        )


class TestDisjointClasses:
    def test_disjoint_tenants_union(self):
        responses = _responses(120)
        by_tenant = {}
        for resp in responses:
            by_tenant.setdefault(resp.request.tenant, []).append(resp)
        parts = [_summary_of(rs) for rs in by_tenant.values()]
        merged = parts[0].merge(*parts[1:])
        assert_merged_matches(merged, _summary_of(responses))
        assert set(merged.tenants) == set(by_tenant)

    def test_disjoint_length_bands(self):
        stream = poisson_arrivals(
            T, rate_per_s=2000, n_requests=150, seed=9,
            lengths=ZipfLength(10, 200),
        )
        responses = ServingEngine("gpu").serve_stream(stream, slo_ms=5.0).responses
        short = [r for r in responses if r.request.task.timesteps <= 40]
        long = [r for r in responses if r.request.task.timesteps > 40]
        assert short and long
        merged = _summary_of(short).merge(_summary_of(long))
        reference = _summary_of(responses)
        assert_merged_matches(merged, reference)
        assert merged.per_length_band().keys() == reference.per_length_band().keys()


class TestPromotionAcrossMerge:
    def test_parts_exact_whole_promoted(self):
        """Each part under the reservoir cap, the union above it: the
        merge must promote and land on the single-pass histogram."""
        n = EXACT_SAMPLE_CAP + 20
        stream = poisson_arrivals(T, rate_per_s=3000, n_requests=n, seed=7)
        responses = ServingEngine("gpu").serve_stream(stream, slo_ms=5.0).responses
        half = n // 2
        assert half <= EXACT_SAMPLE_CAP < n
        merged = _summary_of(responses[:half]).merge(_summary_of(responses[half:]))
        assert_merged_matches(merged, _summary_of(responses))

    def test_promoted_absorbs_exact_and_vice_versa(self):
        big = EXACT_SAMPLE_CAP * 2
        stream = poisson_arrivals(T, rate_per_s=3000, n_requests=big + 10, seed=8)
        responses = ServingEngine("gpu").serve_stream(stream, slo_ms=5.0).responses
        promoted = _summary_of(responses[:big])       # over the cap: histogram
        exact = _summary_of(responses[big:])          # under the cap: reservoir
        reference = _summary_of(responses)
        assert_merged_matches(promoted.merge(exact), reference)
        assert_merged_matches(exact.merge(promoted), reference)

    def test_merge_boundary_exactly_at_cap(self):
        n = EXACT_SAMPLE_CAP
        stream = poisson_arrivals(T, rate_per_s=3000, n_requests=n, seed=12)
        responses = ServingEngine("gpu").serve_stream(stream, slo_ms=5.0).responses
        merged = _summary_of(responses[: n // 2]).merge(_summary_of(responses[n // 2:]))
        reference = _summary_of(responses)
        # Exactly at the cap the reference is still exact; the merged
        # state must be too (promotion triggers strictly above the cap).
        assert_merged_matches(merged, reference)


class TestAssociativityFuzz:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_partitions_merge_to_one_answer(self, seed):
        rng = random.Random(seed)
        responses = _responses(
            n=rng.randrange(30, 260), seed=seed,
            batcher=rng.choice(["none", "size-cap"]),
        )
        reference = _summary_of(responses)
        k = rng.randrange(2, 7)
        parts = [[] for _ in range(k)]
        for resp in responses:
            parts[rng.randrange(k)].append(resp)
        summaries = [_summary_of(p) for p in parts]

        flat = summaries[0].merge(*summaries[1:])
        assert_merged_matches(flat, reference)

        shuffled = summaries[:]
        rng.shuffle(shuffled)
        assert_merged_matches(shuffled[0].merge(*shuffled[1:]), reference)

        # Left-fold pairwise grouping: ((a+b)+c)+d ...
        folded = summaries[0]
        for part in summaries[1:]:
            folded = folded.merge(part)
        assert_merged_matches(folded, reference)

        # A nested grouping: (first half) + (second half).
        mid = max(1, k // 2)
        left = summaries[0].merge(*summaries[1:mid])
        right = summaries[mid].merge(*summaries[mid + 1:])
        assert_merged_matches(left.merge(right), reference)


class TestMergeValidation:
    def test_mismatched_config_rejected(self):
        base = StreamSummary("gpu", slo_ms=5.0)
        for other in (
            StreamSummary("cpu", slo_ms=5.0),
            StreamSummary("gpu", slo_ms=9.0),
            StreamSummary("gpu", slo_ms=5.0, scheduler="edf"),
            StreamSummary("gpu", slo_ms=5.0, batcher="size-cap"),
            StreamSummary("gpu", slo_ms=5.0, band_base=4.0),
        ):
            with pytest.raises(ServingError, match="merge"):
                base.merge(other)

    def test_event_loop_summaries_merge(self):
        """End to end: two independent serve_stream summaries combine."""
        run = lambda start, n, seed: ServingEngine("gpu").serve_stream(
            poisson_arrivals(T, rate_per_s=1500, n_requests=n, seed=seed,
                             start_s=start),
            slo_ms=5.0, mode="summary",
        )
        a, b = run(0.0, 40, 1), run(10.0, 30, 2)
        merged = a.merge(b)
        assert merged.n_requests == 70
        assert merged.n_replicas == 2
        assert len(merged.per_replica_counts) == 2

    def test_fleet_summaries_concatenate_replica_counts(self):
        run = lambda seed: Fleet("gpu", replicas=2).serve_stream(
            uniform_arrivals(T, rate_per_s=500, n_requests=20, seed=seed),
            slo_ms=5.0, mode="summary",
        )
        merged = run(0).merge(run(1))
        assert merged.n_replicas == 4
        assert sum(merged.per_replica_counts) == 40
