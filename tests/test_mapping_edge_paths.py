"""Edge-path coverage for the mapper: placer overflow, structure
rejection messages, and centroid rounding determinism."""

import numpy as np
import pytest

from repro.dse.search import build_task_program
from repro.errors import MappingError
from repro.mapping.mapper import (
    _centroid,
    _find_structure,
    _map_rnn_monolith,
    _overflow_note,
    _Placer,
    map_rnn_program,
)
from repro.plasticine.chip import PlasticineConfig
from repro.plasticine.network import GridLayout
from repro.plasticine.pcu import PCUConfig
from repro.plasticine.pmu import PMUConfig
from repro.rnn.lstm_loop import LoopParams
from repro.spatial import Foreach, Program, Range, Reduce, Sequential
from repro.workloads.deepbench import RNNTask


def tiny_chip(rows=6, cols=6) -> PlasticineConfig:
    return PlasticineConfig(
        name="plasticine-tiny",
        layout=GridLayout.rnn_variant(rows, cols),
        pcu=PCUConfig(lanes=16, stages=4, fused_low_precision=True,
                      folded_reduction=True),
        pmu=PMUConfig(capacity_bytes=84 * 1024, banks=16),
        reserved_pcus=1,
    )


class TestPlacerOverflow:
    def test_take_beyond_pool_synthesizes_edge_coords(self):
        chip = tiny_chip()
        placer = _Placer(chip)
        n_pcus = len(placer.free_pcus)
        taken = placer.take_pcus(n_pcus + 3, (0, 0))
        assert len(taken) == n_pcus + 3
        assert placer.overflow_pcus == 3
        assert taken[n_pcus:] == [placer.edge_coord] * 3
        assert placer.free_pcus == []

    def test_overflow_accumulates_across_takes(self):
        placer = _Placer(tiny_chip())
        placer.take_pmus(len(placer.free_pmus), (0, 0))
        placer.take_pmus(2, (0, 0))
        placer.take_pmus(1, (0, 0))
        assert placer.overflow_pmus == 3
        assert placer.overflow_pcus == 0

    def test_no_overflow_within_capacity(self):
        placer = _Placer(tiny_chip())
        placer.take_pcus(2, (0, 0))
        placer.take_pmus(2, (0, 0))
        assert (placer.overflow_pcus, placer.overflow_pmus) == (0, 0)
        assert _overflow_note(placer) is None

    def test_release_filters_synthesized_edge_coords(self):
        placer = _Placer(tiny_chip())
        n = len(placer.free_pcus)
        taken = placer.take_pcus(n + 2, (0, 0))
        placer.release_pcus(taken)
        assert len(placer.free_pcus) == n
        assert placer.edge_coord not in placer.free_pcus

    def test_overflow_is_flagged_in_the_resource_report(self):
        # A real design far too big for the tiny chip must still map,
        # with the overflow loudly noted — not silently placed.
        prog = build_task_program(
            RNNTask("lstm", 512, 2), LoopParams(hu=4, ru=4, rv=64)
        )
        design = map_rnn_program(prog, tiny_chip())
        notes = [n for n in design.resources.notes if "placement overflow" in n]
        assert len(notes) == 1
        assert "PCU" in notes[0] and "PMU" in notes[0]
        assert not design.resources.fits_compute
        # Parity: the monolith reports the identical note.
        legacy = _map_rnn_monolith(prog, tiny_chip())
        assert legacy.resources.notes == design.resources.notes

    def test_fit_on_big_chip_has_no_overflow_note(self):
        prog = build_task_program(
            RNNTask("lstm", 512, 2), LoopParams(hu=4, ru=4, rv=64)
        )
        design = map_rnn_program(prog)
        assert not any("placement overflow" in n for n in design.resources.notes)


def _structure_error(prog) -> str:
    with pytest.raises(MappingError) as err:
        _find_structure(prog.trace())
    # The pipeline front end must surface the same message.
    with pytest.raises(MappingError) as err2:
        map_rnn_program(prog)
    assert str(err2.value) == str(err.value)
    return str(err.value)


class TestStructureRejections:
    def test_zero_sequential_loops(self):
        prog = Program("no_seq")
        mem = prog.sram("state", (8,))

        @prog.main
        def main():
            Foreach(Range(8), lambda i: mem.write(0.0, i), label="only")

        msg = _structure_error(prog)
        assert "expected exactly one Sequential time-step loop, found 0" == msg

    def test_two_sequential_loops(self):
        prog = Program("two_seq")
        mem = prog.sram("state", (8,))

        @prog.main
        def main():
            Sequential.Foreach(Range(2), lambda t: mem.write(0.0, t), label="a")
            Sequential.Foreach(Range(2), lambda t: mem.write(0.0, t), label="b")

        msg = _structure_error(prog)
        assert "expected exactly one Sequential time-step loop, found 2" == msg

    def test_reduce_less_cell(self):
        # A Sequential step whose inner Foreach has no Reduce children:
        # nothing qualifies as the cell loop.
        prog = Program("no_reduce")
        mem = prog.sram("state", (8,))

        @prog.main
        def main():
            def step(t):
                Foreach(Range(8, par=2), lambda i: mem.write(0.0, i), label="cell")

            Sequential.Foreach(Range(2), step, label="steps")

        msg = _structure_error(prog)
        assert (
            "expected exactly one cell Foreach containing Reduce loops, found 0"
            == msg
        )

    def test_two_reduce_bearing_foreach_loops(self):
        prog = Program("two_cells")
        mem = prog.sram("state", (8,))

        @prog.main
        def main():
            def cell(label):
                def body(i):
                    mem.write(
                        Reduce(Range(4, par=2), lambda r: mem[r] * 1.0, label="dot"),
                        i,
                    )

                Foreach(Range(8, par=2), body, label=label)

            def step(t):
                cell("cell_a")
                cell("cell_b")

            Sequential.Foreach(Range(2), step, label="steps")

        msg = _structure_error(prog)
        assert (
            "expected exactly one cell Foreach containing Reduce loops, found 2"
            == msg
        )


class TestCentroidRounding:
    def test_banker_rounding_ties(self):
        # Python's round() is banker's rounding: .5 goes to the even
        # neighbour.  The placement must inherit that, deterministically.
        assert _centroid([(0, 0), (1, 1)]) == (0, 0)  # 0.5 -> 0
        assert _centroid([(1, 1), (2, 2)]) == (2, 2)  # 1.5 -> 2
        assert _centroid([(2, 2), (3, 3)]) == (2, 2)  # 2.5 -> 2 (even!)
        assert _centroid([(3, 3), (4, 4)]) == (4, 4)  # 3.5 -> 4

    def test_mixed_axis_ties(self):
        assert _centroid([(0, 2), (1, 3)]) == (0, 2)  # (0.5, 2.5)
        assert _centroid([(1, 0), (2, 5)]) == (2, 2)  # (1.5, 2.5)

    def test_exact_means_no_rounding(self):
        assert _centroid([(2, 4)]) == (2, 4)
        assert _centroid([(0, 0), (2, 2), (4, 4)]) == (2, 2)

    def test_determinism_across_calls_and_order(self):
        coords = [(0, 1), (3, 2), (5, 9), (2, 2)]
        first = _centroid(coords)
        assert all(_centroid(coords) == first for _ in range(50))
        # The centroid is a sum — permutation-invariant by construction.
        assert _centroid(list(reversed(coords))) == first

    def test_returns_plain_ints(self):
        r, c = _centroid([(np.int64(1), np.int64(2))])
        assert isinstance(r, int) and isinstance(c, int)
