"""Golden parity: the event-driven FIFO path reproduces the pre-refactor
``serve_stream`` numbers bit for bit.

The values below were captured from the sequential simulations that
shipped in PR 1 (commit a3313d9), before ``serve_stream`` was rewritten
on the shared heap-based discrete-event loop.  The new loop evaluates
``start = max(arrival, free_at)`` with the same floats in the same
order, so equality here is exact — no tolerances.
"""

import dataclasses

import pytest

from repro.serving import Fleet, FixedLength, ServingEngine, poisson_arrivals
from repro.workloads.deepbench import task

T = task("lstm", 512, 25)

#: (platform, rate, n, seed) -> (p50, p99, mean, mean_queue_delay, miss)
_ENGINE_GOLDEN = {
    ("gpu", 1200.0, 500, 42): (
        2.3906660299806983,
        9.385833554846206,
        3.25724334995052,
        2.518881467597585,
        0.232,
    ),
    ("brainwave", 1200.0, 500, 42): (
        0.08059999999998624,
        0.15193248526555622,
        0.08415798635344744,
        0.0035579863534571238,
        0.0,
    ),
}

#: (replicas, policy, rate, n, seed) ->
#:   (p50, p99, mean, mean_queue_delay, miss, per_replica_counts)
_FLEET_GOLDEN = {
    (3, "round-robin", 2500.0, 400, 11): (
        0.7383618823529475,
        1.5131255967286463,
        0.8407867314129973,
        0.10242484906005153,
        0.0,
        (134, 133, 133),
    ),
    (3, "least-loaded", 2500.0, 400, 11): (
        0.7383618823529475,
        1.5131255967286463,
        0.8407867314129973,
        0.10242484906005153,
        0.0,
        (134, 133, 133),
    ),
    (2, "round-robin", 4000.0, 400, 11): (
        23.63142366450988,
        49.28863762836958,
        24.89258834901658,
        24.154226466663644,
        0.9,
        (200, 200),
    ),
    (2, "least-loaded", 4000.0, 400, 11): (
        23.63142366450988,
        49.28863762836958,
        24.89258834901658,
        24.154226466663644,
        0.9,
        (200, 200),
    ),
}


class TestEngineGolden:
    @pytest.mark.parametrize("key", sorted(_ENGINE_GOLDEN), ids=lambda k: k[0])
    def test_fifo_stream_is_bit_identical(self, key):
        platform, rate, n, seed = key
        p50, p99, mean, queue, miss = _ENGINE_GOLDEN[key]
        arrivals = poisson_arrivals(T, rate_per_s=rate, n_requests=n, seed=seed)
        report = ServingEngine(platform).serve_stream(arrivals, slo_ms=5.0)
        assert report.scheduler == "fifo"
        assert report.p50_ms == p50
        assert report.p99_ms == p99
        assert report.mean_ms == mean
        assert report.mean_queue_delay_ms == queue
        assert report.slo_miss_rate == miss

    def test_responses_in_arrival_order(self):
        arrivals = poisson_arrivals(T, rate_per_s=1200.0, n_requests=100, seed=42)
        report = ServingEngine("gpu").serve_stream(arrivals, slo_ms=5.0)
        ids = [r.request.request_id for r in report.responses]
        assert ids == sorted(ids)


class TestFleetGolden:
    @pytest.mark.parametrize(
        "key", sorted(_FLEET_GOLDEN), ids=lambda k: f"{k[0]}x-{k[1]}-r{k[2]:.0f}"
    )
    def test_fifo_stream_is_bit_identical(self, key):
        replicas, policy, rate, n, seed = key
        p50, p99, mean, queue, miss, counts = _FLEET_GOLDEN[key]
        arrivals = poisson_arrivals(T, rate_per_s=rate, n_requests=n, seed=seed)
        fleet = Fleet("gpu", replicas=replicas, policy=policy)
        report = fleet.serve_stream(arrivals, slo_ms=5.0)
        assert report.scheduler == "fifo"
        assert report.p50_ms == p50
        assert report.p99_ms == p99
        assert report.mean_ms == mean
        assert report.mean_queue_delay_ms == queue
        assert report.slo_miss_rate == miss
        assert report.per_replica_counts == counts


class TestBatcherNoneGolden:
    """The ``"none"`` batching policy cannot drift from classic batch-1
    serving: the same golden numbers must come out bit for bit whether the
    batcher is defaulted, named explicitly, or replaced by ``size-cap``
    with a cap of one (which coalesces nothing by construction)."""

    @pytest.mark.parametrize("key", sorted(_ENGINE_GOLDEN), ids=lambda k: k[0])
    @pytest.mark.parametrize("batcher,max_batch", [
        ("none", None),
        ("none", 64),       # the cap is ignored: the policy is batch-1
        ("size-cap", 1),
    ])
    def test_engine_stream_is_bit_identical(self, key, batcher, max_batch):
        platform, rate, n, seed = key
        p50, p99, mean, queue, miss = _ENGINE_GOLDEN[key]
        arrivals = poisson_arrivals(T, rate_per_s=rate, n_requests=n, seed=seed)
        report = ServingEngine(platform).serve_stream(
            arrivals, slo_ms=5.0, batcher=batcher, max_batch=max_batch
        )
        assert report.batcher == batcher
        assert report.p50_ms == p50
        assert report.p99_ms == p99
        assert report.mean_ms == mean
        assert report.mean_queue_delay_ms == queue
        assert report.slo_miss_rate == miss
        assert report.mean_batch_size == 1.0
        assert all(r.batch_size == 1 for r in report.responses)

    @pytest.mark.parametrize(
        "key", sorted(_FLEET_GOLDEN), ids=lambda k: f"{k[0]}x-{k[1]}-r{k[2]:.0f}"
    )
    def test_fleet_stream_is_bit_identical(self, key):
        replicas, policy, rate, n, seed = key
        p50, p99, mean, queue, miss, counts = _FLEET_GOLDEN[key]
        arrivals = poisson_arrivals(T, rate_per_s=rate, n_requests=n, seed=seed)
        fleet = Fleet("gpu", replicas=replicas, policy=policy)
        report = fleet.serve_stream(arrivals, slo_ms=5.0, batcher="none")
        assert report.batcher == "none"
        assert report.p50_ms == p50
        assert report.p99_ms == p99
        assert report.mean_ms == mean
        assert report.mean_queue_delay_ms == queue
        assert report.slo_miss_rate == miss
        assert report.per_replica_counts == counts


class TestVariableLengthPathGolden:
    """Fixed-length tasks routed through the variable-length machinery
    stay bit-identical to the classic ``serve_stream`` numbers.

    Three routes into the new code path are pinned: (a) a ``FixedLength``
    sampler attaching per-request length overrides that equal the task's
    own length, (b) request tasks constructed as ``with_timesteps``
    variants (exercising ``family_key``/``compile_key`` sharing and
    ``Platform.serve_request`` re-costing), and (c) the length-aware
    ``pad``/``bucket`` batchers with a cap of one, which must coalesce
    nothing.  All of them must reproduce the goldens exactly — no
    tolerances."""

    @pytest.mark.parametrize("key", sorted(_ENGINE_GOLDEN), ids=lambda k: k[0])
    def test_fixed_length_sampler_is_bit_identical(self, key):
        platform, rate, n, seed = key
        p50, p99, mean, queue, miss = _ENGINE_GOLDEN[key]
        arrivals = poisson_arrivals(
            T,
            rate_per_s=rate,
            n_requests=n,
            seed=seed,
            lengths=FixedLength(T.timesteps),
        )
        report = ServingEngine(platform).serve_stream(arrivals, slo_ms=5.0)
        assert report.p50_ms == p50
        assert report.p99_ms == p99
        assert report.mean_ms == mean
        assert report.mean_queue_delay_ms == queue
        assert report.slo_miss_rate == miss
        assert report.padding_waste_frac == 0.0

    @pytest.mark.parametrize("key", sorted(_ENGINE_GOLDEN), ids=lambda k: k[0])
    def test_variant_constructed_tasks_are_bit_identical(self, key):
        platform, rate, n, seed = key
        p50, p99, mean, queue, miss = _ENGINE_GOLDEN[key]
        base = poisson_arrivals(T, rate_per_s=rate, n_requests=n, seed=seed)
        # Same lengths, but every task object rebuilt through the
        # variant API from a differently-lengthed family member.
        variant = T.with_timesteps(999).with_timesteps(T.timesteps)
        assert variant == T
        arrivals = [dataclasses.replace(r, task=variant) for r in base]
        engine = ServingEngine(platform)
        report = engine.serve_stream(arrivals, slo_ms=5.0)
        assert report.p50_ms == p50
        assert report.p99_ms == p99
        assert report.mean_ms == mean
        assert report.mean_queue_delay_ms == queue
        assert report.slo_miss_rate == miss
        # The whole family compiled exactly once.
        assert engine.cache_stats.misses == 1

    @pytest.mark.parametrize("key", sorted(_ENGINE_GOLDEN), ids=lambda k: k[0])
    @pytest.mark.parametrize("batcher", ["pad", "bucket"])
    def test_length_aware_batchers_at_cap_one_are_bit_identical(
        self, key, batcher
    ):
        platform, rate, n, seed = key
        p50, p99, mean, queue, miss = _ENGINE_GOLDEN[key]
        arrivals = poisson_arrivals(T, rate_per_s=rate, n_requests=n, seed=seed)
        report = ServingEngine(platform).serve_stream(
            arrivals, slo_ms=5.0, batcher=batcher, max_batch=1
        )
        assert report.batcher == batcher
        assert report.p50_ms == p50
        assert report.p99_ms == p99
        assert report.mean_ms == mean
        assert report.mean_queue_delay_ms == queue
        assert report.slo_miss_rate == miss
        assert report.mean_batch_size == 1.0
        assert report.padding_waste_frac == 0.0
