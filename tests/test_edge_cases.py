"""Edge-case battery across the DSL, precision, and serving layers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DSLError
from repro.precision import FP8, FP16, quantize
from repro.spatial import Foreach, PrecisionPolicy, Program, Range, Reduce, Sequential


class TestQuantizeMonotonicity:
    @given(
        a=st.floats(min_value=-240, max_value=240, allow_nan=False),
        b=st.floats(min_value=-240, max_value=240, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_quantize_is_monotone(self, a, b):
        # Rounding to a grid preserves order (weak monotonicity) — the
        # property that makes quantized comparisons safe.
        if a <= b:
            assert quantize(a, FP8) <= quantize(b, FP8)
        else:
            assert quantize(a, FP8) >= quantize(b, FP8)

    @given(st.floats(min_value=0, max_value=240, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_quantize_bounded_by_neighbors(self, x):
        # The rounded value never strays past the next representable
        # magnitude in either direction.
        q = float(quantize(x, FP8))
        from repro.precision import ulp

        assert abs(q - x) <= float(ulp(max(x, FP8.min_subnormal), FP8))


class TestDSLNesting:
    def test_foreach_inside_sequential_inside_foreach_rejected_semantics(self):
        # A Sequential loop nested inside a vectorized Foreach would need
        # scalarization; the executor surfaces a clear error rather than
        # silently mis-executing.
        prog = Program("nest")
        y = prog.sram("y", (4,))

        @prog.main
        def body():
            def outer(i):
                Sequential.Foreach(Range(2), lambda t: y.write(i * 1.0, i))

            Foreach(Range(4), outer)

        # The sequential body receives a vectorized index: writing y at a
        # vector index from within the scalar loop is still well-defined
        # under commit-at-boundary semantics.
        ex = prog.run()
        np.testing.assert_array_equal(ex.state["y"], [0.0, 1.0, 2.0, 3.0])

    def test_reduce_of_reduce_of_reduce(self):
        prog = Program("deep")
        x = prog.sram("x", (8,))
        out = prog.sram("out", (1,))

        @prog.main
        def body():
            def level2(i):
                def level3(j):
                    return Reduce(Range(2), lambda k: x[i + j + k] * 1.0)

                return Reduce(Range(2), level3)

            out.write(Reduce(Range(4), level2), 0)

        ex = prog.run(data={"x": np.arange(8.0)})
        # sum over i in {0..3}, j in {0,1}, k in {0,1} of x[i+j+k]
        expected = sum(float(a + b + c) for a in range(4) for b in range(2) for c in range(2))
        assert ex.state["out"][0] == expected

    def test_value_escaping_loop_scope_rejected(self):
        prog = Program("escape")
        x = prog.sram("x", (4,))
        leaked = []

        @prog.main
        def body():
            Foreach(Range(4), lambda i: leaked.append(x[i]))
            # Using the leaked loop-varying value outside its loop must
            # fail loudly.
            x.write(leaked[0] * 2.0, 0)

        from repro.errors import InterpreterError

        with pytest.raises(InterpreterError):
            prog.run()

    def test_zero_like_range_rejected_early(self):
        with pytest.raises(DSLError):
            Range(0, 1, 1)

    def test_program_runs_are_independent(self):
        prog = Program("indep")
        x = prog.sram("x", (2,))
        y = prog.sram("y", (2,))

        @prog.main
        def body():
            Foreach(Range(2), lambda i: y.write(x[i] + 1.0, i))

        a = prog.run(data={"x": np.array([1.0, 2.0])})
        b = prog.run(data={"x": np.array([10.0, 20.0])})
        np.testing.assert_array_equal(a.state["y"], [2.0, 3.0])
        np.testing.assert_array_equal(b.state["y"], [11.0, 21.0])

    def test_policy_none_equals_exact(self):
        prog = Program("pol")
        x = prog.sram("x", (3,))
        y = prog.sram("y", (3,))

        @prog.main
        def body():
            Foreach(Range(3), lambda i: y.write(x[i] * 1.0000001, i))

        data = {"x": np.array([1.0, 2.0, 3.0])}
        none_policy = prog.run(data=data).state["y"]
        exact_policy = prog.run(policy=PrecisionPolicy.exact(), data=data).state["y"]
        np.testing.assert_array_equal(none_policy, exact_policy)


class TestLargestTask:
    """GRU 2816: the point where Brainwave overtakes Plasticine."""

    def test_gru2816_serves(self):
        from repro.api import serve_on_brainwave, serve_on_plasticine
        from repro.workloads.deepbench import task

        t = task("gru", 2816)
        plast = serve_on_plasticine(t)
        bw = serve_on_brainwave(t)
        assert plast.latency_ms > bw.latency_ms
        assert 1.3 < plast.latency_s / bw.latency_s < 2.7  # "up to 2x"

    def test_gru2816_overflows_capacity_on_both(self):
        # 47.6M weights: > 31.5 MB at fp8 on Plasticine, > 30.5 MB in BFP
        # on Stratix 10 — neither chip truly holds it (EXPERIMENTS.md).
        from repro.api import serve_on_plasticine
        from repro.baselines import BrainwaveServingModel
        from repro.workloads.deepbench import task

        t = task("gru", 2816)
        res = serve_on_plasticine(t)
        assert not res.design.resources.fits_capacity
        bw = BrainwaveServingModel()
        assert not bw.weights_fit_onchip(t, int(30.5 * 2**20))

    def test_gru2816_step_latency_sane(self):
        from repro.api import serve_on_plasticine
        from repro.workloads.deepbench import task

        res = serve_on_plasticine(task("gru", 2816))
        per_step_us = res.latency_s / 750 * 1e6
        assert 5.0 < per_step_us < 9.0  # ~7k cycles/step at 1 GHz


class TestPrecisionPolicyLadder:
    def test_reduction_error_shrinks_with_precision_on_average(self):
        # fp16-stage1 + wide accumulate beats fp16-everywhere reduction
        # *on average* (pointwise, rounding can coincidentally cancel).
        n = 64
        prog = Program("dot_ladder")
        ws = prog.sram("w", (n,))
        xs = prog.sram("x", (n,))
        out = prog.sram("out", (1,))

        @prog.main
        def body():
            out.write(Reduce(Range(n), lambda i: ws[i] * xs[i]), 0)

        err_mixed, err_all16 = [], []
        for seed in range(50):
            rng = np.random.default_rng(seed)
            data = {"w": rng.uniform(-1, 1, n), "x": rng.uniform(-1, 1, n)}
            exact = prog.run(data=data).state["out"][0]
            mixed = prog.run(
                policy=PrecisionPolicy(reduce_stage1=FP16, accum=None), data=data
            ).state["out"][0]
            all16 = prog.run(
                policy=PrecisionPolicy(reduce_stage1=FP16, accum=FP16), data=data
            ).state["out"][0]
            err_mixed.append(abs(mixed - exact))
            err_all16.append(abs(all16 - exact))
        assert np.mean(err_mixed) < np.mean(err_all16)
