"""Shared DSE runner: pool parity, exact SLO pruning, memoization.

The contracts that make the accelerated search loops trustworthy:

* **Worker parity** — ``plan_capacity(workers=N)`` and
  ``search(workers=N)`` are bit-identical to the sequential loops for
  any N; the pool is a pure throughput knob.
* **Exact pruning** — the capacity planner's early abort never changes
  ``plan.best`` or the feasible set, only how many requests it cost to
  conclude the infeasible candidates are infeasible.
* **Memoization** — a warm chip-DSE sweep builds zero programs and
  returns points equal to the cold sweep; the on-disk cache round-trips
  both loops.
"""

import pytest

from repro.dse import (
    DSEStats,
    EvalMemo,
    FleetSpace,
    ParameterSpace,
    PruningSummary,
    plan_capacity,
    prune_threshold,
    search,
    tune,
)
from repro.dse.runner import fingerprint, load_cached, run_jobs, store_cached
from repro.dse.search import _MEMO, evaluate
from repro.errors import DSEError, ServingError
from repro.serving.parallel import pool_map
from repro.workloads.deepbench import task

SMALL = task("lstm", 256, 25)
#: cpu misses a 5 ms SLO by ~10x at this rate, so pruning triggers.
SMALL_SPACE = FleetSpace(platforms=("cpu", "gpu"), max_replicas=2)
PLAN_KWARGS = dict(
    slo_ms=5.0, peak_rate_per_s=2000, n_requests=200, space=SMALL_SPACE
)

CHIP_TASK = task("lstm", 512, 25)
CHIP_SPACE = ParameterSpace(max_hu=4, ru_choices=(4, 8))


class TestRunnerPrimitives:
    def test_prune_threshold_matches_percentile_rank(self):
        # floor(0.01 * n) for round request counts ...
        assert prune_threshold(2000) == 20
        assert prune_threshold(100) == 1
        assert prune_threshold(200) == 2
        # ... and never negative, even for degenerate streams.
        assert prune_threshold(1) == 0
        assert prune_threshold(2) == 1

    def test_prune_threshold_is_exact_not_approximate(self):
        # The threshold must use the same float arithmetic as
        # percentile_ms: (q/100)*(n-1) rank interpolation.
        import math

        for n in (3, 7, 99, 101, 150, 1000, 12345):
            rank = math.floor((99.0 / 100.0) * (n - 1))
            assert prune_threshold(n) == (n - 1) - rank

    def test_run_jobs_rejects_bad_workers(self):
        with pytest.raises(DSEError, match="workers"):
            run_jobs(len, [[1]], workers=0)

    def test_pool_map_parity_and_validation(self):
        jobs = [[1], [2, 3], [], [4, 5, 6]]
        seq = pool_map(len, jobs, 1)
        assert seq == [1, 2, 0, 3]
        assert pool_map(len, jobs, 2) == seq
        assert pool_map(len, jobs, 16) == seq  # clamped to len(jobs)
        with pytest.raises(ServingError, match="workers"):
            pool_map(len, jobs, 0)

    def test_eval_memo_lru(self):
        memo = EvalMemo(maxsize=2)
        memo.put("a", 1)
        memo.put("b", 2)
        assert memo.get("a") == 1
        memo.put("c", 3)  # evicts "b", the least recently used
        assert memo.get("b") is None
        assert memo.get("a") == 1
        assert memo.get("c") == 3
        assert memo.hits == 3 and memo.misses == 1
        memo.clear()
        assert memo.get("a") is None

    def test_fingerprint_stable_and_sensitive(self):
        a = fingerprint({"task": "lstm-512", "bits": 8})
        assert a == fingerprint({"bits": 8, "task": "lstm-512"})  # key order
        assert a != fingerprint({"task": "lstm-512", "bits": 16})
        assert len(a) == 32

    def test_disk_cache_round_trip(self, tmp_path):
        digest = fingerprint({"k": 1})
        assert load_cached(tmp_path, "dse", digest) is None
        store_cached(tmp_path, "dse", digest, {"points": [1, 2]})
        assert load_cached(tmp_path, "dse", digest)["points"] == [1, 2]
        # A corrupt entry reads as a miss, never an error.
        next(tmp_path.glob("*.json")).write_text("{not json")
        assert load_cached(tmp_path, "dse", digest) is None


class TestCapacityParity:
    def test_pruning_never_changes_best_or_feasible_set(self):
        full = plan_capacity(SMALL, prune=False, **PLAN_KWARGS)
        pruned = plan_capacity(SMALL, prune=True, **PLAN_KWARGS)
        assert pruned.best == full.best
        assert pruned.feasible_points() == full.feasible_points()
        assert set(pruned.to_json()) == set(full.to_json())
        assert full.n_pruned == 0
        assert full.simulated_requests == len(full.points) * 200

    def test_pruning_actually_saves_work(self):
        stats = DSEStats()
        plan = plan_capacity(SMALL, prune=True, stats=stats, **PLAN_KWARGS)
        assert plan.n_pruned > 0
        assert plan.simulated_requests < len(plan.points) * 200
        assert stats.pruned == plan.n_pruned
        assert stats.simulated_requests == plan.simulated_requests
        for point in plan.points:
            if point.pruned:
                assert not point.meets_slo
                assert point.simulated_requests < 200

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_workers_bit_identical(self, workers):
        sequential = plan_capacity(SMALL, **PLAN_KWARGS)
        parallel = plan_capacity(SMALL, workers=workers, **PLAN_KWARGS)
        assert parallel == sequential
        assert parallel.dumps() == sequential.dumps()

    def test_workers_bit_identical_without_pruning(self):
        sequential = plan_capacity(SMALL, prune=False, **PLAN_KWARGS)
        parallel = plan_capacity(SMALL, prune=False, workers=2, **PLAN_KWARGS)
        assert parallel == sequential

    def test_plan_disk_cache(self, tmp_path):
        stats_cold = DSEStats()
        cold = plan_capacity(
            SMALL, cache_dir=tmp_path, stats=stats_cold, **PLAN_KWARGS
        )
        stats_warm = DSEStats()
        warm = plan_capacity(
            SMALL, cache_dir=tmp_path, stats=stats_warm, **PLAN_KWARGS
        )
        assert not stats_cold.from_cache
        assert stats_warm.from_cache
        assert warm == cold
        # A different SLO is a different fingerprint, not a false hit.
        other = plan_capacity(
            SMALL, cache_dir=tmp_path,
            **dict(PLAN_KWARGS, slo_ms=4.0),
        )
        assert other.slo_ms == 4.0


class TestSearchParity:
    def test_memo_cold_then_warm(self):
        _MEMO.clear()
        cold = search(CHIP_TASK, space=CHIP_SPACE)
        assert cold.stats.program_builds > 0
        # One program per LoopParams, however many pass configs ride it.
        assert cold.stats.program_builds <= cold.stats.candidates
        warm = search(CHIP_TASK, space=CHIP_SPACE)
        assert warm.stats.program_builds == 0
        assert warm.stats.memo_hits == warm.stats.candidates
        assert warm.points == cold.points
        assert warm.best == cold.best

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_workers_bit_identical(self, workers):
        sequential = search(CHIP_TASK, space=CHIP_SPACE)
        parallel = search(CHIP_TASK, space=CHIP_SPACE, workers=workers)
        assert parallel.points == sequential.points
        assert parallel.best == sequential.best

    def test_evaluate_memoized_matches_unmemoized(self):
        from repro.plasticine.chip import PlasticineConfig
        from repro.rnn.lstm_loop import LoopParams

        chip = PlasticineConfig.rnn_serving()
        params = LoopParams(hu=4, ru=4, rv=64)
        _MEMO.clear()
        raw = evaluate(CHIP_TASK, params, chip, memoize=False)
        cold = evaluate(CHIP_TASK, params, chip)  # fills the memo
        hit = evaluate(CHIP_TASK, params, chip)  # serves from it
        assert raw == cold == hit

    def test_memo_shares_across_sequence_lengths(self):
        # cycles_per_step is timestep-invariant, so a T=50 sweep should
        # be pure memo hits after the T=25 sweep above seeded the memo.
        _MEMO.clear()
        search(CHIP_TASK, space=CHIP_SPACE)
        longer = search(task("lstm", 512, 50), space=CHIP_SPACE)
        assert longer.stats.program_builds == 0
        assert longer.stats.memo_hits == longer.stats.candidates
        assert longer.best.total_cycles == longer.best.cycles_per_step * 50

    def test_pass_axis_reports_winner(self):
        result = tune(CHIP_TASK, pass_axis=True)
        assert result.best.pass_config is not None
        assert result.best.pass_config.key  # a non-empty label
        # The pass axis can only help: its optimum is no slower than
        # the default pipeline's.
        baseline = tune(CHIP_TASK)
        assert result.best.total_cycles <= baseline.best.total_cycles

    def test_pass_axis_rejects_explicit_space(self):
        with pytest.raises(DSEError, match="pass_axis"):
            tune(CHIP_TASK, space=CHIP_SPACE, pass_axis=True)

    def test_search_disk_cache(self, tmp_path):
        cold = search(CHIP_TASK, space=CHIP_SPACE, cache_dir=tmp_path)
        warm = search(CHIP_TASK, space=CHIP_SPACE, cache_dir=tmp_path)
        assert not cold.stats.from_cache
        assert warm.stats.from_cache
        assert warm.points == cold.points
        assert warm.best == cold.best


class TestCLI:
    PLAN_ARGS = [
        "serve", "lstm", "256", "25", "--plan-capacity", "--platform",
        "cpu", "--rate", "1500", "--requests", "200",
    ]

    def test_plan_capacity_with_workers(self, capsys):
        from repro.harness.cli import main

        assert main(self.PLAN_ARGS + ["--dse-workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "Capacity frontier" in out
        assert "pruned" in out  # cpu misses 5 ms badly: the abort fires

    def test_no_prune_same_verdict(self, capsys):
        from repro.harness.cli import main

        assert main(self.PLAN_ARGS) == 0
        pruned_verdict = capsys.readouterr().out.splitlines()[-2]
        assert main(self.PLAN_ARGS + ["--no-dse-prune"]) == 0
        full = capsys.readouterr().out
        assert "pruned" not in full
        assert pruned_verdict in full  # same conclusion, more work

    def test_dse_cache_round_trip(self, tmp_path, capsys):
        from repro.harness.cli import main

        args = self.PLAN_ARGS + ["--dse-cache", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    @pytest.mark.parametrize(
        "flag", [["--dse-workers", "2"], ["--no-dse-prune"], ["--dse-cache", "x"]]
    )
    def test_dse_flags_require_plan_capacity(self, flag, capsys):
        from repro.harness.cli import main

        assert main(["serve", "lstm", "256"] + flag) == 1
        assert "add --plan-capacity" in capsys.readouterr().err

    def test_dse_workers_validated(self, capsys):
        from repro.harness.cli import main

        assert main(self.PLAN_ARGS + ["--dse-workers", "0"]) == 1
        assert "--dse-workers must be >= 1" in capsys.readouterr().err

    def test_table7_flags_forwarded(self, monkeypatch, capsys):
        from repro.harness import tables
        from repro.harness.cli import main

        seen = {}
        monkeypatch.setattr(
            tables, "table7",
            lambda **kwargs: seen.update(kwargs) or "stub table",
        )
        assert main(["table7", "--pass-axis", "--dse-workers", "2"]) == 0
        assert seen == {"pass_axis": True, "workers": 2}
        assert "stub table" in capsys.readouterr().out
        assert main(["table7", "--dse-workers", "0"]) == 1
        assert "--dse-workers must be >= 1" in capsys.readouterr().err


class TestTable7PassAxis:
    def test_pass_axis_column(self):
        from repro.harness.tables import table7

        text = table7(tasks=(SMALL,), pass_axis=True, workers=2)
        assert "dse passes" in text
        # The winner column holds a real pass label on every row.
        row = text.splitlines()[-1]
        assert SMALL.name in row
        assert "default" in row or "fuse_gates" in row or "double_buffer" in row

    def test_default_rendering_unchanged(self):
        from repro.harness.tables import table7

        text = table7(tasks=(SMALL,))
        assert "dse passes" not in text
