"""Capacity-planner DSE: fleet-space enumeration and frontier scoring."""

import json

import pytest

from repro.dse import FleetSpace, plan_capacity
from repro.errors import DSEError
from repro.workloads.deepbench import task

SMALL = task("lstm", 256, 25)
SMALL_SPACE = FleetSpace(platforms=("cpu", "gpu"), max_replicas=2)


class TestFleetSpace:
    def test_mix_enumeration(self):
        space = FleetSpace(platforms=("gpu", "brainwave"), max_replicas=2)
        assert list(space.mixes()) == [
            ("brainwave",),
            ("gpu",),
            ("brainwave", "brainwave"),
            ("brainwave", "gpu"),
            ("gpu", "gpu"),
        ]
        assert space.n_candidates() == 5

    def test_duplicate_platforms_collapse(self):
        space = FleetSpace(platforms=("gpu", "gpu"), max_replicas=1)
        assert list(space.mixes()) == [("gpu",)]

    def test_axes_multiply(self):
        space = FleetSpace(
            platforms=("gpu",),
            max_replicas=2,
            schedulers=("fifo", "sjf"),
            batchers=("none", "size-cap"),
        )
        assert space.n_candidates() == 2 * 2 * 2
        assert len(list(space.candidates())) == 8

    def test_bad_axes_rejected(self):
        with pytest.raises(DSEError, match="empty fleet space"):
            FleetSpace(platforms=())
        with pytest.raises(DSEError, match="empty fleet space"):
            FleetSpace(max_replicas=0)
        with pytest.raises(DSEError, match="unknown policy"):
            FleetSpace(policies=("random",))
        with pytest.raises(DSEError, match="unknown scheduler"):
            FleetSpace(schedulers=("lifo",))
        with pytest.raises(DSEError, match="unknown batcher"):
            FleetSpace(batchers=("mystery",))


class TestPlanCapacity:
    def test_best_meets_slo_with_energy_columns(self):
        plan = plan_capacity(
            SMALL,
            slo_ms=5.0,
            peak_rate_per_s=2000,
            n_requests=300,
            space=SMALL_SPACE,
        )
        assert len(plan.points) == SMALL_SPACE.n_candidates()
        best = plan.best
        assert best.meets_slo and best.p99_ms < 5.0
        assert best.joules_per_request > 0
        assert best.fleet_watt_hours > 0
        assert best.cost_usd_per_1m > 0
        assert all(
            best.cost_usd_per_1m <= p.cost_usd_per_1m
            for p in plan.feasible_points()
        )

    def test_deterministic(self):
        kwargs = dict(
            slo_ms=5.0, peak_rate_per_s=1500, n_requests=200, space=SMALL_SPACE
        )
        assert plan_capacity(SMALL, **kwargs) == plan_capacity(SMALL, **kwargs)

    def test_frontier_is_pareto(self):
        plan = plan_capacity(
            SMALL,
            slo_ms=5.0,
            peak_rate_per_s=2000,
            n_requests=300,
            space=SMALL_SPACE,
        )
        frontier = plan.frontier()
        assert frontier
        costs = [p.cost_usd_per_1m for p in frontier]
        p99s = [p.p99_ms for p in frontier]
        assert costs == sorted(costs)
        assert all(later < earlier for earlier, later in zip(p99s, p99s[1:]))

    def test_infeasible_space_raises_on_best(self):
        plan = plan_capacity(
            task("lstm", 1760, 25),
            slo_ms=0.001,  # nothing serves a 1760-unit LSTM in a microsecond
            peak_rate_per_s=100,
            n_requests=50,
            space=FleetSpace(platforms=("cpu",), max_replicas=1),
        )
        assert plan.feasible_points() == ()
        with pytest.raises(DSEError, match="widen the space"):
            plan.best

    def test_json_artifact_shape(self):
        plan = plan_capacity(
            SMALL,
            slo_ms=5.0,
            peak_rate_per_s=1500,
            n_requests=200,
            space=SMALL_SPACE,
        )
        data = json.loads(plan.dumps())
        assert set(data) == {
            "task", "slo_ms", "n_requests", "n_candidates", "n_feasible",
            "n_pruned", "simulated_requests", "best", "frontier", "points",
        }
        assert data["n_candidates"] == len(plan.points)
        assert data["n_pruned"] == plan.n_pruned
        assert data["simulated_requests"] == plan.simulated_requests
        assert data["best"]["mix"] == plan.best.mix
        assert data["best"]["cost_usd_per_1m"] == plan.best.cost_usd_per_1m
        assert data["best"]["pruned"] is False

    def test_input_validation(self):
        with pytest.raises(DSEError, match="slo_ms"):
            plan_capacity(SMALL, slo_ms=0.0)
        with pytest.raises(DSEError, match="n_requests"):
            plan_capacity(SMALL, n_requests=0)
        with pytest.raises(DSEError, match="peak_rate_per_s"):
            plan_capacity(SMALL, peak_rate_per_s=0.0)

    def test_mixed_fleet_beats_homogeneous_on_cost(self):
        # gru-2816 at a peak above 2x Plasticine's capacity: one
        # Brainwave replica covers the overflow more cheaply than a
        # second/third replica of either platform alone.
        plan = plan_capacity(
            task("gru", 2816, 25),
            slo_ms=5.0,
            peak_rate_per_s=12000,
            n_requests=4000,
            space=FleetSpace(
                platforms=("plasticine", "brainwave"), max_replicas=3
            ),
        )
        best = plan.best
        homogeneous = [p for p in plan.feasible_points() if not p.is_mixed]
        assert best.is_mixed
        assert homogeneous
        assert best.cost_usd_per_1m < min(
            p.cost_usd_per_1m for p in homogeneous
        )
