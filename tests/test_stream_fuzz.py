"""Seeded randomized stress suite for the stream event loop.

Each case draws a whole serving scenario — task mix (single-layer,
stacked, seq2seq), sequence-length distribution, arrival process,
scheduler, batcher, replica count, autoscaling — from a seeded
``random.Random``, runs it end to end, and asserts the engine invariants
that must hold for *every* configuration:

* request conservation — every request answered exactly once;
* no negative waits — ``arrival <= start <= finish`` everywhere;
* a monotone, non-overlapping execution timeline per replica;
* ``throughput_rps`` consistent with the stream makespan;
* per-tenant / per-priority / per-length-band slices summing to the
  whole stream;
* padding only where a length-aware batcher can introduce it, and the
  waste fraction well-formed.

Seeds are fixed, so CI is deterministic; a failure message names the
seed and the drawn scenario for replay.
"""

from __future__ import annotations

import random

import pytest

from repro.serving import (
    Autoscaler,
    Fleet,
    FixedLength,
    ServingEngine,
    UniformLength,
    ZipfLength,
    get_batcher,
    get_scheduler,
    mix,
    mmpp_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.workloads.deepbench import RNNTask, task
from repro.workloads.zoo import seq2seq, stacked

#: Cheap analytical platforms carry the fuzz volume; plasticine compiles
#: (fast, paper-params hidden sizes only) and gets its own seeds below.
_PLATFORMS = ("cpu", "gpu", "brainwave")
_SCHEDULERS = ("fifo", "priority", "edf", "sjf", "coalesce")
_BATCHERS = ("none", "size-cap", "time-window", "adaptive", "pad", "bucket")
_BASE_TASKS = (
    task("lstm", 512, 25),
    task("gru", 512, 25),
    RNNTask("gru", 256, 40, in_table6=False),
    stacked("lstm", 512, 20, layers=2),
    seq2seq("gru", 512, 15, 10),
)


def _draw_lengths(rng: random.Random):
    kind = rng.choice(("none", "fixed", "uniform", "zipf"))
    if kind == "none":
        return None
    if kind == "fixed":
        return FixedLength(rng.randint(1, 60))
    if kind == "uniform":
        lo = rng.randint(1, 20)
        return UniformLength(lo, lo + rng.randint(0, 80))
    lo = rng.randint(1, 15)
    return ZipfLength(lo, lo + rng.randint(5, 200), alpha=rng.uniform(1.0, 2.2))


def _draw_stream(rng: random.Random):
    streams = []
    for tenant_idx in range(rng.randint(1, 3)):
        base = rng.choice(_BASE_TASKS)
        n = rng.randint(10, 40)
        seed = rng.randint(0, 10_000)
        kwargs = dict(
            n_requests=n,
            seed=seed,
            tenant=f"tenant-{tenant_idx}-{base.name}",
            priority=rng.choice((0, 0, 1, 2)),
            slo_ms=rng.choice((None, 5.0, 50.0, 500.0)),
            lengths=_draw_lengths(rng),
        )
        if rng.random() < 0.5:
            streams.append(
                poisson_arrivals(base, rate_per_s=rng.uniform(50, 5000), **kwargs)
            )
        else:
            streams.append(
                mmpp_arrivals(
                    base,
                    quiet_rate_per_s=rng.uniform(20, 500),
                    burst_rate_per_s=rng.uniform(1000, 20000),
                    **kwargs,
                )
            )
    return mix(*streams)


def _draw_server(rng: random.Random, platform: str):
    scheduler = rng.choice(_SCHEDULERS)
    batcher_name = rng.choice(_BATCHERS)
    max_batch = rng.choice((1, 2, 4, 8))
    replicas = rng.randint(1, 3)
    autoscaler = (
        Autoscaler(min_replicas=1, max_replicas=replicas + 2)
        if rng.random() < 0.4
        else None
    )
    use_fleet = replicas > 1 or autoscaler is not None
    return scheduler, batcher_name, max_batch, replicas, autoscaler, use_fleet


def _run(seed: int, platform: str):
    rng = random.Random(seed)
    arrivals = _draw_stream(rng)
    scheduler, batcher, max_batch, replicas, autoscaler, use_fleet = _draw_server(
        rng, platform
    )
    slo_ms = rng.choice((None, 10.0, 100.0))
    if slo_ms is None and any(r.slo_ms is None for r in arrivals):
        slo_ms = 100.0  # keep slo_attainment well-defined on every run
    scenario = (
        f"seed={seed} platform={platform} scheduler={scheduler} "
        f"batcher={batcher} cap={max_batch} replicas={replicas} "
        f"autoscale={autoscaler is not None} n={len(arrivals)}"
    )
    if use_fleet:
        fleet = Fleet(platform, replicas=replicas, policy=rng.choice(
            ("round-robin", "least-loaded")))
        report = fleet.serve_stream(
            arrivals,
            slo_ms=slo_ms,
            scheduler=scheduler,
            batcher=lambda: get_batcher(batcher) if batcher == "none"
            else get_batcher(batcher, max_batch=max_batch),
            autoscaler=autoscaler,
        )
    else:
        report = ServingEngine(platform).serve_stream(
            arrivals,
            slo_ms=slo_ms,
            scheduler=scheduler,
            batcher=batcher,
            max_batch=None if batcher == "none" else max_batch,
        )
    return arrivals, report, scenario


def _assert_invariants(arrivals, report, scenario: str) -> None:
    eps = 1e-9

    # -- request conservation: every request answered exactly once.
    assert report.n_requests == len(arrivals), scenario
    assert sorted(r.request.request_id for r in report.responses) == sorted(
        r.request_id for r in arrivals
    ), scenario

    # -- no negative waits, monotone per-request timeline.
    for r in report.responses:
        assert r.queue_delay_s >= -eps, f"negative wait: {scenario}"
        assert r.start_s >= r.request.arrival_s - eps, scenario
        assert r.finish_s >= r.start_s, scenario
        assert r.sojourn_s >= r.service_s - eps, scenario
        assert r.batch_size >= 1 and 0 <= r.batch_index < r.batch_size, scenario
        assert r.padding_waste_flops >= 0, scenario

    # -- monotone, non-overlapping execution timeline per replica.
    assignments = getattr(report, "assignments", None)
    groups: dict[int, set[tuple[float, float]]] = {}
    for i, r in enumerate(report.responses):
        replica = assignments[i] if assignments else 0
        groups.setdefault(replica, set()).add((r.start_s, r.finish_s))
    for replica, executions in groups.items():
        ordered = sorted(executions)
        for (s0, f0), (s1, f1) in zip(ordered, ordered[1:]):
            assert s1 >= f0 - eps, (
                f"overlapping executions on replica {replica}: "
                f"({s0}, {f0}) then ({s1}, {f1}); {scenario}"
            )

    # -- throughput consistent with makespan.
    makespan = max(r.finish_s for r in report.responses)
    assert report.throughput_rps == pytest.approx(
        report.n_requests / makespan
    ), scenario

    # -- per-class slices sum to the whole.
    for slices in (
        report.per_tenant(),
        report.per_priority(),
        report.per_length_band(),
    ):
        assert sum(s.n_requests for s in slices.values()) == report.n_requests, (
            scenario
        )

    # -- SLO accounting well-formed.
    assert 0.0 <= report.slo_attainment <= 1.0, scenario
    assert report.slo_attainment == pytest.approx(1.0 - report.slo_miss_rate)

    # -- padding only where a length-aware batcher can introduce it.
    assert 0.0 <= report.padding_waste_frac < 1.0, scenario
    if report.batcher not in ("pad", "bucket"):
        assert report.padding_waste_frac == 0.0, scenario
        assert all(r.padded_timesteps == 0 for r in report.responses), scenario


@pytest.mark.parametrize("seed", range(12))
def test_fuzzed_stream_invariants(seed):
    platform = _PLATFORMS[seed % len(_PLATFORMS)]
    arrivals, report, scenario = _run(seed, platform)
    _assert_invariants(arrivals, report, scenario)


@pytest.mark.parametrize("seed", (100, 101))
def test_fuzzed_stream_invariants_plasticine(seed):
    arrivals, report, scenario = _run(seed, "plasticine")
    _assert_invariants(arrivals, report, scenario)


@pytest.mark.parametrize("seed", (0, 7))
def test_fuzz_is_deterministic(seed):
    platform = _PLATFORMS[seed % len(_PLATFORMS)]
    _, first, _ = _run(seed, platform)
    _, second, _ = _run(seed, platform)
    assert [
        (r.start_s, r.finish_s, r.batch_size) for r in first.responses
    ] == [(r.start_s, r.finish_s, r.batch_size) for r in second.responses]
    assert first.p99_ms == second.p99_ms
    assert first.padding_waste_frac == second.padding_waste_frac


# -- fault-injected scenarios -------------------------------------------

_FAULTS = ("crash", "straggler", "preempt", "chaos")


def _run_faulty(seed: int):
    """Draw a whole unreliable-hardware scenario and run it end to end."""
    rng = random.Random(10_000 + seed)
    arrivals = _draw_stream(rng)
    platform = _PLATFORMS[seed % len(_PLATFORMS)]
    scheduler = rng.choice(_SCHEDULERS)
    batcher = rng.choice(_BATCHERS)
    max_batch = rng.choice((2, 4, 8))
    replicas = rng.randint(1, 3)
    faults = rng.choice(_FAULTS)
    timeout_ms = rng.choice((None, 5.0, 25.0))
    retries = rng.randint(0, 2) if timeout_ms is not None else 0
    hedge_ms = rng.choice((None, 2.0, 10.0))
    scenario = (
        f"fault-seed={seed} platform={platform} scheduler={scheduler} "
        f"batcher={batcher} replicas={replicas} faults={faults} "
        f"timeout={timeout_ms} retries={retries} hedge={hedge_ms} "
        f"n={len(arrivals)}"
    )
    kwargs = dict(
        slo_ms=100.0,
        scheduler=scheduler,
        faults=faults,
        fault_seed=seed,
        timeout_ms=timeout_ms,
        retries=retries,
        hedge_ms=hedge_ms,
    )
    if replicas > 1:
        report = Fleet(
            platform,
            replicas=replicas,
            policy=rng.choice(("round-robin", "least-loaded")),
        ).serve_stream(
            arrivals,
            batcher=lambda: get_batcher(batcher) if batcher == "none"
            else get_batcher(batcher, max_batch=max_batch),
            **kwargs,
        )
    else:
        report = ServingEngine(platform).serve_stream(
            arrivals,
            batcher=batcher,
            max_batch=None if batcher == "none" else max_batch,
            **kwargs,
        )
    return arrivals, report, scenario


def _assert_fault_invariants(arrivals, report, scenario: str) -> None:
    eps = 1e-9
    stats = report.fault_stats

    # -- conservation survives crashes, retries, hedges, and timeouts:
    # every request is answered exactly once, whichever copy won.
    assert report.n_requests == len(arrivals), scenario
    assert sorted(r.request.request_id for r in report.responses) == sorted(
        r.request_id for r in arrivals
    ), scenario

    # -- no negative waits, even across crash/recovery gaps; timed-out
    # requests resolve at their give-up instant with no service interval.
    for r in report.responses:
        assert r.finish_s >= r.start_s, scenario
        assert r.start_s >= r.request.arrival_s - eps, scenario
        assert r.attempts >= 1, scenario
        assert r.outcome in ("ok", "retried", "hedged", "timeout"), scenario
        if r.outcome == "timeout":
            assert r.start_s == r.finish_s, scenario
        if r.outcome in ("retried", "hedged") or r.attempts > 1:
            assert stats.any, scenario

    # -- per-outcome slices sum to the whole, and agree with the
    # injected-fault counters.
    slices = report.per_outcome()
    assert sum(s.n_requests for s in slices.values()) == report.n_requests, (
        scenario
    )
    counts = {name: s.n_requests for name, s in slices.items()}
    assert counts.get("timeout", 0) == stats.timeouts, scenario
    assert counts.get("hedged", 0) == stats.hedge_wins, scenario
    assert sum(r.attempts - 1 for r in report.responses) == stats.retries, (
        scenario
    )

    # -- the other rollups still partition the stream.
    for groups in (report.per_tenant(), report.per_priority()):
        assert sum(s.n_requests for s in groups.values()) == report.n_requests, (
            scenario
        )

    # -- counters are internally consistent.
    assert stats.crashes >= 0 and stats.downtime_s >= 0.0, scenario
    assert stats.hedge_wins <= stats.hedges, scenario
    assert 0.0 <= report.slo_attainment <= 1.0, scenario


@pytest.mark.parametrize("seed", range(10))
def test_fuzzed_fault_invariants(seed):
    arrivals, report, scenario = _run_faulty(seed)
    _assert_fault_invariants(arrivals, report, scenario)


@pytest.mark.parametrize("seed", (2, 5))
def test_fault_fuzz_is_deterministic(seed):
    _, first, _ = _run_faulty(seed)
    _, second, _ = _run_faulty(seed)
    assert first.responses == second.responses
    assert first.fault_stats == second.fault_stats


def test_fault_fuzz_parallel_merge_consistent():
    # The merged sharded summary is identical whatever the pool size.
    from functools import partial

    from repro.serving import poisson_arrivals, serve_parallel

    make = partial(
        poisson_arrivals,
        task("lstm", 512, 25),
        rate_per_s=1200.0,
        n_requests=120,
        seed=21,
        materialize=False,
    )
    kwargs = dict(
        shards=3,
        slo_ms=50.0,
        faults="chaos",
        fault_seed=17,
        timeout_ms=25.0,
        retries=1,
        hedge_ms=10.0,
    )
    a = serve_parallel(make, "gpu", workers=1, **kwargs)
    b = serve_parallel(make, "gpu", workers=3, **kwargs)
    assert a.n_requests == b.n_requests == 120
    assert a.fault_stats == b.fault_stats
    assert (a.p50_ms, a.p99_ms, a.slo_attainment) == (
        b.p50_ms, b.p99_ms, b.slo_attainment,
    )
    assert sum(s.n_requests for s in a.per_outcome().values()) == 120


# -- mixed-fleet scenarios ----------------------------------------------

_MIX_POOL = ("cpu", "gpu", "brainwave")


def _draw_mix(rng: random.Random) -> str:
    """A random heterogeneous roster spec (always >= 2 distinct tiers)."""
    size = rng.randint(2, 4)
    names = [rng.choice(_MIX_POOL) for _ in range(size)]
    while len(set(names)) < 2:
        names[rng.randrange(size)] = rng.choice(_MIX_POOL)
    return ",".join(names)


def _run_mixed(seed: int):
    """Draw a whole heterogeneous-fleet scenario and run it end to end."""
    rng = random.Random(20_000 + seed)
    arrivals = _draw_stream(rng)
    spec = _draw_mix(rng)
    policy = rng.choice(("round-robin", "least-loaded", "affinity"))
    affinity_by = rng.choice(("task", "tenant", "length-band"))
    scheduler = rng.choice(_SCHEDULERS)
    scenario = (
        f"mix-seed={seed} mix={spec} policy={policy} "
        f"affinity_by={affinity_by} scheduler={scheduler} n={len(arrivals)}"
    )
    fleet = Fleet(spec, policy=policy, affinity_by=affinity_by)
    report = fleet.serve_stream(arrivals, slo_ms=100.0, scheduler=scheduler)
    return arrivals, fleet, report, scenario


@pytest.mark.parametrize("seed", range(8))
def test_fuzzed_mixed_fleet_invariants(seed):
    arrivals, fleet, report, scenario = _run_mixed(seed)
    _assert_invariants(arrivals, report, scenario)

    # -- conservation across platforms: the per-platform counts
    # partition the stream, and every platform served is on the roster.
    counts = report.per_platform_counts
    assert sum(counts.values()) == report.n_requests, scenario
    assert set(counts) <= set(report.replica_platforms), scenario

    # -- every response ran on the platform of its assigned replica.
    roster = report.replica_platforms
    for replica, r in zip(report.assignments, report.responses):
        assert r.result.platform == roster[replica], scenario

    # -- energy/TCO accounting well-formed on every mixed run.
    assert report.energy_j > 0.0, scenario
    assert report.joules_per_request == pytest.approx(
        report.energy_j / report.n_requests
    ), scenario
    assert report.fleet_watt_hours > 0.0, scenario
    assert report.cost_usd_per_1m_requests > 0.0, scenario


@pytest.mark.parametrize("seed", (0, 3, 6))
def test_fuzzed_affinity_routing_is_sticky(seed):
    rng = random.Random(30_000 + seed)
    arrivals = _draw_stream(rng)
    report = Fleet(
        "brainwave:2,gpu:1", policy="affinity", affinity_by="tenant"
    ).serve_stream(arrivals, slo_ms=100.0)
    by_tenant: dict = {}
    for r in report.responses:
        by_tenant.setdefault(r.request.tenant, set()).add(r.result.platform)
    # No autoscaler shrinks a tier away, so a pin never moves: every
    # tenant's requests land on exactly one platform.
    assert all(len(platforms) == 1 for platforms in by_tenant.values())


@pytest.mark.parametrize("seed", (1, 4))
def test_mixed_fleet_summary_matches_full(seed):
    rng = random.Random(40_000 + seed)
    arrivals = _draw_stream(rng)
    spec = _draw_mix(rng)
    policy = rng.choice(("least-loaded", "affinity"))
    full = Fleet(spec, policy=policy).serve_stream(arrivals, slo_ms=100.0)
    summary = Fleet(spec, policy=policy).serve_stream(
        arrivals, slo_ms=100.0, mode="summary"
    )
    assert summary.n_requests == full.n_requests
    assert summary.per_platform_counts == full.per_platform_counts
    assert summary.energy_j == pytest.approx(full.energy_j)
    assert summary.max_rate_per_s == pytest.approx(full.max_rate_per_s)
    assert summary.platform == full.platform


def test_mixed_fleet_parallel_pool_size_invariant():
    # The sharded mixed-fleet replay merges to the same summary
    # whatever the worker-pool size.
    from functools import partial

    from repro.serving import poisson_arrivals, serve_parallel

    make = partial(
        poisson_arrivals,
        task("lstm", 512, 25),
        rate_per_s=3000.0,
        n_requests=240,
        seed=11,
        materialize=False,
    )
    kwargs = dict(shards=3, slo_ms=5.0, mix="brainwave:1,gpu:1")
    a = serve_parallel(make, "gpu", workers=1, **kwargs)
    b = serve_parallel(make, "gpu", workers=3, **kwargs)
    assert a.n_requests == b.n_requests == 240
    assert a.per_platform_counts == b.per_platform_counts
    assert (a.p50_ms, a.p99_ms, a.energy_j) == (b.p50_ms, b.p99_ms, b.energy_j)
    assert a.platform == b.platform == "brainwave:1,gpu:1"
