"""CLI coverage for the parallel-shard and live-serving frontends.

`repro serve --shards/--workers/--shard-by` (process-pool replay) and
`--clients/--listen` (the live asyncio server) ride the same table
pipeline as the classic stream simulation; these tests pin the flag
validation, the table output, and the parity between a sharded run and
the equivalent round-robin fleet at the CLI level.
"""

import asyncio
import json
import os

import pytest

from repro.harness.cli import main
from repro.serving import ServeRequest, request_to_json
from repro.workloads.deepbench import task


def _serve(*extra):
    return [
        "serve", "lstm", "512", "--platform", "gpu",
        "--rate", "2000", "--requests", "300", "--slo-ms", "5", *extra,
    ]


class TestShardedCLI:
    def test_shards_table(self, capsys):
        assert main(_serve("--shards", "2", "--workers", "1")) == 0
        out = capsys.readouterr().out
        assert "2 replica shard(s)" in out
        assert "summary mode" in out

    def test_shards_row_matches_round_robin_fleet(self, capsys):
        assert main(_serve("--shards", "2", "--workers", "1")) == 0
        sharded = capsys.readouterr().out
        assert main(
            _serve("--stream", "--replicas", "2", "--policy", "round-robin",
                   "--mode", "summary")
        ) == 0
        fleet = capsys.readouterr().out
        # Same columns, same numbers: only the titles differ.
        assert sharded.splitlines()[-1] == fleet.splitlines()[-1]

    def test_tenant_sharded_mix(self, capsys):
        assert main([
            "serve", "--platform", "gpu", "--rate", "2000",
            "--requests", "300", "--slo-ms", "5", "--shards", "2",
            "--shard-by", "tenant", "--workers", "1",
            "--mix", "lstm:512,gru:512",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 tenant shard(s)" in out
        assert "Per-tenant breakdown (gpu)" in out

    def test_sharded_trace_replay(self, capsys, tmp_path):
        trace = str(tmp_path / "stream.jsonl")
        assert main(_serve("--stream", "--record-trace", trace)) == 0
        capsys.readouterr()
        assert main([
            "serve", "--platform", "gpu", "--slo-ms", "5",
            "--trace", trace, "--shards", "2", "--workers", "2",
        ]) == 0
        assert "2 replica shard(s)" in capsys.readouterr().out


class TestFlagValidation:
    @pytest.mark.parametrize(
        "extra, message",
        [
            (("--shards", "0"), "--shards must be >= 1"),
            (("--workers", "2"), "add --shards"),
            (("--shards", "2", "--mode", "full"), "drop --mode full"),
            (("--shards", "2", "--listen", "127.0.0.1:0"), "pick one frontend"),
            (("--listen", "nonsense"), "bad --listen spec"),
            (("--listen", "unix:"), "needs a socket path"),
            (("--clients", "0"), "--clients must be >= 1"),
        ],
    )
    def test_rejected_combinations(self, capsys, extra, message):
        assert main(_serve(*extra)) == 1
        assert message in capsys.readouterr().err

    def test_listen_forever_needs_one_platform(self, capsys):
        assert main([
            "serve", "lstm", "512", "--listen", "127.0.0.1:0",
        ]) == 1
        assert "needs one platform" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "extra, message",
        [
            (("--timeout-ms", "0"), "--timeout-ms must be positive"),
            (("--hedge-ms", "-1"), "--hedge-ms must be positive"),
            (("--retries", "-1"), "--retries must be >= 0"),
            (("--retries", "2"), "add --timeout-ms"),
            (("--faults", "chaos", "--clients", "4"),
             "inject into the simulated stream"),
            (("--hedge-ms", "5", "--listen", "127.0.0.1:0"),
             "inject into the simulated stream"),
        ],
    )
    def test_rejected_fault_flags(self, capsys, extra, message):
        assert main(_serve(*extra)) == 1
        assert message in capsys.readouterr().err

    def test_unknown_fault_policy_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(_serve("--faults", "gremlins"))
        assert "--faults" in capsys.readouterr().err


class TestFaultyCLI:
    def test_chaos_run_prints_breakdown_and_is_deterministic(self, capsys):
        cmd = _serve(
            "--faults", "chaos", "--fault-seed", "11",
            "--timeout-ms", "20", "--retries", "1", "--hedge-ms", "10",
            "--replicas", "2",
        )
        assert main(cmd) == 0
        first = capsys.readouterr().out
        assert "faults chaos" in first
        assert "fault injection (chaos)" in first
        assert "crashes" in first and "hedges" in first
        assert main(cmd) == 0
        assert capsys.readouterr().out == first

    def test_faults_none_output_matches_plain_stream(self, capsys):
        assert main(_serve("--stream")) == 0
        plain = capsys.readouterr().out
        assert main(_serve("--stream", "--faults", "none")) == 0
        assert capsys.readouterr().out == plain

    def test_sharded_chaos_pool_size_invisible(self, capsys):
        cmd = _serve("--faults", "crash", "--fault-seed", "3", "--shards", "2")
        assert main(cmd + ["--workers", "1"]) == 0
        one = capsys.readouterr().out
        assert main(cmd + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == one


class TestLiveClients:
    def test_in_process_clients(self, capsys):
        assert main(_serve("--requests", "120", "--clients", "8")) == 0
        out = capsys.readouterr().out
        assert "Live serving" in out
        assert "8 in-process client(s)" in out
        assert "120" in out and "yes" in out

    def test_socket_clients_tcp(self, capsys):
        assert main(
            _serve("--requests", "60", "--clients", "4",
                   "--listen", "127.0.0.1:0")
        ) == 0
        assert "4 socket client(s)" in capsys.readouterr().out

    def test_socket_clients_unix(self, capsys, tmp_path):
        path = str(tmp_path / "live.sock")
        assert main(
            _serve("--requests", "40", "--clients", "2",
                   "--listen", f"unix:{path}")
        ) == 0
        assert "2 socket client(s)" in capsys.readouterr().out
        assert not os.path.exists(path)  # drained server removed the socket

    def test_batched_live_serving(self, capsys):
        assert main(
            _serve("--requests", "80", "--clients", "8",
                   "--batcher", "size-cap", "--max-batch", "4")
        ) == 0
        out = capsys.readouterr().out
        assert "size-cap batching" in out
        assert "mean batch" in out


class TestListenForever:
    def test_serves_until_interrupt_then_drains(
        self, capsys, tmp_path, monkeypatch
    ):
        """The real-time `--listen` frontend, end to end in-process: the
        idle-loop sleep is hijacked to act as one socket client and then
        deliver the Ctrl-C, so the command binds, serves a request over
        the UNIX socket, drains, and reports what it served."""
        path = str(tmp_path / "forever.sock")
        real_sleep = asyncio.sleep

        async def client_then_interrupt(seconds, *a, **kw):
            if seconds != 3600:  # worker dwells etc. sleep normally
                return await real_sleep(seconds, *a, **kw)
            reader, writer = await asyncio.open_unix_connection(path)
            req = ServeRequest(task=task("lstm", 512, 25), request_id=1)
            writer.write((json.dumps(request_to_json(req)) + "\n").encode())
            await writer.drain()
            reply = json.loads(await reader.readline())
            assert reply["ok"] is True
            writer.close()
            await writer.wait_closed()
            raise KeyboardInterrupt

        monkeypatch.setattr(asyncio, "sleep", client_then_interrupt)
        assert main([
            "serve", "lstm", "512", "--platform", "gpu", "--slo-ms", "5",
            "--listen", f"unix:{path}",
        ]) == 0
        captured = capsys.readouterr()
        assert "serving gpu on" in captured.err
        assert "live server drained: 1 served" in captured.out
        assert not os.path.exists(path)
