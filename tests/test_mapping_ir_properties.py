"""Seeded property tests for the mapping IR and its verifier.

Random pass orderings over random well-formed programs: every *legal*
ordering (a topological order of the passes' `requires` DAG) completes
with the IR verifier green after every pass and produces the identical
design; every *illegal* ordering raises MappingError up front and never
corrupts the state — the surviving state still verifies and can be
finished by a legal continuation to the same design.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse.search import build_task_program
from repro.errors import MappingError
from repro.mapping.mapper import SEQ_SYNC_CYCLES
from repro.mapping.passes import (
    DEFAULT_PIPELINE,
    MappingPass,
    MappingState,
    PassManager,
    available_passes,
    design_fingerprint,
    get_pass,
    register_pass,
    unregister_pass,
    verify_state,
)
from repro.plasticine.chip import PlasticineConfig
from repro.rnn.lstm_loop import LoopParams
from repro.workloads.deepbench import RNNTask


def _random_program(rng: random.Random):
    kind = rng.choice(["lstm", "gru"])
    hidden = rng.choice([64, 128, 192, 256, 384])
    timesteps = rng.randint(1, 6)
    params = LoopParams(
        hu=rng.choice([1, 2, 3, 4]),
        ru=rng.choice([1, 2, 4]),
        rv=rng.choice([16, 64]),
    )
    return build_task_program(RNNTask(kind, hidden, timesteps), params)


def _fresh_state(prog) -> MappingState:
    return MappingState(
        prog=prog,
        chip=PlasticineConfig.rnn_serving(),
        bits=8,
        seq_sync_cycles=SEQ_SYNC_CYCLES,
    )


def _is_legal(order) -> bool:
    done = set()
    for name in order:
        if any(r not in done for r in get_pass(name)().requires):
            return False
        done.add(name)
    return True


def _all_legal_orders(names=DEFAULT_PIPELINE):
    return [p for p in itertools.permutations(names) if _is_legal(p)]


class TestPassOrderings:
    def test_every_legal_order_yields_the_identical_design(self):
        # The default passes commute wherever the requires DAG allows:
        # fold_luts may run in any position after plan_gates.
        prog = build_task_program(RNNTask("lstm", 128, 2), LoopParams(hu=2, ru=2, rv=64))
        orders = _all_legal_orders()
        assert len(orders) > 1  # fold_luts really is mobile
        fingerprints = [
            design_fingerprint(
                PassManager(list(order)).run(_fresh_state(prog)).design
            )
            for order in orders
        ]
        assert all(fp == fingerprints[0] for fp in fingerprints[1:])

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_order_completes_or_raises_cleanly(self, seed):
        rng = random.Random(seed)
        prog = _random_program(rng)
        order = list(DEFAULT_PIPELINE)
        rng.shuffle(order)
        state = _fresh_state(prog)
        if _is_legal(order):
            PassManager(order).run(state)
            assert state.design is not None
            verify_state(state)
        else:
            with pytest.raises(MappingError):
                PassManager(order).run(state)
            # Never corrupt state: whatever did complete still verifies,
            # and the failed pass left no trace in the completed list.
            verify_state(state)
            assert _is_legal(state.completed)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_illegal_order_state_is_resumable(self, seed):
        rng = random.Random(seed)
        prog = _random_program(rng)
        order = list(DEFAULT_PIPELINE)
        while True:
            rng.shuffle(order)
            if not _is_legal(order):
                break
        state = _fresh_state(prog)
        with pytest.raises(MappingError):
            PassManager(order).run(state)
        # Finish with any legal continuation of the remaining passes:
        remaining = [n for n in DEFAULT_PIPELINE if n not in state.completed]
        PassManager(remaining).run(state)
        reference = PassManager(list(DEFAULT_PIPELINE)).run(_fresh_state(prog))
        assert design_fingerprint(state.design) == design_fingerprint(
            reference.design
        )

    def test_route_before_place_raises(self):
        prog = _random_program(random.Random(0))
        state = _fresh_state(prog)
        with pytest.raises(MappingError, match="requires place_units"):
            PassManager(["recognize_rnn", "plan_gates", "route_edges"]).run(state)
        assert state.completed == ["recognize_rnn", "plan_gates"]

    def test_same_pass_twice_raises(self):
        prog = _random_program(random.Random(1))
        state = _fresh_state(prog)
        with pytest.raises(MappingError, match="already ran"):
            PassManager(["recognize_rnn", "recognize_rnn"]).run(state)


class TestVerifierProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_verifier_green_after_every_pass_on_random_programs(self, seed):
        rng = random.Random(seed)
        prog = _random_program(rng)
        checked = []

        def hook(name, state, seconds):
            verify_state(state)
            checked.append(name)
            assert seconds >= 0

        PassManager(list(DEFAULT_PIPELINE), trace_hook=hook).run(_fresh_state(prog))
        assert checked == list(DEFAULT_PIPELINE)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_optimization_passes_keep_the_verifier_green(self, seed):
        rng = random.Random(seed)
        prog = _random_program(rng)
        order = list(DEFAULT_PIPELINE[:-1]) + ["fuse_gates", "double_buffer"] + [
            DEFAULT_PIPELINE[-1]
        ]
        state = PassManager(order).run(_fresh_state(prog))
        assert state.design.passes_applied == tuple(order)

    def test_verifier_catches_corrupted_latency(self):
        prog = _random_program(random.Random(2))
        state = _fresh_state(prog)
        PassManager(["recognize_rnn", "plan_gates"]).run(state)
        state.stage("ew").latency = -1
        with pytest.raises(MappingError, match="latency must be >= 0"):
            verify_state(state)

    def test_verifier_catches_off_grid_placement(self):
        prog = _random_program(random.Random(3))
        state = _fresh_state(prog)
        PassManager(list(DEFAULT_PIPELINE[:3])).run(state)
        state.stage("ew").coord = (-1, 999)
        with pytest.raises(MappingError, match="off-grid"):
            verify_state(state)

    def test_verifier_catches_broken_ledger(self):
        prog = _random_program(random.Random(4))
        state = _fresh_state(prog)
        PassManager(list(DEFAULT_PIPELINE[:3])).run(state)
        state.pcus_allocated += 1
        with pytest.raises(MappingError, match="ledger"):
            verify_state(state)

    def test_verifier_catches_foreign_unit(self):
        prog = _random_program(random.Random(5))
        state = _fresh_state(prog)
        PassManager(list(DEFAULT_PIPELINE[:3])).run(state)
        ew = state.stage("ew")
        # Swap a PCU unit for a coordinate that is not a PCU.
        pmu_coord = state.chip.layout.pmus[0]
        ew.units_pcu = (pmu_coord,) + ew.units_pcu[1:]
        with pytest.raises(MappingError, match="non-PCU"):
            verify_state(state)

    def test_verifier_catches_cycle(self):
        prog = _random_program(random.Random(6))
        state = _fresh_state(prog)
        PassManager(["recognize_rnn", "plan_gates"]).run(state)
        state.add_edge("writeback", "load_x")
        with pytest.raises(MappingError, match="cycle"):
            verify_state(state)


class TestRegistry:
    def test_all_builtin_passes_registered(self):
        assert set(available_passes()) >= set(DEFAULT_PIPELINE) | {
            "fuse_gates",
            "double_buffer",
        }

    def test_unknown_pass_raises_with_known_names(self):
        with pytest.raises(MappingError, match="unknown mapping pass"):
            get_pass("no_such_pass")

    def test_duplicate_registration_raises(self):
        @register_pass("tmp_prop_pass")
        class Tmp(MappingPass):
            def run(self, state):
                pass

        try:
            with pytest.raises(MappingError, match="already registered"):
                register_pass("tmp_prop_pass")(Tmp)
        finally:
            unregister_pass("tmp_prop_pass")

    def test_non_pass_class_rejected(self):
        with pytest.raises(MappingError, match="MappingPass subclass"):
            register_pass("tmp_bogus")(dict)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(MappingError, match="empty pass pipeline"):
            PassManager([])

    def test_manager_accepts_instances(self):
        passes = [get_pass(n)() for n in DEFAULT_PIPELINE]
        prog = _random_program(random.Random(7))
        state = PassManager(passes).run(_fresh_state(prog))
        assert state.design is not None
