"""The serving package: registry, compile-once engine, batch and stream."""

import pytest

from repro.errors import ServingError
from repro.serving import (
    Platform,
    PreparedModel,
    ServeRequest,
    ServingEngine,
    ServingResult,
    available_platforms,
    get_platform,
    poisson_arrivals,
    register_platform,
    uniform_arrivals,
)
from repro.serving.platform import unregister_platform
from repro.workloads.deepbench import RNNTask, task


class TestRegistry:
    def test_builtin_platforms_registered(self):
        names = available_platforms()
        for expected in ("plasticine", "brainwave", "cpu", "gpu"):
            assert expected in names

    def test_unknown_platform_raises(self):
        with pytest.raises(ServingError, match="unknown platform 'tpu'"):
            get_platform("tpu")

    def test_unknown_platform_error_lists_known(self):
        with pytest.raises(ServingError, match="plasticine"):
            get_platform("nope")

    def test_register_decorator_round_trip(self):
        @register_platform("dummy-test")
        class DummyPlatform(Platform):
            def prepare(self, t):
                return PreparedModel(platform=self.name, task=t, state=None)

            def serve(self, prepared):
                return ServingResult(
                    platform=self.name,
                    task=prepared.task,
                    latency_s=1e-3,
                    effective_tflops=prepared.task.effective_tflops(1e-3),
                )

        try:
            assert "dummy-test" in available_platforms()
            plat = get_platform("dummy-test")
            assert isinstance(plat, DummyPlatform)
            assert plat.name == "dummy-test"
            result = ServingEngine("dummy-test").serve(task("lstm", 512, 25)).result
            assert result.platform == "dummy-test"
            assert result.latency_s == 1e-3
        finally:
            unregister_platform("dummy-test")
        assert "dummy-test" not in available_platforms()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ServingError, match="already registered"):
            @register_platform("plasticine")
            class Impostor(Platform):
                def prepare(self, t):  # pragma: no cover
                    raise NotImplementedError

                def serve(self, prepared):  # pragma: no cover
                    raise NotImplementedError

    def test_non_platform_class_rejected(self):
        with pytest.raises(ServingError, match="Platform subclass"):
            register_platform("notaplatform")(object)

    def test_mismatched_prepared_model_rejected(self):
        bw = get_platform("brainwave")
        cpu = get_platform("cpu")
        prepared = cpu.prepare(task("lstm", 512, 25))
        with pytest.raises(ServingError, match="compiled for platform"):
            bw.serve(prepared)


class TestEngineCache:
    def test_prepare_returns_same_object(self):
        engine = ServingEngine("plasticine")
        t = task("lstm", 512, 25)
        first = engine.prepare(t)
        second = engine.prepare(t)
        assert first is second
        assert engine.cache_stats.hits == 1
        assert engine.cache_stats.misses == 1

    def test_repeat_serve_reuses_compiled_design(self):
        engine = ServingEngine("plasticine")
        t = task("lstm", 512, 25)
        r1 = engine.serve(t).result
        r2 = engine.serve(t).result
        # Object identity, not equality: the mapped design and the
        # simulation were computed once and shared.
        assert r1.design is r2.design
        assert r1.simulation is r2.simulation
        assert engine.cache_stats.misses == 1

    def test_distinct_tasks_compile_separately(self):
        engine = ServingEngine("brainwave")
        engine.serve(task("lstm", 512, 25))
        engine.serve(task("lstm", 1024, 25))
        assert engine.cache_stats.misses == 2
        assert engine.cache_stats.hits == 0

    def test_clear_cache_recompiles(self):
        engine = ServingEngine("cpu")
        t = task("lstm", 512, 25)
        first = engine.prepare(t)
        engine.clear_cache()
        second = engine.prepare(t)
        assert first is not second
        assert engine.cache_stats.misses == 1

    def test_platform_instance_with_options_rejected(self):
        with pytest.raises(ServingError, match="by name"):
            ServingEngine(get_platform("cpu"), bits=8)


class TestBatch:
    def test_batch_equals_sequential(self):
        engine = ServingEngine("brainwave")
        tasks = [task("lstm", 512, 25), task("gru", 512, 1), task("lstm", 512, 25)]
        batch = engine.serve_batch(tasks)
        sequential = [ServingEngine("brainwave").serve(t) for t in tasks]
        assert len(batch) == len(sequential)
        for b, s in zip(batch, sequential):
            assert b.result == s.result
            assert b.sojourn_s == s.sojourn_s

    def test_batch_shares_cache_across_duplicates(self):
        engine = ServingEngine("gpu")
        engine.serve_batch([task("lstm", 512, 25)] * 5)
        assert engine.cache_stats.misses == 1
        assert engine.cache_stats.hits == 4


class TestStream:
    def test_percentiles_monotone_in_arrival_rate(self):
        t = task("lstm", 512, 25)
        engine = ServingEngine("brainwave")
        p50s, p99s = [], []
        for rate in (2000.0, 6000.0, 11000.0):
            arrivals = poisson_arrivals(t, rate_per_s=rate, n_requests=500, seed=7)
            report = engine.serve_stream(arrivals, slo_ms=5.0)
            p50s.append(report.p50_ms)
            p99s.append(report.p99_ms)
        assert p50s == sorted(p50s)
        assert p99s == sorted(p99s)
        assert p99s[0] < p99s[-1]  # queueing delay genuinely grows

    def test_sojourn_is_queue_plus_service(self):
        t = task("lstm", 512, 25)
        report = ServingEngine("gpu").serve_stream(
            uniform_arrivals(t, rate_per_s=100.0, n_requests=20)
        )
        for resp in report.responses:
            assert resp.sojourn_s == pytest.approx(
                resp.queue_delay_s + resp.service_s
            )
            assert resp.start_s >= resp.request.arrival_s

    def test_fifo_respects_arrival_order(self):
        t = task("lstm", 512, 25)
        # Hand the engine an out-of-order iterable; it must serve FIFO.
        reqs = [
            ServeRequest(task=t, arrival_s=0.3, request_id=2),
            ServeRequest(task=t, arrival_s=0.1, request_id=0),
            ServeRequest(task=t, arrival_s=0.2, request_id=1),
        ]
        report = ServingEngine("cpu").serve_stream(reqs)
        ids = [r.request.request_id for r in report.responses]
        assert ids == [0, 1, 2]
        finishes = [r.finish_s for r in report.responses]
        assert finishes == sorted(finishes)

    def test_slo_accounting(self):
        t = task("lstm", 512, 25)
        engine = ServingEngine("gpu")
        arrivals = uniform_arrivals(t, rate_per_s=100.0, n_requests=50)
        report = engine.serve_stream(arrivals, slo_ms=5.0)
        assert report.slo_miss_rate == 0.0
        assert report.slo_attained
        tight = engine.serve_stream(arrivals, slo_ms=1e-6)
        assert tight.slo_miss_rate == 1.0
        assert not tight.slo_attained

    def test_slo_unconfigured_raises(self):
        t = task("lstm", 512, 25)
        report = ServingEngine("gpu").serve_stream(
            uniform_arrivals(t, rate_per_s=100.0, n_requests=5)
        )
        with pytest.raises(ServingError):
            report.slo_miss_rate

    def test_empty_stream_raises(self):
        with pytest.raises(ServingError, match="at least one request"):
            ServingEngine("cpu").serve_stream([])

    def test_single_request_stream_not_saturated(self):
        report = ServingEngine("gpu").serve_stream(
            [ServeRequest(task=task("lstm", 512, 25))]
        )
        assert report.offered_rate_per_s == 0.0
        assert not report.saturated

    def test_simultaneous_burst_is_saturated(self):
        t = task("lstm", 512, 25)
        reqs = [ServeRequest(task=t, arrival_s=0.0, request_id=i) for i in range(5)]
        report = ServingEngine("gpu").serve_stream(reqs)
        assert report.saturated

    def test_saturation_flag(self):
        t = task("lstm", 512, 25)  # CPU service ~12 ms -> ~83 req/s max
        engine = ServingEngine("cpu")
        hot = engine.serve_stream(
            uniform_arrivals(t, rate_per_s=400.0, n_requests=50)
        )
        assert hot.saturated
        cool = engine.serve_stream(
            uniform_arrivals(t, rate_per_s=10.0, n_requests=50)
        )
        assert not cool.saturated

    def test_poisson_arrivals_validation(self):
        t = task("lstm", 512, 25)
        with pytest.raises(ServingError):
            poisson_arrivals(t, rate_per_s=0.0, n_requests=10)
        with pytest.raises(ServingError):
            poisson_arrivals(t, rate_per_s=10.0, n_requests=0)

    def test_mixed_task_stream(self):
        engine = ServingEngine("brainwave")
        reqs = [
            ServeRequest(task=task("lstm", 512, 25), arrival_s=0.0, request_id=0),
            ServeRequest(task=task("gru", 512, 1), arrival_s=0.001, request_id=1),
            ServeRequest(task=task("lstm", 512, 25), arrival_s=0.002, request_id=2),
        ]
        report = engine.serve_stream(reqs)
        assert engine.cache_stats.misses == 2  # two distinct tasks
        assert report.n_requests == 3


class TestReportBreakdowns:
    def _tagged_stream(self):
        t_a, t_b = task("lstm", 512, 25), task("gru", 512, 1)
        return [
            ServeRequest(task=t_a, arrival_s=0.001 * i, request_id=i,
                         tenant="a" if i % 2 else "b",
                         priority=i % 2, slo_ms=2.0 if i % 2 else None)
            for i in range(10)
        ] + [
            ServeRequest(task=t_b, arrival_s=0.02 + 0.001 * i, request_id=10 + i,
                         tenant="c")
            for i in range(5)
        ]

    def test_per_tenant_partitions_the_stream(self):
        report = ServingEngine("gpu").serve_stream(self._tagged_stream(), slo_ms=5.0)
        subs = report.per_tenant()
        assert set(subs) == {"a", "b", "c"}
        assert report.tenants == ("a", "b", "c")
        assert sum(s.n_requests for s in subs.values()) == report.n_requests
        for tenant, sub in subs.items():
            assert all(r.request.tenant == tenant for r in sub.responses)
            assert sub.slo_ms == report.slo_ms
            assert sub.scheduler == report.scheduler

    def test_per_priority_partitions_the_stream(self):
        report = ServingEngine("gpu").serve_stream(self._tagged_stream(), slo_ms=5.0)
        subs = report.per_priority()
        assert set(subs) == {0, 1}
        assert report.priorities == (0, 1)
        assert sum(s.n_requests for s in subs.values()) == report.n_requests

    def test_per_request_slo_overrides_stream_slo(self):
        t = task("lstm", 512, 25)  # gpu service ~0.74 ms
        reqs = [
            ServeRequest(task=t, arrival_s=0.01, request_id=0, slo_ms=0.01),
            ServeRequest(task=t, arrival_s=0.02, request_id=1, slo_ms=100.0),
            ServeRequest(task=t, arrival_s=0.03, request_id=2),  # stream SLO
        ]
        report = ServingEngine("gpu").serve_stream(reqs, slo_ms=5.0)
        # Request 0 misses its own microscopic SLO; the others meet theirs.
        assert report.slo_miss_rate == pytest.approx(1 / 3)
        assert report.slo_attainment == pytest.approx(2 / 3)

    def test_scheduler_name_recorded(self):
        t = task("lstm", 512, 25)
        report = ServingEngine("gpu").serve_stream(
            [ServeRequest(task=t)], scheduler="edf"
        )
        assert report.scheduler == "edf"

    def test_fleet_report_breakdown_is_plain_stream_report(self):
        from repro.serving import Fleet, StreamReport, uniform_arrivals as ua

        report = Fleet("gpu", replicas=2).serve_stream(
            ua(task("lstm", 512, 25), rate_per_s=100.0, n_requests=10)
        )
        sub = report.per_tenant()["default"]
        assert type(sub) is StreamReport


#: Pre-redesign golden values captured from the original serve_on_*
#: implementations (commit af1c923) for every Table 6 task:
#: (plasticine latency_s, plasticine TFLOPS, plasticine power_w,
#:  plasticine cycles/step, brainwave latency_s, cpu latency_s,
#:  gpu latency_s).
_GOLDEN = {
    ("lstm", 256, 150): (4.08e-05, 3.8550588235294114, 36.5035294117647, 272,
                         0.0004316, 0.01627864, 0.0019250428235294116),
    ("lstm", 512, 25): (1.42e-05, 7.384338028169014, 57.583098591549295, 568,
                        8.06e-05, 0.012075844444444444, 0.0007383618823529412),
    ("lstm", 1024, 25): (3.0575e-05, 13.718083401471791, 96.4078495502862, 1223,
                         8.06e-05, 0.10272509756097563, 0.0011084475294117647),
    ("lstm", 1536, 50): (0.00012515, 15.081396723931281, 103.17868158210149, 2503,
                         0.0001508, 0.4608004390243903, 0.0030605138823529415),
    ("lstm", 2048, 25): (0.000107375, 15.624881024447033, 105.59558556461, 4295,
                         8.06e-05, 0.40962539024390254, 0.0025887901176470593),
    ("gru", 512, 1): (4.5e-07, 6.990506666666667, 56.78542222222222, 450,
                      1.2992e-05, 0.0007505253333333333, 0.0004027008564705882),
    ("gru", 1024, 1500): (0.0015585, 12.110598652550529, 86.5543792107796, 1039,
                          0.0038984, 4.605404390243903, 0.03609513882352942),
    ("gru", 1536, 375): (0.000775125, 13.696928882438316, 94.99429124334785, 2067,
                         0.0009824, 2.590246219512195, 0.016255390588235295),
    ("gru", 2048, 375): (0.001312125, 14.38458073735353, 98.21034581308945, 3499,
                         0.0009824, 4.604279390243903, 0.02597013882352941),
    ("gru", 2560, 375): (0.002002125, 14.729949428731972, 99.68391084472746, 5339,
                         0.0011894, 7.193750609756099, 0.03846052941176471),
}


class TestWrapperParity:
    """serve_on_* wrappers reproduce the pre-redesign numbers exactly."""

    @pytest.mark.parametrize("key", sorted(_GOLDEN), ids=lambda k: f"{k[0]}-h{k[1]}")
    def test_golden_values(self, key):
        from repro.api import (
            serve_on_brainwave,
            serve_on_cpu,
            serve_on_gpu,
            serve_on_plasticine,
        )

        kind, hidden, timesteps = key
        t = RNNTask(kind, hidden, timesteps)
        (p_lat, p_tflops, p_pow, p_cps, bw_lat, cpu_lat, gpu_lat) = _GOLDEN[key]

        plast = serve_on_plasticine(t)
        assert plast.latency_s == pytest.approx(p_lat, rel=1e-12)
        assert plast.effective_tflops == pytest.approx(p_tflops, rel=1e-12)
        assert plast.power_w == pytest.approx(p_pow, rel=1e-12)
        assert plast.cycles_per_step == p_cps
        assert serve_on_brainwave(t).latency_s == pytest.approx(bw_lat, rel=1e-12)
        assert serve_on_cpu(t).latency_s == pytest.approx(cpu_lat, rel=1e-12)
        assert serve_on_gpu(t).latency_s == pytest.approx(gpu_lat, rel=1e-12)

    def test_engine_matches_wrappers(self):
        from repro.api import serve_on_brainwave, serve_on_plasticine

        t = task("lstm", 512, 25)
        assert (
            ServingEngine("plasticine").serve(t).result.latency_s
            == serve_on_plasticine(t).latency_s
        )
        assert ServingEngine("brainwave").serve(t).result == serve_on_brainwave(t)
