"""Unit + property tests for repro.precision.quantize."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PrecisionError
from repro.precision import (
    FP8,
    FP16,
    FP32,
    decode_bits,
    encode_bits,
    qadd,
    qmul,
    quantize,
    quantized_dot,
    ulp,
)

FORMATS = [FP8, FP16, FP32]


class TestQuantizeBasics:
    def test_zero_maps_to_zero(self):
        for fmt in FORMATS:
            assert quantize(0.0, fmt) == 0.0

    def test_exact_values_pass_through(self):
        # 1.0, 0.5, powers of two and small mantissa steps are on the grid.
        vals = np.array([1.0, 0.5, 2.0, 1.25, -1.5, 0.125])
        out = quantize(vals, FP8)
        np.testing.assert_array_equal(out, vals)

    def test_rounds_to_nearest(self):
        # FP8 grid near 1.0 has spacing 1/8.
        assert quantize(1.06, FP8) == 1.0
        assert quantize(1.07, FP8) == 1.125

    def test_round_half_even(self):
        # Midpoint 1.0625 between 1.0 and 1.125 (grid 1/8): ties-to-even
        # picks the even mantissa (1.0).
        assert quantize(1.0625, FP8) == 1.0
        # Midpoint between 1.125 and 1.25 is 1.1875 -> even neighbour 1.25.
        assert quantize(1.1875, FP8) == 1.25

    def test_saturates_at_max(self):
        assert quantize(1e9, FP8) == FP8.max_value
        assert quantize(-1e9, FP8) == -FP8.max_value

    def test_subnormals_are_representable(self):
        sub = FP8.min_subnormal
        assert quantize(sub, FP8) == sub
        assert quantize(sub * 0.49, FP8) == 0.0

    def test_negative_symmetry(self):
        vals = np.linspace(0.01, 400, 97)
        np.testing.assert_array_equal(quantize(-vals, FP8), -quantize(vals, FP8))

    def test_scalar_in_scalar_out(self):
        out = quantize(3.3, FP8)
        assert np.ndim(out) == 0

    def test_rejects_nan_and_inf(self):
        with pytest.raises(PrecisionError):
            quantize(np.array([1.0, np.nan]), FP8)
        with pytest.raises(PrecisionError):
            quantize(np.inf, FP16)

    def test_fp16_matches_numpy_half(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1000, 1000, size=512)
        ours = quantize(x, FP16)
        theirs = x.astype(np.float16).astype(np.float64)
        np.testing.assert_array_equal(ours, theirs)

    def test_fp32_matches_numpy_single(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1e30, 1e30, size=512)
        ours = quantize(x, FP32)
        theirs = x.astype(np.float32).astype(np.float64)
        np.testing.assert_array_equal(ours, theirs)


class TestQuantizeProperties:
    @given(
        st.lists(
            st.floats(min_value=-480, max_value=480, allow_nan=False, width=64),
            min_size=1,
            max_size=64,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_idempotent(self, xs):
        x = np.array(xs)
        once = quantize(x, FP8)
        twice = quantize(once, FP8)
        np.testing.assert_array_equal(once, twice)

    @given(
        st.floats(min_value=2**-6, max_value=240, allow_nan=False, width=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_relative_error_bound_normal_range(self, x):
        q = float(quantize(x, FP8))
        # Round-to-nearest: error at most half a ulp.
        assert abs(x - q) <= 0.5 * float(ulp(x, FP8)) + 1e-18

    @given(
        st.floats(min_value=-480.0, max_value=480.0, allow_nan=False, width=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_monotone_precision_ladder(self, x):
        # Finer formats never do worse than coarser ones.
        e8 = abs(x - float(quantize(x, FP8)))
        e16 = abs(x - float(quantize(x, FP16)))
        e32 = abs(x - float(quantize(x, FP32)))
        assert e32 <= e16 + 1e-18
        assert e16 <= e8 + 1e-18

    @given(
        st.lists(
            st.floats(min_value=-480, max_value=480, allow_nan=False, width=64),
            min_size=1,
            max_size=32,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_encode_decode_roundtrip(self, xs):
        x = np.array(xs)
        q = quantize(x, FP8)
        back = decode_bits(encode_bits(x, FP8), FP8)
        np.testing.assert_array_equal(back, q)


class TestBitEncoding:
    def test_one_encodes_with_bias_exponent(self):
        bits = int(encode_bits(1.0, FP8)[0])
        # sign=0, exponent=bias=7, mantissa=0 -> 0_0111_000
        assert bits == (7 << 3)

    def test_sign_bit(self):
        assert int(encode_bits(-1.0, FP8)[0]) >> 7 == 1
        assert int(encode_bits(1.0, FP8)[0]) >> 7 == 0

    def test_zero_pattern(self):
        assert int(encode_bits(0.0, FP8)[0]) == 0

    def test_max_value_pattern(self):
        bits = int(encode_bits(FP8.max_value, FP8)[0])
        # exponent field = 2^4 - 2 = 14, mantissa all ones.
        assert bits == (14 << 3) | 0b111

    def test_subnormal_pattern(self):
        bits = int(encode_bits(FP8.min_subnormal, FP8)[0])
        assert bits == 1  # exponent 0, mantissa 1

    def test_fp16_bits_match_numpy(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-60000, 60000, size=256)
        ours = encode_bits(x, FP16).astype(np.uint16)
        theirs = x.astype(np.float16).view(np.uint16)
        np.testing.assert_array_equal(ours, theirs)


class TestQuantizedOps:
    def test_qadd_rounds_result(self):
        # 1.0 + 0.05 = 1.05 -> nearest FP8 value is 1.0
        assert qadd(1.0, 0.05, FP8) == 1.0

    def test_qmul_rounds_result(self):
        # 1.125 * 1.125 = 1.265625 -> nearest FP8 grid point is 1.25
        assert qmul(1.125, 1.125, FP8) == 1.25

    def test_quantized_dot_matches_exact_for_exact_inputs(self):
        w = np.array([1.0, 2.0, -1.5, 0.5] * 4)
        x = np.array([1.0, 0.5, 2.0, -1.0] * 4)
        out = quantized_dot(w, x, mul_fmt=FP8, stage1_fmt=FP16, accum_fmt=FP32, lanes=16)
        assert out == pytest.approx(float(w @ x), rel=1e-6)

    def test_quantized_dot_shape_mismatch(self):
        with pytest.raises(PrecisionError):
            quantized_dot(
                np.ones(4), np.ones(5), mul_fmt=FP8, stage1_fmt=FP16, accum_fmt=FP32
            )

    def test_quantized_dot_bad_lanes(self):
        with pytest.raises(PrecisionError):
            quantized_dot(
                np.ones(4), np.ones(4), mul_fmt=FP8, stage1_fmt=FP16,
                accum_fmt=FP32, lanes=0,
            )

    @given(st.integers(min_value=1, max_value=70), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_quantized_dot_error_bounded(self, n, seed):
        rng = np.random.default_rng(seed)
        w = rng.uniform(-1, 1, size=n)
        x = rng.uniform(-1, 1, size=n)
        approx = quantized_dot(w, x, mul_fmt=FP8, stage1_fmt=FP16, accum_fmt=FP32)
        exact = float(w @ x)
        # fp8 has eps 1/8; worst-case relative error per product ~ 2*eps/2,
        # amplified by cancellation — bound against sum of |products|.
        # An input below fp8's smallest subnormal flushes to zero, so each
        # factor also carries up to min_subnormal/2 of absolute error,
        # scaled by the other factor's magnitude (|w|,|x| <= 1 here).
        relative = 0.20 * float(np.abs(w * x).sum())
        underflow = 0.5 * FP8.min_subnormal * float(
            (np.abs(w) + np.abs(x)).sum()
        )
        assert abs(approx - exact) <= relative + underflow + 1e-6

    def test_ulp_scales_with_magnitude(self):
        assert float(ulp(1.0, FP8)) == 0.125
        assert float(ulp(2.0, FP8)) == 0.25
        assert float(ulp(100.0, FP8)) == 8.0
