"""Tests for grid layouts, routing, chip configs, and area/power."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.plasticine.area_power import ActivityProfile, AreaPowerModel
from repro.plasticine.chip import PlasticineConfig
from repro.plasticine.network import GridLayout


class TestGridLayout:
    def test_rnn_variant_ratio(self):
        # Figure 7 / Table 3: 24x24 grid -> 192 PCU, 384 PMU (2:1).
        g = GridLayout.rnn_variant(24, 24)
        assert g.n_pcu == 192
        assert g.n_pmu == 384
        assert g.pmu_to_pcu_ratio == 2.0

    def test_checkerboard_ratio(self):
        g = GridLayout.checkerboard(16, 8)
        assert g.n_pcu == 64
        assert g.n_pmu == 64
        assert g.pmu_to_pcu_ratio == 1.0

    def test_rnn_variant_pattern(self):
        # Row pattern is PMU PCU PMU repeated.
        g = GridLayout.rnn_variant(3, 6)
        pcu_cols = sorted({c for r, c in g.pcus})
        assert pcu_cols == [1, 4]

    def test_rnn_variant_needs_multiple_of_three(self):
        with pytest.raises(ConfigError):
            GridLayout.rnn_variant(4, 8)

    def test_switch_count(self):
        g = GridLayout.rnn_variant(24, 24)
        assert g.n_switches == 25 * 25

    def test_manhattan_and_routes(self):
        g = GridLayout.checkerboard(8, 8)
        assert g.manhattan((0, 0), (3, 4)) == 7
        assert g.route_cycles((0, 0), (3, 4)) == 8  # hops + fabric entry
        assert g.route_cycles((2, 2), (2, 2)) == 0

    def test_diameter(self):
        assert GridLayout.rnn_variant(24, 24).diameter() == 46

    def test_nearest_pmus_sorted_by_distance(self):
        g = GridLayout.rnn_variant(6, 6)
        near = g.nearest_pmus((0, 1), 3)
        assert len(near) == 3
        dists = [g.manhattan((0, 1), p) for p in near]
        assert dists == sorted(dists)
        assert dists[0] == 1  # adjacent PMU

    def test_ascii_diagram(self):
        text = GridLayout.rnn_variant(3, 6).ascii_diagram()
        assert text.splitlines()[0] == "PMU PCU PMU PMU PCU PMU"

    @given(rows=st.integers(1, 10), cols=st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_checkerboard_covers_grid(self, rows, cols):
        g = GridLayout.checkerboard(rows, cols)
        assert g.n_pcu + g.n_pmu == rows * cols
        assert abs(g.n_pcu - g.n_pmu) <= (rows * cols) % 2 + rows * cols % 2 + 1


class TestPlasticineConfig:
    def test_rnn_serving_matches_table3(self):
        chip = PlasticineConfig.rnn_serving()
        d = chip.describe()
        assert d["grid"] == "24x24"
        assert d["n_pcu"] == 192
        assert d["n_pmu"] == 384
        assert d["lanes"] == 16
        assert d["stages"] == 4
        assert d["pmu_capacity_kb"] == 84

    def test_onchip_capacity_matches_table4(self):
        # Table 4: 31.5 MB on-chip scratchpad.
        chip = PlasticineConfig.rnn_serving()
        assert chip.onchip_mb == pytest.approx(31.5, abs=0.01)

    def test_peak_8bit_tflops_matches_table4(self):
        # Table 4: 49 peak 8-bit TFLOPS.
        chip = PlasticineConfig.rnn_serving()
        assert chip.peak_tflops(8) == pytest.approx(49, rel=0.01)

    def test_peak_32bit_tflops_matches_table4(self):
        # Table 4: 12.5 peak 32-bit TFLOPS (we compute 12.3).
        chip = PlasticineConfig.rnn_serving()
        assert chip.peak_tflops(32) == pytest.approx(12.5, rel=0.02)

    def test_dot_lanes_per_pcu(self):
        chip = PlasticineConfig.rnn_serving()
        assert chip.dot_lanes_per_pcu(8) == 64
        assert chip.dot_lanes_per_pcu(32) == 16

    def test_compute_to_memory_ratio_section42(self):
        # Original: 6-stage PCUs at 1:1 -> 6:1; variant: 4-stage at 2:1
        # -> 2:1, matching the RNN's 2N^2 compute : N^2 reads.
        original = PlasticineConfig.isca2017()
        variant = PlasticineConfig.rnn_serving()
        assert original.compute_to_memory_read_ratio() == pytest.approx(6.0)
        assert variant.compute_to_memory_read_ratio() == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            PlasticineConfig(
                name="bad",
                layout=GridLayout.rnn_variant(3, 3),
                pcu=PlasticineConfig.rnn_serving().pcu,
                pmu=PlasticineConfig.rnn_serving().pmu,
                clock_ghz=0,
            )


class TestAreaPower:
    def test_die_area_matches_table4(self):
        # Table 4: Plasticine die area 494.37 mm2 at 28 nm.
        model = AreaPowerModel()
        chip = PlasticineConfig.rnn_serving()
        assert model.chip_area_mm2(chip) == pytest.approx(494.37, rel=0.005)

    def test_area_smaller_than_v100_and_stratix(self):
        # Abstract: 1.6x area advantage vs V100 (815 mm2).
        model = AreaPowerModel()
        area = model.chip_area_mm2(PlasticineConfig.rnn_serving())
        assert 815 / area == pytest.approx(1.65, abs=0.1)
        assert 1200 / area > 2.0  # "more than 2x smaller than Stratix 10"

    def test_tdp_matches_table4(self):
        # Table 4: TDP 160 W.
        model = AreaPowerModel()
        assert model.chip_tdp_w(PlasticineConfig.rnn_serving()) == pytest.approx(
            160, rel=0.02
        )

    def test_power_monotone_in_activity(self):
        model = AreaPowerModel()
        chip = PlasticineConfig.rnn_serving()
        low = model.power_w(chip, ActivityProfile(pcu_busy=10, pmu_busy=10))
        high = model.power_w(chip, ActivityProfile(pcu_busy=150, pmu_busy=300))
        assert low < high < model.chip_tdp_w(chip)

    def test_activity_bounds_checked(self):
        model = AreaPowerModel()
        chip = PlasticineConfig.rnn_serving()
        with pytest.raises(ConfigError):
            model.power_w(chip, ActivityProfile(pcu_busy=500, pmu_busy=0))
        with pytest.raises(ConfigError):
            ActivityProfile(pcu_busy=-1, pmu_busy=0)

    def test_idle_power_is_static(self):
        model = AreaPowerModel()
        chip = PlasticineConfig.rnn_serving()
        assert model.power_w(chip, ActivityProfile(0, 0)) == model.static_w

    def test_performance_per_watt(self):
        model = AreaPowerModel()
        chip = PlasticineConfig.rnn_serving()
        ppw = model.performance_per_watt(chip, 15.0, ActivityProfile(100, 200))
        assert ppw > 0
