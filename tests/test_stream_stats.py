"""StreamSummary vs StreamReport parity, memoization, and streaming paths.

The O(1)-memory summary (``serve_stream(..., mode="summary")``) must be
a drop-in mirror of the materialized report: every counter-derived
figure **exactly** equal (request counts, SLO attainment, batch sizes,
padding waste — these are integer/count arithmetic in both
representations), float means equal to reordering, and quantiles inside
the histogram estimator's tolerance.  A hand-rolled seeded fuzz suite
drives both representations over the same streams across schedulers,
batchers, tenants, priorities, per-request SLOs, and length
distributions, including the per-tenant/per-priority/per-length-band
slice rollups and their sum invariants.

Alongside it: the per-shape result memo (LRU, shared across fleet
replicas), the ``presorted=True`` lazy validation fast path, the
``materialize=False`` lazy generators (bit-identical to their eager
forms), streaming trace replay, and the incremental least-loaded
dispatcher's exact parity with the naive O(replicas) scan.
"""

import math
import random

import pytest

from repro.errors import ServingError
from repro.serving import (
    Autoscaler,
    Fleet,
    ServeRequest,
    ServingEngine,
    StreamSummary,
    UniformLength,
    ZipfLength,
    diurnal_arrivals,
    iter_trace,
    mix,
    mmpp_arrivals,
    normalize_arrivals,
    poisson_arrivals,
    record_trace,
    replay_trace,
    run_stream,
    uniform_arrivals,
)
from repro.serving.batching import NoneBatcher
from repro.serving.scheduler import make_scheduler
from repro.serving.stats import EXACT_SAMPLE_CAP, percentile
from repro.workloads.deepbench import task

T = task("lstm", 512, 25)
GRU = task("gru", 512, 25)

#: Histogram bucket ratio is 10^(1/128) ~ 1.8%; allow the full bucket.
QUANTILE_RTOL = 0.02


def _assert_quantile_close(estimate, sojourns_ms, q):
    """The estimate must land between the two order statistics the exact
    interpolation uses, within one histogram bucket of slack."""
    values = sorted(sojourns_ms)
    rank = (q / 100.0) * (len(values) - 1)
    lo = values[math.floor(rank)] * (1 - QUANTILE_RTOL)
    hi = values[math.ceil(rank)] * (1 + QUANTILE_RTOL)
    assert lo <= estimate <= hi, (estimate, lo, hi, q)


def _assert_mirrors(report, summary, *, check_slo=True):
    """Every shared figure: counters exact, means to reordering,
    quantiles within estimator tolerance."""
    assert summary.n_requests == report.n_requests
    assert summary.mean_batch_size == report.mean_batch_size
    assert summary.max_batch_size == report.max_batch_size
    assert summary.padding_waste_frac == report.padding_waste_frac
    assert summary.mean_ms == pytest.approx(report.mean_ms, rel=1e-9)
    assert summary.mean_queue_delay_ms == pytest.approx(
        report.mean_queue_delay_ms, rel=1e-9, abs=1e-15
    )
    assert summary.mean_service_ms == pytest.approx(
        report.mean_service_ms, rel=1e-9
    )
    assert summary.throughput_rps == pytest.approx(
        report.throughput_rps, rel=1e-9
    )
    assert summary.offered_rate_per_s == pytest.approx(
        report.offered_rate_per_s, rel=1e-9
    )
    assert summary.max_rate_per_s == pytest.approx(
        report.max_rate_per_s, rel=1e-9
    )
    assert summary.saturated == report.saturated
    if check_slo:
        assert summary.slo_miss_rate == report.slo_miss_rate
        assert summary.slo_attainment == report.slo_attainment
    sojourns = [r.sojourn_ms for r in report.responses]
    for q in (50, 90, 99):
        _assert_quantile_close(summary.percentile_ms(q), sojourns, q)


class TestSummaryMirrorsReport:
    """Seeded fuzz: the summary and the report see the same stream."""

    SCENARIOS = list(range(10))

    def _scenario(self, seed):
        rng = random.Random(seed)
        platform = rng.choice(["gpu", "brainwave"])
        scheduler = rng.choice(["fifo", "edf", "priority", "sjf"])
        batcher = rng.choice(["none", "size-cap", "pad", "bucket"])
        lengths = rng.choice(
            [None, UniformLength(10, 60), ZipfLength(8, 120, alpha=1.4)]
        )
        n = rng.choice([300, 800])
        rate = rng.choice([400.0, 2000.0, 6000.0])
        streams = [
            poisson_arrivals(
                T,
                rate_per_s=rate,
                n_requests=n,
                seed=seed,
                tenant="alpha",
                priority=0,
                lengths=lengths,
            ),
            mmpp_arrivals(
                GRU,
                quiet_rate_per_s=rate / 2,
                burst_rate_per_s=rate * 4,
                n_requests=n // 2,
                seed=seed + 1,
                tenant="beta",
                priority=1,
                slo_ms=rng.choice([4.0, 25.0]),
                lengths=lengths,
            ),
        ]
        arrivals = mix(*streams)
        kwargs = dict(
            slo_ms=10.0,
            scheduler=scheduler,
            batcher=batcher,
            max_batch=rng.choice([2, 8]),
        )
        return platform, arrivals, kwargs

    @pytest.mark.parametrize("seed", SCENARIOS)
    def test_fuzzed_stream_mirrors(self, seed):
        platform, arrivals, kwargs = self._scenario(seed)
        report = ServingEngine(platform).serve_stream(arrivals, **kwargs)
        summary = ServingEngine(platform).serve_stream(
            arrivals, mode="summary", **kwargs
        )
        _assert_mirrors(report, summary)
        assert summary.platform == report.platform
        assert summary.scheduler == report.scheduler
        assert summary.batcher == report.batcher

    @pytest.mark.parametrize("seed", SCENARIOS[:4])
    def test_slices_mirror_and_sum(self, seed):
        platform, arrivals, kwargs = self._scenario(seed)
        report = ServingEngine(platform).serve_stream(arrivals, **kwargs)
        summary = ServingEngine(platform).serve_stream(
            arrivals, mode="summary", **kwargs
        )
        for slicer in ("per_tenant", "per_priority", "per_length_band"):
            report_slices = getattr(report, slicer)()
            summary_slices = getattr(summary, slicer)()
            assert set(report_slices) == set(summary_slices)
            assert sum(
                s.n_requests for s in summary_slices.values()
            ) == summary.n_requests
            for key, sub_report in report_slices.items():
                _assert_mirrors(sub_report, summary_slices[key])

    def test_presorted_summary_identical_to_unsorted(self):
        arrivals = poisson_arrivals(T, rate_per_s=2000, n_requests=500, seed=2)
        a = ServingEngine("gpu").serve_stream(
            arrivals, slo_ms=5.0, mode="summary"
        )
        b = ServingEngine("gpu").serve_stream(
            arrivals, slo_ms=5.0, mode="summary", presorted=True
        )
        assert a.n_requests == b.n_requests
        assert a.mean_ms == b.mean_ms
        assert a.p99_ms == b.p99_ms
        assert a.slo_attainment == b.slo_attainment


class TestSummaryExactSmallStreams:
    def test_small_stream_percentiles_exact(self):
        # Every class stays inside its reservoir -> exact interpolation.
        arrivals = poisson_arrivals(
            T, rate_per_s=3000, n_requests=EXACT_SAMPLE_CAP, seed=5
        )
        report = ServingEngine("gpu").serve_stream(arrivals, slo_ms=5.0)
        summary = ServingEngine("gpu").serve_stream(
            arrivals, slo_ms=5.0, mode="summary"
        )
        assert summary.p50_ms == report.p50_ms
        assert summary.p99_ms == report.p99_ms
        assert summary.min_sojourn_ms == min(r.sojourn_ms for r in report.responses)
        assert summary.max_sojourn_ms == max(r.sojourn_ms for r in report.responses)

    def test_small_slices_of_big_streams_stay_exact(self):
        # A rare tenant inside a large stream keeps exact percentiles as
        # long as its own classes stay inside their reservoirs.
        big = poisson_arrivals(
            T, rate_per_s=4000, n_requests=1500, seed=1, tenant="main"
        )
        rare = poisson_arrivals(
            GRU, rate_per_s=20, n_requests=30, seed=2, tenant="rare"
        )
        arrivals = mix(big, rare)
        report = ServingEngine("gpu").serve_stream(arrivals, slo_ms=10.0)
        summary = ServingEngine("gpu").serve_stream(
            arrivals, slo_ms=10.0, mode="summary"
        )
        assert (
            summary.per_tenant()["rare"].p99_ms
            == report.per_tenant()["rare"].p99_ms
        )

    def test_single_request(self):
        summary = ServingEngine("gpu").serve_stream(
            [ServeRequest(task=T)], slo_ms=5.0, mode="summary"
        )
        assert summary.n_requests == 1
        assert summary.p50_ms == summary.p99_ms == summary.mean_ms
        assert summary.offered_rate_per_s == 0.0


class TestSummaryErrors:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ServingError, match="unknown stream mode"):
            ServingEngine("gpu").serve_stream([T], mode="streaming")

    def test_empty_summary_finalize_raises(self):
        with pytest.raises(ServingError, match="no responses"):
            StreamSummary("gpu").finalize()

    def test_miss_rate_without_slo_raises(self):
        summary = ServingEngine("gpu").serve_stream([T], mode="summary")
        with pytest.raises(ServingError, match="no SLO"):
            summary.slo_miss_rate

    def test_length_band_rebucketing_rejected(self):
        summary = ServingEngine("gpu").serve_stream(
            [T], slo_ms=5.0, mode="summary"
        )
        with pytest.raises(ServingError, match="band"):
            summary.per_length_band(band_base=10.0)

    def test_percentile_helper_empty(self):
        with pytest.raises(ServingError, match="empty"):
            percentile([], 50)


class TestHistogramEdges:
    def test_bucket_index_clamps_both_ends(self):
        from repro.serving.stats import _HIST_BUCKETS, _bucket_index

        assert _bucket_index(1e-9) == 0
        assert _bucket_index(1e12) == _HIST_BUCKETS - 1
        assert 0 < _bucket_index(1.0) < _HIST_BUCKETS - 1

    def test_out_of_range_sojourns_still_bounded_by_min_max(self):
        # Values beyond the histogram range clamp into the edge buckets;
        # the quantile estimate is then clamped to the exact min/max.
        summary = StreamSummary("gpu", slo_ms=None)
        acc_values = [1e-7] * 60 + [1e9] * 60  # force a spill, both ends
        for i, v in enumerate(acc_values):
            req = ServeRequest(task=T, arrival_s=float(i), request_id=i)
            result = ServingEngine("gpu").serve(T).result
            summary.observe_served(req, result, float(i), float(i) + v / 1e3, 1)
        summary.finalize()
        assert summary.min_sojourn_ms <= summary.p50_ms <= summary.max_sojourn_ms
        assert summary.p99_ms <= summary.max_sojourn_ms


class TestFleetSummary:
    def test_replica_counts_match_full_report(self):
        arrivals = poisson_arrivals(T, rate_per_s=5000, n_requests=400, seed=11)
        report = Fleet("gpu", replicas=3, policy="least-loaded").serve_stream(
            arrivals, slo_ms=5.0
        )
        summary = Fleet("gpu", replicas=3, policy="least-loaded").serve_stream(
            arrivals, slo_ms=5.0, mode="summary"
        )
        assert summary.per_replica_counts == report.per_replica_counts
        assert summary.replicas == report.replicas
        assert summary.policy == "least-loaded"
        _assert_mirrors(report, summary)

    def test_single_replica_fast_paths_count_assignments(self):
        # The no-heap fast paths must still feed per-replica counts.
        arrivals = poisson_arrivals(T, rate_per_s=900, n_requests=50, seed=2)
        for scheduler in ("fifo", "edf"):
            summary = Fleet("gpu", replicas=1).serve_stream(
                arrivals, slo_ms=5.0, scheduler=scheduler, mode="summary"
            )
            assert summary.per_replica_counts == (50,)

    def test_autoscaled_summary_carries_scale_events(self):
        arrivals = poisson_arrivals(T, rate_per_s=6000, n_requests=600, seed=4)
        fleet = Fleet("gpu", replicas=1)
        scaler = Autoscaler(min_replicas=1, max_replicas=4)
        report = fleet.serve_stream(arrivals, slo_ms=5.0, autoscaler=scaler)
        summary = Fleet("gpu", replicas=1).serve_stream(
            arrivals,
            slo_ms=5.0,
            autoscaler=Autoscaler(min_replicas=1, max_replicas=4),
            mode="summary",
        )
        assert summary.scale_events == report.scale_events
        assert summary.replicas == report.replicas
        assert summary.active_replicas == report.active_replicas


class TestResultMemo:
    def test_memo_returns_identical_object(self):
        engine = ServingEngine("gpu")
        first = engine.result_for(T)
        assert engine.result_for(T) is first
        assert engine.serve_batched(T, 4) is engine.serve_batched(T, 4)

    def test_memo_counts_like_prepare_hits(self):
        engine = ServingEngine("gpu")
        for _ in range(5):
            engine.result_for(T)
        assert engine.cache_stats.misses == 1
        assert engine.cache_stats.hits == 4

    def test_memoize_off_recomputes_equal_results(self):
        engine = ServingEngine("gpu", memoize=False)
        first = engine.result_for(T)
        second = engine.result_for(T)
        assert first is not second
        assert first == second

    def test_memo_capacity_evicts_lru(self):
        engine = ServingEngine("gpu", memo_capacity=2)
        a = engine.result_for(T.with_timesteps(10))
        engine.result_for(T.with_timesteps(20))
        # Touch the first shape so it is most-recently-used...
        assert engine.result_for(T.with_timesteps(10)) is a
        engine.result_for(T.with_timesteps(30))  # evicts timesteps=20
        assert engine.result_for(T.with_timesteps(10)) is a  # survived
        assert len(engine._memo) == 2

    def test_memo_capacity_validated(self):
        with pytest.raises(ServingError, match="memo_capacity"):
            ServingEngine("gpu", memo_capacity=0)

    def test_clear_cache_clears_memo(self):
        engine = ServingEngine("gpu")
        first = engine.result_for(T)
        engine.clear_cache()
        assert engine.result_for(T) is not first
        assert engine.cache_stats.misses == 1

    def test_fleet_replicas_share_memo(self):
        fleet = Fleet("gpu", replicas=3)
        arrivals = poisson_arrivals(T, rate_per_s=5000, n_requests=60, seed=0)
        fleet.serve_stream(arrivals, slo_ms=5.0)
        # One replica consulted the cost model once; the whole fleet
        # shares that entry.
        assert sum(e.cache_stats.misses for e in fleet.engines) == 1
        assert len(fleet._memos["gpu"]) == 1

    def test_stream_timeline_identical_with_and_without_memo(self):
        arrivals = poisson_arrivals(T, rate_per_s=2000, n_requests=300, seed=9)
        with_memo = ServingEngine("gpu").serve_stream(arrivals, slo_ms=5.0)
        without = ServingEngine("gpu", memoize=False).serve_stream(
            arrivals, slo_ms=5.0
        )
        assert with_memo.responses == without.responses


class TestPresortedValidation:
    def test_presorted_returns_lazy_iterator(self):
        arrivals = uniform_arrivals(T, rate_per_s=10, n_requests=3)
        lazy = normalize_arrivals(arrivals, presorted=True)
        assert not isinstance(lazy, list)
        assert [r.request_id for r in lazy] == [0, 1, 2]

    def test_out_of_order_arrivals_rejected(self):
        reqs = [
            ServeRequest(task=T, arrival_s=0.2, request_id=0),
            ServeRequest(task=T, arrival_s=0.1, request_id=1),
        ]
        with pytest.raises(ServingError, match="out of order"):
            list(normalize_arrivals(reqs, presorted=True))

    def test_non_monotone_ids_rejected(self):
        reqs = [
            ServeRequest(task=T, arrival_s=0.1, request_id=5),
            ServeRequest(task=T, arrival_s=0.2, request_id=5),
        ]
        with pytest.raises(ServingError, match="strictly increasing"):
            list(normalize_arrivals(reqs, presorted=True))

    def test_empty_presorted_stream_rejected_by_loop(self):
        with pytest.raises(ServingError, match="at least one request"):
            ServingEngine("gpu").serve_stream(
                iter(()), mode="summary", presorted=True
            )

    def test_presorted_full_mode_bit_identical(self):
        arrivals = poisson_arrivals(T, rate_per_s=1500, n_requests=400, seed=3)
        classic = ServingEngine("gpu").serve_stream(arrivals, slo_ms=5.0)
        lazy = ServingEngine("gpu").serve_stream(
            iter(arrivals), slo_ms=5.0, presorted=True
        )
        assert classic.responses == lazy.responses


class TestLazyGenerators:
    @pytest.mark.parametrize("lengths", [None, ZipfLength(8, 90)])
    def test_poisson_lazy_equals_eager(self, lengths):
        kwargs = dict(
            rate_per_s=700.0, n_requests=2000, seed=6, lengths=lengths,
            tenant="t", priority=2, slo_ms=9.0,
        )
        eager = poisson_arrivals(T, **kwargs)
        lazy = poisson_arrivals(T, materialize=False, **kwargs)
        assert tuple(lazy) == eager

    def test_uniform_lazy_equals_eager(self):
        eager = uniform_arrivals(
            T, rate_per_s=50, n_requests=200, lengths=UniformLength(5, 40)
        )
        lazy = uniform_arrivals(
            T,
            rate_per_s=50,
            n_requests=200,
            lengths=UniformLength(5, 40),
            materialize=False,
        )
        assert tuple(lazy) == eager

    def test_mmpp_lazy_equals_eager(self):
        kwargs = dict(
            quiet_rate_per_s=100.0, burst_rate_per_s=5000.0,
            n_requests=300, seed=8,
        )
        assert tuple(
            mmpp_arrivals(T, materialize=False, **kwargs)
        ) == mmpp_arrivals(T, **kwargs)

    def test_diurnal_lazy_equals_eager(self):
        kwargs = dict(
            base_rate_per_s=50.0, peak_rate_per_s=800.0, period_s=1.5,
            n_requests=300, seed=2,
        )
        assert tuple(
            diurnal_arrivals(T, materialize=False, **kwargs)
        ) == diurnal_arrivals(T, **kwargs)

    def test_lazy_mix_equals_eager_mix(self):
        def streams(materialize):
            return [
                poisson_arrivals(
                    T, rate_per_s=300, n_requests=150, seed=1, tenant="a",
                    materialize=materialize,
                ),
                poisson_arrivals(
                    GRU, rate_per_s=500, n_requests=150, seed=2, tenant="b",
                    slo_ms=3.0, materialize=materialize,
                ),
            ]

        eager = mix(*streams(True))
        lazy = mix(*streams(False), presorted=True)
        assert tuple(lazy) == eager

    def test_lazy_stream_through_summary_mode(self):
        eager = poisson_arrivals(T, rate_per_s=1500, n_requests=800, seed=12)
        report = ServingEngine("gpu").serve_stream(eager, slo_ms=5.0)
        summary = ServingEngine("gpu").serve_stream(
            poisson_arrivals(
                T, rate_per_s=1500, n_requests=800, seed=12, materialize=False
            ),
            slo_ms=5.0,
            mode="summary",
            presorted=True,
        )
        _assert_mirrors(report, summary)


class TestStreamingTraces:
    def test_iter_trace_matches_replay(self, tmp_path):
        reqs = poisson_arrivals(
            T, rate_per_s=200, n_requests=50, seed=4, slo_ms=7.0
        )
        path = record_trace(reqs, tmp_path / "t.jsonl")
        assert tuple(iter_trace(path)) == replay_trace(path) == reqs

    def test_record_trace_from_lazy_generator(self, tmp_path):
        lazy = poisson_arrivals(
            T, rate_per_s=200, n_requests=50, seed=4, materialize=False
        )
        path = record_trace(lazy, tmp_path / "t.jsonl")
        assert replay_trace(path) == poisson_arrivals(
            T, rate_per_s=200, n_requests=50, seed=4
        )

    def test_record_empty_trace_leaves_no_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        with pytest.raises(ServingError, match="empty trace"):
            record_trace(iter(()), path)
        assert not path.exists()

    def test_failed_recording_preserves_existing_trace(self, tmp_path):
        reqs = uniform_arrivals(T, rate_per_s=10, n_requests=3)
        path = record_trace(reqs, tmp_path / "keep.jsonl")
        with pytest.raises(ServingError, match="empty trace"):
            record_trace(iter(()), path)  # must not clobber the old trace
        assert replay_trace(path) == reqs

        def exploding():
            yield reqs[0]
            raise RuntimeError("generator died mid-stream")

        with pytest.raises(RuntimeError):
            record_trace(exploding(), path)
        assert replay_trace(path) == reqs  # still the original, whole
        assert not (tmp_path / "keep.jsonl.partial").exists()

    def test_iter_trace_missing_file(self):
        with pytest.raises(ServingError, match="not found"):
            iter_trace("no/such/trace.jsonl")

    def test_replayed_trace_streams_through_summary(self, tmp_path):
        reqs = mix(
            poisson_arrivals(T, rate_per_s=800, n_requests=120, seed=1,
                             tenant="a"),
            poisson_arrivals(GRU, rate_per_s=400, n_requests=80, seed=2,
                             tenant="b"),
        )
        path = record_trace(reqs, tmp_path / "mix.jsonl")
        report = ServingEngine("gpu").serve_stream(reqs, slo_ms=5.0)
        summary = ServingEngine("gpu").serve_stream(
            iter_trace(path), slo_ms=5.0, mode="summary", presorted=True
        )
        _assert_mirrors(report, summary)


class TestLeastLoadedDispatcherParity:
    """The incremental heap dispatcher must pick the exact replica the
    naive O(replicas) scan picked, on every arrival."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("replicas", [2, 5])
    def test_matches_naive_scan(self, seed, replicas):
        arrivals = poisson_arrivals(
            T, rate_per_s=3000.0 * replicas, n_requests=400, seed=seed
        )
        fleet = Fleet("gpu", replicas=replicas, policy="least-loaded")
        report = fleet.serve_stream(arrivals, slo_ms=5.0)

        def naive(seq, req, work_until):
            return min(
                range(len(work_until)), key=lambda j: (work_until[j], j)
            )

        reference = run_stream(
            arrivals,
            engines=[ServingEngine("gpu") for _ in range(replicas)],
            schedulers=[make_scheduler("fifo") for _ in range(replicas)],
            dispatch=naive,
            slo_ms=5.0,
        )
        assert list(report.assignments) == reference.assignments
        assert list(report.responses) == reference.responses


class _HeapForcedNone(NoneBatcher):
    """Overriding hold_until (same value) forces the general heap loop."""

    def hold_until(self, queue, now):
        return now


class TestFastPathParity:
    """The specialized single-replica loops must be bit-identical to the
    general heap loop on the same stream."""

    @pytest.mark.parametrize("scheduler", ["fifo", "edf", "sjf"])
    @pytest.mark.parametrize("rate", [900.0, 6000.0])
    def test_single_replica_fast_paths_match_heap(self, scheduler, rate):
        arrivals = poisson_arrivals(T, rate_per_s=rate, n_requests=500, seed=7)
        fast = ServingEngine("gpu").serve_stream(
            arrivals, slo_ms=5.0, scheduler=scheduler
        )
        heap = ServingEngine("gpu").serve_stream(
            arrivals,
            slo_ms=5.0,
            scheduler=scheduler,
            batcher=lambda: _HeapForcedNone(),
        )
        assert fast.responses == heap.responses

    def test_batched_single_replica_matches_heap(self):
        arrivals = poisson_arrivals(
            GRU, rate_per_s=8000, n_requests=400, seed=3,
            lengths=ZipfLength(10, 80),
        )
        fast = ServingEngine("brainwave").serve_stream(
            arrivals, slo_ms=50.0, batcher="bucket", max_batch=8
        )
        # Same policy, but with hold_until overridden (returning `now`
        # unchanged), which forces the general heap loop.
        heap = ServingEngine("brainwave").serve_stream(
            arrivals, slo_ms=50.0, batcher=_forced_bucket
        )
        assert fast.responses == heap.responses


def _forced_bucket():
    from repro.serving.batching import BucketBatcher

    class _HeapForcedBucket(BucketBatcher):
        def hold_until(self, queue, now):
            return now

    return _HeapForcedBucket(max_batch=8)


class TestRequestCountParsing:
    def test_scientific_notation(self):
        from repro.harness.cli import _request_count

        assert _request_count("1e6") == 1_000_000
        assert _request_count("2.5e3") == 2500
        assert _request_count("1000") == 1000

    @pytest.mark.parametrize("bad", ["0", "-5", "1.5", "abc", "1e-3"])
    def test_rejects_non_counts(self, bad):
        import argparse

        from repro.harness.cli import _request_count

        with pytest.raises(argparse.ArgumentTypeError):
            _request_count(bad)

    def test_cli_summary_mode_end_to_end(self, capsys):
        from repro.harness.cli import main

        assert main([
            "serve", "lstm", "512", "--platform", "gpu", "--stream",
            "--rate", "1000", "--requests", "2e3", "--slo-ms", "5",
            "--mode", "summary",
        ]) == 0
        out = capsys.readouterr().out
        assert "summary mode" in out
        assert "2000 requests" in out
