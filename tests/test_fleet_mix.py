"""Heterogeneous fleets: mix parsing, cost-aware dispatch, energy/TCO
accounting — plus regression tests for the dispatcher edge paths (an
active set resized to zero, resize-down → resize-up heap cycles)."""

import pytest

from repro.errors import ServingError
from repro.serving import (
    Fleet,
    ServeRequest,
    mix,
    parse_fleet_mix,
    poisson_arrivals,
)
from repro.serving.fleet import _LeastLoadedDispatcher, _RoundRobinDispatcher
from repro.workloads.deepbench import task

T = task("lstm", 512, 25)
REQ = ServeRequest(task=T, tenant="probe")


class TestDispatcherEdgePaths:
    """The two historical crash paths, now clean ServingErrors."""

    def test_round_robin_zero_active_raises_cleanly(self):
        d = _RoundRobinDispatcher()
        d.resize(2, [0.0, 0.0])
        assert d.choose(0, REQ) == 0
        d.resize(0, [0.0, 0.0])
        # Previously ``seq % 0`` — a bare ZeroDivisionError from deep in
        # the event loop.
        with pytest.raises(ServingError, match="no active replicas"):
            d.choose(1, REQ)
        d.resize(2, [0.0, 0.0])
        assert d.choose(2, REQ) == 0  # dispatch resumes after re-growth

    def test_least_loaded_zero_active_raises_cleanly(self):
        d = _LeastLoadedDispatcher()
        d.resize(1, [0.0])
        d.resize(0, [0.0])
        with pytest.raises(ServingError, match="no active replicas"):
            d.choose(0, REQ)

    def test_least_loaded_resize_cycle_prunes_stale_entries(self):
        d = _LeastLoadedDispatcher()
        d.resize(2, [0.0, 0.0])
        d.assign(0, 3.0)
        d.assign(1, 4.0)
        d.resize(0, [3.0, 4.0])
        d.resize(2, [3.0, 4.0])
        # The pre-cycle (0.0, j) entries are stale; choose must skip
        # them and land on the lowest live projection.
        assert d.choose(0, REQ) == 0
        d.assign(0, 9.0)
        assert d.choose(1, REQ) == 1

    def test_least_loaded_empty_heap_reseeds(self):
        d = _LeastLoadedDispatcher()
        d.resize(2, [0.0, 0.0])
        d.assign(0, 5.0)
        d.assign(1, 2.0)
        # What a crash storm can do: every heap entry invalidated at
        # once.  Previously heap[0] on the drained heap -> IndexError.
        d._heap.clear()
        assert d.choose(0, REQ) == 1  # re-seeded from live projections


class TestParseFleetMix:
    def test_expansion(self):
        assert parse_fleet_mix("plasticine:2,brainwave:1,gpu") == (
            "plasticine", "plasticine", "brainwave", "gpu",
        )

    def test_whitespace_tolerated(self):
        assert parse_fleet_mix(" gpu : 2 , cpu ") == ("gpu", "gpu", "cpu")

    def test_empty_spec_rejected(self):
        with pytest.raises(ServingError, match="empty fleet mix"):
            parse_fleet_mix("  ")

    def test_empty_entry_rejected(self):
        with pytest.raises(ServingError, match="empty platform entry"):
            parse_fleet_mix("gpu,,cpu")

    def test_bad_count_rejected(self):
        with pytest.raises(ServingError, match="bad replica count"):
            parse_fleet_mix("gpu:x")

    def test_zero_count_rejected(self):
        with pytest.raises(ServingError, match=">= 1"):
            parse_fleet_mix("gpu:0")


class TestMixedConstruction:
    def test_roster_and_label(self):
        fleet = Fleet("gpu:2,cpu:1")
        assert fleet.n_replicas == 3
        assert fleet.replica_platforms == ("gpu", "gpu", "cpu")
        assert fleet.platform_name == "gpu:2,cpu:1"
        assert fleet.is_heterogeneous

    def test_single_platform_spec_is_homogeneous(self):
        fleet = Fleet("gpu:3")
        assert not fleet.is_heterogeneous
        assert fleet.platform_name == "gpu"
        assert fleet.n_replicas == 3

    def test_replicas_contradiction_rejected(self):
        with pytest.raises(ServingError, match="contradicts"):
            Fleet(["gpu", "cpu"], replicas=3)

    def test_platform_options_with_mix_rejected(self):
        with pytest.raises(ServingError, match="platform options"):
            Fleet("gpu:1,cpu:1", bits=16)

    def test_unknown_platform_in_mix_propagates(self):
        with pytest.raises(ServingError, match="unknown platform"):
            Fleet("gpu:1,tpu:1")

    def test_unknown_affinity_key_rejected(self):
        with pytest.raises(ServingError, match="unknown affinity key"):
            Fleet("gpu:1,cpu:1", policy="affinity", affinity_by="color")


class TestHomogeneousParity:
    """A mix spec naming one platform is the same fleet, bit for bit."""

    @pytest.mark.parametrize("policy", ("round-robin", "least-loaded"))
    def test_mix_spec_matches_replicas_kwarg(self, policy):
        arrivals = poisson_arrivals(T, rate_per_s=2000, n_requests=150, seed=5)
        a = Fleet("gpu:3", policy=policy).serve_stream(arrivals, slo_ms=5.0)
        b = Fleet("gpu", replicas=3, policy=policy).serve_stream(
            arrivals, slo_ms=5.0
        )
        assert a.assignments == b.assignments
        assert [(r.start_s, r.finish_s) for r in a.responses] == [
            (r.start_s, r.finish_s) for r in b.responses
        ]
        assert a.p99_ms == b.p99_ms
        assert a.max_rate_per_s == b.max_rate_per_s

    def test_homogeneous_report_keeps_classic_fields(self):
        arrivals = poisson_arrivals(T, rate_per_s=1000, n_requests=80, seed=1)
        report = Fleet("gpu", replicas=2).serve_stream(arrivals, slo_ms=5.0)
        assert report.platforms == ()  # roster only recorded for mixes
        assert report.replica_platforms == ("gpu", "gpu")
        # The pre-heterogeneity capacity formula, exactly.
        assert report.max_rate_per_s == pytest.approx(
            report.n_replicas / (report.mean_service_ms / 1e3)
        )


class TestHeterogeneousReport:
    ARRIVALS = poisson_arrivals(T, rate_per_s=3000, n_requests=200, seed=2)

    def test_max_rate_sums_per_replica_rates(self):
        report = Fleet("brainwave:1,gpu:1", policy="least-loaded").serve_stream(
            self.ARRIVALS, slo_ms=5.0
        )
        service: dict = {}
        count: dict = {}
        for r in report.responses:
            key = r.result.platform
            service[key] = service.get(key, 0.0) + r.service_s
            count[key] = count.get(key, 0) + 1
        fleet_mean = sum(service.values()) / report.n_requests
        expected = sum(
            1.0 / (service[name] / count[name]) if count.get(name) else
            1.0 / fleet_mean
            for name in report.replica_platforms
        )
        assert report.max_rate_per_s == pytest.approx(expected)

    def test_energy_and_tco_accounting(self):
        from repro.platforms import tdp_of

        report = Fleet("brainwave:1,gpu:1", policy="least-loaded").serve_stream(
            self.ARRIVALS, slo_ms=5.0
        )
        expected = sum(
            r.service_s * tdp_of(r.result.platform) for r in report.responses
        )
        assert report.energy_j == pytest.approx(expected)
        assert report.joules_per_request == pytest.approx(
            expected / report.n_requests
        )
        assert report.fleet_watt_hours > 0
        assert report.cost_usd_per_1m_requests > 0

    def test_per_platform_counts_sum_to_total(self):
        report = Fleet("brainwave:1,gpu:1", policy="least-loaded").serve_stream(
            self.ARRIVALS, slo_ms=5.0
        )
        counts = report.per_platform_counts
        assert sum(counts.values()) == report.n_requests
        assert set(counts) <= {"brainwave", "gpu"}

    def test_summary_mode_matches_full_counters(self):
        full = Fleet("brainwave:1,gpu:1", policy="least-loaded").serve_stream(
            self.ARRIVALS, slo_ms=5.0
        )
        summ = Fleet("brainwave:1,gpu:1", policy="least-loaded").serve_stream(
            self.ARRIVALS, slo_ms=5.0, mode="summary"
        )
        assert summ.n_requests == full.n_requests
        assert summ.per_platform_counts == full.per_platform_counts
        assert summ.energy_j == pytest.approx(full.energy_j)
        assert summ.max_rate_per_s == pytest.approx(full.max_rate_per_s)
        assert summ.platform == full.platform == "brainwave:1,gpu:1"


class TestAffinityRouting:
    def test_tenant_affinity_pins_one_platform_per_tenant(self):
        arrivals = mix(
            *(
                poisson_arrivals(
                    T, rate_per_s=500, n_requests=60, seed=i, tenant=f"t{i}"
                )
                for i in range(3)
            )
        )
        report = Fleet(
            "brainwave:2,gpu:2", policy="affinity", affinity_by="tenant"
        ).serve_stream(arrivals, slo_ms=50.0)
        assert report.policy == "affinity"
        seen: dict = {}
        for r in report.responses:
            seen.setdefault(r.request.tenant, set()).add(r.result.platform)
        assert len(seen) == 3
        assert all(len(platforms) == 1 for platforms in seen.values())

    def test_task_affinity_keeps_length_variants_together(self):
        short = task("lstm", 512, 25)
        arrivals = mix(
            poisson_arrivals(
                short, rate_per_s=400, n_requests=40, seed=0, tenant="a"
            ),
            poisson_arrivals(
                short.with_timesteps(50), rate_per_s=400, n_requests=40,
                seed=1, tenant="b",
            ),
        )
        report = Fleet(
            "brainwave:1,gpu:1", policy="affinity", affinity_by="task"
        ).serve_stream(arrivals, slo_ms=50.0)
        # One task family -> one pinned platform, whatever the lengths.
        assert len({r.result.platform for r in report.responses}) == 1
