"""Unit + property tests for blocked floating point and packed structs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PrecisionError
from repro.precision import (
    BW_BFP,
    BlockedFloatFormat,
    BlockedVector,
    PACKED_2xFP16,
    PACKED_4xFP8,
    PackedArray,
)
from repro.precision.packed import PackedFormat
from repro.precision.formats import FP8, FloatFormat


class TestBlockedFormat:
    def test_bw_published_config(self):
        assert BW_BFP.block_size == 400
        assert BW_BFP.exponent_bits == 5
        assert BW_BFP.mantissa_bits == 5

    def test_bits_per_value_amortizes_exponent(self):
        fmt = BlockedFloatFormat(block_size=4, exponent_bits=5, mantissa_bits=5)
        # 1 sign + 5 mantissa + 5/4 shared exponent
        assert fmt.bits_per_value == pytest.approx(6 + 1.25)

    def test_storage_bytes_whole_blocks(self):
        fmt = BlockedFloatFormat(block_size=4, exponent_bits=5, mantissa_bits=5)
        # one block: 5 + 4*6 = 29 bits -> 4 bytes
        assert fmt.storage_bytes(4) == 4
        assert fmt.storage_bytes(5) == 8  # two blocks, 58 bits
        assert fmt.storage_bytes(0) == 0

    def test_storage_negative_rejected(self):
        with pytest.raises(PrecisionError):
            BW_BFP.storage_bytes(-1)

    def test_validation(self):
        with pytest.raises(PrecisionError):
            BlockedFloatFormat(block_size=0)
        with pytest.raises(PrecisionError):
            BlockedFloatFormat(block_size=4, mantissa_bits=0)
        with pytest.raises(PrecisionError):
            BlockedFloatFormat(block_size=4, exponent_bits=1)


class TestBlockedVector:
    def test_roundtrip_exact_for_grid_values(self):
        fmt = BlockedFloatFormat(block_size=4, mantissa_bits=5)
        # With shared exponent 0 the grid step is 2^(0-4) = 1/16.
        vals = np.array([1.0, 0.5, -0.25, 0.0625])
        out = BlockedVector.encode(vals, fmt).decode()
        np.testing.assert_array_equal(out, vals)

    def test_shared_exponent_follows_peak(self):
        fmt = BlockedFloatFormat(block_size=4, mantissa_bits=5)
        enc = BlockedVector.encode(np.array([8.0, 0.1, 0.1, 0.1]), fmt)
        assert enc.shared_exponent == 3

    def test_small_values_lose_precision_next_to_large(self):
        fmt = BlockedFloatFormat(block_size=2, mantissa_bits=3)
        # Peak 8.0 -> step 2^(3-2)=2: 0.4 rounds to 0.
        out = BlockedVector.encode(np.array([8.0, 0.4]), fmt).decode()
        assert out[0] == 8.0
        assert out[1] == 0.0

    def test_zero_block(self):
        enc = BlockedVector.encode(np.zeros(8), BW_BFP)
        np.testing.assert_array_equal(enc.decode(), np.zeros(8))

    def test_block_size_limit(self):
        fmt = BlockedFloatFormat(block_size=4)
        with pytest.raises(PrecisionError):
            BlockedVector.encode(np.ones(5), fmt)
        with pytest.raises(PrecisionError):
            BlockedVector.encode(np.ones(0), fmt)

    def test_rejects_nonfinite(self):
        with pytest.raises(PrecisionError):
            BlockedVector.encode(np.array([1.0, np.inf]), BW_BFP)

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False, width=64),
            min_size=1,
            max_size=16,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_error_bounded_by_peak(self, xs):
        fmt = BlockedFloatFormat(block_size=16, mantissa_bits=5)
        v = np.array(xs)
        out = BlockedVector.encode(v, fmt).decode()
        peak = np.abs(v).max()
        if peak == 0:
            np.testing.assert_array_equal(out, v)
        else:
            # Worst case error is one mantissa step at the shared exponent
            # (half a step from rounding, up to a step at the saturating
            # mantissa edge); the exponent itself clamps to the field range.
            e = np.clip(np.floor(np.log2(peak)), fmt.min_exponent, fmt.max_exponent)
            step = 2.0 ** (e - fmt.mantissa_bits + 1)
            assert np.max(np.abs(out - v)) <= step + 1e-12

    def test_quantize_array_blocks_along_last_axis(self):
        fmt = BlockedFloatFormat(block_size=4, mantissa_bits=5)
        rng = np.random.default_rng(3)
        m = rng.uniform(-4, 4, size=(3, 8))
        out = BlockedVector.quantize_array(m, fmt)
        assert out.shape == m.shape
        # Each 4-chunk of each row should match an independent encode.
        expected = BlockedVector.encode(m[1, 4:8], fmt).decode()
        np.testing.assert_array_equal(out[1, 4:8], expected)


class TestPackedArray:
    def test_4xfp8_fills_word(self):
        assert PACKED_4xFP8.elements_per_word == 4
        assert PACKED_4xFP8.element_bits == 8

    def test_2xfp16_fills_word(self):
        assert PACKED_2xFP16.elements_per_word == 2
        assert PACKED_2xFP16.element_bits == 16

    def test_bad_packing_rejected(self):
        with pytest.raises(PrecisionError):
            PackedFormat("bad", FP8, 3)
        with pytest.raises(PrecisionError):
            PackedFormat("bad", FloatFormat("f12", 5, 6), 2)

    def test_words_for(self):
        assert PACKED_4xFP8.words_for(0) == 0
        assert PACKED_4xFP8.words_for(1) == 1
        assert PACKED_4xFP8.words_for(4) == 1
        assert PACKED_4xFP8.words_for(5) == 2
        assert PACKED_4xFP8.storage_bytes(16) == 16

    def test_pack_unpack_roundtrip_fp8(self):
        vals = np.array([1.0, -2.0, 0.125, 240.0, 0.0])
        packed = PackedArray.pack(vals, PACKED_4xFP8)
        assert len(packed) == 5
        assert packed.words.size == 2
        np.testing.assert_array_equal(packed.unpack(), vals)

    def test_pack_quantizes(self):
        packed = PackedArray.pack(np.array([1.06]), PACKED_4xFP8)
        assert packed.unpack()[0] == 1.0

    def test_storage_accounting(self):
        packed = PackedArray.pack(np.zeros(9), PACKED_4xFP8)
        assert packed.storage_bytes == 12  # three words

    def test_word_access_granularity(self):
        packed = PackedArray.pack(np.arange(8.0), PACKED_4xFP8)
        assert isinstance(packed.word(0), int)
        with pytest.raises(PrecisionError):
            packed.word(2)
        with pytest.raises(PrecisionError):
            packed.word(-1)

    @given(
        st.lists(
            st.floats(min_value=-400, max_value=400, allow_nan=False, width=64),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_equals_quantize(self, xs):
        from repro.precision import quantize

        v = np.array(xs)
        packed = PackedArray.pack(v, PACKED_4xFP8)
        np.testing.assert_array_equal(packed.unpack(), quantize(v, FP8))

    def test_packed_2xfp16_roundtrip(self):
        rng = np.random.default_rng(4)
        v = rng.uniform(-60000, 60000, size=33)
        packed = PackedArray.pack(v, PACKED_2xFP16)
        expect = v.astype(np.float16).astype(np.float64)
        np.testing.assert_array_equal(packed.unpack(), expect)

    def test_word_packs_little_endian_lanes(self):
        # Element 0 occupies the least significant byte.
        packed = PackedArray.pack(np.array([1.0, 0.0, 0.0, 0.0]), PACKED_4xFP8)
        assert packed.word(0) == (7 << 3)  # fp8 encoding of 1.0 in low byte
