"""Property tests for the cycle-level simulator on random pipeline DAGs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping import PipelineGraph, Stage
from repro.plasticine import simulate_pipeline


def _random_dag(rng: np.random.Generator, n_stages: int, n_iter: int) -> PipelineGraph:
    """A random layered DAG: every stage connects to 1-2 later stages."""
    g = PipelineGraph("rand", n_iterations=n_iter, steps=1)
    for k in range(n_stages):
        g.add_stage(
            Stage(f"s{k}", ii=int(rng.integers(1, 8)), latency=int(rng.integers(0, 10)))
        )
    for k in range(n_stages - 1):
        targets = rng.choice(
            np.arange(k + 1, n_stages),
            size=min(int(rng.integers(1, 3)), n_stages - 1 - k),
            replace=False,
        )
        for t in targets:
            g.connect(f"s{k}", f"s{int(t)}", int(rng.integers(0, 6)))
    return g


class TestSimulatorDAGProperties:
    @given(
        seed=st.integers(0, 10_000),
        n_stages=st.integers(2, 8),
        n_iter=st.integers(1, 50),
    )
    @settings(max_examples=80, deadline=None)
    def test_event_sim_bounded_by_closed_forms(self, seed, n_stages, n_iter):
        # On arbitrary DAGs the closed form is an upper bound (exact when
        # a bottleneck-II stage lies on the critical path, as in every
        # mapped RNN design); the throughput and latency bounds are lower
        # bounds.
        g = _random_dag(np.random.default_rng(seed), n_stages, n_iter)
        sim = simulate_pipeline(g)
        upper = g.analytic_step_cycles()
        lower = max(g.critical_path_cycles(), (n_iter - 1) * g.bottleneck_ii)
        assert lower <= sim.cycles_per_step <= upper

    @given(seed=st.integers(0, 2_000), n_iter=st.integers(1, 30))
    @settings(max_examples=40, deadline=None)
    def test_more_iterations_never_faster(self, seed, n_iter):
        rng = np.random.default_rng(seed)
        g1 = _random_dag(rng, 5, n_iter)
        g2 = PipelineGraph("rand", n_iterations=n_iter + 5, steps=1)
        for s in g1.stages.values():
            g2.add_stage(s)
        g2.edges = list(g1.edges)
        assert simulate_pipeline(g2).cycles_per_step >= simulate_pipeline(g1).cycles_per_step

    @given(seed=st.integers(0, 2_000))
    @settings(max_examples=40, deadline=None)
    def test_raising_an_ii_never_faster(self, seed):
        rng = np.random.default_rng(seed)
        g = _random_dag(rng, 5, 20)
        base = simulate_pipeline(g).cycles_per_step
        victim = rng.choice(list(g.stages))
        s = g.stages[victim]
        g.stages[victim] = Stage(s.name, ii=s.ii + 3, latency=s.latency)
        assert simulate_pipeline(g).cycles_per_step >= base

    @given(seed=st.integers(0, 2_000))
    @settings(max_examples=40, deadline=None)
    def test_adding_route_latency_never_faster(self, seed):
        rng = np.random.default_rng(seed)
        g = _random_dag(rng, 5, 20)
        base = simulate_pipeline(g).cycles_per_step
        g.edges = [(a, b, r + 2) for a, b, r in g.edges]
        assert simulate_pipeline(g).cycles_per_step >= base

    @given(seed=st.integers(0, 2_000), steps=st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_total_cycles_linear_in_steps(self, seed, steps):
        g = _random_dag(np.random.default_rng(seed), 4, 12)
        g.step_overhead = 9
        g.steps = steps
        sim = simulate_pipeline(g)
        assert sim.total_cycles == steps * (sim.cycles_per_step + 9)

    @given(seed=st.integers(0, 2_000))
    @settings(max_examples=30, deadline=None)
    def test_occupancy_bounded(self, seed):
        g = _random_dag(np.random.default_rng(seed), 6, 25)
        sim = simulate_pipeline(g)
        for act in sim.activities.values():
            assert 0 < act.occupancy(sim.cycles_per_step) <= 1.0
            assert act.exit_last <= sim.cycles_per_step

    def test_single_iteration_is_pure_latency(self):
        g = PipelineGraph("one", n_iterations=1, steps=1)
        g.add_stage(Stage("a", ii=100, latency=3))
        g.add_stage(Stage("b", ii=50, latency=4))
        g.connect("a", "b", 2)
        # With one iteration, IIs are irrelevant: latency path only.
        assert simulate_pipeline(g).cycles_per_step == 3 + 2 + 4


class TestVisualization:
    def test_placement_map_renders(self):
        from repro.dse.search import build_task_program
        from repro.mapping import map_rnn_program
        from repro.mapping.visualize import placement_map
        from repro.rnn.lstm_loop import LoopParams
        from repro.workloads.deepbench import RNNTask

        design = map_rnn_program(
            build_task_program(RNNTask("lstm", 512, 2), LoopParams(hu=4, ru=4, rv=64))
        )
        text = placement_map(design, max_rows=8)
        assert "legend" in text
        assert "D" in text and "w" in text and "x" in text and "E" in text
        # Grid lines have the chip's column count.
        grid_lines = text.splitlines()[2:10]
        assert all(len(line.split(" ")) == 24 for line in grid_lines)

    def test_placement_map_full_grid(self):
        from repro.dse.search import build_task_program
        from repro.mapping import map_rnn_program
        from repro.mapping.visualize import placement_map
        from repro.rnn.lstm_loop import LoopParams
        from repro.workloads.deepbench import RNNTask

        design = map_rnn_program(
            build_task_program(RNNTask("gru", 256, 2), LoopParams(hu=2, ru=2, rv=64))
        )
        text = placement_map(design)
        assert len(text.splitlines()) == 24 + 2
