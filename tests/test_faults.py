"""Fault injection: the policy registry, seeded timelines, and the
unreliable-hardware event loop (crashes, stragglers, preemption,
timeouts/retries, hedged duplicates)."""

from __future__ import annotations

from dataclasses import replace
from functools import partial

import pytest

from repro.errors import ServingError
from repro.serving import (
    ChaosFaults,
    CrashFaults,
    FaultPolicy,
    FaultStats,
    Fleet,
    NoFaults,
    PreemptFaults,
    ServeRequest,
    ServingEngine,
    StragglerFaults,
    StreamSummary,
    available_fault_policies,
    get_fault_policy,
    make_fault_policy,
    poisson_arrivals,
    register_fault_policy,
    serve_parallel,
)
from repro.serving.faults import unregister_fault_policy
from repro.serving.scheduler import EDFScheduler, FIFOScheduler, QueuedRequest
from repro.workloads.deepbench import task

T = task("lstm", 512, 25)
BIG = task("lstm", 1024, 25)


def _stream(n=300, rate=800.0, seed=3, t=T):
    return poisson_arrivals(t, rate_per_s=rate, n_requests=n, seed=seed)


def _with_priorities(requests, classes=3):
    return [replace(r, priority=r.request_id % classes) for r in requests]


def _ids(report):
    return sorted(r.request.request_id for r in report.responses)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_fault_policies()
        for name in ("chaos", "crash", "none", "preempt", "straggler"):
            assert name in names

    def test_unknown_name_raises(self):
        with pytest.raises(ServingError, match="unknown fault policy"):
            get_fault_policy("bitrot")

    def test_register_and_unregister(self):
        @register_fault_policy("test-flaky")
        class Flaky(FaultPolicy):
            def straggler_factor(self, request):
                return 2.0

        try:
            assert "test-flaky" in available_fault_policies()
            assert get_fault_policy("test-flaky").name == "test-flaky"
            with pytest.raises(ServingError, match="already registered"):
                register_fault_policy("test-flaky")(CrashFaults)
        finally:
            unregister_fault_policy("test-flaky")
        assert "test-flaky" not in available_fault_policies()

    def test_register_rejects_non_policy(self):
        with pytest.raises(ServingError, match="FaultPolicy subclass"):
            register_fault_policy("test-bogus")(dict)

    def test_make_accepts_name_instance_factory(self):
        assert make_fault_policy("none").name == "none"
        instance = CrashFaults(mtbf_s=1.0)
        assert make_fault_policy(instance) is instance
        assert make_fault_policy(CrashFaults).name == "crash"
        with pytest.raises(ServingError, match="must return a FaultPolicy"):
            make_fault_policy(dict)
        with pytest.raises(ServingError, match="cannot build"):
            make_fault_policy(42)

    def test_seed_required_before_draws(self):
        policy = StragglerFaults(prob=1.0)
        with pytest.raises(ServingError, match="before reset"):
            policy.straggler_factor(ServeRequest(task=T))


class TestPolicies:
    def test_crash_timeline_deterministic_per_replica(self):
        policy = CrashFaults(mtbf_s=0.5, mttr_s=0.1)
        policy.reset(7)
        first = [policy.next_crash(r, 0.0) for r in range(3)]
        policy.reset(7)
        assert [policy.next_crash(r, 0.0) for r in range(3)] == first
        # Distinct replicas draw from decorrelated streams.
        assert len({crash_s for crash_s, _ in first}) == 3
        for crash_s, down_s in first:
            assert crash_s > 0.0 and down_s == 0.1

    def test_crash_timeline_advances(self):
        policy = CrashFaults(mtbf_s=0.2, mttr_s=0.05)
        policy.reset(1)
        crash_s, down_s = policy.next_crash(0, 10.0)
        assert crash_s > 10.0

    def test_straggler_factor_contract(self):
        policy = StragglerFaults(prob=1.0, alpha=1.2, max_factor=4.0)
        policy.reset(11)
        factors = [
            policy.straggler_factor(ServeRequest(task=T, request_id=i))
            for i in range(200)
        ]
        assert all(1.0 <= f <= 4.0 for f in factors)
        assert any(f > 1.0 for f in factors)
        # Pure in (seed, request_id): identical on a re-draw.
        assert factors[5] == policy.straggler_factor(
            ServeRequest(task=BIG, request_id=5, tenant="other")
        )

    def test_straggler_prob_zero_never_inflates(self):
        policy = StragglerFaults(prob=0.0)
        policy.reset(0)
        assert policy.straggler_factor(ServeRequest(task=T, request_id=9)) == 1.0

    def test_none_policy_is_inert(self):
        policy = NoFaults()
        policy.reset(0)
        assert policy.next_crash(0, 0.0) is None
        assert policy.straggler_factor(ServeRequest(task=T)) == 1.0
        assert not policy.preemptive

    def test_preempt_rank_semantics(self):
        policy = PreemptFaults()
        assert policy.preempts(2.0, 0.0)
        assert not policy.preempts(1.0, 1.0)  # strict inequality only
        entry = QueuedRequest(
            seq=0,
            request=ServeRequest(task=T, priority=3),
            result=None,
            service_s=0.0,
            deadline_s=4.5,
        )
        assert FIFOScheduler().preemption_rank(entry) == 3.0
        # EDF ranks by urgency: earlier deadline = larger rank.
        assert EDFScheduler().preemption_rank(entry) == -4.5

    @pytest.mark.parametrize(
        "build",
        [
            lambda: CrashFaults(mtbf_s=0.0),
            lambda: CrashFaults(mttr_s=-1.0),
            lambda: StragglerFaults(prob=1.5),
            lambda: StragglerFaults(alpha=0.0),
            lambda: StragglerFaults(max_factor=0.5),
            lambda: ChaosFaults(mtbf_s=-1.0),
            lambda: ChaosFaults(mttr_s=-0.1),
            lambda: ChaosFaults(prob=2.0),
            lambda: ChaosFaults(alpha=-1.0),
            lambda: ChaosFaults(max_factor=0.0),
        ],
    )
    def test_parameter_validation(self, build):
        with pytest.raises(ServingError):
            build()


class TestLoopValidation:
    def test_retries_require_timeout(self):
        with pytest.raises(ServingError, match="retries"):
            ServingEngine("gpu").serve_stream(_stream(n=5), retries=1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout_ms": 0.0},
            {"timeout_ms": -5.0},
            {"hedge_ms": 0.0},
            {"timeout_ms": 1.0, "retries": -1},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ServingError):
            ServingEngine("gpu").serve_stream(_stream(n=5), **kwargs)

    def test_bad_straggler_factor_rejected(self):
        class Shrinker(FaultPolicy):
            name = "test-shrinker"

            def straggler_factor(self, request):
                return 0.5

        with pytest.raises(ServingError, match="factor"):
            ServingEngine("gpu").serve_stream(_stream(n=5), faults=Shrinker())


class TestNoFaultParity:
    def test_none_policy_bit_identical(self):
        arrivals = _stream()
        base = ServingEngine("gpu").serve_stream(arrivals, slo_ms=5.0)
        none = ServingEngine("gpu").serve_stream(
            arrivals, slo_ms=5.0, faults="none"
        )
        assert base.responses == none.responses
        assert none.faults == "none"
        assert not none.fault_stats.any

    def test_huge_timeout_matches_faultless_timeline(self):
        # A timeout that never fires forces the fault-aware loop but
        # must reproduce the perfect-machine timeline exactly.
        arrivals = _stream()
        base = ServingEngine("gpu").serve_stream(arrivals, slo_ms=5.0)
        guarded = ServingEngine("gpu").serve_stream(
            arrivals, slo_ms=5.0, timeout_ms=1e6
        )
        assert [
            (r.request.request_id, r.start_s, r.finish_s)
            for r in base.responses
        ] == [
            (r.request.request_id, r.start_s, r.finish_s)
            for r in guarded.responses
        ]
        assert all(r.outcome == "ok" and r.attempts == 1
                   for r in guarded.responses)

    def test_summary_mode_none_policy_matches(self):
        arrivals = _stream()
        base = ServingEngine("gpu").serve_stream(
            arrivals, slo_ms=5.0, mode="summary"
        )
        none = ServingEngine("gpu").serve_stream(
            arrivals, slo_ms=5.0, mode="summary", faults="none"
        )
        assert (base.n_requests, base.p50_ms, base.p99_ms) == (
            none.n_requests, none.p50_ms, none.p99_ms,
        )


class TestCrashInjection:
    def test_fleet_crashes_and_recovers(self):
        arrivals = _stream(n=400)
        fleet = Fleet("gpu", replicas=3, policy="least-loaded")
        report = fleet.serve_stream(
            arrivals, slo_ms=5.0, faults="crash", fault_seed=7
        )
        stats = report.fault_stats
        assert stats.crashes > 0
        assert stats.downtime_s == pytest.approx(stats.crashes * 0.05)
        assert report.faults == "crash"
        assert _ids(report) == list(range(400))

    def test_single_engine_crash_no_factory(self):
        # Without a replica factory the replica recovers in place.
        report = ServingEngine("gpu").serve_stream(
            _stream(n=300, rate=1500.0),
            slo_ms=5.0,
            faults=CrashFaults(mtbf_s=0.05, mttr_s=0.02),
            fault_seed=5,
        )
        assert report.fault_stats.crashes > 0
        assert _ids(report) == list(range(300))
        for r in report.responses:
            assert r.finish_s >= r.start_s >= r.request.arrival_s - 1e-9

    def test_same_seed_identical_timeline(self):
        def run():
            return Fleet("gpu", replicas=2).serve_stream(
                _stream(), slo_ms=5.0, faults="chaos", fault_seed=13
            )

        a, b = run(), run()
        assert a.responses == b.responses
        assert a.fault_stats == b.fault_stats

    def test_different_seed_differs(self):
        def run(seed):
            return Fleet("gpu", replicas=2).serve_stream(
                _stream(), slo_ms=5.0,
                faults=CrashFaults(mtbf_s=0.05, mttr_s=0.02),
                fault_seed=seed,
            )

        a, b = run(1), run(2)
        assert a.fault_stats != b.fault_stats or a.responses != b.responses


class TestTimeoutsRetriesHedges:
    def test_tight_timeout_times_out_and_retries(self):
        arrivals = _stream(n=300, rate=2000.0, t=BIG)
        report = ServingEngine("gpu").serve_stream(
            arrivals, slo_ms=5.0, timeout_ms=3.0, retries=1
        )
        stats = report.fault_stats
        assert stats.timeouts > 0 and stats.retries > 0
        assert _ids(report) == list(range(300))
        by_outcome = report.per_outcome()
        assert sum(s.n_requests for s in by_outcome.values()) == 300
        assert stats.timeouts == by_outcome["timeout"].n_requests
        # Every retry dispatch bumped exactly one response's attempts.
        assert sum(r.attempts - 1 for r in report.responses) == stats.retries
        for r in report.responses:
            if r.outcome == "timeout":
                # Given up at the final deadline: no service interval.
                assert r.start_s == r.finish_s
                assert r.start_s >= r.request.arrival_s

    def test_hedge_wins_on_fleet(self):
        report = Fleet("gpu", replicas=2).serve_stream(
            _stream(n=300, rate=1500.0, seed=9, t=BIG),
            slo_ms=5.0,
            faults="straggler",
            fault_seed=4,
            hedge_ms=2.0,
        )
        stats = report.fault_stats
        assert stats.hedges > 0
        assert stats.hedge_wins > 0
        assert stats.hedge_wins == sum(
            1 for r in report.responses if r.outcome == "hedged"
        )
        assert _ids(report) == list(range(300))

    def test_zero_retries_goes_straight_to_timeout(self):
        report = ServingEngine("gpu").serve_stream(
            _stream(n=100, rate=5000.0, t=BIG), slo_ms=5.0, timeout_ms=2.0
        )
        assert report.fault_stats.retries == 0
        assert report.fault_stats.timeouts > 0
        assert all(r.attempts == 1 for r in report.responses)


class TestPreemption:
    def test_priority_arrivals_preempt(self):
        arrivals = _with_priorities(_stream(n=300, rate=2000.0, t=BIG))
        report = ServingEngine("gpu").serve_stream(
            arrivals, slo_ms=5.0, scheduler="priority",
            faults="preempt", fault_seed=2,
        )
        assert report.fault_stats.preemptions > 0
        assert _ids(report) == list(range(300))
        # Preempted work is re-served: timelines stay well-formed.
        for r in report.responses:
            assert r.finish_s >= r.start_s >= r.request.arrival_s - 1e-9

    def test_equal_priorities_never_preempt(self):
        report = ServingEngine("gpu").serve_stream(
            _stream(n=200, rate=2000.0), slo_ms=5.0,
            faults="preempt", fault_seed=2,
        )
        assert report.fault_stats.preemptions == 0


class TestReportsAndSummaries:
    def test_outcome_slices_and_property(self):
        report = ServingEngine("gpu").serve_stream(
            _stream(n=200, rate=2000.0, t=BIG), slo_ms=5.0,
            timeout_ms=3.0, retries=1,
        )
        assert set(report.outcomes) <= {"ok", "retried", "timeout"}
        slices = report.per_outcome()
        assert sorted(slices) == list(report.outcomes)
        for name, sub in slices.items():
            assert all(r.outcome == name for r in sub.responses)
            assert sub.faults == report.faults

    def test_summary_mode_matches_full_mode_stats(self):
        arrivals = _stream(n=300)
        kwargs = dict(slo_ms=5.0, faults="chaos", fault_seed=7)
        full = Fleet("gpu", replicas=2).serve_stream(arrivals, **kwargs)
        summary = Fleet("gpu", replicas=2).serve_stream(
            arrivals, mode="summary", **kwargs
        )
        assert summary.fault_stats == full.fault_stats
        assert summary.faults == "chaos"
        assert summary.n_requests == full.n_requests
        assert summary.slo_attainment == pytest.approx(full.slo_attainment)
        assert sum(
            s.n_requests for s in summary.per_outcome().values()
        ) == summary.n_requests
        assert set(summary.outcomes) == set(full.outcomes)

    def test_fault_stats_merge(self):
        a = FaultStats(crashes=1, downtime_s=0.5, retries=2)
        b = FaultStats(crashes=2, hedges=3, hedge_wins=1)
        merged = a.merge(b)
        assert merged == FaultStats(
            crashes=3, downtime_s=0.5, retries=2, hedges=3, hedge_wins=1
        )
        assert not FaultStats().any and merged.any

    def test_summaries_with_different_policies_do_not_merge(self):
        a = StreamSummary("gpu", faults="none")
        b = StreamSummary("gpu", faults="chaos")
        with pytest.raises(ServingError, match="faults"):
            a.merge(b)


class TestParallelFaults:
    def test_merge_is_pool_size_independent(self):
        make = partial(
            poisson_arrivals, T, rate_per_s=800.0, n_requests=200,
            seed=7, materialize=False,
        )
        a = serve_parallel(
            make, "gpu", shards=4, workers=1, slo_ms=5.0,
            faults="chaos", fault_seed=11,
        )
        b = serve_parallel(
            make, "gpu", shards=4, workers=2, slo_ms=5.0,
            faults="chaos", fault_seed=11,
        )
        assert a.n_requests == b.n_requests == 200
        assert a.fault_stats == b.fault_stats
        assert (a.p50_ms, a.p99_ms, a.slo_attainment) == (
            b.p50_ms, b.p99_ms, b.slo_attainment,
        )
        assert a.faults == "chaos"

    def test_parallel_rejects_policy_instances(self):
        make = partial(
            poisson_arrivals, T, rate_per_s=500.0, n_requests=20,
            seed=1, materialize=False,
        )
        with pytest.raises(ServingError, match="registry key"):
            serve_parallel(
                make, "gpu", shards=2, workers=1, faults=CrashFaults()
            )
