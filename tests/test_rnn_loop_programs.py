"""Integration tests: loop-based DSL LSTM/GRU vs the numpy references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.precision import FP8, FP16
from repro.rnn import (
    GRUWeights,
    LSTMWeights,
    RNNShape,
    build_gru_program,
    build_lstm_program,
    gru_sequence,
    lstm_sequence,
)
from repro.rnn.lstm_loop import LoopParams
from repro.rnn.luts import lut_error_bound
from repro.spatial import PrecisionPolicy, analyze, format_program
from repro.spatial.ir import OpKind


def _lstm_setup(h, d, t, seed=0):
    shape = RNNShape("lstm", h, d)
    w = LSTMWeights.random(shape, rng=seed)
    xs = np.random.default_rng(seed + 100).uniform(-1, 1, size=(t, d))
    return shape, w, xs


def _gru_setup(h, d, t, seed=0):
    shape = RNNShape("gru", h, d)
    w = GRUWeights.random(shape, rng=seed)
    xs = np.random.default_rng(seed + 100).uniform(-1, 1, size=(t, d))
    return shape, w, xs


class TestLSTMProgram:
    def test_bitexact_vs_reference_with_shared_luts(self):
        # Same LUT numerics on both sides -> exact equality.
        _, w, xs = _lstm_setup(16, 16, 4)
        prog = build_lstm_program(w, xs, LoopParams(hu=2, ru=2, rv=4))
        ex = prog.run(policy=PrecisionPolicy.exact())
        luts = prog.memories.luts
        sig = luts["luti"].apply
        tnh = luts["tanh"].apply
        ys, _, _ = lstm_sequence(w, xs, sigma=sig, tanh=tnh)
        np.testing.assert_array_equal(ex.state["y_seq"], ys)

    def test_close_to_true_nonlinearities(self):
        _, w, xs = _lstm_setup(16, 16, 8)
        prog = build_lstm_program(w, xs, LoopParams(hu=4, ru=2, rv=8))
        ex = prog.run(policy=PrecisionPolicy.exact())
        ys, _, _ = lstm_sequence(w, xs)
        # LUT error compounds across 8 steps but stays small.
        tol = 20 * lut_error_bound(1.0)
        assert np.max(np.abs(ex.state["y_seq"] - ys)) < tol

    @given(
        h=st.sampled_from([5, 8, 12]),
        d=st.sampled_from([3, 8]),
        rv=st.sampled_from([2, 4, 8]),
        ru=st.sampled_from([1, 2]),
        hu=st.sampled_from([1, 3, 4]),
    )
    @settings(max_examples=12, deadline=None)
    def test_params_never_change_semantics(self, h, d, rv, ru, hu):
        # Any (hu, ru, rv) choice computes the same function — including
        # non-dividing fragmentated sizes.
        _, w, xs = _lstm_setup(h, d, 2, seed=h * 100 + d)
        base = build_lstm_program(w, xs, LoopParams()).run().state["y_seq"]
        tuned = (
            build_lstm_program(w, xs, LoopParams(hu=hu, ru=ru, rv=rv))
            .run()
            .state["y_seq"]
        )
        np.testing.assert_allclose(tuned, base, rtol=1e-10, atol=1e-12)

    def test_quantized_weights_still_functional(self):
        _, w, xs = _lstm_setup(16, 16, 6)
        prog = build_lstm_program(
            w, xs, LoopParams(hu=2, ru=2, rv=8), weight_dtype=FP8, state_dtype=FP16
        )
        ex = prog.run(policy=PrecisionPolicy.plasticine_mixed())
        ys, _, _ = lstm_sequence(w, xs)
        # fp8 weights: coarse but correlated output.
        err = np.max(np.abs(ex.state["y_seq"] - ys))
        assert err < 0.25
        corr = np.corrcoef(ex.state["y_seq"].ravel(), ys.ravel())[0, 1]
        assert corr > 0.97

    def test_fp16_better_than_fp8(self):
        _, w, xs = _lstm_setup(16, 16, 6)
        ys, _, _ = lstm_sequence(w, xs)

        def err(dtype):
            prog = build_lstm_program(
                w, xs, LoopParams(hu=2, ru=2, rv=8), weight_dtype=dtype
            )
            # Exact arithmetic, but weights rounded to their storage format.
            ex = prog.run(policy=PrecisionPolicy(quantize_storage=True))
            return np.max(np.abs(ex.state["y_seq"] - ys))

        assert err(FP16) < err(FP8)

    def test_input_validation(self):
        _, w, _ = _lstm_setup(8, 8, 2)
        with pytest.raises(ConfigError):
            build_lstm_program(w, np.zeros((2, 5)))
        with pytest.raises(ConfigError):
            LoopParams(hu=0)
        with pytest.raises(ConfigError):
            LoopParams(hv=2)

    def test_trace_structure_matches_figure5(self):
        _, w, xs = _lstm_setup(8, 8, 2)
        prog = build_lstm_program(w, xs, LoopParams(hu=2, ru=2, rv=4))
        root = prog.trace()
        steps = root.find("steps")
        assert steps is not None and steps.extent == 2
        lstm1 = root.find("lstm1")
        assert lstm1.par == 2 and lstm1.extent == 8
        dots = [c for c in lstm1.children if c.label == "dot"]
        assert len(dots) == 4  # one fused dot product per gate
        assert all(d.step == 4 and d.par == 2 for d in dots)
        # 5 LUT evaluations per LSTM-1: 4 gates + tanh(c).
        assert lstm1.op_count(OpKind.LUT) == 5

    def test_mac_count_matches_paper_model(self):
        h, d, t = 8, 8, 3
        _, w, xs = _lstm_setup(h, d, t)
        prog = build_lstm_program(w, xs, LoopParams(rv=4))
        info = analyze(prog.trace())
        # 4 gates x H x R_pad multiplies per step (padding included).
        assert info.total_ops[OpKind.MUL] >= t * 4 * h * (h + d)

    def test_pretty_print_shows_loop_nest(self):
        _, w, xs = _lstm_setup(8, 8, 2)
        prog = build_lstm_program(w, xs, LoopParams(hu=2, ru=2, rv=4))
        text = format_program(prog)
        assert "Sequential.Foreach(2)" in text
        assert "Foreach(8 par 2)" in text
        assert "Reduce(16 by 4 par 2)" in text


class TestGRUProgram:
    def test_bitexact_vs_reference_with_shared_luts(self):
        _, w, xs = _gru_setup(12, 12, 4)
        prog = build_gru_program(w, xs, LoopParams(hu=2, ru=2, rv=4))
        ex = prog.run(policy=PrecisionPolicy.exact())
        sig = prog.memories.luts["sigmoid"].apply
        tnh = prog.memories.luts["tanh"].apply
        ys, _ = gru_sequence(w, xs, sigma=sig, tanh=tnh)
        np.testing.assert_array_equal(ex.state["y_seq"], ys)

    def test_close_to_true_nonlinearities(self):
        _, w, xs = _gru_setup(16, 16, 8)
        prog = build_gru_program(w, xs, LoopParams(hu=4, ru=2, rv=8))
        ex = prog.run(policy=PrecisionPolicy.exact())
        ys, _ = gru_sequence(w, xs)
        assert np.max(np.abs(ex.state["y_seq"] - ys)) < 20 * lut_error_bound(1.0)

    @given(
        h=st.sampled_from([5, 8, 12]),
        d=st.sampled_from([3, 8]),
        rv=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=8, deadline=None)
    def test_fragmentation_safe(self, h, d, rv):
        _, w, xs = _gru_setup(h, d, 2, seed=h * 10 + d)
        base = build_gru_program(w, xs, LoopParams()).run().state["y_seq"]
        tuned = build_gru_program(w, xs, LoopParams(rv=rv, ru=2)).run().state["y_seq"]
        np.testing.assert_allclose(tuned, base, rtol=1e-10, atol=1e-12)

    def test_different_input_hidden_dims(self):
        _, w, xs = _gru_setup(10, 6, 3)
        prog = build_gru_program(w, xs, LoopParams(hu=2, ru=1, rv=4))
        ex = prog.run()
        ys, _ = gru_sequence(
            w,
            xs,
            sigma=prog.memories.luts["sigmoid"].apply,
            tanh=prog.memories.luts["tanh"].apply,
        )
        np.testing.assert_array_equal(ex.state["y_seq"], ys)

    def test_trace_has_six_part_dots(self):
        _, w, xs = _gru_setup(8, 8, 2)
        prog = build_gru_program(w, xs, LoopParams(hu=2, ru=2, rv=4))
        gru1 = prog.trace().find("gru1")
        dot_labels = sorted(c.label for c in gru1.children if c.label.startswith("dot"))
        assert dot_labels == [
            "dot_cx", "dot_ch", "dot_rx", "dot_rh", "dot_zx", "dot_zh",
        ] or len(dot_labels) == 6

    def test_quantized_gru_functional(self):
        _, w, xs = _gru_setup(16, 16, 6)
        prog = build_gru_program(
            w, xs, LoopParams(hu=2, ru=2, rv=8), weight_dtype=FP8, state_dtype=FP16
        )
        ex = prog.run(policy=PrecisionPolicy.plasticine_mixed())
        ys, _ = gru_sequence(w, xs)
        corr = np.corrcoef(ex.state["y_seq"].ravel(), ys.ravel())[0, 1]
        assert corr > 0.97
