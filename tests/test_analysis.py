"""Tests for the fragmentation, footprint, and utilization analyses."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    basic_lstm_footprint,
    brainwave_footprint,
    cudnn_lstm_footprint,
    flops_utilization,
    loop_based_footprint,
    loop_utilization,
    mvm_tile_utilization,
    utilization_sweep,
)
from repro.errors import ConfigError


class TestFragmentation:
    def test_aligned_mvm_is_full(self):
        assert mvm_tile_utilization(800, 480, hv=400, rv=40, ru=6) == 1.0

    def test_misaligned_h_wastes_rows(self):
        # H=256 in a 400-row tile: at most 64% utilization from H alone.
        u = mvm_tile_utilization(256, 480, hv=400, rv=40, ru=6)
        assert u == pytest.approx(256 / 400)

    def test_2d_fragmentation_compounds(self):
        u = mvm_tile_utilization(256, 500, hv=400, rv=40, ru=6)
        assert u == pytest.approx((256 / 400) * (500 / 720))

    def test_loop_design_immune_to_h(self):
        # hv=1: H fragmentation vanishes (hu=1 default).
        assert loop_utilization(257, 512, rv=64, ru=8) == pytest.approx(
            loop_utilization(256, 512, rv=64, ru=8) * (257 * 512) / (256 * 512),
            rel=0.01,
        ) or loop_utilization(257, 512, rv=64, ru=8) == pytest.approx(1.0)

    def test_loop_1d_fragmentation_only(self):
        # R=500 with rv=64, ru=1: 8 blocks cover 512 slots.
        assert loop_utilization(100, 500, rv=64) == pytest.approx(500 / 512)

    def test_paper_claim_loop_beats_mvm(self):
        # Figure 4: the loop-based design never fragments worse.
        for p in utilization_sweep():
            assert p.loop_utilization >= p.mvm_utilization
            assert p.advantage >= 1.0

    def test_small_sizes_hurt_mvm_most(self):
        pts = utilization_sweep([256, 2048])
        assert pts[0].mvm_utilization < pts[1].mvm_utilization

    def test_deepbench_sizes_fully_utilize_loop_design(self):
        # rv=64 divides every DeepBench R=2H; 1-D fragmentation is zero.
        for p in utilization_sweep():
            assert p.loop_utilization == 1.0

    @given(
        h=st.integers(1, 3000),
        r=st.integers(1, 6000),
        hv=st.sampled_from([1, 40, 400]),
        rv=st.sampled_from([8, 40, 64]),
        ru=st.sampled_from([1, 4, 6, 8]),
    )
    @settings(max_examples=150, deadline=None)
    def test_utilization_in_unit_interval(self, h, r, hv, rv, ru):
        u_mvm = mvm_tile_utilization(h, r, hv, rv, ru)
        u_loop = loop_utilization(h, r, rv, ru)
        assert 0 < u_mvm <= 1
        assert 0 < u_loop <= 1
        # hv=1 reduces MVM tiling to the loop design on the H axis.
        if hv == 1:
            assert u_mvm == pytest.approx(loop_utilization(h, r, rv, ru))

    def test_validation(self):
        with pytest.raises(ConfigError):
            mvm_tile_utilization(0, 1, 1, 1)
        with pytest.raises(ConfigError):
            loop_utilization(1, 1, 0)


class TestFootprint:
    def test_basic_lstm_scales_with_h(self):
        small = basic_lstm_footprint(256)
        large = basic_lstm_footprint(2048)
        assert large.total_bytes == 8 * small.total_bytes

    def test_cudnn_eliminates_most_buffers(self):
        # Figure 1b vs 1a: cuDNN fuses the post-MVM vector ops.
        h = 1024
        assert cudnn_lstm_footprint(h).total_bytes < basic_lstm_footprint(h).total_bytes / 4

    def test_brainwave_independent_of_h(self):
        assert brainwave_footprint(256).total_bytes == brainwave_footprint(2816).total_bytes

    def test_loop_based_independent_of_h_and_smallest(self):
        for h in (256, 1024, 2816):
            loop = loop_based_footprint(h)
            assert loop.total_bytes == loop_based_footprint(256).total_bytes
            assert loop.total_bytes < brainwave_footprint(h).total_bytes
            assert loop.total_bytes < cudnn_lstm_footprint(h).total_bytes

    def test_footprint_ordering_matches_paper(self):
        # BasicLSTM > cuDNN > Brainwave > loop-based for large H.
        h = 2048
        sizes = [
            basic_lstm_footprint(h).total_bytes,
            cudnn_lstm_footprint(h).total_bytes,
            brainwave_footprint(h).total_bytes,
            loop_based_footprint(h).total_bytes,
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_largest_buffer_named(self):
        name, count = basic_lstm_footprint(512).largest()
        assert name in ("mvm_out", "bias_out")
        assert count == 4 * 512

    def test_validation(self):
        with pytest.raises(ConfigError):
            basic_lstm_footprint(0)


class TestUtilization:
    def test_flops_utilization(self):
        assert flops_utilization(24.5, 49.0) == 0.5
        with pytest.raises(ConfigError):
            flops_utilization(1.0, 0.0)
        with pytest.raises(ConfigError):
            flops_utilization(-1.0, 1.0)

    def test_utilization_table_from_results(self):
        from repro import serve_on_plasticine
        from repro.analysis.utilization import utilization_table
        from repro.workloads.deepbench import RNNTask

        res = serve_on_plasticine(RNNTask("lstm", 512, 5))
        rows = utilization_table([res])
        assert rows[0].platform == "plasticine"
        assert 0 < rows[0].utilization < 1

    def test_plasticine_utilization_consistent_across_sizes(self):
        # The headline claim: utilization stays high and flat-to-rising.
        from repro import serve_on_plasticine
        from repro.workloads.deepbench import RNNTask

        utils = []
        for h, t in [(512, 5), (1024, 5), (2048, 5)]:
            res = serve_on_plasticine(RNNTask("lstm", h, t))
            utils.append(res.effective_tflops / 49.0)
        assert utils == sorted(utils)  # rising with size
        assert utils[-1] > 0.25
