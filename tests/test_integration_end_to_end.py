"""End-to-end integration battery across the whole stack.

These tests exercise the same paths the benchmarks use, plus the
cross-cutting invariants that individual module tests cannot see:
functional fidelity under the serving datapath, latency scaling laws,
power bounds, and the DSE/mapper/simulator agreeing with each other.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import serve_on_brainwave, serve_on_cpu, serve_on_gpu, serve_on_plasticine
from repro.dse.search import build_task_program
from repro.mapping import map_rnn_program
from repro.plasticine import PlasticineConfig, simulate_pipeline
from repro.plasticine.area_power import AreaPowerModel
from repro.precision import FP8, FP16
from repro.rnn import (
    GRUWeights,
    LSTMWeights,
    RNNShape,
    build_gru_program,
    build_lstm_program,
    gru_sequence,
    lstm_sequence,
)
from repro.rnn.lstm_loop import LoopParams
from repro.spatial import PrecisionPolicy
from repro.workloads.deepbench import RNNTask, all_tasks, task


class TestFunctionalFidelity:
    """The serving datapath computes the function it claims to."""

    @pytest.mark.parametrize("kind", ["lstm", "gru"])
    def test_exact_datapath_bitexact_medium(self, kind):
        h = 48
        shape = RNNShape(kind, h, h)
        rng = np.random.default_rng(9)
        xs = rng.uniform(-1, 1, (6, h))
        if kind == "lstm":
            w = LSTMWeights.random(shape, rng=9)
            prog = build_lstm_program(w, xs, LoopParams(hu=3, ru=2, rv=8))
            sig = prog.memories.luts["luti"].apply
            tnh = prog.memories.luts["tanh"].apply
            expected, _, _ = lstm_sequence(w, xs, sigma=sig, tanh=tnh)
        else:
            w = GRUWeights.random(shape, rng=9)
            prog = build_gru_program(w, xs, LoopParams(hu=3, ru=2, rv=8))
            sig = prog.memories.luts["sigmoid"].apply
            tnh = prog.memories.luts["tanh"].apply
            expected, _ = gru_sequence(w, xs, sigma=sig, tanh=tnh)
        got = prog.run().state["y_seq"]
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("kind", ["lstm", "gru"])
    def test_serving_precision_tracks_reference(self, kind):
        h = 32
        shape = RNNShape(kind, h, h)
        rng = np.random.default_rng(21)
        xs = rng.uniform(-1, 1, (10, h))
        cls = LSTMWeights if kind == "lstm" else GRUWeights
        w = cls.random(shape, rng=21)
        builder = build_lstm_program if kind == "lstm" else build_gru_program
        prog = builder(
            w, xs, LoopParams(hu=4, ru=2, rv=16),
            weight_dtype=FP8, state_dtype=FP16,
        )
        got = prog.run(policy=PrecisionPolicy.plasticine_mixed()).state["y_seq"]
        if kind == "lstm":
            ref, _, _ = lstm_sequence(w, xs)
        else:
            ref, _ = gru_sequence(w, xs)
        assert np.corrcoef(got.ravel(), ref.ravel())[0, 1] > 0.97

    def test_longer_sequences_stay_stable(self):
        # Quantization error must not blow up over many steps.
        h = 24
        shape = RNNShape("lstm", h, h)
        w = LSTMWeights.random(shape, rng=3)
        xs = np.random.default_rng(4).uniform(-1, 1, (60, h))
        prog = build_lstm_program(
            w, xs, LoopParams(hu=2, ru=2, rv=8), weight_dtype=FP8, state_dtype=FP16
        )
        got = prog.run(policy=PrecisionPolicy.plasticine_mixed()).state["y_seq"]
        assert np.all(np.isfinite(got))
        assert np.abs(got).max() <= 1.0 + 1e-6  # h = o * tanh(c) stays bounded


class TestScalingLaws:
    """Latency structure the paper's Table 6 implies."""

    def test_latency_linear_in_timesteps(self):
        base = serve_on_plasticine(task("lstm", 512, 10)).latency_s
        triple = serve_on_plasticine(task("lstm", 512, 30)).latency_s
        assert triple == pytest.approx(3 * base, rel=1e-6)

    def test_latency_superlinear_in_hidden(self):
        # cycles/step ~ ceil(H/hu) * ceil(2H/512): quadratic region.
        l1 = serve_on_plasticine(task("lstm", 1024, 25)).latency_s
        l2 = serve_on_plasticine(task("lstm", 2048, 25)).latency_s
        assert 2.5 < l2 / l1 < 4.5

    def test_effective_tflops_flat_to_rising(self):
        # The paper's "consistent FLOPS" claim.
        vals = [
            serve_on_plasticine(task("lstm", h, 25)).effective_tflops
            for h in (512, 1024, 2048)
        ]
        assert vals == sorted(vals)
        assert vals[0] > 3.0  # even the small point is far above CPU/GPU

    def test_plasticine_wins_small_loses_large_vs_bw(self):
        small = task("gru", 512)
        large = task("gru", 2560)
        p_small = serve_on_plasticine(small).speedup_over(serve_on_brainwave(small))
        p_large = serve_on_plasticine(large).speedup_over(serve_on_brainwave(large))
        assert p_small > 10
        assert p_large < 1.0

    def test_ordering_cpu_gpu_spatial(self):
        for t in (task("lstm", 1024), task("gru", 1536)):
            cpu = serve_on_cpu(t).latency_s
            gpu = serve_on_gpu(t).latency_s
            bw = serve_on_brainwave(t).latency_s
            pl = serve_on_plasticine(t).latency_s
            assert cpu > gpu > bw
            assert cpu > gpu > pl


class TestWholeSuiteInvariants:
    """Run every DeepBench task through the full Plasticine path."""

    @pytest.fixture(scope="class")
    def results(self):
        return {t.name: serve_on_plasticine(t) for t in all_tasks()}

    def test_all_designs_fit_compute_and_bandwidth(self, results):
        for name, res in results.items():
            assert res.design.resources.fits_compute, name
            assert res.design.resources.fits_bandwidth, name

    def test_capacity_overflow_only_on_documented_tasks(self, results):
        # EXPERIMENTS.md deviation #1: only the largest three overflow.
        over = sorted(
            name for name, res in results.items()
            if not res.design.resources.fits_capacity
        )
        assert over == ["gru-h2560-t375", "gru-h2816-t750", "lstm-h2048-t25"]
        for name in over:
            assert any("capacity" in note for note in results[name].notes)

    def test_power_between_static_and_tdp(self, results):
        model = AreaPowerModel()
        chip = PlasticineConfig.rnn_serving()
        tdp = model.chip_tdp_w(chip)
        for name, res in results.items():
            assert model.static_w < res.power_w < tdp, name

    def test_per_step_latency_interactive(self, results):
        # Every task serves a step in under 7 us — the real-time window.
        for name, res in results.items():
            per_step_us = res.latency_s / res.task.timesteps * 1e6
            assert per_step_us < 7.0, name

    def test_utilization_band(self, results):
        # Effective/peak-8bit between 7% and 40% across the whole suite
        # (paper: 3.8/49 ~ 8% to 15.8/49 ~ 32%).
        for name, res in results.items():
            util = res.effective_tflops / 49.0
            assert 0.05 < util < 0.45, name


class TestMapperSimulatorAgreement:
    @given(
        h=st.sampled_from([128, 256, 384]),
        hu=st.sampled_from([1, 2, 4]),
        ru=st.sampled_from([1, 2, 4]),
        kind=st.sampled_from(["lstm", "gru"]),
    )
    @settings(max_examples=16, deadline=None)
    def test_sim_matches_closed_form_on_real_designs(self, h, hu, ru, kind):
        t = RNNTask(kind, h, 3)
        prog = build_task_program(t, LoopParams(hu=hu, ru=ru, rv=64))
        design = map_rnn_program(prog)
        sim = simulate_pipeline(design.graph)
        assert sim.cycles_per_step == design.graph.analytic_step_cycles()

    @given(hu=st.sampled_from([1, 2, 3, 4, 6]))
    @settings(max_examples=6, deadline=None)
    def test_more_unroll_never_slower(self, hu):
        t = RNNTask("lstm", 512, 2)
        base = simulate_pipeline(
            map_rnn_program(build_task_program(t, LoopParams(hu=1, ru=4, rv=64))).graph
        )
        tuned = simulate_pipeline(
            map_rnn_program(build_task_program(t, LoopParams(hu=hu, ru=4, rv=64))).graph
        )
        assert tuned.cycles_per_step <= base.cycles_per_step

    def test_checkerboard_vs_variant_pmu_budget(self):
        # Section 4.2's sizing argument: at the same PCU count, a 1:1
        # checkerboard (24x16 -> 192 PCU / 192 PMU) cannot feed every dot
        # PCU its two PMUs (weights + [x,h] copy); the 2:1 variant can.
        from repro.plasticine.network import GridLayout
        from repro.plasticine.pcu import PCUConfig
        from repro.plasticine.pmu import PMUConfig

        checker = PlasticineConfig(
            name="checker-1to1",
            layout=GridLayout.checkerboard(24, 16),
            pcu=PCUConfig(lanes=16, stages=4),
            pmu=PMUConfig(),
        )
        t = task("lstm", 1024)
        prog = build_task_program(t, LoopParams(hu=4, ru=8, rv=64))
        on_checker = map_rnn_program(prog, checker)
        on_variant = map_rnn_program(prog, PlasticineConfig.rnn_serving())
        assert on_variant.resources.fits_bandwidth
        assert not on_checker.resources.fits_bandwidth


class TestServingResultContract:
    def test_notes_propagate_replication(self):
        res = serve_on_plasticine(task("lstm", 256))
        assert any("replicated" in n for n in res.notes)

    def test_use_dse_flag(self):
        res = serve_on_plasticine(task("lstm", 256), use_dse=True)
        assert res.design.resources.fits_compute

    def test_unknown_size_falls_back_to_dse(self):
        res = serve_on_plasticine(RNNTask("lstm", 320, 4))
        assert res.latency_s > 0

    def test_effective_tflops_consistency(self):
        t = task("gru", 1024)
        res = serve_on_plasticine(t)
        assert res.effective_tflops == pytest.approx(
            t.flops / res.latency_s / 1e12, rel=1e-9
        )
