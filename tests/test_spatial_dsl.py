"""Unit tests for the Spatial-like DSL: memories, loops, executor."""

import numpy as np
import pytest

from repro.errors import DSLBoundsError, DSLError
from repro.precision import FP8, FP16
from repro.spatial import (
    Foreach,
    PrecisionPolicy,
    Program,
    Range,
    Reduce,
    Sequential,
)
from repro.spatial.values import vmax, vmin


class TestRange:
    def test_iterations_ceil(self):
        assert Range(10).iterations == 10
        assert Range(10, step=3).iterations == 4
        assert Range(10, step=5).iterations == 2

    def test_issue_count(self):
        assert Range(10, par=4).issue_count == 3
        assert Range(16, par=4).issue_count == 4
        assert Range(10, step=2, par=2).issue_count == 3

    def test_validation(self):
        with pytest.raises(DSLError):
            Range(0)
        with pytest.raises(DSLError):
            Range(4, step=0)
        with pytest.raises(DSLError):
            Range(4, par=0)


class TestProgramDeclaration:
    def test_duplicate_memory_rejected(self):
        prog = Program("p")
        prog.sram("a", (4,))
        with pytest.raises(DSLError):
            prog.sram("a", (4,))

    def test_bad_shape_rejected(self):
        prog = Program("p")
        with pytest.raises(DSLError):
            prog.sram("a", (0,))

    def test_main_required(self):
        prog = Program("p")
        with pytest.raises(DSLError):
            prog.run()

    def test_double_main_rejected(self):
        prog = Program("p")

        @prog.main
        def body():
            pass

        with pytest.raises(DSLError):
            prog.main(lambda: None)

    def test_set_data_unknown_memory(self):
        prog = Program("p")
        with pytest.raises(DSLError):
            prog.set_data("ghost", np.zeros(4))

    def test_constructs_require_engine(self):
        with pytest.raises(DSLError, match="no active engine"):
            Foreach(Range(4), lambda i: None)


def _copy_scale_program(n: int, par: int = 1) -> Program:
    prog = Program("copy_scale")
    x = prog.sram("x", (n,))
    y = prog.sram("y", (n,))

    @prog.main
    def body():
        Foreach(Range(n, par=par), lambda i: y.write(x[i] * 2.0 + 1.0, i))

    return prog


class TestExecutorBasics:
    def test_elementwise_foreach(self):
        prog = _copy_scale_program(8)
        data = np.arange(8.0)
        ex = prog.run(data={"x": data})
        np.testing.assert_array_equal(ex.state["y"], data * 2.0 + 1.0)

    def test_par_does_not_change_semantics(self):
        data = np.arange(8.0)
        y1 = _copy_scale_program(8, par=1).run(data={"x": data}).state["y"]
        y4 = _copy_scale_program(8, par=4).run(data={"x": data}).state["y"]
        np.testing.assert_array_equal(y1, y4)

    def test_reduce_sums(self):
        prog = Program("sum")
        x = prog.sram("x", (16,))
        out = prog.sram("out", (1,))

        @prog.main
        def body():
            out.write(Reduce(Range(16), lambda i: x[i]), 0)

        ex = prog.run(data={"x": np.arange(16.0)})
        assert ex.state["out"][0] == 120.0

    def test_nested_reduce_dot_product(self):
        n, rv = 12, 4
        prog = Program("dot")
        w = prog.sram("w", (n,))
        x = prog.sram("x", (n,))
        out = prog.sram("out", (1,))

        @prog.main
        def body():
            def outer(iu):
                return Reduce(Range(rv, par=rv), lambda iv: w[iu + iv] * x[iu + iv])

            out.write(Reduce(Range(n, step=rv, par=2), outer), 0)

        rng = np.random.default_rng(0)
        wv, xv = rng.normal(size=n), rng.normal(size=n)
        ex = prog.run(data={"w": wv, "x": xv})
        assert ex.state["out"][0] == pytest.approx(float(wv @ xv), rel=1e-12)

    def test_matrix_vector_via_foreach_reduce(self):
        h, r = 6, 10
        prog = Program("mvm")
        w = prog.sram("w", (h, r))
        x = prog.sram("x", (r,))
        y = prog.sram("y", (h,))

        @prog.main
        def body():
            def row(ih):
                y.write(Reduce(Range(r), lambda j: w[ih, j] * x[j]), ih)

            Foreach(Range(h, par=2), row)

        rng = np.random.default_rng(1)
        wv, xv = rng.normal(size=(h, r)), rng.normal(size=r)
        ex = prog.run(data={"w": wv, "x": xv})
        np.testing.assert_allclose(ex.state["y"], wv @ xv, rtol=1e-12)

    def test_sequential_foreach_carries_state(self):
        # y[t] depends on y[t-1]: only correct with sequential semantics.
        n = 6
        prog = Program("prefix")
        y = prog.sram("y", (n + 1,))

        @prog.main
        def body():
            Sequential.Foreach(Range(n), lambda t: y.write(y[t] + 1.0, t + 1))

        ex = prog.run()
        np.testing.assert_array_equal(ex.state["y"], np.arange(n + 1.0))

    def test_sequential_par_rejected(self):
        prog = Program("p")

        @prog.main
        def body():
            Sequential.Foreach(Range(4, par=2), lambda t: None)

        with pytest.raises(DSLError):
            prog.run()

    def test_foreach_writes_commit_at_loop_end(self):
        # Double-buffered semantics: reads inside the loop see pre-loop data.
        n = 4
        prog = Program("swap")
        x = prog.sram("x", (n,))

        @prog.main
        def body():
            # Reverse: x[i] <- x[n-1-i]; with commit-at-end this is a clean
            # permutation, not a cascading overwrite.
            Foreach(Range(n), lambda i: x.write(x[(n - 1) - i], i))

        ex = prog.run(data={"x": np.arange(4.0)})
        np.testing.assert_array_equal(ex.state["x"], [3.0, 2.0, 1.0, 0.0])

    def test_out_of_bounds_read_raises(self):
        prog = Program("oob")
        x = prog.sram("x", (4,))
        y = prog.sram("y", (4,))

        @prog.main
        def body():
            Foreach(Range(4), lambda i: y.write(x[i + 1], i))

        with pytest.raises(DSLBoundsError):
            prog.run()

    def test_wrong_index_arity(self):
        prog = Program("arity")
        x = prog.sram("x", (4, 4))

        @prog.main
        def body():
            Foreach(Range(4), lambda i: x.write(x[i, 0], i))

        with pytest.raises(DSLError, match="written with 1 indices"):
            prog.run()

    def test_reg_read_write(self):
        prog = Program("reg")
        r = prog.reg("acc", init=5.0)
        out = prog.sram("out", (1,))

        @prog.main
        def body():
            r.write(r.read() + 2.0)
            out.write(r.read(), 0)

        ex = prog.run()
        assert ex.state["out"][0] == 7.0
        assert ex.reg_state["acc"] == 7.0

    def test_reg_loop_varying_write_rejected(self):
        prog = Program("regbad")
        r = prog.reg("acc")

        @prog.main
        def body():
            Foreach(Range(4), lambda i: r.write(i * 1.0))

        with pytest.raises(DSLError):
            prog.run()

    def test_lut_applies_function(self):
        prog = Program("lutp")
        sig = prog.lut("sigmoid", lambda v: 1.0 / (1.0 + np.exp(-v)), entries=8192)
        x = prog.sram("x", (5,))
        y = prog.sram("y", (5,))

        @prog.main
        def body():
            Foreach(Range(5), lambda i: y.write(sig(x[i]), i))

        xs = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
        ex = prog.run(data={"x": xs})
        np.testing.assert_allclose(ex.state["y"], 1 / (1 + np.exp(-xs)), atol=2e-3)

    def test_lut_clamps_out_of_range(self):
        prog = Program("lutc")
        sig = prog.lut("sig", lambda v: 1.0 / (1.0 + np.exp(-v)), lo=-8, hi=8)
        x = prog.sram("x", (2,))
        y = prog.sram("y", (2,))

        @prog.main
        def body():
            Foreach(Range(2), lambda i: y.write(sig(x[i]), i))

        ex = prog.run(data={"x": np.array([-100.0, 100.0])})
        np.testing.assert_allclose(ex.state["y"], [0.0, 1.0], atol=1e-3)

    def test_vmax_vmin(self):
        prog = Program("clamp")
        x = prog.sram("x", (4,))
        y = prog.sram("y", (4,))

        @prog.main
        def body():
            Foreach(Range(4), lambda i: y.write(vmin(vmax(x[i], -1.0), 1.0), i))

        ex = prog.run(data={"x": np.array([-5.0, -0.5, 0.5, 5.0])})
        np.testing.assert_array_equal(ex.state["y"], [-1.0, -0.5, 0.5, 1.0])

    def test_neg_and_div(self):
        prog = Program("negdiv")
        x = prog.sram("x", (3,))
        y = prog.sram("y", (3,))

        @prog.main
        def body():
            Foreach(Range(3), lambda i: y.write(-x[i] / 2.0, i))

        ex = prog.run(data={"x": np.array([2.0, -4.0, 8.0])})
        np.testing.assert_array_equal(ex.state["y"], [-1.0, 2.0, -4.0])

    def test_traffic_accounting(self):
        prog = _copy_scale_program(8)
        ex = prog.run(data={"x": np.zeros(8)})
        assert ex.read_elems["x"] == 8
        assert ex.write_elems["y"] == 8


class TestPrecisionPolicyExecution:
    def test_storage_quantization(self):
        prog = Program("store8")
        x = prog.sram("x", (1,), dtype=FP8)
        y = prog.sram("y", (1,), dtype=FP8)

        @prog.main
        def body():
            y.write(x[0] * 1.0, 0)

        ex = prog.run(policy=PrecisionPolicy(quantize_storage=True), data={"x": [1.06]})
        assert ex.state["x"][0] == 1.0  # quantized on load
        assert ex.state["y"][0] == 1.0

    def test_mul_rounding(self):
        prog = Program("mul8")
        x = prog.sram("x", (1,))
        y = prog.sram("y", (1,))

        @prog.main
        def body():
            y.write(x[0] * 1.125, 0)

        ex = prog.run(policy=PrecisionPolicy(mul=FP8), data={"x": [1.125]})
        # 1.265625 rounds to FP8 grid point 1.25
        assert ex.state["y"][0] == 1.25

    def test_mixed_reduction_precision(self):
        # Sum of many small values loses low bits at fp16 stage1.
        n = 32
        prog = Program("redmix")
        x = prog.sram("x", (n,))
        out = prog.sram("out", (1,))

        @prog.main
        def body():
            out.write(Reduce(Range(n), lambda i: x[i] * 1.0), 0)

        data = np.full(n, 1.0 + 2.0**-12)  # not representable pairwise in fp16
        exact = prog.run(data={"x": data}).state["out"][0]
        mixed = prog.run(
            policy=PrecisionPolicy(reduce_stage1=FP16, accum=FP16), data={"x": data}
        ).state["out"][0]
        assert exact == pytest.approx(n * (1 + 2.0**-12), rel=1e-12)
        assert mixed != exact  # rounding visible
        assert mixed == pytest.approx(exact, rel=1e-2)

    def test_plasticine_policy_exists(self):
        pol = PrecisionPolicy.plasticine_mixed()
        assert pol.accum.name == "fp32"
        assert pol.reduce_stage1.name == "fp16"
