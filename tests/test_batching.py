"""Dynamic batching: the registry, the policies, and the cost model."""

import pytest

from repro.errors import ServingError
from repro.serving import (
    AdaptiveBatcher,
    Batcher,
    Fleet,
    NoneBatcher,
    ServeRequest,
    ServingEngine,
    SizeCapBatcher,
    TimeWindowBatcher,
    available_batchers,
    available_platforms,
    get_batcher,
    get_platform,
    make_batcher,
    mix,
    uniform_arrivals,
)
from repro.serving.batching import unregister_batcher
from repro.serving.scheduler import QueuedRequest, Scheduler, get_scheduler
from repro.serving.result import ServingResult
from repro.workloads.deepbench import task

T = task("lstm", 512, 25)
T2 = task("gru", 512, 25)


def _entry(seq, t=T, arrival=0.0, service=1e-3):
    req = ServeRequest(task=t, arrival_s=arrival, request_id=seq)
    result = ServingResult(platform="x", task=t, latency_s=service,
                           effective_tflops=0.0)
    return QueuedRequest(seq=seq, request=req, result=result, service_s=service)


def _burst(n, t=T):
    """n same-task requests arriving (effectively) at once."""
    return uniform_arrivals(t, rate_per_s=1e9, n_requests=n)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_batchers()
        for expected in ("none", "size-cap", "time-window", "adaptive"):
            assert expected in names

    def test_unknown_batcher_raises(self):
        with pytest.raises(ServingError, match="unknown batcher 'piggyback'"):
            get_batcher("piggyback")

    def test_duplicate_registration_rejected(self):
        from repro.serving import register_batcher

        with pytest.raises(ServingError, match="already registered"):
            @register_batcher("none")
            class Impostor(Batcher):
                pass

    def test_non_batcher_rejected(self):
        from repro.serving import register_batcher

        with pytest.raises(ServingError, match="Batcher subclass"):
            register_batcher("bogus")(object)

    def test_register_round_trip(self):
        from repro.serving import register_batcher

        @register_batcher("solo-test")
        class SoloBatcher(Batcher):
            pass

        try:
            assert "solo-test" in available_batchers()
            assert get_batcher("solo-test", max_batch=3).max_batch == 3
        finally:
            unregister_batcher("solo-test")
        assert "solo-test" not in available_batchers()

    def test_make_batcher_specs(self):
        assert isinstance(make_batcher("size-cap"), SizeCapBatcher)
        inst = SizeCapBatcher(max_batch=3)
        assert make_batcher(inst) is inst
        assert isinstance(make_batcher(TimeWindowBatcher), TimeWindowBatcher)
        with pytest.raises(ServingError, match="registry key"):
            make_batcher(inst, max_batch=4)
        with pytest.raises(ServingError, match="factory"):
            make_batcher(lambda: object())
        with pytest.raises(ServingError):
            make_batcher(42)

    def test_engine_rejects_unknown_batcher(self):
        with pytest.raises(ServingError, match="unknown batcher"):
            ServingEngine("gpu").serve_stream([ServeRequest(task=T)],
                                              batcher="nope")

    def test_fleet_rejects_batcher_instance(self):
        with pytest.raises(ServingError, match="per replica"):
            Fleet("gpu", replicas=2).serve_stream(
                _burst(4), batcher=SizeCapBatcher()
            )

    def test_bad_max_batch_rejected(self):
        with pytest.raises(ServingError, match="max_batch"):
            SizeCapBatcher(max_batch=0)
        with pytest.raises(ServingError, match="window_ms"):
            TimeWindowBatcher(window_ms=-1.0)


class TestCostModel:
    @pytest.mark.parametrize("name", sorted(available_platforms()))
    def test_batch1_is_exactly_serve_latency(self, name):
        plat = get_platform(name)
        prepared = plat.prepare(T)
        assert plat.batch_latency_s(prepared, 1) == plat.serve(prepared).latency_s

    @pytest.mark.parametrize("name", sorted(available_platforms()))
    def test_batch_latency_monotone_and_subadditive(self, name):
        plat = get_platform(name)
        prepared = plat.prepare(T)
        t1 = plat.batch_latency_s(prepared, 1)
        previous = 0.0
        for size in (1, 2, 4, 8, 32):
            lat = plat.batch_latency_s(prepared, size)
            assert lat > previous
            assert lat <= size * t1 + 1e-12
            previous = lat

    def test_plasticine_amortizes_pipeline_fill(self):
        plat = get_platform("plasticine")
        prepared = plat.prepare(T)
        t1 = plat.batch_latency_s(prepared, 1)
        # Strictly better than serializing: the per-step fill/drain is
        # paid once per step, not once per request.
        assert plat.batch_latency_s(prepared, 8) < 8 * t1

    def test_serve_batched_result_fields(self):
        engine = ServingEngine("gpu")
        single = engine.serve_batched(T, 1)
        assert single == engine.serve(T).result
        batched = engine.serve_batched(T, 8)
        assert batched.batch_size == 8
        assert batched.latency_s == engine.batch_latency_s(T, 8)
        assert batched.effective_tflops == pytest.approx(
            8 * T.effective_tflops(batched.latency_s)
        )
        assert batched.throughput_rps == pytest.approx(8 / batched.latency_s)

    def test_bad_batch_size_rejected(self):
        plat = get_platform("gpu")
        prepared = plat.prepare(T)
        for bad in (0, -1, 2.5):
            with pytest.raises(ServingError, match="batch_size"):
                plat.batch_latency_s(prepared, bad)
            with pytest.raises(ServingError, match="batch_size"):
                plat.serve_batched(prepared, bad)

    def test_foreign_prepared_model_rejected(self):
        prepared = get_platform("cpu").prepare(T)
        with pytest.raises(ServingError, match="compiled for platform"):
            get_platform("gpu").batch_latency_s(prepared, 2)


class TestSchedulerPeek:
    def test_keyed_schedulers_peek_matches_pop(self):
        for name in ("fifo", "priority", "edf", "sjf", "coalesce"):
            sched = get_scheduler(name)
            for seq in (2, 0, 1):
                sched.push(_entry(seq))
            while len(sched):
                head = sched.peek()
                assert sched.pop() is head

    def test_peek_empty_raises(self):
        for name in ("fifo", "coalesce"):
            with pytest.raises(ServingError, match="empty"):
                get_scheduler(name).peek()

    def test_default_peek_unsupported(self):
        class Opaque(Scheduler):
            def push(self, entry):  # pragma: no cover
                pass

            def pop(self):  # pragma: no cover
                raise NotImplementedError

            def __len__(self):
                return 0

        with pytest.raises(ServingError, match="peek"):
            Opaque().peek()

    def test_coalesce_peek_prefers_last_served_task(self):
        sched = get_scheduler("coalesce")
        sched.push(_entry(0, t=T))
        sched.push(_entry(1, t=T2))
        sched.push(_entry(2, t=T))
        assert sched.pop().seq == 0        # FIFO head; last task is now T
        assert sched.peek().seq == 2       # same-task run jumps the line
        assert sched.pop().seq == 2


class TestPolicies:
    def test_none_policy_never_batches(self):
        report = ServingEngine("gpu").serve_stream(
            _burst(32), batcher="none", max_batch=16
        )
        assert report.mean_batch_size == 1.0
        assert report.max_batch_size == 1

    def test_size_cap_respects_cap_and_order(self):
        report = ServingEngine("gpu").serve_stream(
            _burst(33), batcher="size-cap", max_batch=8
        )
        assert report.max_batch_size <= 8
        assert report.mean_batch_size > 1.0
        ids = [r.request.request_id for r in report.responses]
        assert ids == sorted(ids)
        # A batch starts and finishes together.
        by_start = {}
        for r in report.responses:
            by_start.setdefault((r.start_s, r.finish_s), []).append(r)
        for (_, _), members in by_start.items():
            sizes = {r.batch_size for r in members}
            assert sizes == {len(members)}
            assert sorted(r.batch_index for r in members) == list(range(len(members)))

    def test_size_cap_only_coalesces_same_task(self):
        interleaved = mix(_burst(8, T), _burst(8, T2))
        report = ServingEngine("gpu").serve_stream(
            interleaved, batcher="size-cap", max_batch=8
        )
        for r in report.responses:
            assert r.result.task in (T, T2)
        # Conservation: every request answered exactly once.
        assert report.n_requests == 16

    def test_size_cap_beats_none_on_backlog(self):
        burst = _burst(64)
        unbatched = ServingEngine("gpu").serve_stream(burst, batcher="none")
        batched = ServingEngine("gpu").serve_stream(
            burst, batcher="size-cap", max_batch=8
        )
        assert batched.throughput_rps > unbatched.throughput_rps
        assert batched.p99_ms < unbatched.p99_ms

    def test_time_window_waits_for_stragglers(self):
        # Three requests 0.2 ms apart; service is fast, so without a
        # window each would be served alone.  A 1 ms window batches them.
        reqs = [
            ServeRequest(task=T, arrival_s=i * 2e-4, request_id=i)
            for i in range(3)
        ]
        eager = ServingEngine("brainwave").serve_stream(reqs, batcher="size-cap")
        held = ServingEngine("brainwave").serve_stream(
            reqs, batcher=lambda: TimeWindowBatcher(max_batch=4, window_ms=1.0)
        )
        assert eager.max_batch_size == 1
        assert held.max_batch_size == 3
        # The hold delays the head request by (at most) the window.
        head = held.responses[0]
        assert head.queue_delay_s == pytest.approx(1e-3, abs=1e-9)

    def test_time_window_launches_early_at_cap(self):
        reqs = [
            ServeRequest(task=T, arrival_s=i * 1e-5, request_id=i)
            for i in range(4)
        ]
        report = ServingEngine("brainwave").serve_stream(
            reqs, batcher=lambda: TimeWindowBatcher(max_batch=2, window_ms=50.0)
        )
        assert report.max_batch_size == 2
        # The first batch did not wait out the 50 ms window.
        assert report.responses[0].start_s < 1e-3

    def test_adaptive_respects_head_deadline(self):
        # With a tight SLO the adaptive policy must not hold the head
        # past its deadline even though the window would allow it.
        reqs = [
            ServeRequest(task=T, arrival_s=i * 1e-4, request_id=i)
            for i in range(6)
        ]
        report = ServingEngine("brainwave").serve_stream(
            reqs, slo_ms=1.0, batcher="adaptive", max_batch=6
        )
        assert report.slo_miss_rate == 0.0
        loose = ServingEngine("brainwave").serve_stream(
            reqs, slo_ms=1000.0, batcher="adaptive", max_batch=6
        )
        # With slack the same policy batches more aggressively.
        assert loose.mean_batch_size >= report.mean_batch_size

    def test_adaptive_drains_maximally_once_deadline_is_lost(self):
        # A backlog whose deadlines are unmeetable even at batch 1: the
        # policy must switch to drain mode (max batching) instead of
        # serving one-by-one forever.
        burst = [
            ServeRequest(task=T, arrival_s=0.0, request_id=i, slo_ms=0.001)
            for i in range(16)
        ]
        report = ServingEngine("cpu").serve_stream(
            burst, batcher="adaptive", max_batch=8
        )
        assert report.max_batch_size == 8
        strict = ServingEngine("cpu").serve_stream(burst, batcher="none")
        assert report.throughput_rps > strict.throughput_rps

    def test_adaptive_without_slo_acts_like_time_window(self):
        reqs = [
            ServeRequest(task=T, arrival_s=i * 2e-4, request_id=i)
            for i in range(3)
        ]
        adaptive = ServingEngine("brainwave").serve_stream(
            reqs, batcher=lambda: AdaptiveBatcher(max_batch=4, window_ms=1.0)
        )
        window = ServingEngine("brainwave").serve_stream(
            reqs, batcher=lambda: TimeWindowBatcher(max_batch=4, window_ms=1.0)
        )
        assert adaptive.p99_ms == window.p99_ms
        assert adaptive.mean_batch_size == window.mean_batch_size

    def test_fleet_streams_support_batching(self):
        fleet = Fleet("gpu", replicas=2, policy="least-loaded")
        report = fleet.serve_stream(_burst(32), batcher="size-cap", max_batch=4)
        assert report.batcher == "size-cap"
        assert report.mean_batch_size > 1.0
        assert sorted(r.request.request_id for r in report.responses) == list(range(32))

    def test_none_batcher_forces_batch_one(self):
        assert NoneBatcher(max_batch=64).max_batch == 1
        assert get_batcher("none", max_batch=16).max_batch == 1
