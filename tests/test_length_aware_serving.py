"""Variable-length, stacked, and seq2seq serving: the length-aware stack.

Covers the workload zoo, per-request length overrides and the shared
family compile cache, the seeded length samplers, the ``pad``/``bucket``
batchers with their padding accounting, trace round-trips (v2 schema and
v1 back-compat), and the CLI end to end.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ServingError, WorkloadError
from repro.harness.cli import main
from repro.serving import (
    EmpiricalLength,
    FixedLength,
    ServingEngine,
    UniformLength,
    ZipfLength,
    get_batcher,
    length_sampler,
    lengths_from_trace,
    poisson_arrivals,
    record_trace,
    replay_trace,
    uniform_arrivals,
)
from repro.workloads.deepbench import RNNTask, task
from repro.workloads.zoo import ZOO_TASKS, seq2seq, stacked, zoo_task, zoo_tasks

T = task("gru", 512, 25)


class TestWorkloadZoo:
    def test_stacked_validation(self):
        with pytest.raises(WorkloadError):
            stacked("lstm", 512, 25, layers=1)
        assert stacked("lstm", 512, 25, layers=4).layers == 4

    def test_seq2seq_validation(self):
        with pytest.raises(WorkloadError):
            seq2seq("gru", 512, 25, 0)
        t = seq2seq("gru", 512, 25, 10, layers=2)
        assert (t.timesteps, t.decoder_timesteps, t.layers) == (25, 10, 2)

    def test_names_are_distinct_and_stable(self):
        assert stacked("lstm", 512, 25, layers=2).name == "lstm-h512-l2-t25"
        assert seq2seq("gru", 512, 25, 10).name == "gru-h512-t25d10"
        assert task("lstm", 512, 25).name == "lstm-h512-t25"  # unchanged
        assert len({t.name for t in zoo_tasks()}) == len(ZOO_TASKS)

    def test_zoo_lookup(self):
        assert zoo_task("gnmt-lstm-2x1024").decoder_timesteps == 30
        with pytest.raises(WorkloadError):
            zoo_task("missing")

    def test_weight_and_flop_scaling(self):
        base = RNNTask("lstm", 512, 25, in_table6=False)
        two = stacked("lstm", 512, 25, layers=2)
        assert two.weight_bytes(1) == 2 * base.weight_bytes(1)
        assert two.cell_weight_bytes(1) == base.weight_bytes(1)
        assert two.flops == 2 * base.flops
        s2s = seq2seq("lstm", 512, 20, 5)
        assert s2s.flops == base.with_timesteps(25).flops

    def test_family_and_variants(self):
        assert T.with_timesteps(40).family_key == T.family_key
        assert T.with_timesteps(T.timesteps) is T
        assert T.padded_to(10) == T  # never truncates
        assert T.padded_to(40).timesteps == 40
        assert stacked("gru", 512, 25, layers=2).family_key != T.family_key
        assert seq2seq("gru", 512, 25, 10).family_key != T.family_key


class TestLengthSamplers:
    def test_fixed(self):
        rng = np.random.default_rng(0)
        assert [FixedLength(9).sample(rng) for _ in range(3)] == [9, 9, 9]
        with pytest.raises(ServingError):
            FixedLength(0)

    def test_uniform_bounds_and_validation(self):
        rng = np.random.default_rng(1)
        draws = [UniformLength(3, 5).sample(rng) for _ in range(100)]
        assert set(draws) == {3, 4, 5}
        with pytest.raises(ServingError):
            UniformLength(5, 3)

    def test_zipf_shape(self):
        rng = np.random.default_rng(2)
        sampler = ZipfLength(10, 500, alpha=1.5)
        draws = [sampler.sample(rng) for _ in range(500)]
        assert min(draws) >= 10 and max(draws) <= 500
        # Heavy head: short sequences dominate.
        assert sum(d < 50 for d in draws) > 5 * sum(d > 250 for d in draws)
        with pytest.raises(ServingError):
            ZipfLength(10, 500, alpha=0.0)

    def test_empirical(self):
        rng = np.random.default_rng(3)
        sampler = EmpiricalLength((7, 7, 7, 100))
        assert set(sampler.sample(rng) for _ in range(80)) == {7, 100}
        with pytest.raises(ServingError):
            EmpiricalLength(())

    def test_spec_parsing(self):
        assert length_sampler("fixed:25") == FixedLength(25)
        assert length_sampler("uniform:10:50") == UniformLength(10, 50)
        assert length_sampler("zipf:10:50") == ZipfLength(10, 50, 1.2)
        assert length_sampler("zipf:10:50:2.0") == ZipfLength(10, 50, 2.0)
        for bad in ("zipfish:1:2", "uniform:1", "fixed", "zipf:a:b", ""):
            with pytest.raises(ServingError):
                length_sampler(bad)

    def test_lengths_attach_without_perturbing_arrivals(self):
        plain = poisson_arrivals(T, rate_per_s=500, n_requests=30, seed=9)
        varied = poisson_arrivals(
            T, rate_per_s=500, n_requests=30, seed=9,
            lengths=UniformLength(5, 80),
        )
        assert [r.arrival_s for r in plain] == [r.arrival_s for r in varied]
        assert {r.task.timesteps for r in varied} != {T.timesteps}
        assert all(r.task.family_key == T.family_key for r in varied)
        again = poisson_arrivals(
            T, rate_per_s=500, n_requests=30, seed=9,
            lengths=UniformLength(5, 80),
        )
        assert varied == again  # seeded: bit-identical reruns


class TestFamilyCompileCache:
    @pytest.mark.parametrize("platform", ["gpu", "brainwave", "plasticine"])
    def test_length_variants_share_one_compile(self, platform):
        engine = ServingEngine(platform)
        results = [
            engine.result_for(T.with_timesteps(t)) for t in (5, 25, 125, 625)
        ]
        assert engine.cache_stats.misses == 1
        assert engine.cache_stats.hits == 3
        latencies = [r.latency_s for r in results]
        assert latencies == sorted(latencies)  # monotone in T
        # Each result is costed for its own task.
        assert [r.task.timesteps for r in results] == [5, 25, 125, 625]

    def test_variant_cost_matches_direct_compile(self):
        # Re-costing from a shared compiled model must agree exactly with
        # compiling the variant from scratch (the affine-cost contract).
        engine = ServingEngine("plasticine")
        engine.result_for(T)  # family compiled at T=25
        via_cache = engine.result_for(T.with_timesteps(125))
        direct = ServingEngine("plasticine").result_for(T.with_timesteps(125))
        assert via_cache.latency_s == direct.latency_s
        assert via_cache.effective_tflops == direct.effective_tflops

    def test_cross_family_serve_rejected(self):
        engine = ServingEngine("gpu")
        prepared = engine.prepare(T)
        other = stacked("gru", 512, 25, layers=2)
        with pytest.raises(ServingError):
            engine.platform.serve_request(prepared, other)


def _mixed_length_burst(n=24, seed=4, lo=5, hi=160):
    return uniform_arrivals(
        T, rate_per_s=1e6, n_requests=n, seed=seed,
        lengths=UniformLength(lo, hi),
    )


class TestLengthAwareBatchers:
    def test_pad_coalesces_across_lengths_and_accounts_waste(self):
        report = ServingEngine("gpu").serve_stream(
            _mixed_length_burst(), batcher="pad", max_batch=8
        )
        assert report.mean_batch_size > 1.0
        assert report.padding_waste_frac > 0.0
        # Every batched response executed at its batch's maximum length.
        for r in report.responses:
            assert r.result.task.timesteps >= r.request.task.timesteps
            if r.batch_size == 1:
                assert r.padded_timesteps == 0

    def test_bucket_bounds_padding_by_band(self):
        batcher = get_batcher("bucket", max_batch=8, band_base=2.0)
        report = ServingEngine("gpu").serve_stream(
            _mixed_length_burst(), batcher=lambda: batcher
        )
        for r in report.responses:
            # Padded length stays inside the request's own band.
            assert batcher.band(r.result.task.timesteps) == batcher.band(
                r.request.task.timesteps
            )

    @pytest.mark.parametrize("n", [200, 300, 600])
    def test_bucket_beats_pad_on_zipf_waste_and_throughput(self, n):
        # The benchmark's headline ordering, pinned as a test: on a
        # heavy-tailed length mix against the paper's batched baseline
        # (Brainwave), bucketing wastes strictly less and drains at
        # least as fast at equal-or-better SLO attainment.
        burst = uniform_arrivals(
            T, rate_per_s=1e6, n_requests=n, seed=3,
            lengths=ZipfLength(10, 300, alpha=1.6),
        )
        engine = ServingEngine("brainwave")
        pad = engine.serve_stream(
            burst, slo_ms=400.0, batcher="pad", max_batch=16
        )
        bucket = engine.serve_stream(
            burst, slo_ms=400.0,
            batcher=lambda: get_batcher("bucket", max_batch=16),
        )
        assert bucket.padding_waste_frac < pad.padding_waste_frac
        assert bucket.throughput_rps >= pad.throughput_rps
        assert bucket.slo_attainment >= pad.slo_attainment

    def test_batch1_spatial_path_never_pads(self):
        report = ServingEngine("plasticine").serve_stream(
            _mixed_length_burst(n=16), batcher="none"
        )
        assert report.mean_batch_size == 1.0
        assert report.padding_waste_frac == 0.0
        assert all(r.padding_waste_flops == 0 for r in report.responses)

    def test_mixed_families_never_coalesce(self):
        streams = ServingEngine("gpu").serve_stream(
            [
                *(r for r in uniform_arrivals(
                    T, rate_per_s=1e6, n_requests=4, tenant="a")),
            ],
            batcher="pad",
        )
        assert streams.max_batch_size <= 4
        # pad across families is structurally impossible: compatible()
        # requires equal family keys, and the event loop re-validates.
        b = get_batcher("pad", max_batch=8)

        class _Q:
            request = None

        from repro.serving.scheduler import QueuedRequest

        head = QueuedRequest(seq=0, request=_req(T), result=None)
        other = QueuedRequest(
            seq=1, request=_req(stacked("gru", 512, 25, layers=2)), result=None
        )
        assert not b.compatible(head, other)
        assert b.compatible(head, QueuedRequest(
            seq=2, request=_req(T.with_timesteps(99)), result=None))

    def test_bucket_band_validation(self):
        with pytest.raises(ServingError):
            get_batcher("bucket", band_base=1.0)

    def test_band_edges_are_exact(self):
        # floor(log(T, base)) misclassifies exact powers (log10(1000)
        # rounds just under 3); the exact multiply-up helper must not.
        from repro.serving import length_band

        assert length_band(1000, band_base=10) == (1000, 9999)
        assert length_band(999, band_base=10) == (100, 999)
        assert length_band(243, band_base=3) == (243, 728)
        assert length_band(16) == (16, 31)
        assert length_band(1) == (1, 1)
        with pytest.raises(ServingError):
            length_band(0)
        with pytest.raises(ServingError):
            length_band(10, band_base=1.0)


def _req(t):
    from repro.serving import ServeRequest

    return ServeRequest(task=t)


class TestReportsAndSlices:
    def test_per_length_band_slices_sum(self):
        report = ServingEngine("gpu").serve_stream(
            poisson_arrivals(
                T, rate_per_s=2000, n_requests=60, seed=5,
                lengths=ZipfLength(4, 200),
            ),
            slo_ms=100.0,
        )
        bands = report.per_length_band()
        assert sum(b.n_requests for b in bands.values()) == report.n_requests
        for label, sub in bands.items():
            lo, hi = label[1:].split("-")
            assert all(
                int(lo) <= r.request.task.timesteps <= int(hi)
                for r in sub.responses
            )
        with pytest.raises(ServingError):
            report.per_length_band(band_base=1.0)

    def test_longer_bands_see_longer_service(self):
        report = ServingEngine("cpu").serve_stream(
            uniform_arrivals(
                T, rate_per_s=10, n_requests=40, seed=6,
                lengths=UniformLength(2, 400),
            )
        )
        bands = list(report.per_length_band().values())
        mean_service = [
            sum(r.service_s for r in b.responses) / b.n_requests for b in bands
        ]
        assert mean_service == sorted(mean_service)


class TestTraceSchema:
    def test_v2_round_trip_with_zoo_and_lengths(self, tmp_path):
        arrivals = poisson_arrivals(
            zoo_task("gnmt-lstm-2x1024"), rate_per_s=100, n_requests=6,
            seed=1, lengths=UniformLength(10, 60),
        )
        path = tmp_path / "zoo.jsonl"
        assert replay_trace(record_trace(arrivals, path)) == arrivals
        rec = json.loads(path.read_text().splitlines()[0])
        assert rec["v"] == 2
        assert rec["layers"] == 2 and rec["decoder_timesteps"] == 30
        assert "batch" not in rec

    def test_v1_trace_still_replays(self, tmp_path):
        line = json.dumps({
            "v": 1, "kind": "lstm", "hidden": 512, "timesteps": 25,
            "batch": 1, "in_table6": True, "arrival_s": 0.5,
            "request_id": 0, "tenant": "legacy", "priority": 0,
            "slo_ms": None,
        })
        path = tmp_path / "v1.jsonl"
        path.write_text(line + "\n")
        (req,) = replay_trace(path)
        assert req.task == task("lstm", 512, 25)
        assert req.task.layers == 1 and req.task.decoder_timesteps == 0

    def test_v1_nontrivial_batch_rejected(self, tmp_path):
        line = json.dumps({
            "v": 1, "kind": "lstm", "hidden": 512, "timesteps": 25,
            "batch": 4, "in_table6": True, "arrival_s": 0.5,
            "request_id": 0,
        })
        path = tmp_path / "bad.jsonl"
        path.write_text(line + "\n")
        with pytest.raises(ServingError, match="batch"):
            replay_trace(path)

    def test_empirical_lengths_from_trace(self, tmp_path):
        arrivals = poisson_arrivals(
            T, rate_per_s=100, n_requests=5, seed=2,
            lengths=UniformLength(3, 9),
        )
        path = record_trace(arrivals, tmp_path / "emp.jsonl")
        sampler = lengths_from_trace(path)
        assert sampler.population == tuple(
            r.task.timesteps for r in arrivals
        )


class TestCLIEndToEnd:
    def test_stacked_and_seq2seq_serve_on_all_platforms(self, capsys):
        # Acceptance criterion: a stacked (L>=2) and a seq2seq task serve
        # end to end via the CLI on all four platforms.
        assert main([
            "serve", "--stream",
            "--mix", "lstm:1024:30d30:2,gru:1536:150:3",
            "--rate", "300", "--requests", "40", "--slo-ms", "50",
        ]) == 0
        out = capsys.readouterr().out
        for platform in ("plasticine", "brainwave", "cpu", "gpu"):
            assert platform in out
        assert "lstm-h1024-l2-t30d30" in out
        assert "gru-h1536-l3-t150" in out

    def test_length_dist_with_bucket_batcher(self, capsys):
        assert main([
            "serve", "gru", "512", "25", "--platform", "gpu", "--stream",
            "--rate", "3000", "--requests", "80", "--slo-ms", "100",
            "--length-dist", "zipf:10:200", "--batcher", "bucket",
            "--max-batch", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "pad waste" in out
        assert "lengths zipf:10:200" in out

    def test_bad_length_dist_errors(self, capsys):
        assert main([
            "serve", "--platform", "gpu", "--stream",
            "--length-dist", "nope:1",
        ]) == 1
        assert "length-distribution" in capsys.readouterr().err

    def test_bad_mix_layer_spec_errors(self, capsys):
        assert main([
            "serve", "--platform", "gpu", "--stream",
            "--mix", "lstm:512:25:x",
        ]) == 1
        assert "bad --mix entry" in capsys.readouterr().err

    @pytest.mark.parametrize("spec", ["lstm:512:25:0", "lstm:512:25d-5"])
    def test_mix_rejects_invalid_layers_and_decoder(self, capsys, spec):
        # A typo like layers=0 must not silently fall back to the plain
        # single-layer task.
        assert main([
            "serve", "--platform", "gpu", "--stream", "--mix", spec,
        ]) == 1
        assert "bad --mix entry" in capsys.readouterr().err

    def test_trace_conflicts_with_length_dist(self, capsys, tmp_path):
        from repro.serving import record_trace

        path = tmp_path / "t.jsonl"
        record_trace(
            uniform_arrivals(T, rate_per_s=100, n_requests=3), path
        )
        assert main([
            "serve", "--platform", "gpu", "--stream",
            "--trace", str(path), "--length-dist", "zipf:10:100",
        ]) == 1
        assert "--length-dist" in capsys.readouterr().err

    def test_mix_decoder_only_spec(self, capsys):
        # Two tenants so the per-tenant breakdown (which carries the
        # task names) renders; gru:512:20d5 is seq2seq without layers.
        assert main([
            "serve", "--platform", "brainwave", "--stream",
            "--mix", "gru:512:20d5,lstm:512", "--rate", "200",
            "--requests", "20",
        ]) == 0
        out = capsys.readouterr().out
        assert "gru-h512-t20d5" in out
        assert "lstm-h512-t25" in out
