"""Traffic generation: determinism, tenant tags, mixes, and traces."""

import pytest

from repro.errors import ServingError
from repro.serving import (
    Fleet,
    ServeRequest,
    ServingEngine,
    diurnal_arrivals,
    mix,
    mmpp_arrivals,
    poisson_arrivals,
    record_trace,
    replay_trace,
    request_from_json,
    request_to_json,
    uniform_arrivals,
)
from repro.workloads.deepbench import task

T = task("lstm", 512, 25)
G = task("gru", 512, 1)


class TestDeterminism:
    def test_poisson_same_seed_identical(self):
        a = poisson_arrivals(T, rate_per_s=400.0, n_requests=100, seed=9)
        b = poisson_arrivals(T, rate_per_s=400.0, n_requests=100, seed=9)
        assert a == b

    def test_poisson_different_seed_differs(self):
        a = poisson_arrivals(T, rate_per_s=400.0, n_requests=100, seed=9)
        b = poisson_arrivals(T, rate_per_s=400.0, n_requests=100, seed=10)
        assert a != b

    def test_mmpp_same_seed_identical(self):
        kwargs = dict(
            quiet_rate_per_s=100.0,
            burst_rate_per_s=900.0,
            n_requests=200,
            seed=4,
        )
        assert mmpp_arrivals(T, **kwargs) == mmpp_arrivals(T, **kwargs)

    def test_diurnal_same_seed_identical(self):
        kwargs = dict(
            base_rate_per_s=50.0,
            peak_rate_per_s=500.0,
            period_s=2.0,
            n_requests=150,
            seed=13,
        )
        assert diurnal_arrivals(T, **kwargs) == diurnal_arrivals(T, **kwargs)

    def test_mix_same_inputs_identical(self):
        def build():
            return mix(
                poisson_arrivals(T, rate_per_s=200.0, n_requests=50, seed=1),
                mmpp_arrivals(
                    G,
                    quiet_rate_per_s=100.0,
                    burst_rate_per_s=600.0,
                    n_requests=50,
                    seed=2,
                ),
            )

        assert build() == build()


class TestGenerators:
    def test_arrivals_strictly_increasing(self):
        for stream in (
            poisson_arrivals(T, rate_per_s=300.0, n_requests=200, seed=0),
            mmpp_arrivals(
                T, quiet_rate_per_s=50.0, burst_rate_per_s=800.0,
                n_requests=200, seed=0,
            ),
            diurnal_arrivals(
                T, base_rate_per_s=50.0, peak_rate_per_s=400.0,
                period_s=1.0, n_requests=200, seed=0,
            ),
        ):
            times = [r.arrival_s for r in stream]
            assert times == sorted(times)
            assert all(t > 0 for t in times)

    def test_tags_flow_through(self):
        stream = mmpp_arrivals(
            T,
            quiet_rate_per_s=100.0,
            burst_rate_per_s=400.0,
            n_requests=20,
            seed=1,
            tenant="translate",
            priority=3,
            slo_ms=7.5,
        )
        for req in stream:
            assert req.tenant == "translate"
            assert req.priority == 3
            assert req.slo_ms == 7.5

    def test_start_offset_shifts_stream(self):
        base = poisson_arrivals(T, rate_per_s=100.0, n_requests=10, seed=5)
        shifted = poisson_arrivals(
            T, rate_per_s=100.0, n_requests=10, seed=5, start_s=2.0
        )
        for b, s in zip(base, shifted):
            assert s.arrival_s == pytest.approx(b.arrival_s + 2.0)

    def test_mmpp_is_burstier_than_poisson(self):
        # Squared coefficient of variation of inter-arrivals: ~1 for
        # Poisson, > 1 for a two-state MMPP with distinct rates.
        mmpp = mmpp_arrivals(
            T, quiet_rate_per_s=50.0, burst_rate_per_s=2000.0,
            quiet_dwell_s=0.5, burst_dwell_s=0.05, n_requests=2000, seed=3,
        )
        times = [r.arrival_s for r in mmpp]
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        assert var / mean**2 > 1.5

    def test_validation(self):
        with pytest.raises(ServingError):
            poisson_arrivals(T, rate_per_s=0.0, n_requests=10)
        with pytest.raises(ServingError):
            poisson_arrivals(T, rate_per_s=10.0, n_requests=0)
        with pytest.raises(ServingError):
            mmpp_arrivals(
                T, quiet_rate_per_s=10.0, burst_rate_per_s=-1.0, n_requests=5
            )
        with pytest.raises(ServingError):
            mmpp_arrivals(
                T, quiet_rate_per_s=10.0, burst_rate_per_s=20.0,
                n_requests=5, quiet_dwell_s=0.0,
            )
        with pytest.raises(ServingError):
            diurnal_arrivals(
                T, base_rate_per_s=100.0, peak_rate_per_s=50.0,
                period_s=1.0, n_requests=5,
            )
        with pytest.raises(ServingError):
            diurnal_arrivals(
                T, base_rate_per_s=10.0, peak_rate_per_s=50.0,
                period_s=0.0, n_requests=5,
            )

    def test_negative_slo_rejected(self):
        with pytest.raises(ServingError, match="slo_ms"):
            poisson_arrivals(T, rate_per_s=10.0, n_requests=5, slo_ms=-1.0)


class TestMix:
    def test_ids_globally_unique_and_sorted(self):
        merged = mix(
            poisson_arrivals(T, rate_per_s=200.0, n_requests=40, seed=1),
            poisson_arrivals(G, rate_per_s=200.0, n_requests=40, seed=2),
            uniform_arrivals(T, rate_per_s=100.0, n_requests=20),
        )
        assert len(merged) == 100
        ids = [r.request_id for r in merged]
        assert ids == list(range(100))  # unique, dense, in arrival order
        times = [r.arrival_s for r in merged]
        assert times == sorted(times)

    def test_mix_preserves_tags(self):
        merged = mix(
            poisson_arrivals(
                T, rate_per_s=100.0, n_requests=10, seed=1,
                tenant="a", priority=2, slo_ms=3.0,
            ),
            poisson_arrivals(
                G, rate_per_s=100.0, n_requests=10, seed=2, tenant="b"
            ),
        )
        by_tenant = {r.tenant for r in merged}
        assert by_tenant == {"a", "b"}
        for r in merged:
            if r.tenant == "a":
                assert r.priority == 2 and r.slo_ms == 3.0
            else:
                assert r.priority == 0 and r.slo_ms is None

    def test_unmixed_merge_rejected_by_engine(self):
        # Both generators number from 0 — a hand-concatenated merge has
        # colliding ids, which the event loop rejects with a pointer at
        # mix(); the same merge through mix() is accepted.
        a = poisson_arrivals(T, rate_per_s=200.0, n_requests=10, seed=1)
        b = poisson_arrivals(G, rate_per_s=200.0, n_requests=10, seed=2)
        engine = ServingEngine("gpu")
        with pytest.raises(ServingError, match="mix"):
            engine.serve_stream(a + b)
        report = engine.serve_stream(mix(a, b))
        assert report.n_requests == 20

    def test_fleet_rejects_duplicate_ids_too(self):
        a = poisson_arrivals(T, rate_per_s=200.0, n_requests=10, seed=1)
        b = poisson_arrivals(G, rate_per_s=200.0, n_requests=10, seed=2)
        with pytest.raises(ServingError, match="duplicate request_id"):
            Fleet("gpu", replicas=2).serve_stream(a + b)

    def test_empty_mix_rejected(self):
        with pytest.raises(ServingError):
            mix()
        with pytest.raises(ServingError):
            mix((), ())


class TestTrace:
    def test_round_trip_exact(self, tmp_path):
        stream = mix(
            mmpp_arrivals(
                T, quiet_rate_per_s=100.0, burst_rate_per_s=700.0,
                n_requests=50, seed=6, tenant="interactive", priority=1,
                slo_ms=5.0,
            ),
            poisson_arrivals(
                G, rate_per_s=80.0, n_requests=30, seed=7, tenant="bulk"
            ),
        )
        path = tmp_path / "trace.jsonl"
        record_trace(stream, path)
        replayed = replay_trace(path)
        assert replayed == stream  # exact, including float arrival times

    def test_round_trip_same_report(self, tmp_path):
        stream = poisson_arrivals(T, rate_per_s=900.0, n_requests=100, seed=8)
        path = tmp_path / "trace.jsonl"
        record_trace(stream, path)
        engine = ServingEngine("gpu")
        original = engine.serve_stream(stream, slo_ms=5.0)
        replayed = engine.serve_stream(replay_trace(path), slo_ms=5.0)
        assert replayed.p50_ms == original.p50_ms
        assert replayed.p99_ms == original.p99_ms
        assert replayed.slo_miss_rate == original.slo_miss_rate

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ServingError, match="not found"):
            replay_trace(tmp_path / "nope.jsonl")

    def test_corrupt_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "lstm"}\n')
        with pytest.raises(ServingError, match="bad trace line 1"):
            replay_trace(path)

    def test_empty_trace_rejected(self, tmp_path):
        with pytest.raises(ServingError, match="empty"):
            record_trace([], tmp_path / "empty.jsonl")
        path = tmp_path / "blank.jsonl"
        path.write_text("\n")
        with pytest.raises(ServingError, match="no requests"):
            replay_trace(path)

    def test_record_is_atomic_under_midstream_failure(self, tmp_path):
        """Regression: a generator blowing up mid-stream must neither
        clobber the existing trace nor leave a half-written temp file."""
        path = tmp_path / "trace.jsonl"
        good = poisson_arrivals(T, rate_per_s=200.0, n_requests=5, seed=4)
        record_trace(good, path)
        before = path.read_text()

        def exploding():
            yield from good[:3]
            raise RuntimeError("disk fell over")

        with pytest.raises(RuntimeError, match="disk fell over"):
            record_trace(exploding(), path)
        assert path.read_text() == before
        assert list(tmp_path.iterdir()) == [path]

    def test_record_empty_stream_keeps_existing_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        record_trace(poisson_arrivals(
            T, rate_per_s=200.0, n_requests=3, seed=1), path)
        before = path.read_text()
        with pytest.raises(ServingError, match="empty"):
            record_trace([], path)
        assert path.read_text() == before
        assert list(tmp_path.iterdir()) == [path]


class TestRequestFromJson:
    def test_non_dict_records_raise_serving_error(self):
        for rec in ([1, 2], "a string", 7, None, 3.5):
            with pytest.raises(ServingError, match="expected a JSON object"):
                request_from_json(rec)

    def test_task_validation_failures_become_serving_errors(self):
        # Regression: these used to escape as WorkloadError (unknown
        # kind, bad sizes) or TypeError (wrong field types), past
        # handlers that only catch ServingError.
        base = request_to_json(ServeRequest(task=T, request_id=0))
        for corrupt in (
            {"kind": "nope"},
            {"hidden": -4},
            {"timesteps": 0},
            {"hidden": "big"},
            {"arrival_s": "soon"},
            {"layers": 0},
        ):
            with pytest.raises(ServingError, match="bad request record"):
                request_from_json({**base, **corrupt})

    def test_missing_fields_raise_serving_error(self):
        with pytest.raises(ServingError, match="bad request record"):
            request_from_json({"kind": "lstm"})

    def test_where_names_the_source(self):
        with pytest.raises(ServingError, match="bad socket peer"):
            request_from_json([1], where="socket peer")
