"""Tests for the CLI and the abstract-claims efficiency analysis."""

import pytest

from repro.analysis.efficiency import (
    ClaimCheck,
    abstract_claims,
    energy_per_inference_j,
)
from repro.harness.cli import build_parser, main


class TestClaimCheck:
    def test_approx_band(self):
        assert ClaimCheck("x", 30.0, 39.0).holds
        assert ClaimCheck("x", 30.0, 16.0).holds
        assert not ClaimCheck("x", 30.0, 5.0).holds
        assert not ClaimCheck("x", 30.0, 100.0).holds

    def test_at_least_direction(self):
        assert ClaimCheck("x", 60.0, 148.0, direction="at_least").holds
        assert ClaimCheck("x", 60.0, 31.0, direction="at_least").holds
        assert not ClaimCheck("x", 60.0, 20.0, direction="at_least").holds

    def test_energy_per_inference(self):
        assert energy_per_inference_j(0.001, 100.0) == pytest.approx(0.1)


class TestAbstractClaims:
    @pytest.fixture(scope="class")
    def report(self):
        return abstract_claims()

    def test_every_claim_holds(self, report):
        failing = [c.claim for c in report.checks if not c.holds]
        assert not failing, f"claims failing the shape band: {failing}"

    def test_contains_all_six_claims(self, report):
        assert len(report.checks) == 6
        claims = " ".join(c.claim for c in report.checks)
        for token in ("V100", "Brainwave", "CPU", "area", "power", "energy"):
            assert token in claims

    def test_area_claim_exact(self, report):
        area = next(c for c in report.checks if "area" in c.claim)
        assert area.measured == pytest.approx(815 / 494.37, rel=1e-6)

    def test_power_claim_from_tdp(self, report):
        power = next(c for c in report.checks if "power" in c.claim)
        assert power.measured == pytest.approx(300 / 160, rel=1e-6)

    def test_text_rendering(self, report):
        assert "Abstract claims" in report.text
        assert "yes" in report.text
        assert report.all_hold()


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        for cmd in ("table3", "table6", "figure4", "figure6", "claims", "all"):
            args = parser.parse_args([cmd])
            assert callable(args.fn)

    def test_serve_args(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "lstm", "1024"])
        assert args.kind == "lstm"
        assert args.hidden == 1024
        assert args.timesteps is None

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_main_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "192" in out and "384" in out

    def test_main_figure7(self, capsys):
        assert main(["figure7"]) == 0
        assert "PMU PCU PMU" in capsys.readouterr().out

    def test_main_figure6(self, capsys):
        assert main(["figure6"]) == 0
        assert "folded" in capsys.readouterr().out

    def test_main_serve(self, capsys):
        assert main(["serve", "lstm", "256"]) == 0
        out = capsys.readouterr().out
        assert "plasticine" in out and "brainwave" in out

    def test_main_serve_custom_timesteps(self, capsys):
        assert main(["serve", "lstm", "333", "7"]) == 0
        assert "lstm-h333-t7" in capsys.readouterr().out

    def test_serve_single_platform(self, capsys):
        assert main(["serve", "lstm", "512", "--platform", "brainwave"]) == 0
        out = capsys.readouterr().out
        assert "brainwave" in out
        assert "plasticine" not in out

    def test_serve_defaults_without_task(self, capsys):
        # The CI smoke invocation: platform only, default lstm-512 task.
        assert main(["serve", "--platform", "plasticine"]) == 0
        assert "lstm-h512-t25" in capsys.readouterr().out

    def test_serve_unknown_platform_errors(self, capsys):
        assert main(["serve", "lstm", "512", "--platform", "tpu"]) == 1
        assert "unknown platform" in capsys.readouterr().err

    def test_serve_stream_mode(self, capsys):
        assert main(
            ["serve", "lstm", "512", "--platform", "gpu", "--stream",
             "--rate", "200", "--requests", "50", "--slo-ms", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "P99 ms" in out and "200 req/s" in out

    def test_serve_stream_fleet(self, capsys):
        assert main(
            ["serve", "lstm", "512", "--platform", "brainwave", "--stream",
             "--rate", "500", "--requests", "50", "--replicas", "2",
             "--policy", "round-robin"]
        ) == 0
        assert "2 replica(s), round-robin" in capsys.readouterr().out

    def test_serve_stream_mix_scheduler(self, capsys):
        assert main(
            ["serve", "--platform", "gpu", "--stream", "--scheduler", "edf",
             "--mix", "lstm:512@5,gru:512:1@20^1", "--rate", "400",
             "--requests", "60", "--slo-ms", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "2-tenant mix" in out and "edf" in out
        assert "Per-tenant breakdown (gpu)" in out
        assert "lstm-h512-t25" in out and "gru-h512-t1" in out

    def test_serve_stream_bad_mix_errors(self, capsys):
        assert main(
            ["serve", "--platform", "gpu", "--stream", "--mix", "lstm"]
        ) == 1
        assert "bad --mix entry" in capsys.readouterr().err

    def test_serve_stream_trace_round_trip(self, capsys, tmp_path):
        trace = str(tmp_path / "stream.jsonl")
        assert main(
            ["serve", "lstm", "512", "--platform", "gpu", "--stream",
             "--rate", "300", "--requests", "40", "--record-trace", trace]
        ) == 0
        first = capsys.readouterr().out
        assert f"[trace recorded: {trace}]" in first
        assert main(
            ["serve", "--platform", "gpu", "--stream", "--trace", trace]
        ) == 0
        second = capsys.readouterr().out
        # Replay reproduces the generated stream's table verbatim.
        assert first.splitlines()[1:4] == second.splitlines()[1:4]

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["tableX"])

    def test_help_lists_registered_names(self):
        # Choices come from the live registries, so plugin registrations
        # show up without touching the CLI.
        parser = build_parser()
        serve = next(
            a for a in parser._subparsers._group_actions[0].choices.values()
            if "serving engine" in (a.description or "")
        )
        text = serve.format_help()
        for name in ("plasticine", "brainwave", "cpu", "gpu"):
            assert name in text
        for name in ("fifo", "edf", "coalesce", "sjf", "priority"):
            assert name in text
        for name in ("none", "size-cap", "time-window", "adaptive"):
            assert name in text
        assert "docs/CLI.md" in text

    def test_serve_stream_batched(self, capsys):
        assert main(
            ["serve", "lstm", "512", "--platform", "gpu", "--stream",
             "--rate", "2000", "--requests", "60", "--batcher", "size-cap",
             "--max-batch", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "mean batch" in out
        assert "size-cap batching <= 4" in out

    def test_serve_stream_unknown_batcher_exits(self):
        with pytest.raises(SystemExit):
            main(["serve", "--stream", "--batcher", "megabatch"])

    def test_serve_stream_autoscale(self, capsys):
        assert main(
            ["serve", "lstm", "512", "--platform", "gpu", "--stream",
             "--rate", "4000", "--requests", "200", "--autoscale", "1:4"]
        ) == 0
        out = capsys.readouterr().out
        assert "autoscale 1:4" in out
        assert "Scale events (gpu" in out

    def test_serve_stream_bad_autoscale_errors(self, capsys):
        assert main(
            ["serve", "--platform", "gpu", "--stream", "--autoscale", "lots"]
        ) == 1
        assert "bad --autoscale spec" in capsys.readouterr().err
