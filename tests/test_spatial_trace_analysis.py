"""Tests for the tracer, loop-nest analysis, and pretty printer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import (
    Foreach,
    LoopKind,
    OpKind,
    Program,
    Range,
    Reduce,
    Sequential,
    analyze,
    format_program,
)


def _mvm_program(h: int, r: int, hu: int = 2, rv: int = 4, ru: int = 2) -> Program:
    prog = Program("mvm")
    w = prog.sram("w", (h, r))
    x = prog.sram("x", (r,))
    y = prog.sram("y", (h,))

    @prog.main
    def body():
        def row(ih):
            def outer(iu):
                return Reduce(
                    Range(rv, par=rv),
                    lambda iv: w[ih, iu + iv] * x[iu + iv],
                    label="inner_dot",
                )

            y.write(Reduce(Range(r, step=rv, par=ru), outer, label="outer_dot"), ih)

        Foreach(Range(h, par=hu), row, label="h_loop")

    return prog


class TestTracer:
    def test_loop_tree_structure(self):
        root = _mvm_program(8, 16).trace()
        assert len(root.children) == 1
        h_loop = root.children[0]
        assert h_loop.kind is LoopKind.FOREACH
        assert h_loop.extent == 8
        assert h_loop.par == 2
        outer = h_loop.children[0]
        assert outer.kind is LoopKind.REDUCE
        assert outer.step == 4
        inner = outer.children[0]
        assert inner.par == 4

    def test_labels_and_find(self):
        root = _mvm_program(8, 16).trace()
        assert root.find("h_loop") is not None
        assert root.find("inner_dot").extent == 4
        assert root.find("missing") is None

    def test_ops_recorded_in_innermost_loop(self):
        root = _mvm_program(8, 16).trace()
        inner = root.find("inner_dot")
        assert inner.op_count(OpKind.MUL) == 1
        # index arithmetic iu + iv also records an ADD
        assert inner.op_count(OpKind.ADD) == 2

    def test_memory_accesses_tagged_with_counters(self):
        root = _mvm_program(8, 16).trace()
        inner = root.find("inner_dot")
        w_reads = [a for a in inner.accesses if a.mem_name == "w"]
        assert len(w_reads) == 1
        # w is indexed by the h counter and both reduce counters.
        assert len(w_reads[0].counters) == 3

    def test_write_recorded_on_enclosing_loop(self):
        root = _mvm_program(8, 16).trace()
        h_loop = root.find("h_loop")
        writes = [a for a in h_loop.accesses if a.is_write]
        assert [a.mem_name for a in writes] == ["y"]

    def test_trace_is_cached(self):
        prog = _mvm_program(8, 16)
        assert prog.trace() is prog.trace()

    def test_sequential_kind(self):
        prog = Program("seq")
        y = prog.sram("y", (4,))

        @prog.main
        def body():
            Sequential.Foreach(Range(3), lambda t: y.write(0.0, t))

        root = prog.trace()
        assert root.children[0].kind is LoopKind.SEQUENTIAL

    def test_iterations_and_issue_count(self):
        root = _mvm_program(10, 16, hu=4).trace()
        h_loop = root.find("h_loop")
        assert h_loop.iterations == 10
        assert h_loop.issue_count == 3  # ceil(10/4)


class TestAnalysis:
    def test_mvm_mul_count(self):
        h, r = 8, 16
        info = analyze(_mvm_program(h, r).trace())
        assert info.total_ops[OpKind.MUL] == h * r

    def test_reduction_adds_counted(self):
        h, r, rv = 8, 16, 4
        info = analyze(_mvm_program(h, r, rv=rv).trace())
        # inner trees: (rv-1) adds, r/rv trees per row; outer: r/rv - 1 adds
        # plus 2 index adds per innermost iteration.
        expected = h * ((r // rv) * (rv - 1) + (r // rv - 1)) + 2 * h * r
        assert info.total_ops[OpKind.ADD] == expected

    def test_memory_traffic(self):
        h, r = 8, 16
        info = analyze(_mvm_program(h, r).trace())
        assert info.reads_of("w") == h * r
        assert info.reads_of("x") == h * r
        assert info.writes_of("y") == h

    def test_flops_positive_and_macs(self):
        info = analyze(_mvm_program(4, 8).trace())
        assert info.macs == 32
        assert info.flops > info.macs

    def test_max_depth(self):
        info = analyze(_mvm_program(4, 8).trace())
        assert info.max_depth == 3

    @given(
        h=st.integers(min_value=1, max_value=12),
        r_blocks=st.integers(min_value=1, max_value=6),
        rv=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=30, deadline=None)
    def test_mul_count_matches_h_times_r(self, h, r_blocks, rv):
        r = r_blocks * rv
        info = analyze(_mvm_program(h, r, rv=rv).trace())
        assert info.total_ops[OpKind.MUL] == h * r

    def test_analysis_matches_executor_traffic(self):
        # The tracer's static traffic equals the executor's dynamic count.
        h, r = 6, 8
        prog = _mvm_program(h, r)
        info = analyze(prog.trace())
        ex = prog.run(data={"w": np.zeros((h, r)), "x": np.zeros(r)})
        assert info.reads_of("w") == ex.read_elems["w"]
        assert info.reads_of("x") == ex.read_elems["x"]
        assert info.writes_of("y") == ex.write_elems["y"]


class TestPretty:
    def test_format_contains_structure(self):
        text = format_program(_mvm_program(8, 16))
        assert "Foreach(8 par 2)" in text
        assert "Reduce(16 by 4 par 2)" in text
        assert "SRAM" in text
        assert "h_loop" in text

    def test_format_lists_memories(self):
        prog = Program("mems")
        prog.sram("weights", (4, 4))
        prog.lut("tanh", np.tanh)
        prog.reg("acc")

        @prog.main
        def body():
            pass

        text = format_program(prog)
        assert "weights" in text
        assert "tanh" in text
        assert "acc" in text
