"""Tests for the CPU / GPU / Brainwave serving models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    BrainwaveConfig,
    BrainwaveServingModel,
    CPUServingModel,
    GPUServingModel,
    TESLA_V100,
    XEON_SKYLAKE,
)
from repro.baselines.machine import MemoryLevel, ProcessorMachine
from repro.errors import ConfigError
from repro.workloads.deepbench import RNNTask


class TestProcessorMachine:
    def test_bandwidth_selection(self):
        assert XEON_SKYLAKE.effective_bandwidth_gbs(1 * 2**20) == 20.0
        assert XEON_SKYLAKE.effective_bandwidth_gbs(10 * 2**20) == 18.0
        assert XEON_SKYLAKE.effective_bandwidth_gbs(100 * 2**20) == 8.2

    def test_stream_seconds(self):
        t = XEON_SKYLAKE.stream_seconds(8.2e9)
        assert t == pytest.approx(1.0)

    def test_levels_must_be_ordered(self):
        with pytest.raises(ConfigError):
            ProcessorMachine(
                "bad", 1.0, 1.0,
                (MemoryLevel("L3", 100, 10.0), MemoryLevel("L2", 10, 40.0),
                 MemoryLevel("DRAM", None, 5.0)),
                0.0, 0.0,
            )

    def test_last_level_unbounded(self):
        with pytest.raises(ConfigError):
            ProcessorMachine("bad", 1.0, 1.0, (MemoryLevel("L2", 10, 40.0),), 0.0, 0.0)

    def test_flops_seconds(self):
        assert TESLA_V100.flops_seconds(15.7e12) == pytest.approx(1.0)
        with pytest.raises(ConfigError):
            TESLA_V100.flops_seconds(1.0, efficiency=0)


class TestCPUModel:
    def test_lstm256_matches_paper(self):
        # Paper: 15.75 ms; weight-stream model gives ~16.3 ms.
        model = CPUServingModel()
        ms = model.latency_seconds(RNNTask("lstm", 256, 150)) * 1e3
        assert ms == pytest.approx(15.75, rel=0.10)

    def test_lstm2048_matches_paper(self):
        model = CPUServingModel()
        ms = model.latency_seconds(RNNTask("lstm", 2048, 25)) * 1e3
        assert ms == pytest.approx(429.36, rel=0.10)

    def test_gru1024_matches_paper(self):
        model = CPUServingModel()
        ms = model.latency_seconds(RNNTask("gru", 1024, 1500)) * 1e3
        assert ms == pytest.approx(3810.0, rel=0.25)

    def test_large_models_memory_bound(self):
        model = CPUServingModel()
        b = model.step_breakdown(RNNTask("lstm", 2048, 25))
        assert b.stream_s > b.compute_s

    def test_effective_tflops_tiny(self):
        # Table 6: CPU effective TFLOPS 0.003-0.010.
        model = CPUServingModel()
        for task in (RNNTask("lstm", 256, 150), RNNTask("gru", 2560, 375)):
            assert 0.002 < model.effective_tflops(task) < 0.012

    def test_basic_lstm_slower_than_fused(self):
        fused = CPUServingModel(fused=True)
        basic = CPUServingModel(fused=False)
        task = RNNTask("lstm", 512, 25)
        assert basic.latency_seconds(task) > fused.latency_seconds(task)

    @given(h=st.sampled_from([128, 256, 512, 1024, 2048]))
    @settings(max_examples=10, deadline=None)
    def test_latency_monotone_in_h(self, h):
        model = CPUServingModel()
        t1 = model.latency_seconds(RNNTask("lstm", h, 10))
        t2 = model.latency_seconds(RNNTask("lstm", 2 * h, 10))
        assert t2 > t1


class TestGPUModel:
    def test_lstm1024_matches_paper(self):
        model = GPUServingModel()
        ms = model.latency_seconds(RNNTask("lstm", 1024, 25)) * 1e3
        assert ms == pytest.approx(0.71, rel=0.6)  # shape, not absolute

    def test_small_models_overhead_bound(self):
        model = GPUServingModel()
        b = model.step_breakdown(RNNTask("lstm", 256, 150))
        assert b.overhead_s > b.stream_s

    def test_large_models_stream_bound(self):
        model = GPUServingModel()
        b = model.step_breakdown(RNNTask("gru", 2560, 375))
        assert b.stream_s > b.overhead_s

    def test_gru512_init_overhead_dominates(self):
        # The paper's own note: GRU H=512 T=1 is "initialization overhead
        # which should not be timed".
        model = GPUServingModel()
        task = RNNTask("gru", 512, 1)
        total = model.latency_seconds(task)
        assert model.machine.init_overhead_s / total > 0.9

    def test_effective_tflops_range(self):
        # Table 6: V100 effective TFLOPS 0.01 - 1.25.
        model = GPUServingModel()
        small = model.effective_tflops(RNNTask("gru", 512, 1))
        large = model.effective_tflops(RNNTask("gru", 2560, 375))
        assert small < 0.05
        assert 0.5 < large < 2.0

    def test_gpu_faster_than_cpu_everywhere(self):
        cpu, gpu = CPUServingModel(), GPUServingModel()
        for task in (RNNTask("lstm", 256, 150), RNNTask("gru", 2048, 375)):
            assert gpu.latency_seconds(task) < cpu.latency_seconds(task)


class TestBrainwaveModel:
    def test_tile_iterations_formula(self):
        # Section 3.2: ceil(H/hv) * ceil(R/(rv*ru)).
        cfg = BrainwaveConfig()
        assert cfg.mvm_tile_iterations(256, 512) == 1 * 3
        assert cfg.mvm_tile_iterations(2048, 2048) == 6 * 9

    def test_fragmentation_2d(self):
        cfg = BrainwaveConfig()
        # H=256 wastes most of the 400-row tile (Figure 4a).
        u = cfg.mvm_utilization(256, 512)
        assert u == pytest.approx(256 * 512 / (400 * 720))
        assert u < 0.5

    def test_aligned_sizes_utilize_fully(self):
        cfg = BrainwaveConfig(hv=4, rv=2, ru=2)
        assert cfg.mvm_utilization(8, 8) == 1.0

    def test_flat_latency_region(self):
        # Table 6: LSTM per-step latency nearly constant (~2.8-3.1 us)
        # from H=256 to H=2048.
        model = BrainwaveServingModel()
        steps = [
            model.step_trace(RNNTask("lstm", h, 25)).step_cycles
            for h in (256, 512, 1024, 1536, 2048)
        ]
        assert max(steps) / min(steps) < 1.2

    def test_lstm256_latency_matches_paper(self):
        model = BrainwaveServingModel()
        ms = model.latency_seconds(RNNTask("lstm", 256, 150)) * 1e3
        assert ms == pytest.approx(0.425, rel=0.10)

    def test_gru2560_latency_matches_paper(self):
        model = BrainwaveServingModel()
        ms = model.latency_seconds(RNNTask("gru", 2560, 375)) * 1e3
        assert ms == pytest.approx(0.993, rel=0.25)

    def test_effective_tflops_rises_with_size(self):
        # Table 6: BW 0.25 -> 29.7 effective TFLOPS.
        model = BrainwaveServingModel()
        small = model.effective_tflops(RNNTask("lstm", 256, 150))
        large = model.effective_tflops(RNNTask("gru", 2560, 375))
        assert small < 1.0
        assert large > 15.0

    def test_weight_bytes_bfp(self):
        model = BrainwaveServingModel()
        task = RNNTask("lstm", 1024, 25)
        # BFP at ~6.0125 bits/value ~ 0.75 B/value.
        expected = task.shape.weight_count * 0.7516
        assert model.weight_bytes(task) == pytest.approx(expected, rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigError):
            BrainwaveConfig(hv=0)
        with pytest.raises(ConfigError):
            BrainwaveConfig(clock_ghz=0)
        with pytest.raises(ConfigError):
            BrainwaveConfig().mvm_tile_iterations(0, 5)
