"""Unit tests for repro.precision.formats."""

import pytest

from repro.errors import PrecisionError
from repro.precision import FP8, FP16, FP32, FloatFormat, format_by_name


class TestFormatLayout:
    def test_fp8_is_one_four_three(self):
        assert FP8.total_bits == 8
        assert FP8.exponent_bits == 4
        assert FP8.mantissa_bits == 3

    def test_fp16_matches_ieee_half(self):
        assert FP16.total_bits == 16
        assert FP16.bias == 15
        assert FP16.max_value == 65504.0
        assert FP16.min_normal == 2.0**-14

    def test_fp32_matches_ieee_single(self):
        assert FP32.total_bits == 32
        assert FP32.bias == 127
        assert FP32.epsilon == 2.0**-23

    def test_total_bytes_rounds_up(self):
        assert FP8.total_bytes == 1
        assert FP16.total_bytes == 2
        assert FP32.total_bytes == 4
        odd = FloatFormat("odd", exponent_bits=4, mantissa_bits=4)
        assert odd.total_bits == 9
        assert odd.total_bytes == 2

    def test_bias_is_ieee_convention(self):
        assert FP8.bias == 7
        # All-ones exponent is reserved (IEEE-style), so emax = 14 - 7 = 7.
        assert FP8.max_exponent == 7
        assert FP8.min_exponent == -6

    def test_min_subnormal_below_min_normal(self):
        for fmt in (FP8, FP16, FP32):
            assert fmt.min_subnormal < fmt.min_normal

    def test_no_subnormal_format(self):
        fmt = FloatFormat("flush", 4, 3, has_subnormals=False)
        assert fmt.min_subnormal == fmt.min_normal

    def test_describe_mentions_name_and_layout(self):
        text = FP8.describe()
        assert "fp8" in text
        assert "1-4-3" in text


class TestFormatValidation:
    def test_rejects_tiny_exponent_field(self):
        with pytest.raises(PrecisionError):
            FloatFormat("bad", exponent_bits=1, mantissa_bits=3)

    def test_rejects_zero_mantissa(self):
        with pytest.raises(PrecisionError):
            FloatFormat("bad", exponent_bits=4, mantissa_bits=0)

    def test_rejects_over_32_bits(self):
        with pytest.raises(PrecisionError):
            FloatFormat("bad", exponent_bits=11, mantissa_bits=25)

    def test_lookup_by_name(self):
        assert format_by_name("fp8") is FP8
        assert format_by_name("fp16") is FP16
        assert format_by_name("fp32") is FP32

    def test_lookup_unknown_name(self):
        with pytest.raises(PrecisionError, match="unknown format"):
            format_by_name("fp4")


class TestFormatRange:
    def test_fp8_max_value(self):
        # 1-4-3 with bias 7 and reserved all-ones exponent:
        # max = 2^7 * (2 - 2^-3) = 240
        assert FP8.max_value == 240.0

    def test_epsilon_matches_mantissa(self):
        assert FP8.epsilon == 0.125
        assert FP16.epsilon == 2.0**-10

    def test_formats_are_hashable_and_frozen(self):
        s = {FP8, FP16, FP32}
        assert len(s) == 3
        with pytest.raises(Exception):
            FP8.name = "other"  # type: ignore[misc]
