"""Tests for the reproduction harness: paper data, tables, figures."""

import math

import pytest

from repro.errors import ConfigError
from repro.harness import (
    figure1_3_footprints,
    figure4_fragmentation,
    figure6_pcu_timing,
    figure7_layouts,
    format_table,
    geometric_mean,
    table3,
    table4,
    table5,
    table6,
    table7,
)
from repro.harness.paper_data import TABLE6, TABLE6_GEOMEAN_SPEEDUPS, paper_row
from repro.harness.platforms import PLATFORMS, platform
from repro.harness.report import compare
from repro.workloads.deepbench import RNNTask


class TestPaperData:
    def test_ten_rows(self):
        assert len(TABLE6) == 10

    def test_lookup(self):
        row = paper_row("lstm", 1024)
        assert row.latency_plasticine_ms == 0.0292
        with pytest.raises(KeyError):
            paper_row("lstm", 300)

    def test_speedups_consistent_with_latencies(self):
        # The published speedup columns equal the latency ratios (to the
        # rounding of the published latencies — GRU-512's 0.0004 ms is
        # rounded to one significant digit, skewing its ratio ~4%).
        for row in TABLE6:
            assert row.speedup_vs_cpu == pytest.approx(
                row.latency_cpu_ms / row.latency_plasticine_ms, rel=0.05
            )
            assert row.speedup_vs_bw == pytest.approx(
                row.latency_bw_ms / row.latency_plasticine_ms, rel=0.15
            )

    def test_published_geomean_consistent(self):
        # The paper's geomean row follows from its own speedup column to
        # within latency-rounding noise (~10% on the GPU column, again
        # dominated by the GRU-512 row).
        geo = math.exp(
            sum(math.log(r.speedup_vs_gpu) for r in TABLE6) / len(TABLE6)
        )
        assert geo == pytest.approx(TABLE6_GEOMEAN_SPEEDUPS["gpu"], rel=0.12)

    def test_effective_tflops_consistent(self):
        # TFLOPS = T * 2*G*H*R / latency for each published row.
        for row in TABLE6:
            task = RNNTask(row.kind, row.hidden, row.timesteps)
            derived = task.effective_tflops(row.latency_plasticine_ms * 1e-3)
            assert derived == pytest.approx(row.tflops_plasticine, rel=0.05)


class TestPlatforms:
    def test_registry_complete(self):
        assert set(PLATFORMS) == {"cpu", "gpu", "brainwave", "plasticine"}

    def test_lookup(self):
        assert platform("plasticine").die_area_mm2 == 494.37
        with pytest.raises(KeyError):
            platform("tpu")

    def test_area_advantage_claims(self):
        # Abstract: 1.6x area advantage vs GPU; >2x smaller than Stratix.
        pl = platform("plasticine")
        assert platform("gpu").die_area_mm2 / pl.die_area_mm2 > 1.6
        assert platform("brainwave").die_area_mm2 / pl.die_area_mm2 > 2.0

    def test_brainwave_measured_power(self):
        assert platform("brainwave").measured_peak_power_w == 125


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all("|" in line for line in (lines[0], lines[2], lines[3]))

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        with pytest.raises(ConfigError):
            geometric_mean([])
        with pytest.raises(ConfigError):
            geometric_mean([1.0, -1.0])

    def test_compare(self):
        c = compare("x", paper=2.0, measured=2.2)
        assert c.rel_error == pytest.approx(0.1)
        assert c.within(0.15)
        assert not c.within(0.05)
        assert "+10" in c.describe()
        with pytest.raises(ConfigError):
            compare("x", paper=0.0, measured=1.0)


class TestStaticTables:
    def test_table3_contents(self):
        text = table3()
        for token in ("192", "384", "16", "84", "31.5"):
            assert token in text

    def test_table4_contents(self):
        text = table4()
        assert "Plasticine" in text
        assert "494.4" in text
        assert "Tesla V100" in text

    def test_table5_contents(self):
        text = table5()
        assert "Spatial" in text
        assert "Brainwave" in text
        assert "mix f8+16+32" in text


class TestLiveTables:
    @pytest.fixture(scope="class")
    def t6(self):
        # Build once; ~3 s for all ten tasks x four platforms.
        return table6()

    def test_all_tasks_and_platforms_present(self, t6):
        assert len(t6.results) == 10
        for per in t6.results.values():
            assert set(per) == {"cpu", "gpu", "brainwave", "plasticine"}

    def test_headline_geomeans_reproduced(self, t6):
        # Paper: 2529x vs CPU, 29.8x vs GPU, 2.0x vs BW.  Accept the
        # shape: same order of magnitude, same ranking.
        geo = t6.geomean_speedups
        assert 1500 < geo["cpu"] < 4000
        assert 15 < geo["gpu"] < 60
        assert 1.5 < geo["brainwave"] < 3.5
        assert geo["cpu"] > geo["gpu"] > geo["brainwave"]

    def test_plasticine_latencies_within_15pct(self, t6):
        for row in TABLE6:
            task_name = f"{row.kind}-h{row.hidden}-t{row.timesteps}"
            measured = t6.results[task_name]["plasticine"].latency_ms
            assert measured == pytest.approx(row.latency_plasticine_ms, rel=0.15), task_name

    def test_all_plasticine_latencies_under_5ms_claim(self, t6):
        # Section 5.2: "Both BW and Plasticine deliver promising latencies
        # within 5 ms for all problem sizes" (per-request, T<=375 tasks;
        # the T=1500 GRU totals more but its per-step time is ~1 us).
        for name, per in t6.results.items():
            res = per["plasticine"]
            if res.task.timesteps <= 375:
                assert res.latency_ms < 5.0, name

    def test_bw_wins_only_on_largest(self, t6):
        # Section 5.2: BW is ahead only for the largest models.
        losses = [
            name
            for name, per in t6.results.items()
            if per["plasticine"].speedup_over(per["brainwave"]) < 1.0
        ]
        assert losses  # some exist
        assert all(int(name.split("h")[1].split("-")[0]) >= 2048 for name in losses)

    def test_power_within_range(self, t6):
        # Table 6 Plasticine power: 28.5 - 117.2 W; peak < BW's 125 W.
        for per in t6.results.values():
            p = per["plasticine"].power_w
            assert 20 <= p <= 125

    def test_text_rendering(self, t6):
        assert "geomean" in t6.text
        assert "lstm-h1024-t25" in t6.text

    def test_table7_without_dse(self):
        text = table7(run_dse=False)
        assert "6/400/40" in text
        assert "4/8/64" in text


class TestFigures:
    def test_figure1_3(self):
        text = figure1_3_footprints([256, 1024])
        assert "BasicLSTM" in text
        assert "Loop-based" in text

    def test_figure4(self):
        text = figure4_fragmentation([256, 2048])
        assert "advantage" in text

    def test_figure6(self):
        text = figure6_pcu_timing()
        assert "fused" in text and "folded" in text
        # The headline config: 4 stages, 7 cycles.
        assert " 4 |" in text and " 7 |" in text

    def test_figure7(self):
        text = figure7_layouts()
        assert "ratio 1.0" in text
        assert "ratio 2.0" in text
        assert "PMU PCU PMU" in text
