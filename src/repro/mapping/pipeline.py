"""PipelineGraph: the mapped, placed dataflow pipeline.

One :class:`PipelineGraph` describes how a *single time step* of the RNN
flows through the fabric: ``n_iterations`` loop iterations (the unrolled
``Foreach(H par hu)`` issue groups) stream through a DAG of stages.  Each
stage has an initiation interval (cycles between successive iterations),
a latency (first-input to first-output), and a placement-derived route
latency on each outgoing edge.  The ``Sequential`` time-step loop is
represented by ``steps`` and ``step_overhead`` (control handshake plus the
state-broadcast drain that separates steps).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import MappingError

__all__ = ["Stage", "PipelineGraph"]


@dataclass(frozen=True)
class Stage:
    """One pipeline stage (a PCU group, PMU access, or fabric action).

    Attributes:
        name: Unique stage name.
        ii: Initiation interval — cycles between accepting iterations.
        latency: Cycles from accepting an iteration to emitting it.
        n_pcus: PCUs this stage occupies per pipeline replica.
        n_pmus: PMUs this stage occupies per pipeline replica.
        coord: Representative placement (row, col) or None if virtual.
    """

    name: str
    ii: int
    latency: int
    n_pcus: int = 0
    n_pmus: int = 0
    coord: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if self.ii < 1:
            raise MappingError(f"stage {self.name!r}: ii must be >= 1")
        if self.latency < 0:
            raise MappingError(f"stage {self.name!r}: latency must be >= 0")
        if self.n_pcus < 0 or self.n_pmus < 0:
            raise MappingError(f"stage {self.name!r}: negative resources")


@dataclass
class PipelineGraph:
    """A placed pipeline for one RNN cell step, replicated ``replicas``
    times (the ``hu`` unroll), run for ``steps`` sequential time steps."""

    name: str
    n_iterations: int
    steps: int
    replicas: int = 1
    step_overhead: int = 0
    stages: dict[str, Stage] = field(default_factory=dict)
    edges: list[tuple[str, str, int]] = field(default_factory=list)

    def add_stage(self, stage: Stage) -> Stage:
        if stage.name in self.stages:
            raise MappingError(f"duplicate stage {stage.name!r}")
        self.stages[stage.name] = stage
        return stage

    def connect(self, src: str, dst: str, route_cycles: int = 0) -> None:
        for name in (src, dst):
            if name not in self.stages:
                raise MappingError(f"unknown stage {name!r}")
        if route_cycles < 0:
            raise MappingError("route latency must be >= 0")
        self.edges.append((src, dst, route_cycles))

    # -- graph structure -----------------------------------------------------

    def to_networkx(self) -> nx.DiGraph:
        g = nx.DiGraph()
        for name in self.stages:
            g.add_node(name)
        for src, dst, route in self.edges:
            g.add_edge(src, dst, route=route)
        return g

    def topological_order(self) -> list[str]:
        g = self.to_networkx()
        if not nx.is_directed_acyclic_graph(g):
            raise MappingError(f"pipeline {self.name!r} contains a cycle")
        return list(nx.topological_sort(g))

    def predecessors(self, name: str) -> list[tuple[str, int]]:
        return [(src, route) for src, dst, route in self.edges if dst == name]

    # -- aggregate properties --------------------------------------------------

    @property
    def bottleneck_ii(self) -> int:
        return max(stage.ii for stage in self.stages.values())

    def critical_path_cycles(self) -> int:
        """Longest (latency + route) path through the DAG."""
        order = self.topological_order()
        dist = {name: self.stages[name].latency for name in order}
        for name in order:
            for src, route in self.predecessors(name):
                cand = dist[src] + route + self.stages[name].latency
                if cand > dist[name]:
                    dist[name] = cand
        return max(dist.values()) if dist else 0

    def analytic_step_cycles(self) -> int:
        """Closed-form steady-state: fill + drain plus bottleneck issue.

        ``(n_iterations - 1) * max_ii + critical_path``.  Exact whenever a
        bottleneck-II stage lies on the critical path — true of every
        mapped RNN design, where the gate dot products both set the II and
        feed the element-wise chain — and an upper bound on arbitrary
        DAGs.  Property-tested against the event simulation both ways in
        the test suite.
        """
        return (self.n_iterations - 1) * self.bottleneck_ii + self.critical_path_cycles()

    def total_pcus(self) -> int:
        return self.replicas * sum(s.n_pcus for s in self.stages.values())

    def total_pmus(self) -> int:
        return self.replicas * sum(s.n_pmus for s in self.stages.values())
