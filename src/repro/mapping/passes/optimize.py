"""Optimization passes the monolith could not express.

``fuse_gates``
    The per-gate accumulate stages are short chains (``ru - 1`` tree
    adds, a bias add, a LUT) that each round up to a whole PCU per
    replica.  Compatible accumulate stages (same initiation interval)
    are merged into one fused stage whose chains pack together into
    ``ceil(sum(chain_ops) / pcu.stages)`` PCUs, re-placed next to the
    element-wise stage — strictly fewer PCUs, shorter accum→ew routes.

``double_buffer``
    The Sequential step boundary exposes ``SEQ_SYNC_CYCLES`` of control
    handshake because the next step's gate reads must wait for the state
    writeback to land in every ``[x, h]`` copy.  Double-buffering those
    copies (a second PMU per dot PCU) lets the writeback overlap the
    next step's load: the exposed overhead drops by the writeback
    latency — strictly fewer cycles for strictly more PMUs and state
    bytes.

Both are gated behind :class:`~repro.mapping.passes.core.PassConfig`
and searched by :mod:`repro.dse` as the ``pass_config`` axis.
"""

from __future__ import annotations

import math

from repro.errors import MappingError
from repro.mapping.mapper import _centroid
from repro.mapping.passes.core import (
    MappingPass,
    MappingState,
    StageDraft,
    register_pass,
)

__all__ = ["FuseGates", "DoubleBuffer"]


@register_pass("fuse_gates")
class FuseGates(MappingPass):
    """Merge compatible per-gate accumulate stages into fused chains."""

    requires = ("route_edges", "fold_luts")

    def run(self, state: MappingState) -> None:
        if state.fused_groups:
            raise MappingError("fuse_gates already applied to this state")
        chip = state.chip
        hu = state.hu
        ew = state.stage("ew")

        # Compatible = same initiation interval (all accums are ii=1
        # today, but a future pass could change that per gate).
        groups: dict[int, list] = {}
        for plan in state.gate_plans:
            groups.setdefault(state.stage(plan.accum_name).ii, []).append(plan)
        fusable = [plans for plans in groups.values() if len(plans) >= 2]
        if not fusable:
            state.log("fuse_gates: no compatible accum stages to fuse")
            return

        hop = chip.hop_latency
        layout = chip.layout
        for gi, plans in enumerate(fusable):
            old_names = tuple(p.accum_name for p in plans)
            old = [state.stage(n) for n in old_names]
            total_chain = sum(p.accum_chain_ops for p in plans)
            fused_pcus = max(1, math.ceil(total_chain / chip.pcu.stages))
            fused_name = "accum_fused" if len(fusable) == 1 else f"accum_fused{gi}"

            # Tentatively give the old accum PCUs back and re-take the
            # (smaller) fused allocation at the centroid of where they
            # were — the dot partials already route toward that region.
            # Snapshot the placer so an unprofitable fusion can back out.
            pool_snapshot = list(state.placer.free_pcus)
            overflow_snapshot = state.placer.overflow_pcus
            released = [u for p in plans for u in p.accum_units]
            state.placer.release_pcus(released)
            fused_units = state.placer.take_pcus(fused_pcus * hu, _centroid(released))
            fused_coord = fused_units[0]
            fused_latency = max(s.latency for s in old)

            # Profitability: fusing must not lengthen the worst
            # load -> dot -> accum -> ew path (the cycle-count contract
            # of this pass is "fewer PCUs, never slower").  Every other
            # segment of the critical path is untouched by the rewrite,
            # so comparing the per-gate contributions is exact.
            fused_to_ew = layout.route_cycles(fused_coord, ew.coord, hop)

            def path(plan, accum_latency, route_in, route_out):
                return (
                    state.edge("load_x", plan.dot_name).route
                    + state.stage(plan.dot_name).latency
                    + route_in
                    + accum_latency
                    + route_out
                )

            old_worst = max(
                path(
                    p,
                    state.stage(p.accum_name).latency,
                    state.edge(p.dot_name, p.accum_name).route,
                    state.edge(p.accum_name, "ew").route,
                )
                for p in plans
            )
            new_routes = {
                p.accum_name: max(
                    layout.route_cycles(u, fused_coord, hop) for u in p.replica0
                )
                for p in plans
            }
            new_worst = max(
                path(p, fused_latency, new_routes[p.accum_name], fused_to_ew)
                for p in plans
            )
            if new_worst > old_worst:
                state.placer.free_pcus = pool_snapshot
                state.placer.overflow_pcus = overflow_snapshot
                state.log(
                    f"fuse_gates: skipped {len(plans)} accum stages "
                    f"(re-placement would lengthen the critical path "
                    f"{old_worst} -> {new_worst})"
                )
                continue
            state.pcus_allocated += len(fused_units) - len(released)

            fused = StageDraft(
                fused_name,
                ii=old[0].ii,
                latency=fused_latency,
                n_pcus=fused_pcus,
                n_pmus=sum(s.n_pmus for s in old),  # the per-gate LUT tables
                coord=fused_coord,
                role="accum",
                units_pcu=tuple(fused_units),
                units_pmu=tuple(u for s in old for u in s.units_pmu),
            )

            # Rebuild the stage dict in order: the first fused-away accum
            # becomes the fused stage, the rest disappear.
            rebuilt: dict[str, StageDraft] = {}
            for name, draft in state.stages.items():
                if name == old_names[0]:
                    rebuilt[fused.name] = fused
                elif name not in old_names:
                    rebuilt[name] = draft
            state.stages = rebuilt

            # Retarget dot->accum edges onto the fused stage and collapse
            # the per-gate accum->ew edges into one.
            rebuilt_edges = []
            ew_edge_done = False
            for edge in state.edges:
                if edge.dst in old_names:
                    edge.route = new_routes[edge.dst]
                    edge.dst = fused.name
                    rebuilt_edges.append(edge)
                elif edge.src in old_names:
                    if not ew_edge_done:
                        edge.src = fused.name
                        edge.route = fused_to_ew
                        rebuilt_edges.append(edge)
                        ew_edge_done = True
                    # subsequent accum->ew edges collapse away
                else:
                    rebuilt_edges.append(edge)
            state.edges = rebuilt_edges

            for plan in plans:
                plan.fused_into = fused.name
            state.fused_groups.append((fused.name, old_names))
            state.log(
                f"fused {len(plans)} accum stages into {fused.name!r}: "
                f"{sum(p.accum_pcus for p in plans)} -> {fused_pcus} PCUs/replica"
            )


@register_pass("double_buffer")
class DoubleBuffer(MappingPass):
    """Double-buffer the [x, h] copies to hide the step writeback."""

    requires = ("route_edges",)

    def run(self, state: MappingState) -> None:
        if state.double_buffered:
            raise MappingError("double_buffer already applied to this state")
        hu = state.hu
        writeback = state.stage("writeback")

        for plan in state.gate_plans:
            dot = state.stage(plan.dot_name)
            extra = state.placer.take_pmus(plan.n_dot_pcus * hu, plan.xh_pmus[0])
            state.pmus_allocated += len(extra)
            dot.n_pmus += plan.n_dot_pcus
            dot.units_pmu = dot.units_pmu + tuple(extra)
            state.double_buffer_pmus.extend(extra)

        # With a back buffer to write into, the next step's loads no
        # longer wait for the broadcast: only the control handshake that
        # exceeds the (now overlapped) writeback stays exposed.
        old = state.step_overhead if state.step_overhead is not None else (
            state.seq_sync_cycles
        )
        state.step_overhead = max(0, old - writeback.latency)
        state.double_buffered = True
        state.log(
            f"double-buffered [x,h]: step overhead {old} -> "
            f"{state.step_overhead} cycles, +{len(state.double_buffer_pmus)} PMUs"
        )
