"""``report_resources``: freeze the IR into the final MappedDesign.

Converts the stage drafts (in insertion order) into a
:class:`~repro.mapping.pipeline.PipelineGraph`, tallies the memory
footprint and unit usage into a
:class:`~repro.mapping.resources.ResourceReport`, and assembles the
:class:`~repro.mapping.mapper.MappedDesign` — including which passes ran
and how long each took (``passes_applied`` / ``pass_timings``; the
timing of this pass itself is still being measured and is not included).
"""

from __future__ import annotations

from repro.errors import MappingError
from repro.mapping.mapper import MappedDesign, _memory_footprint, _overflow_note
from repro.mapping.passes.core import MappingPass, MappingState, register_pass
from repro.mapping.pipeline import PipelineGraph, Stage
from repro.mapping.resources import resource_report

__all__ = ["ReportResources"]


@register_pass("report_resources")
class ReportResources(MappingPass):
    """Tally resources and freeze the placed pipeline graph."""

    requires = (
        "recognize_rnn",
        "plan_gates",
        "place_units",
        "route_edges",
        "fold_luts",
    )

    def run(self, state: MappingState) -> None:
        for edge in state.edges:
            if edge.route is None:
                raise MappingError(
                    f"cannot report resources: edge {edge.src!r}->{edge.dst!r} "
                    f"is unrouted"
                )

        graph = PipelineGraph(
            name=state.prog.name,
            n_iterations=state.n_iterations,
            steps=state.steps,
            replicas=state.hu,
            step_overhead=(
                state.step_overhead
                if state.step_overhead is not None
                else state.seq_sync_cycles
            ),
        )
        for draft in state.stages.values():
            graph.add_stage(
                Stage(
                    draft.name,
                    ii=draft.ii,
                    latency=draft.latency,
                    n_pcus=draft.n_pcus,
                    n_pmus=draft.n_pmus,
                    coord=draft.coord,
                )
            )
        for edge in state.edges:
            graph.connect(edge.src, edge.dst, edge.route)

        weight_bytes, state_bytes, lut_bytes = _memory_footprint(state.prog)
        # The [x,h] vector is replicated per dot PCU for bandwidth (and
        # doubled again by double_buffer's back buffers).
        xh_copies = graph.replicas * (
            len(state.state_pmu_coords) + len(state.double_buffer_pmus)
        )
        notes = []
        if xh_copies:
            state_bytes = state_bytes * (1 + xh_copies)
            notes.append(f"[x,h] replicated {xh_copies}x for dot-PCU bandwidth")
        for fused_name, old_names in state.fused_groups:
            notes.append(
                f"fuse_gates: {len(old_names)} accum stages merged into {fused_name}"
            )
        if state.double_buffered:
            notes.append(
                f"double_buffer: step overhead {state.seq_sync_cycles} -> "
                f"{graph.step_overhead} cycles"
            )
        overflow = _overflow_note(state.placer)
        if overflow:
            notes.append(overflow)

        state.graph = graph
        state.resources = resource_report(
            graph,
            state.chip,
            weight_bytes=weight_bytes,
            state_bytes=state_bytes,
            lut_bytes=lut_bytes,
            notes=tuple(notes),
        )
        state.design = MappedDesign(
            program_name=state.prog.name,
            chip=state.chip,
            graph=graph,
            resources=state.resources,
            gates=state.gates,
            hu=state.hu,
            n_iterations=state.n_iterations,
            steps=state.steps,
            bits=state.bits,
            passes_applied=tuple(state.completed) + (self.name,),
            pass_timings=tuple(state.timings),
        )
        state.log(
            f"design frozen: {state.resources.pcus_used} PCUs, "
            f"{state.resources.pmus_used} PMUs, {len(notes)} notes"
        )
