"""``plan_gates``: lower the recognized structure to a stage skeleton.

Creates every stage draft and dataflow edge with the placement-
*independent* decisions made: initiation intervals, per-replica PCU/PMU
needs, and the latency terms that do not depend on where units land
(map-reduce depth, element-wise chain length).  Placement-dependent
latency (reduction trees, the writeback broadcast) is added by
``route_edges``; the LUT access cost by ``fold_luts``.
"""

from __future__ import annotations

import math

from repro.mapping.passes.core import (
    EwPlan,
    GatePlan,
    MappingPass,
    MappingState,
    StageDraft,
    register_pass,
)
from repro.spatial.ir import OpKind

__all__ = ["PlanGates"]


@register_pass("plan_gates")
class PlanGates(MappingPass):
    """Build the dot/accum/ew/writeback stage skeleton from the gates."""

    requires = ("recognize_rnn",)

    def run(self, state: MappingState) -> None:
        chip = state.chip
        cell = state.cell
        pcu_rv = chip.dot_lanes_per_pcu(state.bits)
        timing = chip.pcu.map_reduce_timing(state.bits)

        state.add_stage(
            StageDraft("load_x", ii=1, latency=chip.hop_latency + 1, role="load")
        )

        for gate in state.gates:
            # One MapReduce unit may span several PCUs if the program's
            # rv exceeds what one PCU consumes per cycle.
            pcus_per_unit = max(1, math.ceil(gate.rv / pcu_rv))
            n_dot_pcus = gate.ru * pcus_per_unit
            dot = state.add_stage(
                StageDraft(
                    f"dot_{gate.name}",
                    ii=gate.issue_blocks,
                    latency=gate.issue_blocks + timing.depth_cycles,
                    n_pcus=n_dot_pcus,
                    n_pmus=2 * n_dot_pcus,  # weight slice + [x, h] copy per PCU
                    role="dot",
                )
            )
            accum_chain_ops = max(gate.ru - 1, 1)
            accum_pcus = max(1, math.ceil(accum_chain_ops / chip.pcu.stages))
            accum = state.add_stage(
                StageDraft(
                    f"accum_{gate.name}",
                    ii=1,
                    latency=1,  # bias add; tree/LUT terms come from later passes
                    n_pcus=accum_pcus,
                    n_pmus=1,  # per-replica LUT table
                    role="accum",
                )
            )
            state.add_edge("load_x", dot.name)
            state.add_edge(dot.name, accum.name)
            state.gate_plans.append(
                GatePlan(
                    gate=gate,
                    dot_name=dot.name,
                    accum_name=accum.name,
                    pcus_per_unit=pcus_per_unit,
                    n_dot_pcus=n_dot_pcus,
                    accum_pcus=accum_pcus,
                    accum_chain_ops=accum_chain_ops,
                )
            )

        # Element-wise fusion stage: ops at cell level, minus what the
        # accumulate stages already did (per gate: one bias/part-join add
        # chain and one LUT).
        cell_ops = {kind: cell.op_count(kind) for kind in OpKind}
        gate_adds = sum(len(g.reduces) for g in state.gates)
        ew_ops = max(
            1,
            sum(
                cell_ops.get(k, 0)
                for k in (OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.NEG)
            )
            - gate_adds
            + (cell_ops.get(OpKind.LUT, 0) - len(state.gates)),
        )
        ew_pcus = max(1, math.ceil(ew_ops / chip.pcu.stages))
        extra_luts = max(0, cell_ops.get(OpKind.LUT, 0) - len(state.gates))
        ew_n_pmus = 1 + (1 if extra_luts else 0)
        state.add_stage(
            StageDraft(
                "ew",
                ii=1,
                latency=ew_ops + (ew_pcus - 1) * 2 * chip.hop_latency,
                n_pcus=ew_pcus,
                n_pmus=ew_n_pmus,
                role="ew",
            )
        )
        for plan in state.gate_plans:
            state.add_edge(plan.accum_name, "ew")
        state.ew_plan = EwPlan(
            ew_ops=ew_ops, ew_pcus=ew_pcus, extra_luts=extra_luts, ew_n_pmus=ew_n_pmus
        )

        # State writeback: broadcast latency is placement-dependent and
        # added by route_edges; the +1 write cycle is structural.
        state.add_stage(StageDraft("writeback", ii=1, latency=1, role="writeback"))
        state.add_edge("ew", "writeback")
        state.log(
            f"planned {len(state.stages)} stages, {len(state.edges)} edges, "
            f"ew_ops={ew_ops}"
        )
