"""The mapper's compiler pass pipeline (see :mod:`.core` for the tour).

Importing this package registers the built-in passes:
``recognize_rnn``, ``plan_gates``, ``place_units``, ``route_edges``,
``fold_luts``, ``fuse_gates``, ``double_buffer``, ``report_resources``.
"""

from repro.mapping.passes.core import (
    DEFAULT_PIPELINE,
    EdgeDraft,
    EwPlan,
    GatePlan,
    MappingPass,
    MappingState,
    PassConfig,
    PassManager,
    PassTiming,
    StageDraft,
    available_passes,
    get_pass,
    register_pass,
    unregister_pass,
)
from repro.mapping.passes.diff import design_fingerprint, diff_designs
from repro.mapping.passes.luts import LUT_ACCESS_CYCLES
from repro.mapping.passes.verify import verify_state

# Importing the pass modules registers them.
from repro.mapping.passes import (  # noqa: E402  isort: skip
    structure as _structure,
    plan as _plan,
    place as _place,
    route as _route,
    luts as _luts,
    optimize as _optimize,
    report as _report,
)

__all__ = [
    "DEFAULT_PIPELINE",
    "LUT_ACCESS_CYCLES",
    "EdgeDraft",
    "EwPlan",
    "GatePlan",
    "MappingPass",
    "MappingState",
    "PassConfig",
    "PassManager",
    "PassTiming",
    "StageDraft",
    "available_passes",
    "design_fingerprint",
    "diff_designs",
    "get_pass",
    "register_pass",
    "unregister_pass",
    "verify_state",
]
