"""Differential comparison of mapped designs.

:func:`design_fingerprint` flattens a
:class:`~repro.mapping.mapper.MappedDesign` into a JSON-able dict of
everything observable — stage coords, IIs, latencies, per-replica
resources, routed edge costs, graph meta and the full resource report —
and :func:`diff_designs` reports every field where two designs disagree.
The parity suite, the CI parity smoke and ``bench_pass_pipeline``
all compare through this one lens.

(Designs are compared by fingerprint, never by ``==``: the recognized
``GateGroup`` records hold the traced loop tree, whose parent/child
links make naive dataclass equality recurse.)
"""

from __future__ import annotations

from repro.mapping.mapper import MappedDesign

__all__ = ["design_fingerprint", "diff_designs"]


def design_fingerprint(design: MappedDesign) -> dict:
    """Flatten a design into a JSON-able dict for differential testing."""
    graph = design.graph
    res = design.resources
    return {
        "program": design.program_name,
        "chip": design.chip.name,
        "bits": design.bits,
        "hu": design.hu,
        "n_iterations": design.n_iterations,
        "steps": design.steps,
        "gates": [g.name for g in design.gates],
        "graph": {
            "replicas": graph.replicas,
            "step_overhead": graph.step_overhead,
            "bottleneck_ii": graph.bottleneck_ii,
            "critical_path_cycles": graph.critical_path_cycles(),
            "analytic_step_cycles": graph.analytic_step_cycles(),
        },
        "stages": [
            {
                "name": s.name,
                "ii": s.ii,
                "latency": s.latency,
                "n_pcus": s.n_pcus,
                "n_pmus": s.n_pmus,
                "coord": list(s.coord) if s.coord is not None else None,
            }
            for s in graph.stages.values()
        ],
        "edges": [[src, dst, route] for src, dst, route in graph.edges],
        "resources": {
            "pcus_used": res.pcus_used,
            "pmus_used": res.pmus_used,
            "pcus_available": res.pcus_available,
            "pmus_available": res.pmus_available,
            "weight_bytes": res.weight_bytes,
            "state_bytes": res.state_bytes,
            "lut_bytes": res.lut_bytes,
            "onchip_bytes": res.onchip_bytes,
            "notes": list(res.notes),
        },
    }


def _walk(prefix: str, a, b, out: list[str]) -> None:
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                out.append(f"{prefix}.{key}: only in B ({b[key]!r})")
            elif key not in b:
                out.append(f"{prefix}.{key}: only in A ({a[key]!r})")
            else:
                _walk(f"{prefix}.{key}", a[key], b[key], out)
    elif isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            out.append(f"{prefix}: length {len(a)} vs {len(b)}")
        for i, (x, y) in enumerate(zip(a, b)):
            _walk(f"{prefix}[{i}]", x, y, out)
    elif a != b:
        out.append(f"{prefix}: {a!r} vs {b!r}")


def diff_designs(a: MappedDesign, b: MappedDesign) -> list[str]:
    """Human-readable field-by-field differences (empty == identical)."""
    out: list[str] = []
    _walk("design", design_fingerprint(a), design_fingerprint(b), out)
    return out
