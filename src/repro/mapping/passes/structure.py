"""``recognize_rnn``: locate the RNN serving idiom in the traced program."""

from __future__ import annotations

from repro.mapping.mapper import _find_structure
from repro.mapping.passes.core import MappingPass, MappingState, register_pass

__all__ = ["RecognizeRNN"]


@register_pass("recognize_rnn")
class RecognizeRNN(MappingPass):
    """Trace the program and recognize the time-step loop, the cell loop
    and the gate reduce groups (the front end of the lowering).

    Rejects programs that do not match the idiom with the same
    :class:`~repro.errors.MappingError` messages the monolith raised
    (zero/two Sequential loops, Reduce-less cells).
    """

    requires: tuple[str, ...] = ()

    def run(self, state: MappingState) -> None:
        root = state.prog.trace()
        steps_loop, cell, gates = _find_structure(root)
        state.root = root
        state.steps_loop = steps_loop
        state.cell = cell
        state.gates = gates
        state.hu = cell.par
        state.n_iterations = cell.issue_count
        state.steps = steps_loop.extent
        state.log(
            f"recognized {len(gates)} gate groups, hu={state.hu}, "
            f"steps={state.steps}, n_iterations={state.n_iterations}"
        )
