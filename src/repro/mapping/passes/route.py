"""``route_edges``: derive edge costs and placement-dependent latency.

Every dataflow edge gets its routed cost from real Manhattan distances
on the placed units (worst case over the replicas it feeds), and the two
latency terms that only exist once placement is known land on their
stages: the cross-PCU reduction tree on each accumulate stage and the
state-broadcast on the writeback stage.
"""

from __future__ import annotations

from repro.mapping.mapper import _tree_latency
from repro.mapping.passes.core import MappingPass, MappingState, register_pass

__all__ = ["RouteEdges"]


@register_pass("route_edges")
class RouteEdges(MappingPass):
    """Route all edges and add tree/broadcast latencies from placement."""

    requires = ("place_units",)

    def run(self, state: MappingState) -> None:
        chip = state.chip
        layout = chip.layout
        hop = chip.hop_latency

        for plan in state.gate_plans:
            accum = state.stage(plan.accum_name)
            state.edge("load_x", plan.dot_name).route = max(
                layout.route_cycles(state.anchor, p, hop) for p in plan.dot_pcus
            )
            state.edge(plan.dot_name, plan.accum_name).route = max(
                layout.route_cycles(p, accum.coord, hop) for p in plan.replica0
            )
            # Cross-PCU reduction tree over the ru partial sums.
            tree = (
                _tree_latency(list(plan.replica0), chip) if plan.gate.ru > 1 else 0
            )
            accum.latency += tree

        ew = state.stage("ew")
        for plan in state.gate_plans:
            accum = state.stage(plan.accum_name)
            state.edge(plan.accum_name, "ew").route = layout.route_cycles(
                accum.coord, ew.coord, hop
            )

        # State writeback: broadcast the h element to every [x, h] copy.
        writeback = state.stage("writeback")
        broadcast = max(
            layout.route_cycles(ew.coord, pmu, hop) for pmu in state.state_pmu_coords
        )
        writeback.latency += broadcast
        state.edge("ew", "writeback").route = 0
        state.log(f"routed {len(state.edges)} edges, writeback broadcast={broadcast}")
