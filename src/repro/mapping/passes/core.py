"""The mapping IR and the pass-pipeline machinery.

The Section 4 lowering is structured as a sequence of small passes over
a :class:`MappingState` — the mapping IR.  Each pass reads what earlier
passes produced and adds one layer:

``recognize_rnn``
    trace the program and locate the time-step loop, the cell loop and
    the gate reduce groups;
``plan_gates``
    turn the recognized structure into a stage skeleton (names, IIs,
    placement-independent latencies, per-replica resource needs);
``place_units``
    allocate physical PCUs/PMUs on the grid (greedy nearest-available,
    identical to the legacy monolith's order);
``route_edges``
    derive routed edge costs and the placement-dependent latency terms
    (reduction trees, the writeback broadcast) from real Manhattan
    distances;
``fold_luts``
    fold each gate's non-linearity into its accumulate stage's PMU
    lookup table (the LUT access latency);
``report_resources``
    freeze the drafts into a :class:`~repro.mapping.pipeline.PipelineGraph`,
    tally the :class:`~repro.mapping.resources.ResourceReport` and build
    the final :class:`~repro.mapping.mapper.MappedDesign`.

Two optimization passes the monolith could not express are gated behind
:class:`PassConfig`: ``fuse_gates`` and ``double_buffer`` (see
:mod:`repro.mapping.passes.optimize`).

Passes register under string names exactly like schedulers, batchers and
fault policies do::

    @register_pass("my_pass")
    class MyPass(MappingPass):
        requires = ("place_units",)
        def run(self, state): ...

The :class:`PassManager` threads one :class:`MappingState` through an
ordered pipeline, enforcing each pass's ``requires`` declaration
*before* the pass runs (an illegal ordering raises
:class:`~repro.errors.MappingError` without touching the state), timing
every pass, and — by default — running the IR verifier
(:func:`~repro.mapping.passes.verify.verify_state`) after every pass.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

from repro.errors import MappingError
from repro.mapping.mapper import SEQ_SYNC_CYCLES, GateGroup, MappedDesign, _Placer
from repro.mapping.pipeline import PipelineGraph
from repro.mapping.resources import ResourceReport
from repro.plasticine.chip import PlasticineConfig
from repro.plasticine.network import Coord
from repro.spatial.builder import Program
from repro.spatial.ir import LoopRecord

__all__ = [
    "PassConfig",
    "StageDraft",
    "EdgeDraft",
    "GatePlan",
    "EwPlan",
    "PassTiming",
    "MappingState",
    "MappingPass",
    "PassManager",
    "register_pass",
    "unregister_pass",
    "get_pass",
    "available_passes",
    "DEFAULT_PIPELINE",
]

#: The default lowering pipeline, in order.  Optimization passes are
#: spliced in between ``fold_luts`` and ``report_resources``.
DEFAULT_PIPELINE: tuple[str, ...] = (
    "recognize_rnn",
    "plan_gates",
    "place_units",
    "route_edges",
    "fold_luts",
    "report_resources",
)


@dataclass(frozen=True)
class PassConfig:
    """Which optimization passes to splice into the default pipeline.

    Frozen and hashable so it can serve as a DSE axis
    (:class:`repro.dse.space.ParameterSpace.pass_configs`).
    """

    #: Merge compatible accumulate stages into one fused chain placed
    #: next to the element-wise stage (fewer PCUs, shorter routes).
    fuse_gates: bool = False
    #: Double-buffer the ``[x, h]`` copies so the state writeback
    #: overlaps the next step's load, cutting ``SEQ_SYNC_CYCLES``
    #: exposure (fewer cycles, more PMUs + state bytes).
    double_buffer: bool = False

    def optimization_names(self) -> tuple[str, ...]:
        names = []
        if self.fuse_gates:
            names.append("fuse_gates")
        if self.double_buffer:
            names.append("double_buffer")
        return tuple(names)

    @property
    def key(self) -> str:
        """Short stable label for tables and artifacts."""
        opts = self.optimization_names()
        return "+".join(opts) if opts else "default"


@dataclass
class StageDraft:
    """A pipeline stage under construction (the IR analogue of
    :class:`~repro.mapping.pipeline.Stage`, mutable so passes can refine
    it layer by layer).

    ``units_pcu`` / ``units_pmu`` hold every physical unit the stage
    occupies across all replicas; ``n_pcus`` / ``n_pmus`` stay
    per-replica, exactly like the final frozen stage.
    """

    name: str
    ii: int
    latency: int
    n_pcus: int = 0
    n_pmus: int = 0
    coord: Coord | None = None
    role: str = ""
    units_pcu: tuple[Coord, ...] = ()
    units_pmu: tuple[Coord, ...] = ()


@dataclass
class EdgeDraft:
    """A dataflow edge under construction; ``route is None`` until
    ``route_edges`` derives its cost from placement."""

    src: str
    dst: str
    route: int | None = None


@dataclass
class GatePlan:
    """Per-gate lowering decisions, threaded from planning to routing."""

    gate: GateGroup
    dot_name: str
    accum_name: str
    pcus_per_unit: int
    n_dot_pcus: int
    accum_pcus: int
    #: Length of the accumulate chain (cross-PCU tree adds), before the
    #: bias add and LUT access — what ``fuse_gates`` packs together.
    accum_chain_ops: int
    # -- filled by place_units ------------------------------------------
    dot_pcus: tuple[Coord, ...] = ()
    replica0: tuple[Coord, ...] = ()
    weight_pmus: tuple[Coord, ...] = ()
    xh_pmus: tuple[Coord, ...] = ()
    accum_units: tuple[Coord, ...] = ()
    lut_pmus: tuple[Coord, ...] = ()
    #: Set by ``fuse_gates`` when this gate's accum was merged away.
    fused_into: str | None = None


@dataclass
class EwPlan:
    """Element-wise chain plan (ops, PCU chain length, extra LUTs)."""

    ew_ops: int
    ew_pcus: int
    extra_luts: int
    ew_n_pmus: int
    ew_units: tuple[Coord, ...] = ()
    ew_pmu_units: tuple[Coord, ...] = ()


@dataclass(frozen=True)
class PassTiming:
    """Wall-clock cost of one pass run (observability hook)."""

    name: str
    seconds: float


@dataclass
class MappingState:
    """The mapping IR: everything the passes produce, in one place.

    Lifecycle — each field block is owned by the pass that writes it:
    recognized loop structure (``recognize_rnn``) → stage skeleton
    (``plan_gates``) → placement + unit ledger (``place_units``) →
    routed edges (``route_edges``) → folded LUTs (``fold_luts``) →
    final graph/resources/design (``report_resources``).
    """

    prog: Program
    chip: PlasticineConfig
    bits: int = 8
    seq_sync_cycles: int = SEQ_SYNC_CYCLES

    # -- recognize_rnn ----------------------------------------------------
    root: LoopRecord | None = None
    steps_loop: LoopRecord | None = None
    cell: LoopRecord | None = None
    gates: tuple[GateGroup, ...] = ()
    hu: int = 0
    n_iterations: int = 0
    steps: int = 0

    # -- plan_gates -------------------------------------------------------
    stages: dict[str, StageDraft] = field(default_factory=dict)
    edges: list[EdgeDraft] = field(default_factory=list)
    gate_plans: list[GatePlan] = field(default_factory=list)
    ew_plan: EwPlan | None = None

    # -- place_units ------------------------------------------------------
    placer: _Placer | None = None
    anchor: Coord | None = None
    ew_anchor: Coord | None = None
    state_pmu_coords: list[Coord] = field(default_factory=list)
    accum_coords: list[Coord] = field(default_factory=list)
    #: Unit ledger: physical units handed out by the placer (take minus
    #: release).  The verifier checks it against the stage drafts.
    pcus_allocated: int = 0
    pmus_allocated: int = 0

    # -- optimization passes ----------------------------------------------
    luts_folded: bool = False
    fused_groups: list[tuple[str, tuple[str, ...]]] = field(default_factory=list)
    double_buffered: bool = False
    double_buffer_pmus: list[Coord] = field(default_factory=list)
    #: Effective Sequential-step overhead; ``None`` means the plain
    #: ``seq_sync_cycles`` (``double_buffer`` lowers it).
    step_overhead: int | None = None

    # -- report_resources -------------------------------------------------
    graph: PipelineGraph | None = None
    resources: ResourceReport | None = None
    design: MappedDesign | None = None

    # -- bookkeeping ------------------------------------------------------
    completed: list[str] = field(default_factory=list)
    timings: list[PassTiming] = field(default_factory=list)
    trace_log: list[str] = field(default_factory=list)

    # -- IR manipulation helpers -----------------------------------------

    def log(self, message: str) -> None:
        """Append a per-pass trace message (observability)."""
        self.trace_log.append(message)

    def stage(self, name: str) -> StageDraft:
        try:
            return self.stages[name]
        except KeyError:
            raise MappingError(f"no stage {name!r} in the mapping IR") from None

    def add_stage(self, draft: StageDraft) -> StageDraft:
        if draft.name in self.stages:
            raise MappingError(f"duplicate stage {draft.name!r} in the mapping IR")
        self.stages[draft.name] = draft
        return draft

    def add_edge(self, src: str, dst: str, route: int | None = None) -> EdgeDraft:
        for name in (src, dst):
            if name not in self.stages:
                raise MappingError(f"edge endpoint {name!r} is not a stage")
        edge = EdgeDraft(src, dst, route)
        self.edges.append(edge)
        return edge

    def edge(self, src: str, dst: str) -> EdgeDraft:
        for edge in self.edges:
            if edge.src == src and edge.dst == dst:
                return edge
        raise MappingError(f"no edge {src!r} -> {dst!r} in the mapping IR")


class MappingPass(ABC):
    """One rewrite step over the :class:`MappingState`.

    Subclasses declare ``requires`` — the names of passes that must have
    completed first.  The :class:`PassManager` enforces the declaration
    before invoking :meth:`run`, so an illegally ordered pass raises
    :class:`~repro.errors.MappingError` without corrupting the state.
    """

    #: Registry key; set by :func:`register_pass`.
    name: str = "?"
    #: Pass names that must appear in ``state.completed`` first.
    requires: tuple[str, ...] = ()

    @abstractmethod
    def run(self, state: MappingState) -> None:
        """Apply this pass's rewrite to the state, in place."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


_REGISTRY: dict[str, type[MappingPass]] = {}

P = TypeVar("P", bound=type)


def register_pass(name: str) -> Callable[[P], P]:
    """Class decorator registering a :class:`MappingPass` under a name.

    Example::

        >>> from repro.mapping.passes import MappingPass, register_pass
        >>> from repro.mapping.passes import available_passes, unregister_pass
        >>> @register_pass("noop")
        ... class Noop(MappingPass):
        ...     def run(self, state):
        ...         pass
        >>> "noop" in available_passes()
        True
        >>> unregister_pass("noop")
    """

    def decorate(cls: P) -> P:
        if not (isinstance(cls, type) and issubclass(cls, MappingPass)):
            raise MappingError(
                f"@register_pass({name!r}) needs a MappingPass subclass"
            )
        if name in _REGISTRY:
            raise MappingError(f"mapping pass {name!r} already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def unregister_pass(name: str) -> None:
    """Remove a registered pass (tests)."""
    _REGISTRY.pop(name, None)


def get_pass(name: str) -> type[MappingPass]:
    """Look up a registered pass class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise MappingError(f"unknown mapping pass {name!r} (known: {known})") from None


def available_passes() -> tuple[str, ...]:
    """Names of all registered passes, sorted."""
    return tuple(sorted(_REGISTRY))


class PassManager:
    """Runs an ordered pipeline of passes over one :class:`MappingState`.

    * enforces each pass's ``requires`` declaration and rejects running
      the same pass twice;
    * records a :class:`PassTiming` per pass;
    * optionally runs the IR verifier after every pass (``verify=True``)
      and calls ``trace_hook(pass_name, state, seconds)`` after each pass.
    """

    def __init__(
        self,
        passes: Sequence[MappingPass | str],
        *,
        verify: bool = True,
        trace_hook: Callable[[str, MappingState, float], None] | None = None,
    ):
        if not passes:
            raise MappingError("empty pass pipeline")
        self.passes: list[MappingPass] = [
            get_pass(p)() if isinstance(p, str) else p for p in passes
        ]
        self.verify = verify
        self.trace_hook = trace_hook

    @classmethod
    def default(
        cls,
        config: PassConfig | None = None,
        *,
        verify: bool = True,
        trace_hook: Callable[[str, MappingState, float], None] | None = None,
    ) -> "PassManager":
        """The default pipeline, with ``config``'s optimization passes
        spliced in before ``report_resources``."""
        config = config or PassConfig()
        names = (
            DEFAULT_PIPELINE[:-1]
            + config.optimization_names()
            + DEFAULT_PIPELINE[-1:]
        )
        return cls(names, verify=verify, trace_hook=trace_hook)

    @property
    def pass_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.passes)

    def run(self, state: MappingState) -> MappingState:
        from repro.mapping.passes.verify import verify_state

        for p in self.passes:
            missing = [r for r in p.requires if r not in state.completed]
            if missing:
                raise MappingError(
                    f"pass {p.name!r} requires {', '.join(missing)} to run first"
                )
            if p.name in state.completed:
                raise MappingError(f"pass {p.name!r} already ran on this state")
            t0 = time.perf_counter()
            p.run(state)
            dt = time.perf_counter() - t0
            state.completed.append(p.name)
            state.timings.append(PassTiming(p.name, dt))
            if self.verify:
                verify_state(state)
            if self.trace_hook is not None:
                self.trace_hook(p.name, state, dt)
        return state

    def run_program(
        self,
        prog: Program,
        chip: PlasticineConfig | None = None,
        *,
        bits: int = 8,
        seq_sync_cycles: int = SEQ_SYNC_CYCLES,
    ) -> MappingState:
        """Build a fresh state for ``prog`` and run the pipeline."""
        state = MappingState(
            prog=prog,
            chip=chip or PlasticineConfig.rnn_serving(),
            bits=bits,
            seq_sync_cycles=seq_sync_cycles,
        )
        return self.run(state)
