"""``fold_luts``: fold gate non-linearities into accumulate-stage LUTs.

Each gate's non-linearity (sigmoid/tanh) is served by the PMU lookup
table already reserved next to its accumulate PCUs (``plan_gates`` sized
it; ``place_units`` placed it).  This pass accounts the access cost: a
PMU read is address + data, two cycles, appended to each accumulate
stage's latency.  Kept separate from planning so the property suite can
run it in any legal position after ``plan_gates``.
"""

from __future__ import annotations

from repro.errors import MappingError
from repro.mapping.passes.core import MappingPass, MappingState, register_pass

__all__ = ["FoldLuts", "LUT_ACCESS_CYCLES"]

#: PMU lookup-table read: address cycle + data cycle.
LUT_ACCESS_CYCLES = 2


@register_pass("fold_luts")
class FoldLuts(MappingPass):
    """Charge each accumulate stage the LUT access for its non-linearity."""

    requires = ("plan_gates",)

    def run(self, state: MappingState) -> None:
        if state.luts_folded:
            raise MappingError("fold_luts already applied to this state")
        for plan in state.gate_plans:
            state.stage(plan.accum_name).latency += LUT_ACCESS_CYCLES
        state.luts_folded = True
        state.log(
            f"folded {len(state.gate_plans)} gate LUTs "
            f"(+{LUT_ACCESS_CYCLES} cycles each)"
        )
