"""``place_units``: allocate physical grid units for every stage.

Replays the monolith's greedy nearest-available allocation order
exactly — the :class:`~repro.mapping.mapper._Placer` is stateful, so the
*order* of takes determines every coordinate: per gate, dot PCUs near
the load anchor, then weight PMUs and ``[x, h]`` PMUs near the first dot
PCU, then accumulate PCUs near the dot centroid and LUT PMUs beside
them; finally the element-wise PCUs near the accumulate centroid.  Any
deviation here is caught by the differential parity suite.
"""

from __future__ import annotations

from repro.mapping.mapper import _centroid, _Placer
from repro.mapping.passes.core import MappingPass, MappingState, register_pass
from repro.plasticine.network import Coord

__all__ = ["PlaceUnits"]


@register_pass("place_units")
class PlaceUnits(MappingPass):
    """Greedy locality-aware placement of all stage drafts on the grid."""

    requires = ("plan_gates",)

    def run(self, state: MappingState) -> None:
        chip = state.chip
        placer = _Placer(chip)
        state.placer = placer
        hu = state.hu
        anchor: Coord = (chip.layout.rows // 2, 0)
        state.anchor = anchor
        state.stage("load_x").coord = anchor

        for plan in state.gate_plans:
            dot = state.stage(plan.dot_name)
            dot_pcus = placer.take_pcus(plan.n_dot_pcus * hu, anchor)
            state.pcus_allocated += len(dot_pcus)
            # Two PMUs per dot PCU: the weight slice and the [x, h] copy.
            weight_pmus = placer.take_pmus(plan.n_dot_pcus * hu, dot_pcus[0])
            xh_pmus = placer.take_pmus(plan.n_dot_pcus * hu, dot_pcus[0])
            state.pmus_allocated += len(weight_pmus) + len(xh_pmus)
            state.state_pmu_coords.extend(xh_pmus)
            dot.coord = _centroid(dot_pcus)
            dot.units_pcu = tuple(dot_pcus)
            dot.units_pmu = tuple(weight_pmus) + tuple(xh_pmus)
            plan.dot_pcus = tuple(dot_pcus)
            plan.replica0 = tuple(dot_pcus[: plan.n_dot_pcus])
            plan.weight_pmus = tuple(weight_pmus)
            plan.xh_pmus = tuple(xh_pmus)

            accum = state.stage(plan.accum_name)
            accum_units = placer.take_pcus(plan.accum_pcus * hu, dot.coord)
            state.pcus_allocated += len(accum_units)
            lut_pmus = placer.take_pmus(hu, accum_units[0])
            state.pmus_allocated += len(lut_pmus)
            accum.coord = accum_units[0]
            accum.units_pcu = tuple(accum_units)
            accum.units_pmu = tuple(lut_pmus)
            plan.accum_units = tuple(accum_units)
            plan.lut_pmus = tuple(lut_pmus)
            state.accum_coords.append(accum_units[0])

        ew = state.stage("ew")
        ew_plan = state.ew_plan
        ew_anchor = _centroid(state.accum_coords)
        state.ew_anchor = ew_anchor
        ew_units = placer.take_pcus(ew_plan.ew_pcus * hu, ew_anchor)
        state.pcus_allocated += len(ew_units)
        ew_pmu_units = placer.take_pmus(ew_plan.ew_n_pmus * hu, ew_units[0])
        state.pmus_allocated += len(ew_pmu_units)
        ew.coord = ew_units[0]
        ew.units_pcu = tuple(ew_units)
        ew.units_pmu = tuple(ew_pmu_units)
        ew_plan.ew_units = tuple(ew_units)
        ew_plan.ew_pmu_units = tuple(ew_pmu_units)

        state.stage("writeback").coord = ew_units[0]
        state.log(
            f"placed {state.pcus_allocated} PCUs and {state.pmus_allocated} PMUs "
            f"(overflow: {placer.overflow_pcus} PCU / {placer.overflow_pmus} PMU)"
        )
