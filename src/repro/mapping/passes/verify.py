"""The mapping-IR verifier.

:func:`verify_state` checks the invariants each completed pass is
responsible for, so the :class:`~repro.mapping.passes.core.PassManager`
can run it after *every* pass: a pass that corrupts the IR fails
immediately, named, instead of surfacing as a wrong cycle count three
passes later.

Invariants (cumulative, keyed on which passes have completed):

* after ``recognize_rnn`` — structure is present and sane (gates
  non-empty, ``hu``/``steps``/``n_iterations`` at least 1);
* after ``plan_gates`` — every edge connects existing stages, IIs are
  at least 1, latencies non-negative, resource counts non-negative, the
  stage DAG is acyclic;
* after ``place_units`` — every stage is placed on-grid, occupied units
  are real PCUs/PMUs of the layout (overflowed requests may sit at the
  grid-edge coordinate, but only when the placer counted an overflow),
  and the PCU/PMU ledger is conserved: units handed out by the placer
  exactly cover the per-replica stage counts times ``hu``;
* after ``route_edges`` — every edge has a non-negative routed cost;
* after ``report_resources`` — the frozen graph matches the drafts and
  the resource report's unit tallies match the graph.
"""

from __future__ import annotations

from repro.errors import MappingError
from repro.mapping.passes.core import MappingState

__all__ = ["verify_state"]


def _fail(state: MappingState, message: str) -> None:
    last = state.completed[-1] if state.completed else "<no pass>"
    raise MappingError(f"IR verifier after {last}: {message}")


def _check_acyclic(state: MappingState) -> None:
    """Kahn's algorithm on the drafts (cheaper than building networkx)."""
    indeg = {name: 0 for name in state.stages}
    succs: dict[str, list[str]] = {name: [] for name in state.stages}
    for edge in state.edges:
        indeg[edge.dst] += 1
        succs[edge.src].append(edge.dst)
    ready = [n for n, d in indeg.items() if d == 0]
    seen = 0
    while ready:
        node = ready.pop()
        seen += 1
        for nxt in succs[node]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                ready.append(nxt)
    if seen != len(state.stages):
        _fail(state, "stage graph contains a cycle")


def _verify_structure(state: MappingState) -> None:
    if state.root is None or state.steps_loop is None or state.cell is None:
        _fail(state, "recognized structure is incomplete")
    if not state.gates:
        _fail(state, "no gate groups recognized")
    if state.hu < 1:
        _fail(state, f"hu must be >= 1, got {state.hu}")
    if state.n_iterations < 1:
        _fail(state, f"n_iterations must be >= 1, got {state.n_iterations}")
    if state.steps < 1:
        _fail(state, f"steps must be >= 1, got {state.steps}")


def _verify_skeleton(state: MappingState) -> None:
    if not state.stages:
        _fail(state, "no stages in the skeleton")
    for name, draft in state.stages.items():
        if draft.name != name:
            _fail(state, f"stage key {name!r} does not match draft {draft.name!r}")
        if draft.ii < 1:
            _fail(state, f"stage {name!r}: ii must be >= 1, got {draft.ii}")
        if draft.latency < 0:
            _fail(state, f"stage {name!r}: latency must be >= 0, got {draft.latency}")
        if draft.n_pcus < 0 or draft.n_pmus < 0:
            _fail(state, f"stage {name!r}: negative resource counts")
    for edge in state.edges:
        for endpoint in (edge.src, edge.dst):
            if endpoint not in state.stages:
                _fail(state, f"edge endpoint {endpoint!r} is not a stage")
        if edge.route is not None and edge.route < 0:
            _fail(state, f"edge {edge.src!r}->{edge.dst!r}: negative route")
    _check_acyclic(state)


def _verify_placement(state: MappingState) -> None:
    if state.placer is None:
        _fail(state, "no placer after place_units")
    layout = state.chip.layout
    pcu_set = set(layout.pcus)
    pmu_set = set(layout.pmus)
    edge_coord = state.placer.edge_coord
    pcu_overflow_ok = state.placer.overflow_pcus > 0
    pmu_overflow_ok = state.placer.overflow_pmus > 0
    for name, draft in state.stages.items():
        if draft.coord is None:
            _fail(state, f"stage {name!r} is unplaced")
        r, c = draft.coord
        if not (0 <= r < layout.rows and 0 <= c < layout.cols):
            _fail(state, f"stage {name!r} placed off-grid at {draft.coord}")
        for unit in draft.units_pcu:
            if unit in pcu_set:
                continue
            if unit == edge_coord and pcu_overflow_ok:
                continue
            _fail(state, f"stage {name!r} occupies non-PCU unit {unit}")
        for unit in draft.units_pmu:
            if unit in pmu_set:
                continue
            if unit == edge_coord and pmu_overflow_ok:
                continue
            _fail(state, f"stage {name!r} occupies non-PMU unit {unit}")
    # Ledger conservation: what the placer handed out must exactly cover
    # the per-replica stage counts scaled by the hu replication.
    want_pcus = state.hu * sum(d.n_pcus for d in state.stages.values())
    want_pmus = state.hu * sum(d.n_pmus for d in state.stages.values())
    if state.pcus_allocated != want_pcus:
        _fail(
            state,
            f"PCU ledger not conserved: placer allocated {state.pcus_allocated}, "
            f"stages claim {want_pcus}",
        )
    if state.pmus_allocated != want_pmus:
        _fail(
            state,
            f"PMU ledger not conserved: placer allocated {state.pmus_allocated}, "
            f"stages claim {want_pmus}",
        )


def _verify_routes(state: MappingState) -> None:
    for edge in state.edges:
        if edge.route is None:
            _fail(state, f"edge {edge.src!r}->{edge.dst!r} is unrouted")
        if edge.route < 0:
            _fail(state, f"edge {edge.src!r}->{edge.dst!r}: negative route")


def _verify_report(state: MappingState) -> None:
    if state.graph is None or state.resources is None or state.design is None:
        _fail(state, "report_resources left the design incomplete")
    if set(state.graph.stages) != set(state.stages):
        _fail(state, "frozen graph stages differ from the IR drafts")
    if len(state.graph.edges) != len(state.edges):
        _fail(state, "frozen graph edge count differs from the IR drafts")
    if state.resources.pcus_used != state.graph.total_pcus():
        _fail(state, "resource report PCU tally differs from the graph")
    if state.resources.pmus_used != state.graph.total_pmus():
        _fail(state, "resource report PMU tally differs from the graph")


def verify_state(state: MappingState) -> None:
    """Check every invariant the completed passes are responsible for.

    Raises :class:`~repro.errors.MappingError` naming the last completed
    pass on the first violation; returns ``None`` on a healthy IR.
    """
    done = set(state.completed)
    if "recognize_rnn" in done:
        _verify_structure(state)
    if "plan_gates" in done:
        _verify_skeleton(state)
    if "place_units" in done:
        _verify_placement(state)
    if "route_edges" in done:
        _verify_routes(state)
    if "report_resources" in done:
        _verify_report(state)
