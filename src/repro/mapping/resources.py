"""Resource accounting for mapped designs.

Answers Section 4.2's sizing questions: how many PCUs/PMUs a design
occupies, whether the weights fit on-chip, and whether memory bandwidth
matches compute (every dot-product PCU needs two PMUs' worth of read
bandwidth — weights plus its copy of the ``[x, h]`` vector — which is the
paper's rationale for the 2:1 PMU:PCU ratio).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mapping.pipeline import PipelineGraph
from repro.plasticine.chip import PlasticineConfig

__all__ = ["ResourceReport", "resource_report"]


@dataclass(frozen=True)
class ResourceReport:
    """Resource usage of one mapped design on one chip."""

    pcus_used: int
    pmus_used: int
    pcus_available: int
    pmus_available: int
    weight_bytes: int
    state_bytes: int
    lut_bytes: int
    onchip_bytes: int
    notes: tuple[str, ...] = field(default=())

    @property
    def bytes_used(self) -> int:
        return self.weight_bytes + self.state_bytes + self.lut_bytes

    @property
    def fits_compute(self) -> bool:
        return self.pcus_used <= self.pcus_available

    @property
    def fits_bandwidth(self) -> bool:
        return self.pmus_used <= self.pmus_available

    @property
    def fits_capacity(self) -> bool:
        return self.bytes_used <= self.onchip_bytes

    @property
    def fits(self) -> bool:
        return self.fits_compute and self.fits_bandwidth and self.fits_capacity

    @property
    def pcu_utilization(self) -> float:
        return self.pcus_used / self.pcus_available

    @property
    def pmu_utilization(self) -> float:
        return self.pmus_used / self.pmus_available

    @property
    def capacity_utilization(self) -> float:
        return self.bytes_used / self.onchip_bytes

    def summary(self) -> str:
        flags = []
        if not self.fits_compute:
            flags.append("OVER-PCU")
        if not self.fits_bandwidth:
            flags.append("OVER-PMU")
        if not self.fits_capacity:
            flags.append("OVER-CAPACITY")
        status = " ".join(flags) if flags else "fits"
        return (
            f"PCU {self.pcus_used}/{self.pcus_available} "
            f"PMU {self.pmus_used}/{self.pmus_available} "
            f"mem {self.bytes_used / 2**20:.2f}/{self.onchip_bytes / 2**20:.1f} MB "
            f"[{status}]"
        )


def resource_report(
    graph: PipelineGraph,
    chip: PlasticineConfig,
    *,
    weight_bytes: int,
    state_bytes: int,
    lut_bytes: int,
    notes: tuple[str, ...] = (),
) -> ResourceReport:
    """Tally a pipeline graph's resources against a chip."""
    return ResourceReport(
        pcus_used=graph.total_pcus(),
        pmus_used=graph.total_pmus(),
        pcus_available=chip.usable_pcus,
        pmus_available=chip.n_pmu,
        weight_bytes=weight_bytes,
        state_bytes=state_bytes,
        lut_bytes=lut_bytes,
        onchip_bytes=chip.onchip_bytes,
        notes=notes,
    )
