"""ASCII visualization of a mapped design's placement.

Renders the chip grid with each unit's role in the mapped pipeline —
the textual analogue of the paper's Figure 7 annotated with an actual
design.  Legend:

* ``D`` — dot-product (map-reduce) PCU, ``A`` — accumulate/LUT PCU,
  ``E`` — element-wise chain PCU, ``.`` — idle PCU;
* ``w`` — weight PMU, ``x`` — ``[x,h]``-copy PMU, ``l`` — LUT PMU,
  ``,`` — idle PMU.
"""

from __future__ import annotations

from repro.mapping.mapper import MappedDesign, _Placer
from repro.plasticine.network import Coord

__all__ = ["placement_map"]


def placement_map(design: MappedDesign, max_rows: int | None = None) -> str:
    """Render the design's placement as an ASCII grid.

    Re-runs the mapper's deterministic placement to recover coordinates
    (the mapper stores only representative stage coordinates).
    """
    chip = design.chip
    layout = chip.layout
    grid: dict[Coord, str] = {}
    for c in layout.pcus:
        grid[c] = "."
    for c in layout.pmus:
        grid[c] = ","

    placer = _Placer(chip)
    anchor: Coord = (layout.rows // 2, 0)
    hu = design.hu
    for gate in design.gates:
        pcu_rv = chip.dot_lanes_per_pcu(design.bits)
        per_unit = max(1, -(-gate.rv // pcu_rv))
        n_dot = gate.ru * per_unit
        for c in placer.take_pcus(n_dot * hu, anchor):
            grid[c] = "D"
        dots_anchor = next(c for c, v in grid.items() if v == "D")
        for c in placer.take_pmus(n_dot * hu, dots_anchor):
            grid[c] = "w"
        for c in placer.take_pmus(n_dot * hu, dots_anchor):
            grid[c] = "x"
        accum_needed = max(1, -(-max(gate.ru - 1, 1) // chip.pcu.stages))
        for c in placer.take_pcus(accum_needed * hu, dots_anchor):
            grid[c] = "A"
        for c in placer.take_pmus(hu, dots_anchor):
            grid[c] = "l"
    ew_stage = design.graph.stages["ew"]
    for c in placer.take_pcus(ew_stage.n_pcus * hu, ew_stage.coord or anchor):
        grid[c] = "E"
    for c in placer.take_pmus(ew_stage.n_pmus * hu, ew_stage.coord or anchor):
        grid[c] = "l"

    rows = layout.rows if max_rows is None else min(layout.rows, max_rows)
    lines = [
        f"{design.program_name} on {chip.name} "
        f"(hu={design.hu}, ru={design.ru}, rv={design.rv})",
        "legend: D dot PCU, A accum PCU, E ew PCU, . idle PCU | "
        "w weight PMU, x [x,h] PMU, l LUT/state PMU, , idle PMU",
    ]
    for r in range(rows):
        lines.append(" ".join(grid.get((r, c), " ") for c in range(layout.cols)))
    if rows < layout.rows:
        lines.append(f"... ({layout.rows - rows} more rows)")
    return "\n".join(lines)
