"""Lowering RNN loop nests onto Plasticine (paper Section 4).

The canonical implementation of the lowering now lives in
:mod:`repro.mapping.passes` as a pass pipeline over a mapping IR;
:func:`map_rnn_program` here is a thin wrapper that runs the default
pipeline.  This module keeps the shared lowering vocabulary — the
:class:`GateGroup` / :class:`MappedDesign` data model, the greedy
:class:`_Placer`, structure recognition and the latency helpers — plus
the original single-function lowering as :func:`_map_rnn_monolith`, the
golden reference that the pass pipeline is differentially tested
against (``tests/test_pass_pipeline_parity.py``).

The mapper recognizes the RNN serving idiom in a traced program:

.. code-block:: text

    Sequential.Foreach(T)            # time steps, h_t feedback
      Foreach(D, par=rv)             # x streaming (overlapped)
      Foreach(H, par=hu)             # the cell loop: one output element
        Reduce(R by rv par ru) x G   # fused gate dot products
        ... element-wise ops + LUTs  # gate non-linearities, cell update

and lowers it into a placed :class:`~repro.mapping.pipeline.PipelineGraph`:

* each gate's Reduce group becomes a **dot stage**: ``ru`` map-reduce PCUs,
  each fed by two PMUs (its weight slice + its copy of ``[x, h]``) — the
  bandwidth pairing behind the chip's 2:1 PMU:PCU ratio;
* each gate gets an **accumulate stage**: the cross-PCU reduction tree
  over the ``ru`` partial sums, the bias add and the non-linearity LUT;
* the remaining element-wise operations chain through PCUs in a single
  **ew stage** (the fusion that keeps all intermediates in registers);
* a **writeback stage** broadcasts each produced ``h`` element to every
  ``[x, h]`` PMU copy for the next time step.

Placement is deterministic and locality-aware (nearest-available units on
the actual grid), so edge route latencies come from real Manhattan
distances rather than constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import MappingError
from repro.mapping.pipeline import PipelineGraph, Stage
from repro.mapping.resources import ResourceReport, resource_report
from repro.plasticine.chip import PlasticineConfig
from repro.plasticine.network import Coord
from repro.spatial.builder import Program
from repro.spatial.ir import LoopKind, LoopRecord, OpKind

__all__ = ["MappedDesign", "map_rnn_program", "SEQ_SYNC_CYCLES"]

#: Control overhead of one Sequential time-step boundary: the outer
#: controller's done/enable token exchange through the fabric.  This is
#: the model's single calibrated timing constant (see EXPERIMENTS.md);
#: every other latency derives from structure and placement.
SEQ_SYNC_CYCLES = 16


@dataclass(frozen=True)
class GateGroup:
    """One gate's reduce loops (one for LSTM, x-part + h-part for GRU)."""

    name: str
    reduces: tuple[LoopRecord, ...]

    @property
    def issue_blocks(self) -> int:
        """Sequential block issues per cell iteration = the gate's II."""
        return sum(r.issue_count for r in self.reduces)

    @property
    def ru(self) -> int:
        return max(r.par for r in self.reduces)

    @property
    def rv(self) -> int:
        return max(r.step for r in self.reduces)


@dataclass
class MappedDesign:
    """A lowered design: the placed pipeline plus its resource report."""

    program_name: str
    chip: PlasticineConfig
    graph: PipelineGraph
    resources: ResourceReport
    gates: tuple[GateGroup, ...]
    hu: int
    n_iterations: int
    steps: int
    bits: int
    #: Names of the compiler passes that produced this design, in run
    #: order; empty for designs built by the legacy monolith.
    passes_applied: tuple[str, ...] = field(default=(), compare=False)
    #: Per-pass wall-clock timings (observability; see PassManager).
    pass_timings: tuple = field(default=(), repr=False, compare=False)

    @property
    def ru(self) -> int:
        return max(g.ru for g in self.gates)

    @property
    def rv(self) -> int:
        return max(g.rv for g in self.gates)


class _Placer:
    """Greedy nearest-available allocation of grid units.

    Tracks how many requests could not be satisfied by physical units
    (``overflow_pcus`` / ``overflow_pmus``); overflowed requests are
    synthesized at the grid-edge coordinate so timing stays defined, and
    the resource report carries an explicit overflow note.
    """

    def __init__(self, chip: PlasticineConfig):
        self.chip = chip
        self.free_pcus = list(chip.layout.pcus)
        self.free_pmus = list(chip.layout.pmus)
        self.overflow_pcus = 0
        self.overflow_pmus = 0

    @property
    def edge_coord(self) -> Coord:
        """Where overflowed requests are synthesized."""
        return (self.chip.layout.rows - 1, self.chip.layout.cols - 1)

    def _take(self, pool: list[Coord], k: int, near: Coord) -> tuple[list[Coord], int]:
        if k > len(pool):
            # Out of physical units: synthesize overflow coordinates at the
            # grid edge so timing stays defined; the resource report flags
            # the overflow.
            pool_sorted = sorted(pool, key=lambda p: self.chip.layout.manhattan(near, p))
            taken = list(pool_sorted)
            del pool[:]
            overflow = k - len(taken)
            taken.extend([self.edge_coord] * overflow)
            return taken, overflow
        pool.sort(key=lambda p: self.chip.layout.manhattan(near, p))
        taken = pool[:k]
        del pool[:k]
        return taken, 0

    def take_pcus(self, k: int, near: Coord) -> list[Coord]:
        taken, overflow = self._take(self.free_pcus, k, near)
        self.overflow_pcus += overflow
        return taken

    def take_pmus(self, k: int, near: Coord) -> list[Coord]:
        taken, overflow = self._take(self.free_pmus, k, near)
        self.overflow_pmus += overflow
        return taken

    def release_pcus(self, coords: list[Coord]) -> None:
        """Return previously taken PCUs to the free pool (pass rewrites)."""
        self.free_pcus.extend(c for c in coords if c != self.edge_coord)

    def release_pmus(self, coords: list[Coord]) -> None:
        """Return previously taken PMUs to the free pool (pass rewrites)."""
        self.free_pmus.extend(c for c in coords if c != self.edge_coord)


def _overflow_note(placer: _Placer) -> str | None:
    """The resource-report note flagging placement overflow, if any."""
    if not (placer.overflow_pcus or placer.overflow_pmus):
        return None
    return (
        f"placement overflow: {placer.overflow_pcus} PCU + "
        f"{placer.overflow_pmus} PMU requests beyond the grid "
        f"(synthesized at the edge)"
    )


def _centroid(coords: list[Coord]) -> Coord:
    r = round(sum(c[0] for c in coords) / len(coords))
    c = round(sum(c[1] for c in coords) / len(coords))
    return (int(r), int(c))


def _find_structure(root: LoopRecord):
    """Locate the time-step loop, cell loop, and gate reduce groups."""
    seq_loops = [c for c in root.children if c.kind is LoopKind.SEQUENTIAL]
    if len(seq_loops) != 1:
        raise MappingError(
            f"expected exactly one Sequential time-step loop, found {len(seq_loops)}"
        )
    steps_loop = seq_loops[0]

    cell_candidates = [
        c
        for c in steps_loop.children
        if c.kind is LoopKind.FOREACH
        and any(g.kind is LoopKind.REDUCE for g in c.children)
    ]
    if len(cell_candidates) != 1:
        raise MappingError(
            f"expected exactly one cell Foreach containing Reduce loops, "
            f"found {len(cell_candidates)}"
        )
    cell = cell_candidates[0]

    dots = [c for c in cell.children if c.kind is LoopKind.REDUCE]
    if not dots:
        raise MappingError("cell loop has no Reduce children")

    groups: dict[str, list[LoopRecord]] = {}
    for idx, dot in enumerate(dots):
        label = dot.label
        if label.startswith("dot_") and len(label) > 4:
            key = f"gate_{label[4]}"  # dot_zx / dot_zh -> gate_z
        else:
            key = f"gate{idx}"
        groups.setdefault(key, []).append(dot)
    gates = tuple(GateGroup(name, tuple(rs)) for name, rs in groups.items())
    return steps_loop, cell, gates


def _tree_latency(pcu_coords: list[Coord], chip: PlasticineConfig) -> int:
    """Latency of the cross-PCU reduction tree over one gate's partials.

    Pairs adjacent PCUs level by level; each level costs the routed hop
    between the paired units plus one add cycle.
    """
    coords = list(pcu_coords)
    latency = 0
    while len(coords) > 1:
        half = len(coords) // 2
        hop = max(
            chip.layout.route_cycles(coords[i], coords[i + half], chip.hop_latency)
            for i in range(half)
        )
        latency += hop + 1
        coords = coords[:half] + coords[2 * half :]
    return latency


def _memory_footprint(prog: Program) -> tuple[int, int, int]:
    """(weight_bytes, state_bytes, lut_bytes) from declared memories."""
    weight = state = lut = 0
    for sram in prog.memories.srams.values():
        nbytes = sram.storage_bytes(sram.dtype.total_bytes if sram.dtype else 1)
        if sram.name.startswith(("w", "b")):
            weight += nbytes
        elif sram.name in ("x_seq", "y_seq"):
            continue  # streamed from/to the host, not resident
        else:
            state += nbytes
    for table in prog.memories.luts.values():
        lut += table.storage_bytes()
    return weight, state, lut


def map_rnn_program(
    prog: Program,
    chip: PlasticineConfig | None = None,
    *,
    bits: int = 8,
    seq_sync_cycles: int = SEQ_SYNC_CYCLES,
    pass_config=None,
    passes=None,
    verify: bool = True,
) -> MappedDesign:
    """Lower a loop-based RNN program onto a Plasticine configuration.

    Runs the compiler pass pipeline (:mod:`repro.mapping.passes`); the
    default pipeline is proven bit-identical to the original monolithic
    lowering (kept as :func:`_map_rnn_monolith`) by the differential
    parity suite.

    Args:
        prog: A program built by :func:`repro.rnn.build_lstm_program` or
            :func:`repro.rnn.build_gru_program` (or any program matching
            the RNN idiom documented in this module).
        chip: Target chip (default: the Table 3 RNN-serving variant).
        bits: Weight/multiply precision (8, 16, or 32) — determines the
            per-PCU dot width via packing.
        seq_sync_cycles: Sequential-loop control overhead per step.
        pass_config: A :class:`~repro.mapping.passes.PassConfig` enabling
            optimization passes (``fuse_gates``, ``double_buffer``); the
            default runs the plain pipeline.
        passes: Explicit pass names (or instances) overriding the
            pipeline entirely; ``pass_config`` is ignored when given.
        verify: Run the IR verifier after every pass (cheap; on by
            default).

    Returns:
        A :class:`MappedDesign` with the placed pipeline graph.
    """
    from repro.mapping.passes import PassManager

    if passes is not None:
        manager = PassManager(list(passes), verify=verify)
    else:
        manager = PassManager.default(pass_config, verify=verify)
    state = manager.run_program(
        prog, chip=chip, bits=bits, seq_sync_cycles=seq_sync_cycles
    )
    return state.design


def _map_rnn_monolith(
    prog: Program,
    chip: PlasticineConfig | None = None,
    *,
    bits: int = 8,
    seq_sync_cycles: int = SEQ_SYNC_CYCLES,
) -> MappedDesign:
    """The original single-function lowering (pre-pass-pipeline).

    Kept temporarily as the golden reference for the differential parity
    suite and the CI parity smoke; new behavior goes into the passes.
    """
    chip = chip or PlasticineConfig.rnn_serving()
    root = prog.trace()
    steps_loop, cell, gates = _find_structure(root)

    hu = cell.par
    n_iter = cell.issue_count
    pcu_rv = chip.dot_lanes_per_pcu(bits)
    timing = chip.pcu.map_reduce_timing(bits)

    graph = PipelineGraph(
        name=prog.name,
        n_iterations=n_iter,
        steps=steps_loop.extent,
        replicas=hu,
        step_overhead=seq_sync_cycles,
    )
    placer = _Placer(chip)
    anchor: Coord = (chip.layout.rows // 2, 0)

    # All replicas are physically placed so route latencies reflect the
    # full design footprint; stage resource counts stay per-replica (the
    # graph multiplies by `replicas`), and edge routes take the worst
    # case over the placed units.
    state_pmu_coords: list[Coord] = []
    accum_coords: list[Coord] = []
    graph.add_stage(
        Stage("load_x", ii=1, latency=chip.hop_latency + 1, coord=anchor)
    )

    for gate in gates:
        # One MapReduce unit may span several PCUs if the program's rv
        # exceeds what one PCU consumes per cycle.
        pcus_per_unit = max(1, math.ceil(gate.rv / pcu_rv))
        n_dot_pcus = gate.ru * pcus_per_unit
        dot_pcus = placer.take_pcus(n_dot_pcus * hu, anchor)
        # Two PMUs per dot PCU: the weight slice and the [x, h] copy.
        placer.take_pmus(n_dot_pcus * hu, dot_pcus[0])  # weight slices
        xh_pmus = placer.take_pmus(n_dot_pcus * hu, dot_pcus[0])
        state_pmu_coords.extend(xh_pmus)

        dot_coord = _centroid(dot_pcus)
        dot = graph.add_stage(
            Stage(
                f"dot_{gate.name}",
                ii=gate.issue_blocks,
                latency=gate.issue_blocks + timing.depth_cycles,
                n_pcus=n_dot_pcus,
                n_pmus=2 * n_dot_pcus,
                coord=dot_coord,
            )
        )
        load_route = max(
            chip.layout.route_cycles(anchor, p, chip.hop_latency) for p in dot_pcus
        )
        graph.connect("load_x", dot.name, load_route)

        # Cross-PCU tree + bias + LUT.
        accum_pcus_needed = max(1, math.ceil(max(gate.ru - 1, 1) / chip.pcu.stages))
        accum_pcu = placer.take_pcus(accum_pcus_needed * hu, dot_coord)
        placer.take_pmus(hu, accum_pcu[0])  # per-replica LUT tables
        replica0 = dot_pcus[:n_dot_pcus]
        tree = _tree_latency(replica0, chip) if gate.ru > 1 else 0
        lut_access = 2  # PMU read: address + data
        accum = graph.add_stage(
            Stage(
                f"accum_{gate.name}",
                ii=1,
                latency=tree + 1 + lut_access,  # tree + bias add + LUT
                n_pcus=accum_pcus_needed,
                n_pmus=1,
                coord=accum_pcu[0],
            )
        )
        accum_coords.append(accum_pcu[0])
        dot_to_accum = max(
            chip.layout.route_cycles(p, accum_pcu[0], chip.hop_latency)
            for p in replica0
        )
        graph.connect(dot.name, accum.name, dot_to_accum)

    # ---- element-wise fusion stage ----
    # Ops at cell level, minus what the accumulate stages already did
    # (per gate: one bias/part-join add chain and one LUT).  Counter
    # address arithmetic is approximated into the chain (one extra op).
    cell_ops = {kind: cell.op_count(kind) for kind in OpKind}
    gate_adds = sum(len(g.reduces) for g in gates)  # part joins + bias adds
    ew_ops = max(
        1,
        sum(cell_ops.get(k, 0) for k in (OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.NEG))
        - gate_adds
        + (cell_ops.get(OpKind.LUT, 0) - len(gates)),  # extra LUTs (tanh(c))
    )
    ew_pcus_needed = max(1, math.ceil(ew_ops / chip.pcu.stages))
    ew_anchor = _centroid(accum_coords)
    ew_pcus = placer.take_pcus(ew_pcus_needed * hu, ew_anchor)
    extra_luts = max(0, cell_ops.get(OpKind.LUT, 0) - len(gates))
    # State memory (c for LSTM / h for GRU) + any extra LUT tables.
    ew_n_pmus = 1 + (1 if extra_luts else 0)
    placer.take_pmus(ew_n_pmus * hu, ew_pcus[0])
    ew = graph.add_stage(
        Stage(
            "ew",
            ii=1,
            latency=ew_ops + (ew_pcus_needed - 1) * 2 * chip.hop_latency,
            n_pcus=ew_pcus_needed,
            n_pmus=ew_n_pmus,
            coord=ew_pcus[0],
        )
    )
    for gate, coord in zip(gates, accum_coords):
        graph.connect(
            f"accum_{gate.name}",
            "ew",
            chip.layout.route_cycles(coord, ew_pcus[0], chip.hop_latency),
        )

    # ---- state writeback: broadcast h element to every [x,h] copy ----
    broadcast = max(
        chip.layout.route_cycles(ew_pcus[0], pmu, chip.hop_latency)
        for pmu in state_pmu_coords
    )
    graph.add_stage(Stage("writeback", ii=1, latency=broadcast + 1, coord=ew_pcus[0]))
    graph.connect("ew", "writeback", 0)

    weight_bytes, state_bytes, lut_bytes = _memory_footprint(prog)
    # The [x,h] vector is replicated per dot PCU for bandwidth.
    xh_copies = graph.replicas * len(state_pmu_coords)
    notes = []
    if xh_copies:
        state_bytes = state_bytes * (1 + xh_copies)
        notes.append(f"[x,h] replicated {xh_copies}x for dot-PCU bandwidth")
    overflow = _overflow_note(placer)
    if overflow:
        notes.append(overflow)
    resources = resource_report(
        graph,
        chip,
        weight_bytes=weight_bytes,
        state_bytes=state_bytes,
        lut_bytes=lut_bytes,
        notes=tuple(notes),
    )
    return MappedDesign(
        program_name=prog.name,
        chip=chip,
        graph=graph,
        resources=resources,
        gates=gates,
        hu=hu,
        n_iterations=n_iter,
        steps=steps_loop.extent,
        bits=bits,
    )
