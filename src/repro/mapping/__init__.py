"""Lowering traced DSL programs onto the Plasticine chip.

* :mod:`repro.mapping.pipeline` — the :class:`PipelineGraph` intermediate
  form: placed stages with initiation intervals, latencies and routed
  edges; what the cycle simulator executes.
* :mod:`repro.mapping.resources` — resource accounting (PCUs, PMUs,
  scratchpad bytes) and fit checking.
* :mod:`repro.mapping.mapper` — recognizes the paper's RNN loop idiom in
  a trace and builds the placed pipeline graph (Section 4's mapping:
  Reduce loops onto PCU map-reduce pipelines, element-wise chains onto
  chained PCUs, memories onto PMUs).
"""

from repro.mapping.pipeline import PipelineGraph, Stage
from repro.mapping.resources import ResourceReport, resource_report
from repro.mapping.mapper import MappedDesign, map_rnn_program

__all__ = [
    "PipelineGraph",
    "Stage",
    "ResourceReport",
    "resource_report",
    "MappedDesign",
    "map_rnn_program",
]
