"""Lowering traced DSL programs onto the Plasticine chip.

* :mod:`repro.mapping.pipeline` — the :class:`PipelineGraph` intermediate
  form: placed stages with initiation intervals, latencies and routed
  edges; what the cycle simulator executes.
* :mod:`repro.mapping.resources` — resource accounting (PCUs, PMUs,
  scratchpad bytes) and fit checking.
* :mod:`repro.mapping.mapper` — the lowering vocabulary (GateGroup,
  MappedDesign, the greedy placer, structure recognition) plus the
  legacy monolithic lowering kept as the golden reference.
* :mod:`repro.mapping.passes` — the compiler pass pipeline that now
  implements the Section 4 lowering: a ``MappingPass`` registry and a
  ``PassManager`` threading a ``MappingState`` through
  recognize → plan → place → route → fold → report, with optional
  ``fuse_gates`` / ``double_buffer`` optimization passes behind
  :class:`PassConfig`.
"""

from repro.mapping.pipeline import PipelineGraph, Stage
from repro.mapping.resources import ResourceReport, resource_report
from repro.mapping.mapper import MappedDesign, map_rnn_program
from repro.mapping.passes import (
    MappingPass,
    MappingState,
    PassConfig,
    PassManager,
    available_passes,
    design_fingerprint,
    diff_designs,
    register_pass,
)

__all__ = [
    "PipelineGraph",
    "Stage",
    "ResourceReport",
    "resource_report",
    "MappedDesign",
    "map_rnn_program",
    "MappingPass",
    "MappingState",
    "PassConfig",
    "PassManager",
    "available_passes",
    "design_fingerprint",
    "diff_designs",
    "register_pass",
]
