"""Pretty-printer: renders a traced program in the shape of Figure 5."""

from __future__ import annotations

from repro.spatial.builder import Program
from repro.spatial.ir import LoopKind, LoopRecord, OpKind

__all__ = ["format_program", "format_loop_tree"]

_KIND_NAMES = {
    LoopKind.FOREACH: "Foreach",
    LoopKind.REDUCE: "Reduce",
    LoopKind.SEQUENTIAL: "Sequential.Foreach",
}


def _format_loop(rec: LoopRecord, indent: int, lines: list[str]) -> None:
    pad = "  " * indent
    head = _KIND_NAMES[rec.kind]
    rng = f"{rec.extent}"
    if rec.step != 1:
        rng += f" by {rec.step}"
    if rec.par != 1:
        rng += f" par {rec.par}"
    label = f"  // {rec.label}" if rec.label else ""
    lines.append(f"{pad}{head}({rng}) {{{label}")
    if rec.ops:
        counts: dict[OpKind, int] = {}
        for op in rec.ops:
            counts[op.kind] = counts.get(op.kind, 0) + 1
        mix = ", ".join(f"{k.value}x{v}" for k, v in sorted(counts.items(), key=lambda kv: kv[0].value))
        lines.append(f"{pad}  // body ops: {mix}")
    reads = sorted({a.mem_name for a in rec.accesses if not a.is_write})
    writes = sorted({a.mem_name for a in rec.accesses if a.is_write})
    if reads:
        lines.append(f"{pad}  // reads:  {', '.join(reads)}")
    if writes:
        lines.append(f"{pad}  // writes: {', '.join(writes)}")
    for child in rec.children:
        _format_loop(child, indent + 1, lines)
    lines.append(f"{pad}}}")


def format_loop_tree(root: LoopRecord) -> str:
    """Render a trace tree as indented pseudo-Spatial."""
    lines: list[str] = []
    for child in root.children:
        _format_loop(child, 0, lines)
    return "\n".join(lines)


def format_program(prog: Program) -> str:
    """Render a program: memory declarations then the traced loop nest."""
    lines = [f"// Program: {prog.name}"]
    for sram in prog.memories.srams.values():
        dtype = sram.dtype.name if sram.dtype else "f64"
        lines.append(f"val {sram.name} = SRAM[{dtype}]{list(sram.shape)}")
    for reg in prog.memories.regs.values():
        dtype = reg.dtype.name if reg.dtype else "f64"
        lines.append(f"val {reg.name} = Reg[{dtype}]")
    for lut in prog.memories.luts.values():
        dtype = lut.dtype.name if lut.dtype else "f64"
        lines.append(
            f"val {lut.name} = LUT[{dtype}]({lut.entries}) "
            f"// {lut.name} over [{lut.lo}, {lut.hi}]"
        )
    lines.append("")
    lines.append(format_loop_tree(prog.trace()))
    return "\n".join(lines)
