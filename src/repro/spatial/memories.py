"""On-chip memory handles: SRAM, Reg, LUT.

Handles are declared on a :class:`~repro.spatial.builder.Program` and are
engine-agnostic — actual storage lives inside the executor.  Each handle
carries the metadata the hardware layers need: logical shape, storage
precision, and banking hints (Spatial banks scratchpads to scale memory
bandwidth with parallelism; the PMU model checks the banking supports the
requested access parallelism).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import DSLError
from repro.precision.formats import FloatFormat
from repro.spatial.context import current_engine
from repro.spatial.values import Value, as_value

__all__ = ["SRAM", "Reg", "LUT"]


@dataclass
class SRAM:
    """A banked on-chip scratchpad of arbitrary logical shape.

    Access syntax follows the paper's Figure 5: ``w[ih, iuv]`` reads,
    ``w.write(value, ih, iuv)`` writes.

    Attributes:
        name: Unique name within the program.
        shape: Logical element shape.
        dtype: Storage format; ``None`` stores exact float64 (used for
            full-precision references).
        banks: Number of banks (limits conflict-free parallel access).
    """

    name: str
    shape: tuple[int, ...]
    dtype: FloatFormat | None = None
    banks: int = 16

    def __post_init__(self) -> None:
        if not self.shape or any(int(s) <= 0 for s in self.shape):
            raise DSLError(f"SRAM {self.name!r}: shape must be positive, got {self.shape}")
        if self.banks < 1:
            raise DSLError(f"SRAM {self.name!r}: banks must be >= 1")
        self.shape = tuple(int(s) for s in self.shape)

    @property
    def size(self) -> int:
        return math.prod(self.shape)

    def storage_bytes(self, element_bytes: int | None = None) -> int:
        """Footprint in bytes given the storage format (or an override)."""
        if element_bytes is None:
            element_bytes = self.dtype.total_bytes if self.dtype else 4
        return self.size * element_bytes

    def __getitem__(self, idxs) -> Value:
        if not isinstance(idxs, tuple):
            idxs = (idxs,)
        if len(idxs) != len(self.shape):
            raise DSLError(
                f"SRAM {self.name!r} is {len(self.shape)}-D but was indexed "
                f"with {len(idxs)} indices"
            )
        return current_engine().read(self, tuple(as_value(i) for i in idxs))

    def write(self, value, *idxs) -> None:
        if len(idxs) != len(self.shape):
            raise DSLError(
                f"SRAM {self.name!r} is {len(self.shape)}-D but was written "
                f"with {len(idxs)} indices"
            )
        current_engine().write(self, as_value(value), tuple(as_value(i) for i in idxs))


@dataclass
class Reg:
    """A scalar register (single value, loop-invariant storage)."""

    name: str
    dtype: FloatFormat | None = None
    init: float = 0.0

    def read(self) -> Value:
        return current_engine().read(self, ())

    def write(self, value) -> None:
        current_engine().write(self, as_value(value), ())


@dataclass
class LUT:
    """A lookup table implementing a non-linear function.

    Figure 5 stores sigmoid/tanh as LUTs fed by the dot-product result.
    The hardware model: ``entries`` samples of ``fn`` over ``[lo, hi]``,
    nearest-entry lookup with clamping, entries stored in ``dtype``.
    """

    name: str
    fn: Callable[[np.ndarray], np.ndarray]
    lo: float = -8.0
    hi: float = 8.0
    entries: int = 2048
    dtype: FloatFormat | None = None

    def __post_init__(self) -> None:
        if self.entries < 2:
            raise DSLError(f"LUT {self.name!r}: needs at least 2 entries")
        if not self.hi > self.lo:
            raise DSLError(f"LUT {self.name!r}: range [{self.lo}, {self.hi}] is empty")

    def grid(self) -> np.ndarray:
        """Sample points of the table."""
        return np.linspace(self.lo, self.hi, self.entries)

    def table(self) -> np.ndarray:
        """Stored table values (quantized to the LUT's storage format)."""
        vals = np.asarray(self.fn(self.grid()), dtype=np.float64)
        if self.dtype is not None:
            from repro.precision.quantize import quantize

            vals = quantize(vals, self.dtype)
        return vals

    @property
    def step_size(self) -> float:
        return (self.hi - self.lo) / (self.entries - 1)

    def storage_bytes(self) -> int:
        element = self.dtype.total_bytes if self.dtype else 4
        return self.entries * element

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Host-side (numpy) evaluation with the executor's exact lookup
        semantics: nearest entry, clamped to the table range.

        Lets reference implementations share the LUT's numerics so DSL
        runs can be validated for bit-exact equality.
        """
        table = self.table()
        pos = np.clip(
            np.round((np.asarray(x, dtype=np.float64) - self.lo) / self.step_size),
            0,
            self.entries - 1,
        )
        return table[pos.astype(np.int64)]

    def __call__(self, x) -> Value:
        return current_engine().lut_lookup(self, as_value(x))


@dataclass
class _MemorySet:
    """Internal: the memories declared by one program."""

    srams: dict[str, SRAM] = field(default_factory=dict)
    regs: dict[str, Reg] = field(default_factory=dict)
    luts: dict[str, LUT] = field(default_factory=dict)

    def add(self, mem) -> None:
        table = {SRAM: self.srams, Reg: self.regs, LUT: self.luts}[type(mem)]
        if mem.name in self.all_names():
            raise DSLError(f"duplicate memory name {mem.name!r}")
        table[mem.name] = mem

    def all_names(self) -> set[str]:
        return set(self.srams) | set(self.regs) | set(self.luts)
