"""DSL scalar values with operator overloading.

A :class:`Value` wraps an engine payload — a numpy array under the
executor, a :class:`~repro.spatial.ir.Sym` under the tracer — together
with ``axes``: the ids of the loop counters the value varies over, outer
to inner.  Arithmetic dispatches to the active engine so the same program
text drives both tracing and execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.spatial.context import current_engine

__all__ = ["Value", "as_value", "vmax", "vmin"]


@dataclass(frozen=True)
class Value:
    """A staged DSL scalar.

    Attributes:
        payload: numpy array (executor) or Sym (tracer) or python number.
        axes: loop-counter ids this value varies over, in nesting order.
    """

    payload: Any
    axes: tuple[int, ...] = ()

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other):
        return current_engine().binop("add", self, as_value(other))

    def __radd__(self, other):
        return current_engine().binop("add", as_value(other), self)

    def __sub__(self, other):
        return current_engine().binop("sub", self, as_value(other))

    def __rsub__(self, other):
        return current_engine().binop("sub", as_value(other), self)

    def __mul__(self, other):
        return current_engine().binop("mul", self, as_value(other))

    def __rmul__(self, other):
        return current_engine().binop("mul", as_value(other), self)

    def __truediv__(self, other):
        return current_engine().binop("div", self, as_value(other))

    def __rtruediv__(self, other):
        return current_engine().binop("div", as_value(other), self)

    def __neg__(self):
        return current_engine().unop("neg", self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Value({self.payload!r}, axes={self.axes})"


def as_value(x: Any) -> Value:
    """Coerce a python number (or Value) into a Value."""
    if isinstance(x, Value):
        return x
    return Value(payload=float(x), axes=())


def vmax(a, b) -> Value:
    """Elementwise maximum of two DSL values."""
    return current_engine().binop("max", as_value(a), as_value(b))


def vmin(a, b) -> Value:
    """Elementwise minimum of two DSL values."""
    return current_engine().binop("min", as_value(a), as_value(b))
