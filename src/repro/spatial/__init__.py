"""A Python embedding of the Spatial DSL (paper Section 2.3, Figure 5).

Spatial describes accelerator applications as *un-parallelized
pattern-based loops with explicit memory hierarchies*.  This package
reproduces the subset the paper uses:

* ``Foreach`` / ``Reduce`` / ``Sequential.Foreach`` loop constructs with
  ``step`` (blocking) and ``par`` (unrolling/vectorization) factors —
  the knobs the paper tunes (``hu``, ``ru``, ``hv``, ``rv``).
* ``SRAM`` / ``Reg`` / ``LUT`` on-chip memories with per-memory storage
  precision.
* Two engines over the same program:

  - :class:`~repro.spatial.interpreter.Executor` — functional execution.
    Loop bodies evaluate *vectorized* over numpy index arrays, so an
    H=2048 LSTM step runs in numpy time, with optional mixed-precision
    rounding after every operation (the f8+16+32 datapath).
  - :class:`~repro.spatial.tracer.Tracer` — symbolic execution that
    records the loop-nest IR (extents, par factors, op mix, memory
    traffic) consumed by :mod:`repro.mapping`.

Programs are plain Python functions using these constructs inside a
:class:`~repro.spatial.builder.Program` context::

    prog = Program("axpy")
    x = prog.sram("x", (n,))
    y = prog.sram("y", (n,))

    @prog.main
    def body():
        Foreach(Range(n, par=4), lambda i: y.write(x[i] * 2.0 + y[i], i))
"""

from repro.spatial.builder import Program
from repro.spatial.ir import LoopKind, LoopRecord, MemAccess, OpKind, OpRecord
from repro.spatial.loops import Foreach, Range, Reduce, Sequential
from repro.spatial.memories import LUT, Reg, SRAM
from repro.spatial.interpreter import PrecisionPolicy
from repro.spatial.analysis import LoopNestInfo, analyze
from repro.spatial.pretty import format_program

__all__ = [
    "Program",
    "Range",
    "Foreach",
    "Reduce",
    "Sequential",
    "SRAM",
    "Reg",
    "LUT",
    "PrecisionPolicy",
    "LoopKind",
    "LoopRecord",
    "MemAccess",
    "OpKind",
    "OpRecord",
    "LoopNestInfo",
    "analyze",
    "format_program",
]
