"""The :class:`Program` container: memories + main body + engines.

A program is built once (declaring memories and registering a ``main``
callable) and can then be traced (:meth:`Program.trace`) or executed
(:meth:`Program.run`) any number of times with different data bindings and
precision policies.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import DSLError
from repro.precision.formats import FloatFormat
from repro.spatial.context import pop_engine, push_engine
from repro.spatial.interpreter import Executor, PrecisionPolicy
from repro.spatial.ir import LoopRecord
from repro.spatial.memories import LUT, Reg, SRAM, _MemorySet
from repro.spatial.tracer import Tracer

__all__ = ["Program"]


class Program:
    """A Spatial-like application: explicit memories + a loop-nest body."""

    def __init__(self, name: str):
        self.name = name
        self.memories = _MemorySet()
        self.data: dict[str, np.ndarray] = {}
        self._main: Callable[[], None] | None = None
        self._trace_cache: LoopRecord | None = None

    # -- declaration ------------------------------------------------------

    def sram(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: FloatFormat | None = None,
        banks: int = 16,
    ) -> SRAM:
        """Declare an on-chip scratchpad."""
        mem = SRAM(name=name, shape=tuple(shape), dtype=dtype, banks=banks)
        self.memories.add(mem)
        return mem

    def reg(self, name: str, dtype: FloatFormat | None = None, init: float = 0.0) -> Reg:
        """Declare a scalar register."""
        mem = Reg(name=name, dtype=dtype, init=init)
        self.memories.add(mem)
        return mem

    def lut(
        self,
        name: str,
        fn: Callable[[np.ndarray], np.ndarray],
        lo: float = -8.0,
        hi: float = 8.0,
        entries: int = 2048,
        dtype: FloatFormat | None = None,
    ) -> LUT:
        """Declare a non-linear function lookup table."""
        mem = LUT(name=name, fn=fn, lo=lo, hi=hi, entries=entries, dtype=dtype)
        self.memories.add(mem)
        return mem

    def main(self, fn: Callable[[], None]) -> Callable[[], None]:
        """Decorator registering the program body."""
        if self._main is not None:
            raise DSLError(f"program {self.name!r} already has a main body")
        self._main = fn
        self._trace_cache = None
        return fn

    def set_data(self, name: str, array) -> None:
        """Bind initial contents for a declared memory."""
        if name not in self.memories.all_names():
            raise DSLError(f"no memory named {name!r} in program {self.name!r}")
        self.data[name] = np.asarray(array, dtype=np.float64)

    # -- engines ----------------------------------------------------------

    def trace(self) -> LoopRecord:
        """Symbolically execute once; returns the loop-record tree (cached)."""
        if self._main is None:
            raise DSLError(f"program {self.name!r} has no main body")
        if self._trace_cache is None:
            tracer = Tracer()
            push_engine(tracer)
            try:
                self._main()
            finally:
                pop_engine(tracer)
            self._trace_cache = tracer.root
        return self._trace_cache

    def run(
        self,
        policy: PrecisionPolicy | None = None,
        data: dict[str, np.ndarray] | None = None,
    ) -> Executor:
        """Execute functionally; returns the executor holding final state.

        Args:
            policy: Mixed-precision rounding policy (default: exact).
            data: Per-run overrides/additions to the bound memory contents.
        """
        if self._main is None:
            raise DSLError(f"program {self.name!r} has no main body")
        bound = dict(self.data)
        if data:
            for name, arr in data.items():
                if name not in self.memories.all_names():
                    raise DSLError(f"no memory named {name!r} in program {self.name!r}")
                bound[name] = np.asarray(arr, dtype=np.float64)
        executor = Executor(self.memories, bound, policy)
        push_engine(executor)
        try:
            self._main()
            executor._commit()  # flush writes issued outside any loop
        finally:
            pop_engine(executor)
        return executor
