"""Functional execution of DSL programs, with mixed-precision rounding.

The executor evaluates loop bodies *vectorized*: entering a ``Foreach`` or
``Reduce`` does not iterate in Python — it binds the loop counter to a
numpy array carrying a fresh broadcast axis, evaluates the body once, and
reduces/commits along that axis.  An H=2048 LSTM step therefore costs a
handful of numpy kernels instead of millions of Python operations, per the
ml-systems guidance of replacing nested loops with vectorized idioms.

Only ``Sequential.Foreach`` iterates in Python, because its iterations
are truly ordered (the RNN time-step loop).

Mixed precision: a :class:`PrecisionPolicy` quantizes the result of every
operation category onto its hardware format — multiplies to fp8/fp16,
first reduction stage to fp16, accumulation to fp32 — reproducing the
paper's "mix f8+16+32" datapath numerically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import DSLBoundsError, DSLError, InterpreterError
from repro.precision.formats import FloatFormat
from repro.precision.quantize import quantize
from repro.spatial.context import Engine
from repro.spatial.ir import fresh_id
from repro.spatial.loops import Range
from repro.spatial.memories import LUT, Reg, SRAM
from repro.spatial.values import Value

__all__ = ["PrecisionPolicy", "Executor"]


@dataclass(frozen=True)
class PrecisionPolicy:
    """Which format each operation category rounds into.

    ``None`` anywhere means exact float64 (no rounding).  The defaults
    model the paper's Plasticine datapath; see Section 5.1: element-wise
    operations in 8-bit, first reduction stage in 16-bit, remaining
    reduction and accumulation in 32-bit.
    """

    mul: FloatFormat | None = None
    ew: FloatFormat | None = None
    reduce_stage1: FloatFormat | None = None
    accum: FloatFormat | None = None
    lut_out: FloatFormat | None = None
    quantize_storage: bool = True

    def round(self, x: np.ndarray, fmt: FloatFormat | None) -> np.ndarray:
        if fmt is None:
            return x
        return quantize(x, fmt)

    @classmethod
    def plasticine_mixed(cls) -> "PrecisionPolicy":
        """The paper's f8+16+32 configuration."""
        from repro.precision.formats import FP8, FP16, FP32

        return cls(mul=FP16, ew=FP16, reduce_stage1=FP16, accum=FP32, lut_out=FP16)

    @classmethod
    def exact(cls) -> "PrecisionPolicy":
        return cls(quantize_storage=False)


@dataclass
class _ActiveCounter:
    cid: int
    size: int  # number of iteration values


class Executor(Engine):
    """Vectorized numpy execution engine.

    Not constructed directly — use :meth:`repro.spatial.builder.Program.run`.
    """

    def __init__(
        self,
        memories,
        data: dict[str, np.ndarray],
        policy: PrecisionPolicy | None = None,
    ):
        self.memories = memories
        self.policy = policy or PrecisionPolicy.exact()
        self.state: dict[str, np.ndarray] = {}
        self.reg_state: dict[str, float] = {}
        self._lut_tables: dict[str, np.ndarray] = {}
        self._active: list[_ActiveCounter] = []
        self._pending: list[tuple] = []
        # Counters for traffic accounting (elements moved, not bytes).
        self.read_elems: dict[str, int] = {}
        self.write_elems: dict[str, int] = {}

        for sram in memories.srams.values():
            init = data.get(sram.name)
            if init is None:
                arr = np.zeros(sram.shape, dtype=np.float64)
            else:
                arr = np.asarray(init, dtype=np.float64).copy()
                if arr.shape != sram.shape:
                    raise InterpreterError(
                        f"data for SRAM {sram.name!r} has shape {arr.shape}, "
                        f"declared {sram.shape}"
                    )
                if self.policy.quantize_storage and sram.dtype is not None:
                    arr = quantize(arr, sram.dtype)
            self.state[sram.name] = arr
        for reg in memories.regs.values():
            self.reg_state[reg.name] = float(data.get(reg.name, reg.init))
        for lut in memories.luts.values():
            self._lut_tables[lut.name] = lut.table()

    # -- axis alignment --------------------------------------------------

    def _axis_sizes(self) -> dict[int, int]:
        return {c.cid: c.size for c in self._active}

    def _align(self, *vals: Value) -> tuple[tuple[int, ...], list]:
        """Broadcast payloads onto the union of the values' axes.

        Axes are ordered by loop nesting (outer first).  Returns the union
        axes and the reshaped payloads.
        """
        order = [c.cid for c in self._active]
        union = [cid for cid in order if any(cid in v.axes for v in vals)]
        for v in vals:
            for cid in v.axes:
                if cid not in order:
                    raise InterpreterError(
                        "value escaped its loop scope (axis no longer active)"
                    )
        sizes = self._axis_sizes()
        shaped = []
        for v in vals:
            payload = v.payload
            if not union:
                shaped.append(payload)
                continue
            arr = np.asarray(payload)
            shape = tuple(sizes[cid] if cid in v.axes else 1 for cid in union)
            if arr.ndim == 0:
                shaped.append(arr.reshape((1,) * len(union)))
            else:
                shaped.append(arr.reshape(shape))
        return tuple(union), shaped

    # -- Engine interface --------------------------------------------------

    def binop(self, kind: str, a: Value, b: Value) -> Value:
        axes, (pa, pb) = self._align(a, b)
        if kind == "add":
            out = np.add(pa, pb)
            fmt = self.policy.ew
        elif kind == "sub":
            out = np.subtract(pa, pb)
            fmt = self.policy.ew
        elif kind == "mul":
            out = np.multiply(pa, pb)
            fmt = self.policy.mul
        elif kind == "div":
            out = np.divide(pa, pb)
            fmt = self.policy.ew
        elif kind == "max":
            out = np.maximum(pa, pb)
            fmt = None
        elif kind == "min":
            out = np.minimum(pa, pb)
            fmt = None
        else:
            raise InterpreterError(f"unknown binop {kind!r}")
        return Value(self.policy.round(out, fmt), axes)

    def unop(self, kind: str, a: Value) -> Value:
        if kind == "neg":
            return Value(np.negative(a.payload), a.axes)
        raise InterpreterError(f"unknown unop {kind!r}")

    def read(self, mem, idxs: tuple) -> Value:
        if isinstance(mem, Reg):
            return Value(np.float64(self.reg_state[mem.name]), ())
        axes, shaped = self._align(*idxs)
        arrays = self._check_indices(mem, shaped)
        data = self.state[mem.name]
        if len(arrays) > 1:
            arrays = np.broadcast_arrays(*arrays)
            out = data[tuple(arrays)]
        else:
            out = data[arrays[0]]
        # Traffic accounting counts one access per active iteration context
        # (every unrolled lane re-reads loop-invariant operands), matching
        # the tracer's static counts.
        n = 1
        for c in self._active:
            n *= c.size
        self.read_elems[mem.name] = self.read_elems.get(mem.name, 0) + n
        return Value(out, axes)

    def _check_indices(self, mem: SRAM, shaped: list) -> list:
        arrays = []
        for dim, (payload, extent) in enumerate(zip(shaped, mem.shape)):
            arr = np.asarray(payload)
            if not np.issubdtype(arr.dtype, np.integer):
                if not np.all(arr == np.round(arr)):
                    raise DSLError(f"non-integer index into SRAM {mem.name!r} (dim {dim})")
                arr = arr.astype(np.int64)
            if arr.size and (int(arr.min()) < 0 or int(arr.max()) >= extent):
                raise DSLBoundsError(
                    f"index into SRAM {mem.name!r} dim {dim} out of bounds "
                    f"[{int(arr.min())}, {int(arr.max())}] vs extent {extent}"
                )
            arrays.append(arr)
        return arrays

    def write(self, mem, value: Value, idxs: tuple) -> None:
        if isinstance(mem, Reg):
            if value.axes:
                raise DSLError(f"Reg {mem.name!r} written with a loop-varying value")
            self.reg_state[mem.name] = float(value.payload)
            return
        everything = (*idxs, value)
        axes, shaped = self._align(*everything)
        idx_arrays = self._check_indices(mem, shaped[:-1])
        val_arr = np.asarray(shaped[-1], dtype=np.float64)
        n = 1
        for c in self._active:
            n *= c.size
        self._pending.append((mem, idx_arrays, val_arr, n))

    def _commit(self) -> None:
        for mem, idx_arrays, val_arr, n in self._pending:
            data = self.state[mem.name]
            if self.policy.quantize_storage and mem.dtype is not None:
                val_arr = quantize(val_arr, mem.dtype)
            if len(idx_arrays) > 1:
                arrays = np.broadcast_arrays(*idx_arrays)
                data[tuple(arrays)] = np.broadcast_to(val_arr, arrays[0].shape)
            else:
                arr = idx_arrays[0]
                data[arr] = np.broadcast_to(val_arr, np.shape(arr)) if np.ndim(arr) else val_arr
            self.write_elems[mem.name] = self.write_elems.get(mem.name, 0) + n
        self._pending.clear()

    def lut_lookup(self, lut: LUT, x: Value) -> Value:
        table = self._lut_tables[lut.name]
        xv = np.asarray(x.payload, dtype=np.float64)
        pos = np.clip(np.round((xv - lut.lo) / lut.step_size), 0, lut.entries - 1)
        out = table[pos.astype(np.int64)]
        return Value(self.policy.round(out, self.policy.lut_out), x.axes)

    def foreach(self, rng: Range, body: Callable, *, sequential: bool, label: str) -> None:
        if sequential:
            for v in range(0, rng.extent, rng.step):
                body(Value(np.int64(v), ()))
                self._commit()
            return
        cid = fresh_id()
        values = np.arange(0, rng.extent, rng.step, dtype=np.int64)
        self._active.append(_ActiveCounter(cid, values.size))
        try:
            body(Value(values, (cid,)))
        finally:
            self._active.pop()
        self._commit()

    def reduce(self, rng: Range, map_fn: Callable, *, label: str) -> Value:
        cid = fresh_id()
        values = np.arange(0, rng.extent, rng.step, dtype=np.int64)
        self._active.append(_ActiveCounter(cid, values.size))
        try:
            mapped = map_fn(Value(values, (cid,)))
            if cid not in mapped.axes:
                # Loop-invariant map body: the reduction sums N copies.
                mapped = Value(
                    np.broadcast_to(
                        np.expand_dims(np.asarray(mapped.payload), -1),
                        (*np.shape(np.asarray(mapped.payload)), values.size),
                    ),
                    (*mapped.axes, cid),
                )
            axes, (arr,) = self._align(mapped)
        finally:
            self._active.pop()
        axis = axes.index(cid)
        out = self._tree_reduce(np.asarray(arr, dtype=np.float64), axis)
        out_axes = tuple(a for a in axes if a != cid)
        return Value(out, out_axes)

    def _tree_reduce(self, arr: np.ndarray, axis: int) -> np.ndarray:
        """Pairwise add-tree along ``axis`` with the hardware's precisions.

        The first tree level rounds to ``reduce_stage1`` (16-bit on the
        modified PCU), every later level and the final value round to
        ``accum`` (32-bit).
        """
        arr = np.moveaxis(arr, axis, -1)
        first = True
        while arr.shape[-1] > 1:
            n = arr.shape[-1]
            half = n // 2
            folded = arr[..., :half] + arr[..., half : 2 * half]
            fmt = self.policy.reduce_stage1 if first else self.policy.accum
            folded = self.policy.round(folded, fmt)
            if n % 2:
                folded = np.concatenate([folded, arr[..., -1:]], axis=-1)
            arr = folded
            first = False
        return self.policy.round(arr[..., 0], self.policy.accum)
