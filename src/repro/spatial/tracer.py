"""Symbolic execution: builds the trace IR consumed by the mapper.

The tracer runs each loop body exactly once with a symbolic counter and
records a :class:`~repro.spatial.ir.LoopRecord` tree: loop kinds, extents,
steps, par factors, the operation mix of each body, and which counters
index each memory access.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import DSLError
from repro.spatial.context import Engine
from repro.spatial.ir import (
    LoopKind,
    LoopRecord,
    MemAccess,
    OpKind,
    OpRecord,
    Sym,
    fresh_id,
)
from repro.spatial.loops import Range
from repro.spatial.memories import LUT, Reg
from repro.spatial.values import Value

__all__ = ["Tracer"]

_BINOP_KINDS = {
    "add": OpKind.ADD,
    "sub": OpKind.SUB,
    "mul": OpKind.MUL,
    "div": OpKind.DIV,
    "max": OpKind.MAX,
    "min": OpKind.MIN,
}


class Tracer(Engine):
    """Records the loop-nest structure of a program."""

    def __init__(self) -> None:
        self.root = LoopRecord(
            loop_id=fresh_id(),
            kind=LoopKind.SEQUENTIAL,
            extent=1,
            step=1,
            par=1,
            depth=0,
            label="<root>",
        )
        self._stack: list[LoopRecord] = [self.root]

    # -- helpers ---------------------------------------------------------

    @property
    def _cur(self) -> LoopRecord:
        return self._stack[-1]

    def _union_axes(self, *vals: Value) -> tuple[int, ...]:
        seen: list[int] = []
        for v in vals:
            for a in v.axes:
                if a not in seen:
                    seen.append(a)
        return tuple(seen)

    def _record_op(self, kind: OpKind, detail: str = "") -> None:
        self._cur.ops.append(OpRecord(kind=kind, loop_id=self._cur.loop_id, detail=detail))

    def _enter(self, kind: LoopKind, rng: Range, label: str) -> LoopRecord:
        rec = LoopRecord(
            loop_id=fresh_id(),
            kind=kind,
            extent=rng.extent,
            step=rng.step,
            par=rng.par,
            depth=self._cur.depth + 1,
            parent=self._cur,
            label=label,
        )
        self._cur.children.append(rec)
        self._stack.append(rec)
        return rec

    def _exit(self, rec: LoopRecord) -> None:
        if self._stack[-1] is not rec:
            raise DSLError("tracer loop stack corrupted")
        self._stack.pop()

    # -- Engine interface --------------------------------------------------

    def binop(self, kind: str, a: Value, b: Value) -> Value:
        self._record_op(_BINOP_KINDS[kind])
        axes = self._union_axes(a, b)
        return Value(Sym(f"{kind}#{fresh_id()}", axes), axes)

    def unop(self, kind: str, a: Value) -> Value:
        self._record_op(OpKind.NEG)
        return Value(Sym(f"{kind}#{fresh_id()}", a.axes), a.axes)

    def read(self, mem, idxs: tuple) -> Value:
        if isinstance(mem, Reg):
            return Value(Sym(f"{mem.name}#{fresh_id()}", ()), ())
        axes = self._union_axes(*idxs) if idxs else ()
        self._cur.accesses.append(
            MemAccess(
                mem_name=mem.name,
                is_write=False,
                counters=axes,
                loop_id=self._cur.loop_id,
            )
        )
        return Value(Sym(f"{mem.name}#{fresh_id()}", axes), axes)

    def write(self, mem, value: Value, idxs: tuple) -> None:
        if isinstance(mem, Reg):
            return
        axes = self._union_axes(value, *idxs)
        self._cur.accesses.append(
            MemAccess(
                mem_name=mem.name,
                is_write=True,
                counters=axes,
                loop_id=self._cur.loop_id,
            )
        )

    def lut_lookup(self, lut: LUT, x: Value) -> Value:
        self._record_op(OpKind.LUT, detail=lut.name)
        self._cur.accesses.append(
            MemAccess(
                mem_name=lut.name,
                is_write=False,
                counters=x.axes,
                loop_id=self._cur.loop_id,
            )
        )
        return Value(Sym(f"{lut.name}#{fresh_id()}", x.axes), x.axes)

    def foreach(self, rng: Range, body: Callable, *, sequential: bool, label: str) -> None:
        kind = LoopKind.SEQUENTIAL if sequential else LoopKind.FOREACH
        rec = self._enter(kind, rng, label)
        try:
            body(Value(Sym(f"i{rec.loop_id}", (rec.loop_id,)), (rec.loop_id,)))
        finally:
            self._exit(rec)

    def reduce(self, rng: Range, map_fn: Callable, *, label: str) -> Value:
        rec = self._enter(LoopKind.REDUCE, rng, label)
        try:
            mapped = map_fn(Value(Sym(f"i{rec.loop_id}", (rec.loop_id,)), (rec.loop_id,)))
        finally:
            self._exit(rec)
        out_axes = tuple(a for a in mapped.axes if a != rec.loop_id)
        return Value(Sym(f"red#{rec.loop_id}", out_axes), out_axes)
