"""Loop-nest analysis over the trace IR.

Computes, for each loop in a traced program: total trip counts, issue
counts after unrolling, operation totals by category, and per-memory
traffic — the quantities the mapper, the footprint analysis (Figures 1-3)
and the utilization analysis need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.spatial.ir import LoopKind, LoopRecord, OpKind

__all__ = ["LoopNestInfo", "analyze"]


@dataclass(frozen=True)
class LoopNestInfo:
    """Aggregate statistics of one traced program."""

    root: LoopRecord
    total_ops: dict[OpKind, int]
    mem_reads: dict[str, int]
    mem_writes: dict[str, int]
    max_depth: int

    @property
    def macs(self) -> int:
        """Multiply-accumulate count ~ min(muls, adds) is wrong for RNNs;
        we follow the paper and count every mul in a reduction as one MAC."""
        return self.total_ops.get(OpKind.MUL, 0)

    @property
    def flops(self) -> int:
        """Total floating-point operations (adds + muls + others + LUTs)."""
        return sum(self.total_ops.values())

    def reads_of(self, mem_name: str) -> int:
        return self.mem_reads.get(mem_name, 0)

    def writes_of(self, mem_name: str) -> int:
        return self.mem_writes.get(mem_name, 0)


def _repeat_factor(rec: LoopRecord) -> int:
    """How many times a single evaluation of ``rec``'s body executes,
    accounting for every enclosing loop's iteration count."""
    factor = 1
    node: LoopRecord | None = rec
    while node is not None:
        factor *= node.iterations
        node = node.parent
    return factor


def _reduction_adds(rec: LoopRecord) -> int:
    """Adds contributed by a Reduce construct's combine tree.

    A reduction of N mapped values performs N-1 combining adds regardless
    of tree shape.
    """
    if rec.kind is not LoopKind.REDUCE:
        return 0
    n = rec.iterations
    parent_factor = _repeat_factor(rec.parent) if rec.parent else 1
    return max(n - 1, 0) * parent_factor


def analyze(root: LoopRecord) -> LoopNestInfo:
    """Aggregate op and traffic totals over a trace tree."""
    total_ops: dict[OpKind, int] = {}
    mem_reads: dict[str, int] = {}
    mem_writes: dict[str, int] = {}
    max_depth = 0

    for rec in root.walk():
        max_depth = max(max_depth, rec.depth)
        factor = _repeat_factor(rec)
        for op in rec.ops:
            total_ops[op.kind] = total_ops.get(op.kind, 0) + factor
        tree_adds = _reduction_adds(rec)
        if tree_adds:
            total_ops[OpKind.ADD] = total_ops.get(OpKind.ADD, 0) + tree_adds
        for acc in rec.accesses:
            table = mem_writes if acc.is_write else mem_reads
            table[acc.mem_name] = table.get(acc.mem_name, 0) + factor

    return LoopNestInfo(
        root=root,
        total_ops=total_ops,
        mem_reads=mem_reads,
        mem_writes=mem_writes,
        max_depth=max_depth,
    )
