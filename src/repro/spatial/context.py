"""Engine context stack shared by the DSL constructs.

Loop constructs and memory handles are engine-agnostic: at runtime they
dispatch to whichever :class:`Engine` is active — the tracer when building
IR, the executor when computing values.  The active engine is kept on a
small stack so programs can be nested (e.g. tracing inside a test that is
itself running a program).
"""

from __future__ import annotations

import abc
from typing import Any, Callable

from repro.errors import DSLError

_ENGINES: list["Engine"] = []


def push_engine(engine: "Engine") -> None:
    _ENGINES.append(engine)


def pop_engine(engine: "Engine") -> None:
    if not _ENGINES or _ENGINES[-1] is not engine:
        raise DSLError("engine stack corrupted: popping an engine that is not active")
    _ENGINES.pop()


def current_engine() -> "Engine":
    if not _ENGINES:
        raise DSLError(
            "no active engine: DSL constructs may only run inside "
            "Program.trace() or Program.run()"
        )
    return _ENGINES[-1]


class Engine(abc.ABC):
    """Interface both the tracer and the executor implement."""

    @abc.abstractmethod
    def binop(self, kind: str, a: Any, b: Any) -> Any:
        """Apply a binary scalar op to two DSL values."""

    @abc.abstractmethod
    def unop(self, kind: str, a: Any) -> Any:
        """Apply a unary scalar op to a DSL value."""

    @abc.abstractmethod
    def read(self, mem: Any, idxs: tuple) -> Any:
        """Read ``mem`` at the given index values."""

    @abc.abstractmethod
    def write(self, mem: Any, value: Any, idxs: tuple) -> None:
        """Write ``value`` to ``mem`` at the given index values."""

    @abc.abstractmethod
    def lut_lookup(self, lut: Any, x: Any) -> Any:
        """Apply a lookup-table non-linear function."""

    @abc.abstractmethod
    def foreach(self, rng: Any, body: Callable, *, sequential: bool, label: str) -> None:
        """Run a Foreach loop."""

    @abc.abstractmethod
    def reduce(self, rng: Any, map_fn: Callable, *, label: str) -> Any:
        """Run a map-reduce loop and return the reduced value."""
