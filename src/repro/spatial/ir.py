"""Trace IR: the records produced by symbolically executing a program.

The tracer runs every loop body exactly once with symbolic indices and
collects a :class:`LoopRecord` tree.  Each record knows its extent, step,
and par factor, the operations executed per body evaluation, and the
memory accesses with the counters that index them — everything the mapper
and the analysis passes need, without keeping Python closures around.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class LoopKind(enum.Enum):
    """How a loop's iterations may overlap in hardware."""

    FOREACH = "foreach"  # pipelineable across iterations
    REDUCE = "reduce"  # pipelineable, produces a scalar via a tree
    SEQUENTIAL = "sequential"  # iteration i+1 starts after i drains


class OpKind(enum.Enum):
    """Scalar operation categories tracked per loop body."""

    MUL = "mul"
    ADD = "add"
    SUB = "sub"
    DIV = "div"
    MAX = "max"
    MIN = "min"
    NEG = "neg"
    LUT = "lut"  # non-linear function lookup
    CMP = "cmp"


_ids = itertools.count()


def fresh_id() -> int:
    """Monotonically increasing id shared by all trace entities."""
    return next(_ids)


@dataclass(frozen=True)
class Sym:
    """A symbolic scalar produced during tracing.

    ``axes`` lists the ids of the loop counters the value varies over —
    the symbolic analogue of the executor's broadcast axes.
    """

    name: str
    axes: tuple[int, ...] = ()


@dataclass
class OpRecord:
    """One scalar operation inside a loop body."""

    kind: OpKind
    loop_id: int
    detail: str = ""


@dataclass
class MemAccess:
    """One read or write of a memory inside a loop body.

    Attributes:
        mem_name: Name of the SRAM/Reg/LUT accessed.
        is_write: Write vs read.
        counters: Ids of loop counters appearing in the index expression;
            empty means a loop-invariant (scalar) access.
        loop_id: The innermost loop containing the access.
    """

    mem_name: str
    is_write: bool
    counters: tuple[int, ...]
    loop_id: int


@dataclass
class LoopRecord:
    """One loop construct in the trace tree."""

    loop_id: int
    kind: LoopKind
    extent: int
    step: int
    par: int
    depth: int
    parent: "LoopRecord | None" = None
    children: list["LoopRecord"] = field(default_factory=list)
    ops: list[OpRecord] = field(default_factory=list)
    accesses: list[MemAccess] = field(default_factory=list)
    label: str = ""

    @property
    def iterations(self) -> int:
        """Number of iterator values (``ceil(extent / step)``)."""
        return -(-self.extent // self.step)

    @property
    def issue_count(self) -> int:
        """Iterations issued after unrolling by ``par``."""
        return -(-self.iterations // self.par)

    def walk(self):
        """Yield this record and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def op_count(self, kind: OpKind | None = None) -> int:
        """Ops of ``kind`` (or all) per single evaluation of this body."""
        if kind is None:
            return len(self.ops)
        return sum(1 for op in self.ops if op.kind is kind)

    def find(self, label: str) -> "LoopRecord | None":
        """First descendant (or self) with the given label."""
        for rec in self.walk():
            if rec.label == label:
                return rec
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LoopRecord({self.kind.value}, extent={self.extent}, "
            f"step={self.step}, par={self.par}, depth={self.depth}, "
            f"children={len(self.children)}, ops={len(self.ops)})"
        )
