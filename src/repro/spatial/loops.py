"""Loop constructs: ``Range``, ``Foreach``, ``Reduce``, ``Sequential``.

These mirror the Spatial constructs in the paper's Figure 5:

.. code-block:: scala

    Sequential.Foreach (nSteps by 1){ step => ... }
    Foreach(H par hu){ ih => ... }
    Reduce(Reg[T])((D+H) by rv par ru){ iu => ... }{ (a,b) => a + b }

In this embedding::

    Sequential.Foreach(Range(n_steps), lambda step: ...)
    Foreach(Range(H, par=hu), lambda ih: ...)
    Reduce(Range(D + H, step=rv, par=ru), lambda iu: ...)

``step`` is the blocking size ("by"), ``par`` the unrolling factor.  The
reduction function is fixed to addition with a hardware reduction tree —
the only reduction the paper's RNN kernels use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import DSLError
from repro.spatial.context import current_engine
from repro.spatial.values import Value

__all__ = ["Range", "Foreach", "Reduce", "Sequential"]


@dataclass(frozen=True)
class Range:
    """An iteration domain ``0 until extent by step par par``."""

    extent: int
    step: int = 1
    par: int = 1

    def __post_init__(self) -> None:
        if self.extent <= 0:
            raise DSLError(f"Range extent must be positive, got {self.extent}")
        if self.step <= 0:
            raise DSLError(f"Range step must be positive, got {self.step}")
        if self.par <= 0:
            raise DSLError(f"Range par must be positive, got {self.par}")

    @property
    def iterations(self) -> int:
        """Number of iterator values, ``ceil(extent / step)``."""
        return -(-self.extent // self.step)

    @property
    def issue_count(self) -> int:
        """Iteration groups after unrolling by ``par``."""
        return -(-self.iterations // self.par)


def Foreach(rng: Range, body: Callable[[Value], None], *, label: str = "") -> None:
    """A data-parallel loop; iterations may be pipelined and unrolled."""
    current_engine().foreach(rng, body, sequential=False, label=label)


def Reduce(rng: Range, map_fn: Callable[[Value], Value], *, label: str = "") -> Value:
    """Map-reduce with an add-tree; returns the accumulated scalar."""
    return current_engine().reduce(rng, map_fn, label=label)


class Sequential:
    """Namespace matching Spatial's ``Sequential.Foreach``."""

    @staticmethod
    def Foreach(rng: Range, body: Callable[[Value], None], *, label: str = "") -> None:
        """A loop whose iterations must fully drain before the next starts.

        Used for the RNN time-step loop: the ``h_t`` feedback makes
        cross-timestep pipelining illegal.
        """
        if rng.par != 1:
            raise DSLError("Sequential.Foreach cannot be parallelized (par must be 1)")
        current_engine().foreach(rng, body, sequential=True, label=label)
