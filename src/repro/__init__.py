"""repro — reproduction of *Serving Recurrent Neural Networks Efficiently
with a Spatial Accelerator* (Zhao, Zhang, Olukotun; SysML 2019).

The package is organized bottom-up:

* :mod:`repro.precision` — fp8/fp16/fp32 and blocked floating point.
* :mod:`repro.spatial` — the Spatial-like loop/memory DSL and interpreter.
* :mod:`repro.plasticine` — the CGRA machine model and cycle simulator.
* :mod:`repro.mapping` — lowering DSL programs onto the chip.
* :mod:`repro.rnn` — LSTM/GRU reference and loop-based implementations.
* :mod:`repro.baselines` — CPU / GPU / Brainwave serving-platform models.
* :mod:`repro.dse` — design-space exploration over (hu, ru, rv, hv).
* :mod:`repro.workloads` — the DeepBench task suite.
* :mod:`repro.serving` — the pluggable serving engine: platform
  registry, compile-once sessions, multi-tenant traffic generation,
  pluggable schedulers, dynamic batching, and autoscaled fleets.
* :mod:`repro.analysis` — fragmentation / footprint / utilization studies.
* :mod:`repro.harness` — regenerates every table and figure of the paper.

Quickstart::

    from repro import ServingEngine
    from repro.workloads import deepbench

    task = deepbench.task("lstm", hidden=1024, timesteps=25)
    engine = ServingEngine("plasticine")
    result = engine.serve(task).result      # compile once ...
    result = engine.serve(task).result      # ... serve many (cache hit)
    print(result.latency_ms, result.effective_tflops)
"""

from __future__ import annotations

__version__ = "1.2.0"

_API_NAMES = (
    "ServingResult",
    "serve_on_plasticine",
    "serve_on_brainwave",
    "serve_on_cpu",
    "serve_on_gpu",
)

_SERVING_NAMES = (
    "ServingEngine",
    "ServeRequest",
    "ServeResponse",
    "StreamReport",
    "Fleet",
    "Platform",
    "PreparedModel",
    "register_platform",
    "get_platform",
    "available_platforms",
    "poisson_arrivals",
    "uniform_arrivals",
    "mmpp_arrivals",
    "diurnal_arrivals",
    "mix",
    "record_trace",
    "replay_trace",
    "Scheduler",
    "register_scheduler",
    "get_scheduler",
    "available_schedulers",
    "Batcher",
    "register_batcher",
    "get_batcher",
    "available_batchers",
    "Autoscaler",
    "ScaleEvent",
)

__all__ = ["__version__", *_API_NAMES, *_SERVING_NAMES]


def __getattr__(name: str):
    # Lazy import keeps `import repro.precision` cheap and avoids import
    # cycles while the high-level API lives in repro.api / repro.serving.
    if name in _API_NAMES:
        from repro import api

        return getattr(api, name)
    if name in _SERVING_NAMES:
        from repro import serving

        return getattr(serving, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
