"""Seeded fault injection for the serving event loop.

The paper's latency tables — and this repo's replications of them — are
measured on a perfect machine.  A :class:`FaultPolicy` lets the same
discrete-event loop replay the same seeded stream on an *unreliable*
fleet: replicas crash and recover mid-stream (recovery re-pays the
compile-cache warmup through the fleet's replica factory), service
times are straggler-inflated from a heavy-tail distribution, and
higher-priority arrivals may preempt in-flight batches.  Per-request
timeouts, bounded retries, and hedged duplicates are loop features that
combine with any policy (including ``"none"``).

Policies register under a string key exactly like schedulers and
batchers do::

    @register_fault_policy("flaky")
    class Flaky(FaultPolicy):
        ...

    engine.serve_stream(arrivals, faults="flaky")

Determinism is the core contract: every decision is a pure function of
``(seed, replica)`` or ``(seed, request_id)``, never of event-processing
order, so a given seed reproduces the same crash/straggler timeline
across runs *and* across ``serve_parallel`` pool sizes.  With
``faults="none"`` (and no timeout/hedge) the fault-aware loop is never
entered and every existing stream stays bit-identical.

Built-in policies:

* ``"none"`` — the perfect machine; the default everywhere.
* ``"crash"`` — per-replica crash/recover cycles with exponential
  inter-crash gaps (``mtbf_s``) and fixed repair time (``mttr_s``).
* ``"straggler"`` — each request independently straggles with
  probability ``prob``; the inflation factor is Pareto-tailed
  (``alpha``), capped at ``max_factor``.
* ``"preempt"`` — a strictly more urgent arrival (per the replica
  scheduler's :meth:`~repro.serving.scheduler.Scheduler.preemption_rank`)
  aborts the in-flight batch, requeueing its members.
* ``"chaos"`` — crashes + stragglers + preemption together.
"""

from __future__ import annotations

import math
import random
from abc import ABC
from typing import Callable, TypeVar

from repro.errors import ServingError
from repro.serving.request import ServeRequest
from repro.serving.result import FaultStats

__all__ = [
    "FaultPolicy",
    "FaultStats",
    "NoFaults",
    "CrashFaults",
    "StragglerFaults",
    "PreemptFaults",
    "ChaosFaults",
    "register_fault_policy",
    "get_fault_policy",
    "available_fault_policies",
    "make_fault_policy",
]

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One SplitMix64 round (same mix as :mod:`repro.serving.parallel`)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _uniform(seed: int, salt: int, key: int) -> float:
    """Deterministic uniform in [0, 1) from ``(seed, salt, key)``.

    Order-free: the value depends only on the inputs, never on how many
    draws preceded it — the property that keeps straggler decisions
    identical across event orders and shard layouts.
    """
    h = _splitmix64(_splitmix64((seed ^ salt) & _MASK64) ^ (key & _MASK64))
    return h / 2.0**64


class FaultPolicy(ABC):
    """Seeded source of injected failures, consulted by the event loop.

    A policy is constructed un-seeded (so it pickles cleanly into
    ``serve_parallel`` shard jobs) and armed once per stream via
    :meth:`reset`.  The three hooks are all optional — the base class is
    a perfect machine — and each must be deterministic in the documented
    inputs:

    * :meth:`next_crash` — per-replica crash timeline.
    * :meth:`straggler_factor` — per-request service-time inflation.
    * :meth:`preempts` — whether an arriving request's urgency rank may
      abort the batch currently executing (class attribute
      :attr:`preemptive` gates the check entirely).

    Example::

        >>> from repro.serving import get_fault_policy
        >>> policy = get_fault_policy("crash", mtbf_s=1.0, mttr_s=0.25)
        >>> policy.reset(7)
        >>> first = policy.next_crash(0, 0.0)
        >>> policy.reset(7)                      # same seed, same timeline
        >>> policy.next_crash(0, 0.0) == first
        True
    """

    #: Registry key; set by :func:`register_fault_policy`.
    name: str = "?"
    #: Whether :meth:`preempts` can ever return True; lets the loop skip
    #: the per-arrival preemption check for non-preemptive policies.
    preemptive: bool = False

    def __init__(self) -> None:
        self._seed: int | None = None

    @property
    def seed(self) -> int:
        if self._seed is None:
            raise ServingError(
                f"fault policy {self.name!r} used before reset(seed)"
            )
        return self._seed

    def reset(self, seed: int) -> None:
        """Arm the policy for one stream; every draw derives from ``seed``."""
        self._seed = int(seed)

    def next_crash(
        self, replica: int, after_s: float
    ) -> tuple[float, float] | None:
        """Next ``(crash_time_s, downtime_s)`` for ``replica`` after ``after_s``.

        Called once at stream start (``after_s=0``) and once after each
        recovery (``after_s`` = the recovery instant); returning ``None``
        means the replica never crashes again.
        """
        return None

    def straggler_factor(self, request: ServeRequest) -> float:
        """Service-time inflation for ``request``'s execution (>= 1.0).

        Must depend only on ``(seed, request.request_id)`` so the same
        request straggles identically whatever replica, shard, or event
        order serves it.
        """
        return 1.0

    def preempts(self, arriving_rank: float, running_rank: float) -> bool:
        """Whether an arrival ranked ``arriving_rank`` aborts a batch whose
        most urgent member ranks ``running_rank`` (larger = more urgent)."""
        return False


_REGISTRY: dict[str, type[FaultPolicy]] = {}

F = TypeVar("F", bound=type[FaultPolicy])


def register_fault_policy(name: str) -> Callable[[F], F]:
    """Class decorator: register a :class:`FaultPolicy` under ``name``.

    Registering a second class under an existing name raises
    :class:`~repro.errors.ServingError`.

    Example::

        >>> from repro.serving import FaultPolicy, register_fault_policy
        >>> from repro.serving.faults import unregister_fault_policy
        >>> @register_fault_policy("cursed")
        ... class Cursed(FaultPolicy):
        ...     def straggler_factor(self, request): return 13.0
        >>> from repro.serving import available_fault_policies
        >>> "cursed" in available_fault_policies()
        True
        >>> unregister_fault_policy("cursed")
    """

    def decorate(cls: F) -> F:
        if not (isinstance(cls, type) and issubclass(cls, FaultPolicy)):
            raise ServingError(
                f"@register_fault_policy({name!r}) needs a FaultPolicy subclass"
            )
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise ServingError(
                f"fault policy {name!r} already registered by {existing.__name__}"
            )
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def unregister_fault_policy(name: str) -> None:
    """Remove a registration (primarily for tests)."""
    _REGISTRY.pop(name, None)


def available_fault_policies() -> tuple[str, ...]:
    """Sorted keys of every registered fault policy.

    Example::

        >>> from repro.serving import available_fault_policies
        >>> [p for p in ("chaos", "crash", "none", "preempt", "straggler")
        ...  if p in available_fault_policies()]
        ['chaos', 'crash', 'none', 'preempt', 'straggler']
    """
    return tuple(sorted(_REGISTRY))


def get_fault_policy(name: str, **options: object) -> FaultPolicy:
    """Instantiate a fresh fault policy registered under ``name``.

    Example::

        >>> from repro.serving import get_fault_policy
        >>> get_fault_policy("straggler", prob=0.1).name
        'straggler'
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ServingError(
            f"unknown fault policy {name!r}; "
            f"registered: {', '.join(sorted(_REGISTRY))}"
        ) from None
    return cls(**options)


def make_fault_policy(
    spec: "str | FaultPolicy | Callable[[], FaultPolicy]",
) -> FaultPolicy:
    """Resolve a fault-policy spec: a registry key, an instance, or a factory.

    Example::

        >>> from repro.serving import make_fault_policy
        >>> make_fault_policy("none").name
        'none'
    """
    if isinstance(spec, FaultPolicy):
        return spec
    if isinstance(spec, str):
        return get_fault_policy(spec)
    if callable(spec):
        policy = spec()
        if not isinstance(policy, FaultPolicy):
            raise ServingError("fault policy factory must return a FaultPolicy")
        return policy
    raise ServingError(f"cannot build a fault policy from {spec!r}")


@register_fault_policy("none")
class NoFaults(FaultPolicy):
    """The perfect machine — injects nothing; the default everywhere.

    Example::

        >>> from repro.serving import get_fault_policy
        >>> policy = get_fault_policy("none")
        >>> policy.reset(0)
        >>> policy.next_crash(0, 0.0) is None
        True
    """


class _CrashTimeline:
    """Shared crash/recover schedule: per-replica seeded exponential gaps."""

    mtbf_s: float
    mttr_s: float

    def _crash_rngs(self) -> dict[int, random.Random]:
        # Lazily (re)built per reset(); one RNG per replica keyed only by
        # (seed, replica), so added replicas and event order cannot shift
        # another replica's timeline.
        rngs = getattr(self, "_rngs", None)
        if rngs is None:
            rngs = self._rngs = {}
        return rngs

    def reset(self, seed: int) -> None:
        FaultPolicy.reset(self, seed)  # type: ignore[arg-type]
        self._rngs = {}

    def next_crash(
        self, replica: int, after_s: float
    ) -> tuple[float, float] | None:
        if self.mtbf_s <= 0 or not math.isfinite(self.mtbf_s):
            return None
        rngs = self._crash_rngs()
        rng = rngs.get(replica)
        if rng is None:
            rng = rngs[replica] = random.Random(
                _splitmix64(self.seed ^ _splitmix64(0xC4A5 + replica))  # type: ignore[attr-defined]
            )
        gap = rng.expovariate(1.0 / self.mtbf_s)
        return (after_s + gap, self.mttr_s)


@register_fault_policy("crash")
class CrashFaults(_CrashTimeline, FaultPolicy):
    """Replicas crash and recover on seeded exponential cycles.

    ``mtbf_s`` is the mean gap between a recovery and the next crash of
    the same replica; ``mttr_s`` is the (fixed) repair time.  A crashed
    replica aborts its in-flight batch (members requeue), stops taking
    work, and — in a fleet — comes back through the replica factory,
    re-paying any cold compile-cache warmup.

    Example::

        >>> from repro.serving import get_fault_policy
        >>> policy = get_fault_policy("crash", mtbf_s=2.0, mttr_s=0.5)
        >>> policy.reset(3)
        >>> crash_s, downtime_s = policy.next_crash(0, 0.0)
        >>> crash_s > 0.0 and downtime_s == 0.5
        True
    """

    def __init__(self, mtbf_s: float = 0.25, mttr_s: float = 0.05) -> None:
        super().__init__()
        if mtbf_s <= 0:
            raise ServingError("mtbf_s must be positive")
        if mttr_s < 0:
            raise ServingError("mttr_s must be >= 0")
        self.mtbf_s = float(mtbf_s)
        self.mttr_s = float(mttr_s)


class _ParetoTail:
    """Shared straggler draw: Pareto-tailed inflation, order-free."""

    prob: float
    alpha: float
    max_factor: float

    def straggler_factor(self, request: ServeRequest) -> float:
        if self.prob <= 0.0:
            return 1.0
        seed = self.seed  # type: ignore[attr-defined]
        if _uniform(seed, 0x57A6, request.request_id) >= self.prob:
            return 1.0
        u = _uniform(seed, 0x7A11, request.request_id)
        # Pareto(x_m=1, alpha): factor = (1-u)^(-1/alpha), capped.
        factor = (1.0 - u) ** (-1.0 / self.alpha)
        return min(factor, self.max_factor)


@register_fault_policy("straggler")
class StragglerFaults(_ParetoTail, FaultPolicy):
    """Heavy-tail service-time inflation, independently per request.

    With probability ``prob`` a request's execution runs
    ``(1-u)^(-1/alpha)`` times slower (Pareto with scale 1, capped at
    ``max_factor``).  The draw hashes ``(seed, request_id)``, so it is
    identical whatever replica or shard serves the request.

    Example::

        >>> from repro.serving import ServeRequest, get_fault_policy
        >>> from repro.workloads.deepbench import task
        >>> policy = get_fault_policy("straggler", prob=1.0, alpha=1.5)
        >>> policy.reset(11)
        >>> req = ServeRequest(task=task("lstm", 512, 25), request_id=4)
        >>> f = policy.straggler_factor(req)
        >>> f >= 1.0 and f == policy.straggler_factor(req)
        True
    """

    def __init__(
        self,
        prob: float = 0.05,
        alpha: float = 1.5,
        max_factor: float = 20.0,
    ) -> None:
        super().__init__()
        if not 0.0 <= prob <= 1.0:
            raise ServingError("straggler prob must be in [0, 1]")
        if alpha <= 0:
            raise ServingError("straggler alpha must be positive")
        if max_factor < 1.0:
            raise ServingError("straggler max_factor must be >= 1")
        self.prob = float(prob)
        self.alpha = float(alpha)
        self.max_factor = float(max_factor)


@register_fault_policy("preempt")
class PreemptFaults(FaultPolicy):
    """Strictly more urgent arrivals abort the in-flight batch.

    Urgency comes from the replica scheduler's ``preemption_rank``
    (priority class by default, deadline under EDF); the aborted batch's
    members requeue and are re-served under the normal discipline.

    Example::

        >>> from repro.serving import get_fault_policy
        >>> policy = get_fault_policy("preempt")
        >>> policy.preempts(2.0, 0.0), policy.preempts(1.0, 1.0)
        (True, False)
    """

    preemptive = True

    def preempts(self, arriving_rank: float, running_rank: float) -> bool:
        return arriving_rank > running_rank


@register_fault_policy("chaos")
class ChaosFaults(_CrashTimeline, _ParetoTail, FaultPolicy):
    """Crashes, stragglers, and preemption together — the chaos drill.

    Example::

        >>> from repro.serving import get_fault_policy
        >>> policy = get_fault_policy("chaos", mtbf_s=1.0)
        >>> policy.reset(5)
        >>> policy.next_crash(1, 0.0) is not None
        True
    """

    preemptive = True

    def __init__(
        self,
        mtbf_s: float = 0.25,
        mttr_s: float = 0.05,
        prob: float = 0.05,
        alpha: float = 1.5,
        max_factor: float = 20.0,
    ) -> None:
        super().__init__()
        if mtbf_s <= 0:
            raise ServingError("mtbf_s must be positive")
        if mttr_s < 0:
            raise ServingError("mttr_s must be >= 0")
        if not 0.0 <= prob <= 1.0:
            raise ServingError("straggler prob must be in [0, 1]")
        if alpha <= 0:
            raise ServingError("straggler alpha must be positive")
        if max_factor < 1.0:
            raise ServingError("straggler max_factor must be >= 1")
        self.mtbf_s = float(mtbf_s)
        self.mttr_s = float(mttr_s)
        self.prob = float(prob)
        self.alpha = float(alpha)
        self.max_factor = float(max_factor)

    def preempts(self, arriving_rank: float, running_rank: float) -> bool:
        return arriving_rank > running_rank
