"""Built-in platforms: Plasticine plus the CPU/GPU/Brainwave baselines.

Each class adapts one of the existing performance models to the
prepare/serve split of :class:`~repro.serving.platform.Platform`.  The
numbers are identical to the legacy ``serve_on_*`` functions — the same
code paths run, just partitioned so that everything expensive happens
exactly once per (platform, task) in ``prepare``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.brainwave import BrainwaveServingModel, BrainwaveStepTrace
from repro.baselines.cpu import CPUServingModel
from repro.baselines.gpu import GPUServingModel
# NOTE: repro.dse is imported lazily inside the Plasticine platform's
# prepare path — the DSE layer sits *above* serving (its runner fans
# serving simulations onto worker pools), so a module-level import here
# would be circular.
from repro.mapping.mapper import MappedDesign, map_rnn_program
from repro.plasticine.area_power import ActivityProfile, AreaPowerModel
from repro.plasticine.chip import PlasticineConfig
from repro.plasticine.simulator import SimulationResult, simulate_pipeline
from repro.rnn.lstm_loop import LoopParams
from repro.serving.platform import (
    Platform,
    PreparedModel,
    _check_batch_size,
    register_platform,
)
from repro.serving.result import ServingResult
from repro.workloads.deepbench import RNNTask

__all__ = [
    "PlasticinePlatform",
    "BrainwavePlatform",
    "CPUPlatform",
    "GPUPlatform",
]


@dataclass(frozen=True)
class _CompiledPlasticine:
    """Plasticine compiled state: the mapped design and its simulation."""

    chip: PlasticineConfig
    params: LoopParams
    design: MappedDesign = field(repr=False)
    simulation: SimulationResult = field(repr=False)
    power_w: float


@register_platform("plasticine")
class PlasticinePlatform(Platform):
    """Map the loop-based design and run the cycle-level simulator.

    ``prepare`` runs the whole compile pipeline — parameter selection
    (paper Table 7 or the DSE), program construction, mapping/placement,
    and the cycle simulation — so ``serve`` only assembles the result row.

    The batched cost model is exact rather than a tuned fraction: the
    cycle simulation splits a request into per-step steady-state cycles
    and a one-time pipeline fill, and back-to-back same-task requests
    keep the pipeline full, so a batch of B costs ``fill + B * steady``
    cycles.  The fill is small — which is the paper's point: Plasticine
    hits high utilization at batch 1 and does not need batching the way
    the throughput-oriented baselines do.

    Example::

        >>> from repro.serving import get_platform
        >>> from repro.workloads.deepbench import task
        >>> plat = get_platform("plasticine")
        >>> prepared = plat.prepare(task("lstm", 512, 25))  # full compile
        >>> plat.serve(prepared).latency_ms < 5.0           # paper's window
        True
    """

    #: The mapped cell and its per-step schedule depend only on the cell
    #: shape, never on the sequence length, and total cycles are affine
    #: in the step count — one compile serves every length variant.
    length_flexible = True

    def __init__(
        self,
        chip: PlasticineConfig | None = None,
        *,
        params: LoopParams | None = None,
        bits: int = 8,
        use_dse: bool = False,
    ) -> None:
        self.chip = chip or PlasticineConfig.rnn_serving()
        self.params = params
        self.bits = bits
        self.use_dse = use_dse

    def _resolve_params(self, task: RNNTask) -> LoopParams:
        from repro.dse.tuner import paper_params, tune

        if self.params is not None:
            return self.params
        params = None if self.use_dse else paper_params(task)
        if params is None:
            params = tune(task, self.chip, bits=self.bits).best_params
        return params

    def prepare(self, task: RNNTask) -> PreparedModel:
        from repro.dse.search import build_task_program

        chip = self.chip
        params = self._resolve_params(task)
        prog = build_task_program(task, params)
        design = map_rnn_program(prog, chip, bits=self.bits)
        sim = simulate_pipeline(design.graph)
        power_model = AreaPowerModel()
        activity = ActivityProfile(
            pcu_busy=min(sim.average_busy_units(design.graph, "pcu"), chip.n_pcu),
            pmu_busy=min(sim.average_busy_units(design.graph, "pmu"), chip.n_pmu),
        )
        notes = list(design.resources.notes)
        if not design.resources.fits_capacity:
            notes.append(
                f"weights exceed on-chip capacity "
                f"({design.resources.bytes_used / 2**20:.1f} MB > "
                f"{design.resources.onchip_bytes / 2**20:.1f} MB)"
            )
        if task.layers > 1 or task.decoder_timesteps:
            # Stacked / seq2seq tasks time-multiplex one mapped cell:
            # the design above is a single layer, run once per cell-step.
            # The note stays length-agnostic because this prepared model
            # is shared by every sequence-length variant of the family.
            decoder = (
                f" + a {task.decoder_timesteps}-step decoder leg"
                if task.decoder_timesteps
                else ""
            )
            notes.append(
                f"{task.layers} layer(s){decoder} time-multiplex one "
                f"mapped cell"
            )
        state = _CompiledPlasticine(
            chip=chip,
            params=params,
            design=design,
            simulation=sim,
            power_w=power_model.power_w(chip, activity),
        )
        return PreparedModel(
            platform=self.name, task=task, state=state, notes=tuple(notes)
        )

    def serve(self, prepared: PreparedModel) -> ServingResult:
        self._check_prepared(prepared)
        state: _CompiledPlasticine = prepared.state
        sim = state.simulation
        # total_steps * per-step is sim.total_cycles exactly for the
        # single-layer tasks the simulator ran (the simulated schedule is
        # affine in steps with no constant), and extends it to stacked /
        # seq2seq tasks: every cell-step pays the same simulated cost,
        # with no per-layer re-setup.
        cycles = prepared.task.total_steps * (sim.cycles_per_step + sim.step_overhead)
        latency_s = cycles / (state.chip.clock_ghz * 1e9)
        return ServingResult(
            platform=self.name,
            task=prepared.task,
            latency_s=latency_s,
            effective_tflops=prepared.task.effective_tflops(latency_s),
            power_w=state.power_w,
            cycles_per_step=sim.cycles_per_step + sim.step_overhead,
            design=state.design,
            simulation=sim,
            notes=prepared.notes,
        )

    def request_latency_s(self, prepared: PreparedModel, task: RNNTask) -> float:
        """Affine re-cost for a length variant: the simulated per-step
        schedule is length-invariant, so a request of any ``T`` costs
        exactly ``total_steps`` times the simulated per-step cycles —
        there is no per-launch constant to re-charge (the pipeline fill
        is part of every step; the ``h_t`` feedback serializes steps)."""
        state: _CompiledPlasticine = prepared.state
        sim = state.simulation
        cycles = task.total_steps * (sim.cycles_per_step + sim.step_overhead)
        return cycles / (state.chip.clock_ghz * 1e9)

    def batch_latency_s(
        self,
        prepared: PreparedModel,
        batch_size: int,
        task: RNNTask | None = None,
    ) -> float:
        """Exact pipeline model from the cycle simulation.

        Within one request the ``h_t`` feedback serializes time steps, so
        a step costs its full fill + drain + bottleneck time.  Requests
        in a batch are independent, though: their iterations interleave
        through the pipeline, so each step's fill/drain and sequencing
        overhead is paid once per step while the bottleneck stage (the
        largest per-step busy-cycle count) runs ``B`` requests' worth of
        iterations back to back.  ``task`` is the executed (possibly
        padded or multi-layer) task; its actual cell-step count scales
        the model, and the pipeline setup is part of the per-step
        schedule — never re-charged per layer.  ``batch_size=1``
        reproduces ``serve().latency_s`` exactly.
        """
        self._check_prepared(prepared)
        _check_batch_size(batch_size)
        state: _CompiledPlasticine = prepared.state
        sim = state.simulation
        per_step = sim.cycles_per_step + sim.step_overhead
        bottleneck = max(act.busy_cycles for act in sim.activities.values())
        bottleneck = min(bottleneck, per_step)
        fill = per_step - bottleneck
        steps = (task if task is not None else prepared.task).total_steps
        cycles = steps * (fill + batch_size * bottleneck)
        return cycles / (state.chip.clock_ghz * 1e9)


@dataclass(frozen=True)
class _AnalyticalState:
    """Baseline compiled state: the model plus its precomputed latency."""

    model: object = field(repr=False)
    latency_s: float
    effective_tflops: float
    cycles_per_step: int | None = None


@register_platform("brainwave")
class BrainwavePlatform(Platform):
    """The Brainwave instruction-level model (Section 3.2).

    Brainwave is the paper's throughput-oriented batched baseline: its
    per-step cost is dominated by streaming the weight matrices through
    the MVM units, which a batch shares.  We model that as 70% of the
    batch-1 latency being per-batch setup (weight streaming, instruction
    issue) amortized across the batch.

    Example::

        >>> from repro.serving import get_platform
        >>> from repro.workloads.deepbench import task
        >>> bw = get_platform("brainwave")
        >>> prepared = bw.prepare(task("gru", 2816, 750))
        >>> t1 = bw.batch_latency_s(prepared, 1)
        >>> t8 = bw.batch_latency_s(prepared, 8)
        >>> t1 < t8 < 8 * t1        # batching amortizes weight streaming
        True
    """

    batch_setup_fraction = 0.70
    #: The instruction schedule depends only on the cell shape; latency
    #: is affine in the step count, so one prepared model covers every
    #: sequence-length variant.
    length_flexible = True

    def __init__(self, model: BrainwaveServingModel | None = None) -> None:
        self.model = model or BrainwaveServingModel()

    def request_latency_s(self, prepared: PreparedModel, task: RNNTask) -> float:
        state: _AnalyticalState = prepared.state
        return state.model.latency_seconds(task)

    def prepare(self, task: RNNTask) -> PreparedModel:
        trace: BrainwaveStepTrace = self.model.step_trace(task)
        state = _AnalyticalState(
            model=self.model,
            latency_s=self.model.latency_seconds(task),
            effective_tflops=self.model.effective_tflops(task),
            cycles_per_step=trace.step_cycles,
        )
        notes = (
            f"{trace.mvm_instructions} MVM + {trace.mfu_instructions} MFU instrs/step",
        )
        return PreparedModel(platform=self.name, task=task, state=state, notes=notes)

    def serve(self, prepared: PreparedModel) -> ServingResult:
        self._check_prepared(prepared)
        state: _AnalyticalState = prepared.state
        return ServingResult(
            platform=self.name,
            task=prepared.task,
            latency_s=state.latency_s,
            effective_tflops=state.effective_tflops,
            cycles_per_step=state.cycles_per_step,
            notes=prepared.notes,
        )


class _ProcessorPlatform(Platform):
    """Shared prepare/serve for the CPU and GPU streaming models."""

    model: CPUServingModel | GPUServingModel
    #: Per-step streaming cost depends only on the cell shape; latency
    #: is affine in the step count.
    length_flexible = True

    def request_latency_s(self, prepared: PreparedModel, task: RNNTask) -> float:
        state: _AnalyticalState = prepared.state
        return state.model.latency_seconds(task)

    def prepare(self, task: RNNTask) -> PreparedModel:
        state = _AnalyticalState(
            model=self.model,
            latency_s=self.model.latency_seconds(task),
            effective_tflops=self.model.effective_tflops(task),
        )
        return PreparedModel(platform=self.name, task=task, state=state)

    def serve(self, prepared: PreparedModel) -> ServingResult:
        self._check_prepared(prepared)
        state: _AnalyticalState = prepared.state
        return ServingResult(
            platform=self.name,
            task=prepared.task,
            latency_s=state.latency_s,
            effective_tflops=state.effective_tflops,
        )


@register_platform("cpu")
class CPUPlatform(_ProcessorPlatform):
    """The Xeon Skylake / TensorFlow streaming model.

    Batch-1 RNN inference on a CPU is mostly serial compute, so batching
    amortizes only framework overhead: 20% of the batch-1 latency is
    modelled as per-batch setup.

    Example::

        >>> from repro.serving import get_platform
        >>> from repro.workloads.deepbench import task
        >>> cpu = get_platform("cpu")
        >>> cpu.serve_batched(cpu.prepare(task("lstm", 512, 25)), 4).batch_size
        4
    """

    batch_setup_fraction = 0.20

    def __init__(self, model: CPUServingModel | None = None) -> None:
        self.model = model or CPUServingModel()


@register_platform("gpu")
class GPUPlatform(_ProcessorPlatform):
    """The Tesla V100 / cuDNN streaming model.

    Batch-1 MVMs leave a V100 memory-bound on weight fetch (the paper's
    Section 1 motivation); batching turns them into GEMMs that reuse the
    fetched weights, so most of the batch-1 latency — modelled at 80% —
    is per-batch setup amortized across the batch.

    Example::

        >>> from repro.serving import get_platform
        >>> from repro.workloads.deepbench import task
        >>> gpu = get_platform("gpu")
        >>> prepared = gpu.prepare(task("lstm", 512, 25))
        >>> t1 = gpu.batch_latency_s(prepared, 1)
        >>> round(gpu.batch_latency_s(prepared, 2) / t1, 2)  # 0.8 + 2*0.2
        1.2
    """

    batch_setup_fraction = 0.80

    def __init__(self, model: GPUServingModel | None = None) -> None:
        self.model = model or GPUServingModel()
