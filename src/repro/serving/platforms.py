"""Built-in platforms: Plasticine plus the CPU/GPU/Brainwave baselines.

Each class adapts one of the existing performance models to the
prepare/serve split of :class:`~repro.serving.platform.Platform`.  The
numbers are identical to the legacy ``serve_on_*`` functions — the same
code paths run, just partitioned so that everything expensive happens
exactly once per (platform, task) in ``prepare``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.brainwave import BrainwaveServingModel, BrainwaveStepTrace
from repro.baselines.cpu import CPUServingModel
from repro.baselines.gpu import GPUServingModel
from repro.dse.search import build_task_program
from repro.dse.tuner import paper_params, tune
from repro.mapping.mapper import MappedDesign, map_rnn_program
from repro.plasticine.area_power import ActivityProfile, AreaPowerModel
from repro.plasticine.chip import PlasticineConfig
from repro.plasticine.simulator import SimulationResult, simulate_pipeline
from repro.rnn.lstm_loop import LoopParams
from repro.serving.platform import Platform, PreparedModel, register_platform
from repro.serving.result import ServingResult
from repro.workloads.deepbench import RNNTask

__all__ = [
    "PlasticinePlatform",
    "BrainwavePlatform",
    "CPUPlatform",
    "GPUPlatform",
]


@dataclass(frozen=True)
class _CompiledPlasticine:
    """Plasticine compiled state: the mapped design and its simulation."""

    chip: PlasticineConfig
    params: LoopParams
    design: MappedDesign = field(repr=False)
    simulation: SimulationResult = field(repr=False)
    power_w: float


@register_platform("plasticine")
class PlasticinePlatform(Platform):
    """Map the loop-based design and run the cycle-level simulator.

    ``prepare`` runs the whole compile pipeline — parameter selection
    (paper Table 7 or the DSE), program construction, mapping/placement,
    and the cycle simulation — so ``serve`` only assembles the result row.
    """

    def __init__(
        self,
        chip: PlasticineConfig | None = None,
        *,
        params: LoopParams | None = None,
        bits: int = 8,
        use_dse: bool = False,
    ) -> None:
        self.chip = chip or PlasticineConfig.rnn_serving()
        self.params = params
        self.bits = bits
        self.use_dse = use_dse

    def _resolve_params(self, task: RNNTask) -> LoopParams:
        if self.params is not None:
            return self.params
        params = None if self.use_dse else paper_params(task)
        if params is None:
            params = tune(task, self.chip, bits=self.bits).best_params
        return params

    def prepare(self, task: RNNTask) -> PreparedModel:
        chip = self.chip
        params = self._resolve_params(task)
        prog = build_task_program(task, params)
        design = map_rnn_program(prog, chip, bits=self.bits)
        sim = simulate_pipeline(design.graph)
        power_model = AreaPowerModel()
        activity = ActivityProfile(
            pcu_busy=min(sim.average_busy_units(design.graph, "pcu"), chip.n_pcu),
            pmu_busy=min(sim.average_busy_units(design.graph, "pmu"), chip.n_pmu),
        )
        notes = list(design.resources.notes)
        if not design.resources.fits_capacity:
            notes.append(
                f"weights exceed on-chip capacity "
                f"({design.resources.bytes_used / 2**20:.1f} MB > "
                f"{design.resources.onchip_bytes / 2**20:.1f} MB)"
            )
        state = _CompiledPlasticine(
            chip=chip,
            params=params,
            design=design,
            simulation=sim,
            power_w=power_model.power_w(chip, activity),
        )
        return PreparedModel(
            platform=self.name, task=task, state=state, notes=tuple(notes)
        )

    def serve(self, prepared: PreparedModel) -> ServingResult:
        self._check_prepared(prepared)
        state: _CompiledPlasticine = prepared.state
        sim = state.simulation
        latency_s = sim.total_cycles / (state.chip.clock_ghz * 1e9)
        return ServingResult(
            platform=self.name,
            task=prepared.task,
            latency_s=latency_s,
            effective_tflops=prepared.task.effective_tflops(latency_s),
            power_w=state.power_w,
            cycles_per_step=sim.cycles_per_step + sim.step_overhead,
            design=state.design,
            simulation=sim,
            notes=prepared.notes,
        )


@dataclass(frozen=True)
class _AnalyticalState:
    """Baseline compiled state: the model plus its precomputed latency."""

    model: object = field(repr=False)
    latency_s: float
    effective_tflops: float
    cycles_per_step: int | None = None


@register_platform("brainwave")
class BrainwavePlatform(Platform):
    """The Brainwave instruction-level model (Section 3.2)."""

    def __init__(self, model: BrainwaveServingModel | None = None) -> None:
        self.model = model or BrainwaveServingModel()

    def prepare(self, task: RNNTask) -> PreparedModel:
        trace: BrainwaveStepTrace = self.model.step_trace(task)
        state = _AnalyticalState(
            model=self.model,
            latency_s=self.model.latency_seconds(task),
            effective_tflops=self.model.effective_tflops(task),
            cycles_per_step=trace.step_cycles,
        )
        notes = (
            f"{trace.mvm_instructions} MVM + {trace.mfu_instructions} MFU instrs/step",
        )
        return PreparedModel(platform=self.name, task=task, state=state, notes=notes)

    def serve(self, prepared: PreparedModel) -> ServingResult:
        self._check_prepared(prepared)
        state: _AnalyticalState = prepared.state
        return ServingResult(
            platform=self.name,
            task=prepared.task,
            latency_s=state.latency_s,
            effective_tflops=state.effective_tflops,
            cycles_per_step=state.cycles_per_step,
            notes=prepared.notes,
        )


class _ProcessorPlatform(Platform):
    """Shared prepare/serve for the CPU and GPU streaming models."""

    model: CPUServingModel | GPUServingModel

    def prepare(self, task: RNNTask) -> PreparedModel:
        state = _AnalyticalState(
            model=self.model,
            latency_s=self.model.latency_seconds(task),
            effective_tflops=self.model.effective_tflops(task),
        )
        return PreparedModel(platform=self.name, task=task, state=state)

    def serve(self, prepared: PreparedModel) -> ServingResult:
        self._check_prepared(prepared)
        state: _AnalyticalState = prepared.state
        return ServingResult(
            platform=self.name,
            task=prepared.task,
            latency_s=state.latency_s,
            effective_tflops=state.effective_tflops,
        )


@register_platform("cpu")
class CPUPlatform(_ProcessorPlatform):
    """The Xeon Skylake / TensorFlow streaming model."""

    def __init__(self, model: CPUServingModel | None = None) -> None:
        self.model = model or CPUServingModel()


@register_platform("gpu")
class GPUPlatform(_ProcessorPlatform):
    """The Tesla V100 / cuDNN streaming model."""

    def __init__(self, model: GPUServingModel | None = None) -> None:
        self.model = model or GPUServingModel()
