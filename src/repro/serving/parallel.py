"""Sharded parallel simulation: one event loop per core, merged reports.

A single discrete-event loop tops out near one core's throughput
(~10⁶ events/s — see ``benchmarks/bench_event_loop_scale.py``), which
caps one process at low-single-digit millions of requests per minute.
The ROADMAP's target is 10M–100M-request traces on one machine, and
:class:`~repro.serving.stats.StreamSummary` was built *mergeable*
precisely so the stream could be cut into independent sub-streams:

1. **Shard** the arrival stream (:data:`SHARD_MODES`):

   * ``"replica"`` — arrival *i* goes to shard ``i % K``.  This is
     exactly what a K-replica round-robin fleet does at dispatch, and
     replicas never interact after dispatch, so serving each shard on
     its own single-replica engine reproduces the fleet's per-replica
     timelines **bit for bit** — the merged summary's exact counters
     (n, SLO misses, batch sizes, padding waste) equal the
     single-process ``Fleet(..., policy="round-robin")`` run's.
   * ``"tenant"`` — all of a tenant's requests stay on one shard
     (stable CRC32 of the tenant name), modelling tenant-affine
     capacity partitioning; per-tenant slices equal independent
     per-tenant runs.
   * ``"hash"`` — requests spread by a SplitMix64 hash of their id;
     load-balanced even when one tenant dominates.
   * ``"generate"`` — no shared stream at all: the factory is called
     once per shard with a deterministically derived per-shard RNG
     seed (:func:`shard_seed`) and generates only that shard's
     traffic.  This is the weak-scaling mode — nothing is generated
     twice, so throughput scales with cores even when generation is a
     large fraction of the per-request cost.

2. **Simulate** each shard in its own worker process — an independent
   event loop over a single-replica engine (or a per-shard fleet, with
   its own scheduler/batcher instances and optionally its own
   autoscaler), summarizing online in O(1) memory.

3. **Merge** the per-shard :class:`StreamSummary` objects
   (:meth:`StreamSummary.merge <repro.serving.stats.StreamSummary.merge>`)
   in shard order.  The merge is associative and the per-shard work is
   deterministic, so the result is independent of pool size and of the
   order in which the OS scheduled the workers.

Streams are *re-generated* inside each worker (lazy factories pickle;
multi-million-request streams do not), so the parent never materializes
anything: memory stays O(classes) per worker, exactly as in
single-process summary mode.
"""

from __future__ import annotations

import multiprocessing
import os
import zlib
from dataclasses import dataclass
from itertools import chain, islice
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import ServingError
from repro.serving.autoscaler import Autoscaler
from repro.serving.batching import make_batcher
from repro.serving.engine import ServingEngine
from repro.serving.events import normalize_arrivals
from repro.serving.faults import make_fault_policy
from repro.serving.fleet import Fleet
from repro.serving.request import ServeRequest
from repro.serving.scheduler import make_scheduler
from repro.serving.stats import StreamSummary
from repro.workloads.deepbench import RNNTask

__all__ = [
    "SHARD_MODES",
    "shard_seed",
    "shard_of",
    "split_requests",
    "pool_map",
    "serve_parallel",
]

#: How :func:`serve_parallel` partitions the stream; see the module
#: docstring for what each mode guarantees.
SHARD_MODES = ("replica", "tenant", "hash", "generate")

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One SplitMix64 scramble round (the standard seed-derivation mix)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def shard_seed(seed: int, shard: int) -> int:
    """Deterministically derive shard ``shard``'s RNG seed from a base seed.

    Two SplitMix64 rounds over ``(seed, shard)``: the derived streams are
    decorrelated (adjacent shards do not get adjacent seeds, which for
    some generators would mean overlapping state), reproducible across
    processes and platforms, and distinct per shard.  Used by the
    ``"generate"`` shard mode and available to any caller building
    per-shard traffic by hand.

    Example::

        >>> from repro.serving.parallel import shard_seed
        >>> seeds = [shard_seed(42, s) for s in range(4)]
        >>> (len(set(seeds)) == 4, seeds == [shard_seed(42, s) for s in range(4)])
        (True, True)
    """
    if shard < 0:
        raise ServingError("shard index must be >= 0")
    return _splitmix64(_splitmix64(seed & _MASK64) ^ shard)


def shard_of(
    request: ServeRequest, seq: int, shards: int, shard_by: str = "replica"
) -> int:
    """Which shard one request lands on (the single source of truth).

    ``seq`` is the request's arrival-order position — what ``"replica"``
    mode shards on, mirroring the round-robin fleet dispatcher's
    ``seq % N``.

    Example::

        >>> from repro.serving import ServeRequest
        >>> from repro.serving.parallel import shard_of
        >>> from repro.workloads.deepbench import task
        >>> req = ServeRequest(task=task("lstm", 512, 25), tenant="asr")
        >>> shard_of(req, seq=7, shards=4, shard_by="replica")
        3
        >>> shard_of(req, 7, 4, "tenant") == shard_of(req, 99, 4, "tenant")
        True
    """
    if shard_by == "replica":
        return seq % shards
    if shard_by == "tenant":
        return zlib.crc32(request.tenant.encode()) % shards
    if shard_by == "hash":
        return _splitmix64(request.request_id & _MASK64) % shards
    raise ServingError(
        f"unknown shard mode {shard_by!r}; known: {', '.join(SHARD_MODES)}"
    )


def _filtered(
    stream: Iterable[ServeRequest], shards: int, shard: int, shard_by: str
) -> Iterator[ServeRequest]:
    """Lazily select one shard's requests out of the full stream."""
    if shard_by == "replica":
        # Positional stride: identical to shard_of(..., "replica") but
        # without a Python-level predicate per request.
        return islice(stream, shard, None, shards)
    return (
        req
        for seq, req in enumerate(stream)
        if shard_of(req, seq, shards, shard_by) == shard
    )


def split_requests(
    requests: "Sequence[ServeRequest | RNNTask]",
    shards: int,
    *,
    shard_by: str = "replica",
) -> "list[list[ServeRequest]]":
    """Partition a materialized stream into per-shard sub-streams.

    The stream is normalized (sorted by arrival, ids validated) first,
    so shard assignment sees the same arrival order the event loop
    would.  Every request lands on exactly one shard — conservation by
    construction.

    Example::

        >>> from repro.serving import uniform_arrivals
        >>> from repro.serving.parallel import split_requests
        >>> from repro.workloads.deepbench import task
        >>> reqs = uniform_arrivals(task("lstm", 512, 25),
        ...                         rate_per_s=10, n_requests=5)
        >>> parts = split_requests(reqs, 2)
        >>> [[r.request_id for r in part] for part in parts]
        [[0, 2, 4], [1, 3]]
    """
    if shards < 1:
        raise ServingError("shards must be >= 1")
    if shard_by == "generate":
        raise ServingError(
            "shard_by='generate' builds per-shard streams from a factory; "
            "there is no shared stream to split"
        )
    ordered = normalize_arrivals(requests)
    parts: "list[list[ServeRequest]]" = [[] for _ in range(shards)]
    for seq, req in enumerate(ordered):
        parts[shard_of(req, seq, shards, shard_by)].append(req)
    return parts


#: A picklable source of arrivals: either a zero-argument factory
#: returning a fresh (lazily consumable) stream, or — for the
#: ``"generate"`` mode — a factory called as ``factory(shard, shards,
#: seed)`` producing only that shard's traffic.
StreamFactory = Callable[..., Iterable[ServeRequest]]


@dataclass(frozen=True)
class _ShardJob:
    """Everything one worker needs; must stay picklable (registry keys
    rather than live scheduler/batcher instances)."""

    shard: int
    shards: int
    shard_by: str
    factory: "StreamFactory | None"
    requests: "tuple[ServeRequest, ...] | None"
    platform: str
    platform_options: "tuple[tuple[str, object], ...]"
    replicas: int
    policy: str
    scheduler: str
    batcher: str
    max_batch: int | None
    slo_ms: float | None
    autoscaler: Autoscaler | None
    seed: int
    #: Fleet-mix spec ("name[:count],..."); overrides platform/replicas
    #: with a per-shard heterogeneous fleet when set.
    mix: str | None = None
    #: Affinity key for policy="affinity" fleets (task/tenant/length-band).
    affinity_by: str = "task"
    faults: str = "none"
    fault_seed: int = 0
    timeout_ms: float | None = None
    retries: int = 0
    hedge_ms: float | None = None

    def stream(self) -> Iterable[ServeRequest]:
        if self.requests is not None:
            return iter(self.requests)
        if self.shard_by == "generate":
            return self.factory(
                self.shard, self.shards, shard_seed(self.seed, self.shard)
            )
        return _filtered(self.factory(), self.shards, self.shard, self.shard_by)


def pool_map(fn, jobs: "Sequence[object]", workers: int) -> list:
    """Order-preserving parallel map on a fork-preferred process pool.

    The shared pool idiom behind :func:`serve_parallel` and the DSE
    runner (:mod:`repro.dse.runner`): ``fn`` must be a module-level
    callable and every job picklable; results come back in job order
    regardless of which worker ran what, so callers that fold results
    in order are scheduling-blind and bit-identical at any pool size.
    ``workers`` is clamped to ``len(jobs)``; one worker (or one job)
    short-circuits to a plain sequential loop in the calling process —
    no pool, no pickling.

    The ``fork`` start method is preferred where the platform offers it
    (workers inherit the parent's memory copy-on-write, so large shared
    inputs — a materialized stream, a warm memo — ship for free);
    elsewhere the platform default is used and workers rebuild state
    from the picklable jobs.

    Example::

        >>> from repro.serving.parallel import pool_map
        >>> pool_map(len, [[1], [2, 3], []], workers=1)
        [1, 2, 0]
    """
    jobs = list(jobs)
    if workers < 1:
        raise ServingError("workers must be >= 1")
    workers = min(workers, len(jobs))
    if workers <= 1:
        return [fn(job) for job in jobs]
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    with ctx.Pool(workers) as pool:
        # map() returns results in job order regardless of which worker
        # ran what, so folds over the result list are scheduling-blind.
        return pool.map(fn, jobs)


def _run_shard(job: _ShardJob) -> StreamSummary:
    """Worker entry point: one shard, one independent event loop."""
    options = dict(job.platform_options)
    if job.mix is not None:
        # Every shard runs the same heterogeneous fleet, so the merged
        # summary's platform label and roster are shard-invariant.
        server: "ServingEngine | Fleet" = Fleet(
            job.mix, policy=job.policy, affinity_by=job.affinity_by
        )
    elif job.replicas > 1 or job.autoscaler is not None:
        server = Fleet(
            job.platform, replicas=job.replicas, policy=job.policy, **options
        )
    else:
        server = ServingEngine(job.platform, **options)
    stream = iter(job.stream())
    head = next(stream, None)
    if head is None:
        # This shard drew no traffic (e.g. more shards than tenants):
        # contribute a merge identity instead of tripping the event
        # loop's empty-stream error.
        return StreamSummary(
            server.platform_name,
            slo_ms=job.slo_ms,
            scheduler=make_scheduler(job.scheduler).name,
            batcher=make_batcher(job.batcher).name,
            faults=make_fault_policy(job.faults).name,
        )
    kwargs: dict = {
        "slo_ms": job.slo_ms,
        "scheduler": job.scheduler,
        "batcher": job.batcher,
        "max_batch": job.max_batch,
        "mode": "summary",
        # A pre-split sub-list is already normalized; a factory stream
        # must be time-ordered with monotone ids (what every built-in
        # generator, mix(presorted=True), and recorded trace emit) and
        # is validated lazily by the event loop.
        "presorted": job.requests is None,
        "faults": job.faults,
        # Each shard's fault timeline draws from its own derived seed,
        # so the merged result is pool-size independent but shards do
        # not replay each other's crashes.
        "fault_seed": shard_seed(job.fault_seed, job.shard),
        "timeout_ms": job.timeout_ms,
        "retries": job.retries,
        "hedge_ms": job.hedge_ms,
    }
    if isinstance(server, Fleet):
        kwargs["autoscaler"] = job.autoscaler
    return server.serve_stream(chain((head,), stream), **kwargs)


def serve_parallel(
    arrivals: "StreamFactory | Sequence[ServeRequest | RNNTask]",
    platform: str,
    *,
    shards: int,
    shard_by: str = "replica",
    workers: int | None = None,
    replicas: int = 1,
    policy: str = "round-robin",
    scheduler: str = "fifo",
    batcher: str = "none",
    max_batch: int | None = None,
    slo_ms: float | None = None,
    autoscaler: Autoscaler | None = None,
    seed: int = 0,
    mix: str | None = None,
    affinity_by: str = "task",
    faults: str = "none",
    fault_seed: int = 0,
    timeout_ms: float | None = None,
    retries: int = 0,
    hedge_ms: float | None = None,
    **platform_options: object,
) -> StreamSummary:
    """Simulate one stream as ``shards`` independent event loops and merge.

    Args:
        arrivals: Either a **picklable factory** (workers re-create the
            stream lazily — the way to run 10M+ requests, since nothing
            is ever materialized or shipped between processes) or a
            materialized sequence (split in the parent; each worker
            receives only its sub-list).  Factory streams must be
            time-ordered with strictly increasing ids, which every
            built-in generator, ``mix(presorted=True)``, and recorded
            trace satisfies.  In ``shard_by="generate"`` mode the
            factory is instead called as ``factory(shard, shards,
            seed)`` with a :func:`shard_seed`-derived seed and produces
            only that shard's traffic.
        platform: Platform registry key; each worker builds its own
            engine (compile caches are per-process).
        shards: Number of stream partitions (and event loops).
        shard_by: One of :data:`SHARD_MODES`.
        workers: Worker processes (default: ``min(shards, cpu_count)``).
            Results are merged in shard order whatever the pool size, so
            this is purely a throughput knob — summaries are identical.
        replicas: Replicas *per shard* (each shard runs a fleet when
            > 1).  ``shards=K, replicas=R`` with round-robin dispatch
            partitions requests exactly like a single K·R-replica
            round-robin fleet.
        policy: Per-shard fleet dispatch policy when ``replicas > 1``.
        scheduler: Scheduler registry key (one fresh instance per
            replica per shard).
        batcher: Batcher registry key, with ``max_batch`` forwarded.
        slo_ms: Stream-level SLO, as in ``serve_stream``.
        autoscaler: Optional per-shard autoscaler (each shard scales
            against its own queue depth, like an independent cell).
        seed: Base seed for ``shard_by="generate"`` derivation.
        mix: Fleet-mix spec (``"name[:count],..."``, see
            :func:`~repro.serving.fleet.parse_fleet_mix`): each shard
            runs that heterogeneous fleet instead of ``replicas``
            homogeneous replicas of ``platform``.  Mutually exclusive
            with ``replicas > 1`` and with ``platform_options``.
        affinity_by: Routing key for ``policy="affinity"`` fleets, one
            of :data:`~repro.serving.fleet.AFFINITY_KEYS`.
        faults: Fault-policy registry key (a *string*, since workers
            re-create the policy; instances do not ship).  Each shard
            injects faults over its own :func:`shard_seed`-derived
            ``fault_seed``, so the merged summary is reproducible and
            pool-size independent.
        fault_seed: Base seed for per-shard fault-timeline derivation.
        timeout_ms: Per-attempt timeout, as in ``serve_stream``.
        retries: Re-dispatch budget after a timeout.
        hedge_ms: Hedged-duplicate delay, as in ``serve_stream``.
        **platform_options: Forwarded to the platform constructor.

    Returns:
        The merged :class:`~repro.serving.stats.StreamSummary`.  For
        ``shard_by="replica"`` its exact counters (request count, SLO
        misses, batch sizes, padding waste) are bit-identical to the
        single-process ``Fleet(platform, replicas=shards*replicas,
        policy="round-robin")`` summary — ``shards=1`` degenerates to
        ``serve_stream(mode="summary")`` exactly.

    Example::

        >>> from functools import partial
        >>> from repro.serving import poisson_arrivals
        >>> from repro.serving.parallel import serve_parallel
        >>> from repro.workloads.deepbench import task
        >>> make = partial(poisson_arrivals, task("lstm", 512, 25),
        ...                rate_per_s=500, n_requests=40, seed=7,
        ...                materialize=False)
        >>> summary = serve_parallel(make, "gpu", shards=2, workers=1,
        ...                          slo_ms=5.0)
        >>> (summary.n_requests, summary.n_replicas)
        (40, 2)
    """
    if shards < 1:
        raise ServingError("shards must be >= 1")
    if workers is not None and workers < 1:
        raise ServingError("workers must be >= 1")
    if replicas < 1:
        raise ServingError("replicas must be >= 1")
    if shard_by not in SHARD_MODES:
        raise ServingError(
            f"unknown shard mode {shard_by!r}; known: {', '.join(SHARD_MODES)}"
        )
    if not isinstance(faults, str):
        raise ServingError(
            "parallel serving needs a fault-policy registry key, not an "
            "instance; workers re-create the policy per shard"
        )
    if mix is not None and (replicas != 1 or platform_options):
        raise ServingError(
            "mix= sets the per-shard fleet roster itself; do not also "
            "pass replicas or platform options"
        )
    factory: "StreamFactory | None" = None
    parts: "list[tuple[ServeRequest, ...] | None]"
    if callable(arrivals):
        factory = arrivals
        parts = [None] * shards
    else:
        if shard_by == "generate":
            raise ServingError(
                "shard_by='generate' needs a factory(shard, shards, seed), "
                "not a materialized stream"
            )
        parts = [tuple(p) for p in split_requests(arrivals, shards, shard_by=shard_by)]
    jobs = [
        _ShardJob(
            shard=shard,
            shards=shards,
            shard_by=shard_by,
            factory=factory,
            requests=parts[shard],
            platform=platform,
            platform_options=tuple(sorted(platform_options.items())),
            replicas=replicas,
            policy=policy,
            scheduler=scheduler,
            batcher=batcher,
            max_batch=max_batch,
            slo_ms=slo_ms,
            autoscaler=autoscaler,
            seed=seed,
            mix=mix,
            affinity_by=affinity_by,
            faults=faults,
            fault_seed=fault_seed,
            timeout_ms=timeout_ms,
            retries=retries,
            hedge_ms=hedge_ms,
        )
        for shard in range(shards)
    ]
    if workers is None:
        workers = min(shards, os.cpu_count() or 1)
    summaries = pool_map(_run_shard, jobs, workers)
    merged = summaries[0].merge(*summaries[1:])
    if merged.is_empty:
        raise ServingError("serve_stream needs at least one request")
    return merged
