"""Pluggable serving engine: platforms, traffic, schedulers, fleets.

This package is the serving surface of the reproduction, structured the
way real accelerator deployments are:

* :mod:`repro.serving.platform` — the :class:`Platform` protocol
  (``prepare`` once, ``serve`` many) and the decorator registry that
  makes platforms pluggable by name.
* :mod:`repro.serving.platforms` — the four built-in platforms:
  Plasticine (mapper + cycle simulator) and the CPU / GPU / Brainwave
  analytical models.
* :mod:`repro.serving.traffic` — composable arrival processes (Poisson,
  uniform, MMPP bursty, diurnal ramp, JSONL trace record/replay), the
  :func:`mix` combinator for multi-tenant workloads, and seeded
  sequence-length distributions (fixed / uniform / zipf / empirical)
  that attach per-request ``timesteps`` overrides to arrivals.
* :mod:`repro.serving.scheduler` — the :class:`Scheduler` registry:
  FIFO, strict priority, EDF, SJF, and compile-cache-aware coalescing.
* :mod:`repro.serving.batching` — the :class:`Batcher` registry: the
  batch-1 ``none`` default plus ``size-cap`` / ``time-window`` /
  ``adaptive`` dynamic batching and the length-aware ``pad`` /
  ``bucket`` policies, costed by each platform's pipeline model (setup
  once, steady-state per item).
* :mod:`repro.serving.autoscaler` — queue-depth/SLO-driven elastic
  replica scaling for fleet streams, with a :class:`ScaleEvent` log.
* :mod:`repro.serving.faults` — the :class:`FaultPolicy` registry:
  seeded replica crash/recovery, heavy-tail stragglers, and priority
  preemption injected into any stream simulation, plus per-request
  timeouts, bounded retries, and hedged duplicates; ``"none"`` is
  bit-identical to no injection at all.
* :mod:`repro.serving.events` — the shared discrete-event loop behind
  every stream simulation: arrivals consumed incrementally (lazy
  generators and traces never materialize), no-heap fast paths for the
  hot single-replica configurations, and a ``presorted`` lazy
  validator.
* :mod:`repro.serving.stats` — :class:`StreamSummary`, the
  O(1)-memory online mirror of :class:`StreamReport` behind
  ``serve_stream(..., mode="summary")``: exact streaming counters,
  histogram quantiles, and per-tenant/per-priority/per-length-band
  rollups for million-request streams.
* :mod:`repro.serving.engine` — :class:`ServingEngine`, one
  accelerator's compile-once session with ``serve`` / ``serve_batch`` /
  ``serve_stream`` (queueing + SLO/tenant/priority accounting) and a
  per-shape result memo so deterministic cost models run once per
  distinct shape.
* :mod:`repro.serving.fleet` — :class:`Fleet`, N replicas behind a
  round-robin, least-loaded, or affinity dispatcher, each with its own
  scheduler and batcher; a ``"name[:count],..."`` mix spec builds a
  heterogeneous fleet whose dispatch ranks replicas by projected
  completion under each platform's own cost model.
* :mod:`repro.serving.parallel` — :func:`serve_parallel`, sharded
  multi-core simulation: one independent event loop per shard
  (replica/tenant/hash/generate sharding) on a ``multiprocessing``
  pool, merged into one :class:`StreamSummary` with exact counter
  parity against the single-process run.
* :mod:`repro.serving.server` — :class:`ServingServer`, the live
  ``asyncio`` frontend: concurrent clients submit in-process or over a
  TCP/UNIX JSONL socket (trace schema), service times come from the
  platform cost models via a pluggable virtual/real clock, and
  shutdown drains gracefully.

Quickstart::

    from repro.serving import ServingEngine, mix, poisson_arrivals
    from repro.workloads import deepbench

    task = deepbench.task("lstm", 1024, 25)
    engine = ServingEngine("plasticine")
    print(engine.serve(task).result.latency_ms)       # compiles + serves
    print(engine.serve(task).result.latency_ms)       # cache hit
    report = engine.serve_stream(
        poisson_arrivals(task, rate_per_s=400, n_requests=2000), slo_ms=5.0
    )
    print(report.p50_ms, report.p99_ms, report.slo_miss_rate)
"""

from repro.serving.autoscaler import Autoscaler, ScaleDecision, ScaleEvent
from repro.serving.batching import (
    AdaptiveBatcher,
    Batcher,
    BucketBatcher,
    NoneBatcher,
    PadBatcher,
    SizeCapBatcher,
    TimeWindowBatcher,
    available_batchers,
    get_batcher,
    make_batcher,
    register_batcher,
)
from repro.serving.engine import (
    CacheStats,
    ServeRequest,
    ServeResponse,
    ServingEngine,
    StreamReport,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.serving.events import (
    StreamDispatcher,
    StreamOutcome,
    normalize_arrivals,
    run_stream,
)
from repro.serving.faults import (
    ChaosFaults,
    CrashFaults,
    FaultPolicy,
    NoFaults,
    PreemptFaults,
    StragglerFaults,
    available_fault_policies,
    get_fault_policy,
    make_fault_policy,
    register_fault_policy,
)
from repro.serving.fleet import (
    AFFINITY_KEYS,
    SCHEDULING_POLICIES,
    Fleet,
    FleetReport,
    parse_fleet_mix,
)
from repro.serving.platform import (
    Platform,
    PreparedModel,
    available_platforms,
    get_platform,
    register_platform,
)
from repro.serving.platforms import (
    BrainwavePlatform,
    CPUPlatform,
    GPUPlatform,
    PlasticinePlatform,
)
from repro.serving.parallel import (
    SHARD_MODES,
    serve_parallel,
    shard_of,
    shard_seed,
    split_requests,
)
from repro.serving.result import FaultStats, ServingResult
from repro.serving.server import (
    Clock,
    RealClock,
    ServingServer,
    VirtualClock,
    response_to_json,
)
from repro.serving.stats import StreamSummary
from repro.serving.scheduler import (
    CoalescingScheduler,
    EDFScheduler,
    FIFOScheduler,
    PriorityScheduler,
    Scheduler,
    SJFScheduler,
    available_schedulers,
    get_scheduler,
    register_scheduler,
)
from repro.serving.traffic import (
    EmpiricalLength,
    FixedLength,
    LengthSampler,
    UniformLength,
    ZipfLength,
    diurnal_arrivals,
    iter_trace,
    length_band,
    length_sampler,
    lengths_from_trace,
    mix,
    mmpp_arrivals,
    record_trace,
    replay_trace,
    request_from_json,
    request_to_json,
)

__all__ = [
    "ServingResult",
    "Platform",
    "PreparedModel",
    "register_platform",
    "get_platform",
    "available_platforms",
    "PlasticinePlatform",
    "BrainwavePlatform",
    "CPUPlatform",
    "GPUPlatform",
    "ServingEngine",
    "ServeRequest",
    "ServeResponse",
    "StreamReport",
    "StreamSummary",
    "CacheStats",
    "run_stream",
    "normalize_arrivals",
    "StreamDispatcher",
    "poisson_arrivals",
    "uniform_arrivals",
    "mmpp_arrivals",
    "diurnal_arrivals",
    "mix",
    "record_trace",
    "replay_trace",
    "iter_trace",
    "LengthSampler",
    "FixedLength",
    "UniformLength",
    "ZipfLength",
    "EmpiricalLength",
    "length_sampler",
    "length_band",
    "lengths_from_trace",
    "Scheduler",
    "FIFOScheduler",
    "PriorityScheduler",
    "EDFScheduler",
    "SJFScheduler",
    "CoalescingScheduler",
    "register_scheduler",
    "get_scheduler",
    "available_schedulers",
    "Batcher",
    "NoneBatcher",
    "SizeCapBatcher",
    "TimeWindowBatcher",
    "AdaptiveBatcher",
    "PadBatcher",
    "BucketBatcher",
    "register_batcher",
    "get_batcher",
    "available_batchers",
    "make_batcher",
    "Autoscaler",
    "ScaleDecision",
    "ScaleEvent",
    "FaultPolicy",
    "FaultStats",
    "NoFaults",
    "CrashFaults",
    "StragglerFaults",
    "PreemptFaults",
    "ChaosFaults",
    "register_fault_policy",
    "get_fault_policy",
    "available_fault_policies",
    "make_fault_policy",
    "StreamOutcome",
    "Fleet",
    "FleetReport",
    "SCHEDULING_POLICIES",
    "AFFINITY_KEYS",
    "parse_fleet_mix",
    "serve_parallel",
    "shard_seed",
    "shard_of",
    "split_requests",
    "SHARD_MODES",
    "ServingServer",
    "Clock",
    "VirtualClock",
    "RealClock",
    "response_to_json",
    "request_to_json",
    "request_from_json",
]
