"""Pluggable serving engine: platform registry, sessions, streams, fleets.

This package is the serving surface of the reproduction, structured the
way real accelerator deployments are:

* :mod:`repro.serving.platform` — the :class:`Platform` protocol
  (``prepare`` once, ``serve`` many) and the decorator registry that
  makes platforms pluggable by name.
* :mod:`repro.serving.platforms` — the four built-in platforms:
  Plasticine (mapper + cycle simulator) and the CPU / GPU / Brainwave
  analytical models.
* :mod:`repro.serving.engine` — :class:`ServingEngine`, one
  accelerator's compile-once session with ``serve`` / ``serve_batch`` /
  ``serve_stream`` (FIFO queueing + SLO accounting).
* :mod:`repro.serving.fleet` — :class:`Fleet`, N replicas behind a
  round-robin or least-loaded dispatcher.

Quickstart::

    from repro.serving import ServingEngine, poisson_arrivals
    from repro.workloads import deepbench

    task = deepbench.task("lstm", 1024, 25)
    engine = ServingEngine("plasticine")
    print(engine.serve(task).result.latency_ms)       # compiles + serves
    print(engine.serve(task).result.latency_ms)       # cache hit
    report = engine.serve_stream(
        poisson_arrivals(task, rate_per_s=400, n_requests=2000), slo_ms=5.0
    )
    print(report.p50_ms, report.p99_ms, report.slo_miss_rate)
"""

from repro.serving.engine import (
    CacheStats,
    ServeRequest,
    ServeResponse,
    ServingEngine,
    StreamReport,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.serving.fleet import SCHEDULING_POLICIES, Fleet, FleetReport
from repro.serving.platform import (
    Platform,
    PreparedModel,
    available_platforms,
    get_platform,
    register_platform,
)
from repro.serving.platforms import (
    BrainwavePlatform,
    CPUPlatform,
    GPUPlatform,
    PlasticinePlatform,
)
from repro.serving.result import ServingResult

__all__ = [
    "ServingResult",
    "Platform",
    "PreparedModel",
    "register_platform",
    "get_platform",
    "available_platforms",
    "PlasticinePlatform",
    "BrainwavePlatform",
    "CPUPlatform",
    "GPUPlatform",
    "ServingEngine",
    "ServeRequest",
    "ServeResponse",
    "StreamReport",
    "CacheStats",
    "poisson_arrivals",
    "uniform_arrivals",
    "Fleet",
    "FleetReport",
    "SCHEDULING_POLICIES",
]
