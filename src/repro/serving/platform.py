"""Platform protocol and the decorator-based platform registry.

A serving platform splits its work into the two phases every real
deployment has (Brainwave and Spartus both structure serving this way):

* :meth:`Platform.prepare` — the one-time compile/initialize phase.  For
  Plasticine this is the expensive part: pick loop parameters, build the
  loop-based program, map it onto the chip, and cycle-simulate one
  request.  For the analytical baselines it precomputes the per-step
  model evaluation.  The output is a :class:`PreparedModel`.
* :meth:`Platform.serve` — the steady-state per-request phase: turn a
  prepared model into a :class:`~repro.serving.result.ServingResult`
  without redoing any compile work.

Platforms self-register under a string key::

    @register_platform("myaccel")
    class MyAccelPlatform(Platform):
        ...

    engine = ServingEngine("myaccel")

so new accelerator models plug into the engine, the CLI, and the fleet
scheduler without touching any of them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import Any, Callable, TypeVar

from repro.errors import ServingError
from repro.serving.result import ServingResult
from repro.workloads.deepbench import RNNTask

__all__ = [
    "PreparedModel",
    "Platform",
    "register_platform",
    "get_platform",
    "available_platforms",
]


@dataclass(frozen=True)
class PreparedModel:
    """The output of a platform's one-time compile/initialize phase.

    Attributes:
        platform: Registry key of the platform that prepared it.
        task: The task it was compiled for.
        state: Opaque platform-specific compiled state (mapped design,
            simulation, precomputed model outputs, ...).  Only the
            owning platform interprets it.
        notes: Human-readable remarks from the compile phase.

    Example::

        >>> from repro.serving import get_platform
        >>> from repro.workloads.deepbench import task
        >>> prepared = get_platform("gpu").prepare(task("lstm", 512, 25))
        >>> prepared.platform, prepared.task.name
        ('gpu', 'lstm-h512-t25')
    """

    platform: str
    task: RNNTask
    state: Any = field(repr=False, compare=False)
    notes: tuple[str, ...] = ()


class Platform(ABC):
    """A registered serving platform: compile once, serve many.

    Subclasses implement :meth:`prepare` (one-time compile) and
    :meth:`serve` (steady-state batch-1 request).  The batched cost
    model — :meth:`batch_latency_s` / :meth:`serve_batched` — comes for
    free from the paper's pipeline decomposition: a batch-B execution of
    one task costs the one-time setup (pipeline fill, instruction issue,
    kernel launch) once, plus B times the steady-state per-item work.
    Platforms tune it with :attr:`batch_setup_fraction` or override the
    methods outright (Plasticine derives the split exactly from its
    cycle simulation).

    Example::

        >>> from repro.serving import get_platform
        >>> from repro.workloads.deepbench import task
        >>> gpu = get_platform("gpu")
        >>> prepared = gpu.prepare(task("lstm", 512, 25))
        >>> t1 = gpu.batch_latency_s(prepared, 1)
        >>> t1 == gpu.serve(prepared).latency_s     # B=1 is exact
        True
        >>> gpu.batch_latency_s(prepared, 8) < 8 * t1   # batching amortizes
        True
    """

    #: Registry key; set by :func:`register_platform`.
    name: str = "?"

    #: Fraction of the batch-1 serving latency that is one-time per-batch
    #: setup rather than per-item steady-state work.  ``0.0`` (the
    #: default) means batching buys nothing: a batch of B takes B times
    #: the batch-1 latency.  Platforms with expensive per-batch setup
    #: (weight streaming, kernel launch, pipeline fill) override this or
    #: :meth:`batch_latency_s` itself.
    batch_setup_fraction: float = 0.0

    #: True when one prepared model serves *any sequence length* of its
    #: task family: the compiled state depends only on the cell shape,
    #: and cost is affine in the step count (all four built-ins are).
    #: Such platforms implement :meth:`request_latency_s`, and the
    #: engine's compile cache collapses length variants onto one
    #: :meth:`compile_key`.
    length_flexible: bool = False

    @abstractmethod
    def prepare(self, task: RNNTask) -> PreparedModel:
        """One-time compile/initialize phase for ``task``."""

    @abstractmethod
    def serve(self, prepared: PreparedModel) -> ServingResult:
        """Steady-state phase: serve one request from a prepared model."""

    def serve_task(self, task: RNNTask) -> ServingResult:
        """Convenience: prepare-then-serve in one call (no caching)."""
        return self.serve(self.prepare(task))

    def compile_key(self, task: RNNTask) -> RNNTask:
        """The cache key under which ``task``'s compiled state is shared.

        Length-flexible platforms collapse every sequence-length variant
        of a family onto one key, so a stream whose requests carry
        per-request ``timesteps`` overrides compiles each family once
        instead of once per distinct length.  Platforms whose compiled
        state genuinely depends on ``T`` keep the default exact key.
        """
        if self.length_flexible:
            return task.with_timesteps(1)
        return task

    def request_latency_s(self, prepared: PreparedModel, task: RNNTask) -> float:
        """Batch-1 latency of ``task`` served from ``prepared``, where
        ``task`` may be a sequence-length variant of the prepared task's
        family.  Length-flexible platforms must override this; for
        ``task == prepared.task`` it must reproduce
        ``serve(prepared).latency_s`` exactly.
        """
        raise ServingError(
            f"platform {self.name!r} cannot re-cost a prepared model for "
            f"{task.name}; it was compiled for {prepared.task.name} and the "
            f"platform is not length-flexible"
        )

    def _latency_for(self, prepared: PreparedModel, task: RNNTask) -> float:
        """Batch-1 latency of ``task``: the exact serve number when the
        model was prepared for it, the re-costed one otherwise."""
        if task == prepared.task:
            return self.serve(prepared).latency_s
        return self.request_latency_s(prepared, task)

    def serve_request(
        self, prepared: PreparedModel, task: RNNTask | None = None
    ) -> ServingResult:
        """Serve one request for ``task`` from a prepared model.

        ``task`` defaults to the prepared task (plain :meth:`serve`).
        When it is a length variant of the prepared family, the result
        is re-costed for the request's *actual* step count via
        :meth:`request_latency_s` — padding never enters batch-1
        serving.

        Example::

            >>> from repro.serving import get_platform
            >>> from repro.workloads.deepbench import task
            >>> gpu = get_platform("gpu")
            >>> t = task("lstm", 512, 25)
            >>> prepared = gpu.prepare(t)
            >>> short = gpu.serve_request(prepared, t.with_timesteps(5))
            >>> long = gpu.serve_request(prepared, t.with_timesteps(500))
            >>> short.latency_s < long.latency_s
            True
        """
        self._check_prepared(prepared)
        if task is None or task == prepared.task:
            return self.serve(prepared)
        if task.family_key != prepared.task.family_key:
            raise ServingError(
                f"prepared model for {prepared.task.name} cannot serve "
                f"{task.name}: different task families"
            )
        latency_s = self.request_latency_s(prepared, task)
        base = self.serve(prepared)
        return replace(
            base,
            task=task,
            latency_s=latency_s,
            effective_tflops=task.effective_tflops(latency_s),
        )

    def batch_latency_s(
        self,
        prepared: PreparedModel,
        batch_size: int,
        task: RNNTask | None = None,
    ) -> float:
        """Latency of serving ``batch_size`` same-shape requests together.

        The paper's pipeline model: ``setup + B * steady``, where the
        batch-1 latency splits into ``setup = t1 * batch_setup_fraction``
        and ``steady = t1 - setup``.  ``task`` names the executed task
        when it is a length variant of the prepared family (a padded
        batch executes at the longest member's length); it defaults to
        the prepared task.  ``batch_latency_s(prepared, 1)`` is exactly
        the batch-1 serving latency on every platform, so the ``"none"``
        batching policy cannot drift from unbatched serving.
        """
        self._check_prepared(prepared)
        _check_batch_size(batch_size)
        t1 = self._latency_for(prepared, task if task is not None else prepared.task)
        setup = t1 * self.batch_setup_fraction
        return setup + batch_size * (t1 - setup)

    def serve_batched(
        self,
        prepared: PreparedModel,
        batch_size: int,
        task: RNNTask | None = None,
    ) -> ServingResult:
        """Serve a batch of same-shape requests as one execution.

        Returns one :class:`~repro.serving.result.ServingResult` for the
        whole batch: ``latency_s`` is the batch completion time from
        :meth:`batch_latency_s`, ``effective_tflops`` counts all B
        requests' (possibly padded) work, and ``batch_size`` records the
        coalesced size.  ``task`` is the executed task — for a padded
        batch, the family padded to the longest member.
        ``batch_size=1`` returns the plain :meth:`serve_request` result,
        bit for bit.
        """
        self._check_prepared(prepared)
        _check_batch_size(batch_size)
        exec_task = task if task is not None else prepared.task
        base = self.serve_request(prepared, exec_task)
        if batch_size == 1:
            return base
        latency_s = self.batch_latency_s(prepared, batch_size, task=exec_task)
        return replace(
            base,
            latency_s=latency_s,
            effective_tflops=exec_task.effective_tflops(latency_s) * batch_size,
            batch_size=batch_size,
        )

    def _check_prepared(self, prepared: PreparedModel) -> None:
        """Guard against handing one platform another's compiled state."""
        if prepared.platform != self.name:
            raise ServingError(
                f"prepared model was compiled for platform "
                f"{prepared.platform!r}, not {self.name!r}"
            )


def _check_batch_size(batch_size: int) -> None:
    if not isinstance(batch_size, int) or batch_size < 1:
        raise ServingError(f"batch_size must be a positive int, got {batch_size!r}")


_REGISTRY: dict[str, type[Platform]] = {}

P = TypeVar("P", bound=type[Platform])


def register_platform(name: str) -> Callable[[P], P]:
    """Class decorator: register a :class:`Platform` under ``name``.

    Registering a second class under an existing name raises
    :class:`~repro.errors.ServingError` — silent replacement would let a
    plugin hijack a built-in platform.

    Example::

        >>> from repro.serving import register_platform, Platform
        >>> from repro.serving.platform import unregister_platform
        >>> @register_platform("null")
        ... class NullPlatform(Platform):
        ...     def prepare(self, task):
        ...         from repro.serving.platform import PreparedModel
        ...         return PreparedModel("null", task, state=None)
        ...     def serve(self, prepared):
        ...         from repro.serving.result import ServingResult
        ...         return ServingResult("null", prepared.task, 1e-3, 0.0)
        >>> from repro.serving import available_platforms
        >>> "null" in available_platforms()
        True
        >>> unregister_platform("null")
    """

    def decorate(cls: P) -> P:
        if not (isinstance(cls, type) and issubclass(cls, Platform)):
            raise ServingError(f"@register_platform({name!r}) needs a Platform subclass")
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise ServingError(
                f"platform {name!r} already registered by {existing.__name__}"
            )
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def unregister_platform(name: str) -> None:
    """Remove a registration (primarily for tests)."""
    _REGISTRY.pop(name, None)


def available_platforms() -> tuple[str, ...]:
    """Sorted keys of every registered platform.

    Example::

        >>> from repro.serving import available_platforms
        >>> [p for p in ("brainwave", "cpu", "gpu", "plasticine")
        ...  if p in available_platforms()]
        ['brainwave', 'cpu', 'gpu', 'plasticine']
    """
    _ensure_builtin()
    return tuple(sorted(_REGISTRY))


def get_platform(name: str, **options: Any) -> Platform:
    """Instantiate the platform registered under ``name``.

    Keyword options are forwarded to the platform constructor (e.g.
    ``get_platform("plasticine", bits=8)``).

    Example::

        >>> from repro.serving import get_platform
        >>> get_platform("brainwave").name
        'brainwave'
    """
    _ensure_builtin()
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ServingError(
            f"unknown platform {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from None
    return cls(**options)


def _ensure_builtin() -> None:
    # The built-in platform classes register at import time; importing
    # lazily here keeps `import repro.serving.platform` light and free of
    # mapper/simulator dependencies.
    import repro.serving.platforms  # noqa: F401
