"""Platform protocol and the decorator-based platform registry.

A serving platform splits its work into the two phases every real
deployment has (Brainwave and Spartus both structure serving this way):

* :meth:`Platform.prepare` — the one-time compile/initialize phase.  For
  Plasticine this is the expensive part: pick loop parameters, build the
  loop-based program, map it onto the chip, and cycle-simulate one
  request.  For the analytical baselines it precomputes the per-step
  model evaluation.  The output is a :class:`PreparedModel`.
* :meth:`Platform.serve` — the steady-state per-request phase: turn a
  prepared model into a :class:`~repro.serving.result.ServingResult`
  without redoing any compile work.

Platforms self-register under a string key::

    @register_platform("myaccel")
    class MyAccelPlatform(Platform):
        ...

    engine = ServingEngine("myaccel")

so new accelerator models plug into the engine, the CLI, and the fleet
scheduler without touching any of them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, TypeVar

from repro.errors import ServingError
from repro.serving.result import ServingResult
from repro.workloads.deepbench import RNNTask

__all__ = [
    "PreparedModel",
    "Platform",
    "register_platform",
    "get_platform",
    "available_platforms",
]


@dataclass(frozen=True)
class PreparedModel:
    """The output of a platform's one-time compile/initialize phase.

    Attributes:
        platform: Registry key of the platform that prepared it.
        task: The task it was compiled for.
        state: Opaque platform-specific compiled state (mapped design,
            simulation, precomputed model outputs, ...).  Only the
            owning platform interprets it.
        notes: Human-readable remarks from the compile phase.
    """

    platform: str
    task: RNNTask
    state: Any = field(repr=False, compare=False)
    notes: tuple[str, ...] = ()


class Platform(ABC):
    """A registered serving platform: compile once, serve many."""

    #: Registry key; set by :func:`register_platform`.
    name: str = "?"

    @abstractmethod
    def prepare(self, task: RNNTask) -> PreparedModel:
        """One-time compile/initialize phase for ``task``."""

    @abstractmethod
    def serve(self, prepared: PreparedModel) -> ServingResult:
        """Steady-state phase: serve one request from a prepared model."""

    def serve_task(self, task: RNNTask) -> ServingResult:
        """Convenience: prepare-then-serve in one call (no caching)."""
        return self.serve(self.prepare(task))

    def _check_prepared(self, prepared: PreparedModel) -> None:
        """Guard against handing one platform another's compiled state."""
        if prepared.platform != self.name:
            raise ServingError(
                f"prepared model was compiled for platform "
                f"{prepared.platform!r}, not {self.name!r}"
            )


_REGISTRY: dict[str, type[Platform]] = {}

P = TypeVar("P", bound=type[Platform])


def register_platform(name: str) -> Callable[[P], P]:
    """Class decorator: register a :class:`Platform` under ``name``."""

    def decorate(cls: P) -> P:
        if not (isinstance(cls, type) and issubclass(cls, Platform)):
            raise ServingError(f"@register_platform({name!r}) needs a Platform subclass")
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise ServingError(
                f"platform {name!r} already registered by {existing.__name__}"
            )
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def unregister_platform(name: str) -> None:
    """Remove a registration (primarily for tests)."""
    _REGISTRY.pop(name, None)


def available_platforms() -> tuple[str, ...]:
    """Sorted keys of every registered platform."""
    _ensure_builtin()
    return tuple(sorted(_REGISTRY))


def get_platform(name: str, **options: Any) -> Platform:
    """Instantiate the platform registered under ``name``.

    Keyword options are forwarded to the platform constructor (e.g.
    ``get_platform("plasticine", bits=8)``).
    """
    _ensure_builtin()
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ServingError(
            f"unknown platform {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from None
    return cls(**options)


def _ensure_builtin() -> None:
    # The built-in platform classes register at import time; importing
    # lazily here keeps `import repro.serving.platform` light and free of
    # mapper/simulator dependencies.
    import repro.serving.platforms  # noqa: F401
