"""Live async serving frontend: real concurrent clients, same cost model.

Everything else in this package *replays* traffic; this module is the
front door a Brainwave-style deployment actually exposes.  A
:class:`ServingServer` accepts requests from concurrent ``asyncio``
clients — in-process via :meth:`ServingServer.submit`, or over a
TCP/UNIX socket speaking the JSONL trace schema
(:func:`~repro.serving.traffic.request_to_json`, so a recorded trace
replays against a socket with no translation) — runs them through the
same registries the simulator uses (schedulers, batchers, the
platform cost models), and answers with the same
:class:`~repro.serving.request.ServeResponse` timeline fields.

Time is pluggable (:class:`Clock`):

* :class:`VirtualClock` (default) — logical time.  Service latencies
  come from the platform cost model and advance per-replica ``free_at``
  chains exactly as in the discrete-event loop; no coroutine ever waits
  wall time, so a hundred thousand requests settle in milliseconds.
  This is the mode tests and CI use.
* :class:`RealClock` — wall time, optionally scaled.  Each execution
  dwells ``latency / speedup`` real seconds, so the served stream is
  observable as actual temporal behaviour (``speedup=1000`` makes a
  2 ms inference occupy 2 µs of wall clock).

Replicas are worker coroutines pulling from **one shared ready queue**
(a single scheduler instance): the live server is work-conserving,
like the fleet's ``least-loaded`` dispatch rather than its round-robin
replay.  Batching policies plug in unchanged — when a worker frees up
it consults the batcher (``hold_until`` / ``take``) against the shared
queue and serves the coalesced batch via the engine's batched cost
model.

Shutdown is a **graceful drain**: :meth:`ServingServer.drain` stops
admission (new submits raise), lets workers flush every queued and
in-flight batch, resolves every outstanding client future, and only
then returns.  Conservation — every accepted request is answered
exactly once — is pinned by the test suite, and the server keeps a
:class:`~repro.serving.stats.StreamSummary` online so a drained server
reports the same p50/p99/SLO/batch statistics a simulated stream would.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import replace
from pathlib import Path
from typing import Iterable

from repro.errors import ServingError
from repro.serving.batching import Batcher, NoneBatcher, make_batcher
from repro.serving.engine import ServingEngine
from repro.serving.events import _batch_exec_task
from repro.serving.request import ServeRequest, ServeResponse
from repro.serving.scheduler import QueuedRequest, Scheduler, make_scheduler
from repro.serving.stats import StreamSummary
from repro.serving.traffic import request_from_json
from repro.workloads.deepbench import RNNTask

__all__ = [
    "Clock",
    "VirtualClock",
    "RealClock",
    "ServingServer",
    "response_to_json",
]

_INF = float("inf")


class Clock:
    """Pluggable time source for the live server.

    ``now()`` stamps arrivals, ``wait()`` is how a worker dwells for a
    service latency, and ``advance_to()`` lets the server move logical
    time forward when an execution finishes (a no-op for wall clocks).
    """

    def now(self) -> float:
        raise NotImplementedError  # pragma: no cover

    async def wait(self, seconds: float) -> None:
        raise NotImplementedError  # pragma: no cover

    def advance_to(self, t: float) -> None:
        """Move logical time forward to ``t`` (never backward)."""

    def ready_floor(self) -> float:
        """Earliest instant a replica may *start* an execution.

        On a wall clock that is ``now()`` — real time has passed and a
        dispatch cannot start in the past.  On a logical clock there is
        no such floor: each replica's timeline is bound only by its own
        ``free_at`` chain and the request arrivals, exactly as in the
        discrete-event loop, so parallel replicas overlap instead of
        being serialized behind the global "latest finish" reading.
        """
        return self.now()


class VirtualClock(Clock):
    """Logical time: no coroutine ever waits wall time.

    ``now()`` starts at ``start_s`` and advances only when the server
    observes a completion (``advance_to``), so it reads as "latest
    finish so far".  Closed-loop clients that await each response before
    sending the next therefore get successive arrivals stamped at the
    simulated completion times — the same timeline a discrete-event
    replay of that closed loop would produce.

    Example::

        >>> from repro.serving.server import VirtualClock
        >>> clock = VirtualClock()
        >>> clock.advance_to(2.5); clock.advance_to(1.0); clock.now()
        2.5
    """

    def __init__(self, start_s: float = 0.0) -> None:
        self._now = start_s

    def now(self) -> float:
        return self._now

    async def wait(self, seconds: float) -> None:
        # Yield once so peers get scheduled, but never dwell.
        await asyncio.sleep(0)

    def advance_to(self, t: float) -> None:
        if t > self._now:
            self._now = t

    def ready_floor(self) -> float:
        return float("-inf")


class RealClock(Clock):
    """Wall time, optionally scaled: 1 virtual second = 1/speedup wall.

    With ``speedup=1000`` a 2 ms inference occupies 2 µs of wall clock,
    so latency behaviour stays observable in real time without making
    the test suite wait for it.

    Example::

        >>> from repro.serving.server import RealClock
        >>> RealClock(speedup=1000.0).now() >= 0.0
        True
    """

    def __init__(self, speedup: float = 1.0) -> None:
        if speedup <= 0:
            raise ServingError("speedup must be positive")
        self.speedup = speedup
        self._t0 = time.monotonic()

    def now(self) -> float:
        return (time.monotonic() - self._t0) * self.speedup

    async def wait(self, seconds: float) -> None:
        if seconds > 0:
            await asyncio.sleep(seconds / self.speedup)


def response_to_json(resp: ServeResponse) -> dict:
    """One response as the JSONL wire record the socket protocol sends.

    Mirrors :func:`~repro.serving.traffic.request_to_json`: identity
    fields echo the request, timeline fields carry the same numbers the
    in-process :class:`~repro.serving.request.ServeResponse` exposes.

    Example::

        >>> from repro.serving import ServingEngine
        >>> from repro.serving.server import response_to_json
        >>> from repro.workloads.deepbench import task
        >>> rec = response_to_json(ServingEngine("gpu").serve(task("lstm", 512, 25)))
        >>> (rec["ok"], rec["batch_size"], rec["queue_delay_ms"])
        (True, 1, 0.0)
    """
    req = resp.request
    return {
        "ok": True,
        "v": 2,
        "request_id": req.request_id,
        "tenant": req.tenant,
        "priority": req.priority,
        "slo_ms": req.slo_ms,
        "arrival_s": req.arrival_s,
        "start_s": resp.start_s,
        "finish_s": resp.finish_s,
        "queue_delay_ms": resp.queue_delay_s * 1e3,
        "sojourn_ms": resp.sojourn_s * 1e3,
        "latency_ms": resp.result.latency_ms,
        "batch_size": resp.batch_size,
        "batch_index": resp.batch_index,
    }


class ServingServer:
    """An asyncio frontend over one platform's replicas.

    Args:
        platform: Platform registry key (or instance) — service times
            come from its cost model, via one shared
            :class:`~repro.serving.engine.ServingEngine` (compile cache
            and result memo shared by all replicas).
        replicas: Number of worker coroutines (parallel executions).
        scheduler: Queue-discipline registry key; **one** shared ready
            queue serves all replicas (work-conserving dispatch).
        batcher: Batching-policy registry key, ``max_batch`` forwarded.
        slo_ms: Server-default SLO; per-request ``slo_ms`` overrides it,
            exactly as in ``serve_stream``.
        clock: A :class:`Clock`; defaults to :class:`VirtualClock`.
        timeout_ms: Wall-clock bound on how long one :meth:`submit`
            waits for its response.  On expiry the client future is
            cancelled and ``submit`` raises
            :class:`~repro.errors.ServingError` — cleanly: the request
            still drains through the queue (conservation holds), its
            response is simply no longer deliverable.  Wall time, not
            clock time, so it guards against a stalled server even
            under a :class:`VirtualClock`.
        **platform_options: Forwarded to the platform constructor.

    Lifecycle: ``start()`` spawns the workers, ``drain()`` stops
    admission and flushes everything in flight; ``async with`` does
    both.  After the drain, :attr:`summary` holds the stream-style
    report over everything served.

    Example::

        >>> import asyncio
        >>> from repro.serving.server import ServingServer
        >>> from repro.workloads.deepbench import task
        >>> async def main():
        ...     async with ServingServer("gpu", slo_ms=5.0) as server:
        ...         resps = await asyncio.gather(
        ...             *(server.submit(task("lstm", 512, 25)) for _ in range(3)))
        ...     return server.summary
        >>> summary = asyncio.run(main())
        >>> (summary.n_requests, summary.slo_attainment)
        (3, 1.0)
    """

    def __init__(
        self,
        platform: str,
        *,
        replicas: int = 1,
        scheduler: str = "fifo",
        batcher: str = "none",
        max_batch: int | None = None,
        slo_ms: float | None = None,
        clock: Clock | None = None,
        timeout_ms: float | None = None,
        **platform_options: object,
    ) -> None:
        if replicas < 1:
            raise ServingError("a server needs at least one replica")
        if timeout_ms is not None and timeout_ms <= 0:
            raise ServingError("timeout_ms must be positive")
        self.timeout_ms = timeout_ms
        self.engine = ServingEngine(platform, **platform_options)
        self.replicas = replicas
        self.slo_ms = slo_ms
        self.clock = clock if clock is not None else VirtualClock()
        self._scheduler: Scheduler = make_scheduler(scheduler)
        options = {} if max_batch is None else {"max_batch": max_batch}
        self._batcher: Batcher = make_batcher(batcher, **options)
        self._batcher.bind_cost(self.engine.batch_latency_s)
        self._summary = StreamSummary(
            self.engine.platform_name,
            slo_ms=slo_ms,
            scheduler=self._scheduler.name,
            batcher=self._batcher.name,
        )
        self._cond: asyncio.Condition | None = None
        self._futures: "dict[int, asyncio.Future[ServeResponse]]" = {}
        self._free_at = [0.0] * replicas
        self._workers: "list[asyncio.Task]" = []
        self._listeners: "list[asyncio.AbstractServer]" = []
        self._unix_paths: "list[str]" = []
        self._seq = 0
        self._started = False
        self._draining = False
        self._drained = False
        #: Conservation counters: accepted == served after a drain.
        self.accepted = 0
        self.served = 0

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> "ServingServer":
        """Spawn the replica workers; idempotent."""
        if self._started:
            return self
        self._started = True
        self._cond = asyncio.Condition()
        self._workers = [
            asyncio.create_task(self._worker(replica), name=f"replica-{replica}")
            for replica in range(self.replicas)
        ]
        for worker in self._workers:
            worker.add_done_callback(self._on_worker_done)
        return self

    def _on_worker_done(self, worker: "asyncio.Task") -> None:
        """A crashed replica must fail its clients, not strand them.

        If a worker dies with an exception, every outstanding client
        future gets that exception instead of waiting forever on a
        response no one will produce.
        """
        if worker.cancelled() or worker.exception() is None:
            return
        exc = worker.exception()
        for future in self._futures.values():
            if not future.done():
                future.set_exception(exc)
        self._futures.clear()

    async def __aenter__(self) -> "ServingServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.drain()

    async def drain(self) -> StreamSummary:
        """Graceful shutdown: stop admission, flush everything in flight.

        New :meth:`submit` calls raise once the drain begins; every
        request admitted before it is still served and its client future
        resolved.  Returns the finalized :attr:`summary`.  Idempotent.
        """
        if not self._started:
            raise ServingError("server was never started")
        if not self._drained:
            self._draining = True
            for listener in self._listeners:
                listener.close()
            async with self._cond:
                self._cond.notify_all()
            await asyncio.gather(*self._workers)
            for listener in self._listeners:
                await listener.wait_closed()
            self._listeners.clear()
            for path in self._unix_paths:
                Path(path).unlink(missing_ok=True)
            self._unix_paths.clear()
            self._drained = True
            if self.served:
                self._summary.finalize(
                    replicas=self.replicas, active_replicas=self.replicas
                )
        return self._summary

    @property
    def summary(self) -> StreamSummary:
        """Stream-style report over everything served; valid after drain."""
        if not self._drained:
            raise ServingError("summary is available after drain()")
        if not self.served:
            raise ServingError("stream produced no responses")
        return self._summary

    # -- in-process client API ----------------------------------------

    async def submit(self, request: "ServeRequest | RNNTask") -> ServeResponse:
        """Submit one request and await its response.

        A bare :class:`~repro.workloads.deepbench.RNNTask` is wrapped in
        a :class:`ServeRequest` stamped at ``clock.now()``; an explicit
        request keeps its tags, with its arrival clamped forward to the
        clock (a request cannot arrive before it is submitted).
        """
        if not self._started:
            raise ServingError("server is not started; use 'async with' or start()")
        now = self.clock.now()
        if isinstance(request, RNNTask):
            request = ServeRequest(
                task=request, arrival_s=now, request_id=self._seq
            )
        elif request.arrival_s < now:
            request = replace(request, arrival_s=now)
        result = self.engine.result_for(request.task)
        slo = request.effective_slo_ms(self.slo_ms)
        async with self._cond:
            # Admission is decided under the queue lock: either this
            # request is enqueued before the drain flushes the queue, or
            # it is rejected — it can never be enqueued and left behind.
            if self._draining:
                raise ServingError("server is draining; no new requests accepted")
            seq = self._seq
            self._seq += 1
            self.accepted += 1
            future: "asyncio.Future[ServeResponse]" = (
                asyncio.get_running_loop().create_future()
            )
            self._futures[seq] = future
            self._scheduler.push(
                QueuedRequest(
                    seq=seq,
                    request=request,
                    result=result,
                    service_s=result.latency_s,
                    deadline_s=_INF
                    if slo is None
                    else request.arrival_s + slo / 1e3,
                )
            )
            self._cond.notify_all()
        if self.timeout_ms is None:
            return await future
        try:
            # Shield so the wait_for cancellation hits our wrapper, not
            # the shared future a worker may be about to resolve.
            return await asyncio.wait_for(
                asyncio.shield(future), self.timeout_ms / 1e3
            )
        except asyncio.TimeoutError:
            self._futures.pop(seq, None)
            future.cancel()
            raise ServingError(
                f"request {request.request_id} timed out after "
                f"{self.timeout_ms:g} ms"
            ) from None

    async def serve_all(
        self, requests: "Iterable[ServeRequest | RNNTask]"
    ) -> "tuple[ServeResponse, ...]":
        """Submit a batch of requests concurrently and await all responses."""
        return tuple(
            await asyncio.gather(*(self.submit(req) for req in requests))
        )

    # -- replica workers ----------------------------------------------

    async def _worker(self, replica: int) -> None:
        scheduler, batcher, clock = self._scheduler, self._batcher, self.clock
        plain = type(batcher) is NoneBatcher
        while True:
            async with self._cond:
                await self._cond.wait_for(
                    lambda: len(scheduler) > 0 or self._draining
                )
                if not len(scheduler):
                    return  # draining and the shared queue is flushed
                now = max(clock.ready_floor(), self._free_at[replica])
                if not plain:
                    hold = batcher.hold_until(scheduler, now)
                    if hold > now:
                        # Hold the idle replica so a batch can gather; on
                        # a virtual clock the hold resolves instantly by
                        # advancing logical time to the launch point.
                        clock.advance_to(hold)
                        held = hold
                    else:
                        held = now
                    entries = batcher.take(scheduler, held)
                    if not entries:
                        raise ServingError(
                            f"batcher {batcher.name!r} returned an empty batch"
                        )
                    now = held
                else:
                    entries = [scheduler.pop()]
            await self._execute(replica, entries, now)

    async def _execute(
        self, replica: int, entries: "list[QueuedRequest]", now: float
    ) -> None:
        clock = self.clock
        head = entries[0]
        # The launch cannot predate ANY member's arrival: on the virtual
        # clock a replica's dispatch time is its own free_at chain, which
        # may lag requests stamped later by the global clock — a batch
        # follower admitted after the head must still pull the start
        # forward, or its sojourn would go non-positive.
        start = max(
            self._free_at[replica],
            now,
            *(entry.request.arrival_s for entry in entries),
        )
        if len(entries) == 1:
            result = head.result
        else:
            # Same coalesced-execution arithmetic as the event loop:
            # head's task padded to the batch's longest member.
            exec_task = _batch_exec_task(entries, self._batcher)
            result = self.engine.serve_batched(exec_task, len(entries))
        finish = start + result.latency_s
        self._free_at[replica] = finish
        clock.advance_to(finish)
        await clock.wait(result.latency_s)
        size = len(entries)
        for index, entry in enumerate(entries):
            response = ServeResponse(
                request=entry.request,
                result=result,
                queue_delay_s=start - entry.request.arrival_s,
                start_s=start,
                finish_s=finish,
                batch_size=size,
                batch_index=index,
            )
            self._summary.observe_served(
                entry.request, result, start, finish, size
            )
            self._summary.note_assignment(replica)
            self.served += 1
            future = self._futures.pop(entry.seq, None)
            if future is not None and not future.done():
                future.set_result(response)

    # -- socket frontend ----------------------------------------------

    async def listen(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Accept JSONL clients over TCP; returns the bound (host, port).

        Protocol: one request per line in the trace schema
        (:func:`~repro.serving.traffic.request_to_json`); one response
        per request in :func:`response_to_json` form, matched by
        ``request_id`` (responses may interleave — clients may pipeline).
        A malformed line gets an ``{"ok": false, "error": ...}`` reply
        and the connection stays up.
        """
        listener = await asyncio.start_server(self._handle_client, host, port)
        self._listeners.append(listener)
        bound = listener.sockets[0].getsockname()
        return bound[0], bound[1]

    async def listen_unix(self, path: str) -> str:
        """Accept JSONL clients over a UNIX socket; returns the path.

        The socket file is removed when the server drains.
        """
        listener = await asyncio.start_unix_server(self._handle_client, path)
        self._listeners.append(listener)
        self._unix_paths.append(path)
        return path

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        pending: "set[asyncio.Task]" = set()

        async def answer(line: str, lineno: int) -> None:
            try:
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ServingError(
                        f"bad socket request line {lineno}: {exc}"
                    ) from exc
                if not isinstance(rec, dict):
                    raise ServingError(
                        f"bad socket request line {lineno}: expected an object"
                    )
                req = request_from_json(
                    rec, where=f"socket request line {lineno}"
                )
                out = response_to_json(await self.submit(req))
            except ServingError as exc:
                out = {"ok": False, "error": str(exc)}
            async with write_lock:
                writer.write((json.dumps(out, sort_keys=True) + "\n").encode())
                await writer.drain()

        lineno = 0
        while True:
            line = await reader.readline()
            if not line:
                break
            if not line.strip():
                continue
            lineno += 1
            task = asyncio.create_task(answer(line.decode(), lineno))
            pending.add(task)
            task.add_done_callback(pending.discard)
        if pending:
            await asyncio.gather(*pending)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass
