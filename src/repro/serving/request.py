"""Request and response records shared by the whole serving stack.

:class:`ServeRequest` is the unit of traffic: one batch-1 RNN inference
plus everything a data-center scheduler needs to know about it — when it
arrived, which tenant sent it, how urgent it is, and its own latency
budget.  :class:`ServeResponse` pairs a request with the platform result
and the timeline the event loop assigned to it.

These live in their own module (rather than in ``engine``) so the
traffic generators, the schedulers, and the event loop can all import
them without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServingError
from repro.serving.result import ServingResult
from repro.workloads.deepbench import RNNTask

__all__ = ["ServeRequest", "ServeResponse"]


@dataclass(frozen=True, slots=True)
class ServeRequest:
    """One serving request: a task plus its arrival time and traffic tags.

    Attributes:
        task: The RNN inference to run.
        arrival_s: When the request enters the system (seconds).
        request_id: Identifier, unique within one stream.  Streams merged
            by :func:`repro.serving.traffic.mix` get globally unique ids;
            the event loop rejects streams with duplicates.
        tenant: Which workload/customer the request belongs to; reports
            break down latency and SLO attainment per tenant.
        priority: Strict-priority class (larger serves first under the
            ``"priority"`` scheduler; ties break FIFO).
        slo_ms: Per-request latency budget.  Overrides the stream-level
            SLO for deadline scheduling and miss accounting; ``None``
            falls back to the stream's ``slo_ms``.

    Example::

        >>> from repro.serving import ServeRequest
        >>> from repro.workloads.deepbench import task
        >>> req = ServeRequest(task=task("lstm", 512, 25),
        ...                    arrival_s=0.5, slo_ms=10.0)
        >>> req.deadline_s()
        0.51
        >>> req.effective_slo_ms(5.0)   # its own SLO wins
        10.0
    """

    task: RNNTask
    arrival_s: float = 0.0
    request_id: int = 0
    tenant: str = "default"
    priority: int = 0
    slo_ms: float | None = None

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ServingError("arrival_s must be >= 0")
        if self.slo_ms is not None and self.slo_ms <= 0:
            raise ServingError("slo_ms must be positive when set")

    def effective_slo_ms(self, default_slo_ms: float | None = None) -> float | None:
        """The request's own SLO, falling back to the stream-level one."""
        return self.slo_ms if self.slo_ms is not None else default_slo_ms

    def deadline_s(self, default_slo_ms: float | None = None) -> float:
        """Absolute deadline implied by the request's (or stream's) SLO."""
        slo = self.effective_slo_ms(default_slo_ms)
        if slo is None:
            return float("inf")
        return self.arrival_s + slo / 1e3


@dataclass(frozen=True, slots=True)
class ServeResponse:
    """The engine's answer: the result plus the request's timeline.

    When dynamic batching coalesced the request with others
    (:mod:`repro.serving.batching`), ``batch_size`` is the size of that
    execution, ``batch_index`` the request's position in it, and
    ``result`` the shared batched result: every request in a batch
    starts and finishes together.

    Example::

        >>> from repro.serving import ServingEngine
        >>> from repro.workloads.deepbench import task
        >>> resp = ServingEngine("gpu").serve(task("lstm", 512, 25))
        >>> resp.queue_delay_s, resp.batch_size
        (0.0, 1)
        >>> resp.sojourn_s == resp.finish_s - resp.request.arrival_s
        True
    """

    request: ServeRequest
    result: ServingResult
    queue_delay_s: float
    start_s: float
    finish_s: float
    #: Size of the batched execution that served this request (1 = unbatched).
    batch_size: int = 1
    #: This request's position within its batch (0 for the head).
    batch_index: int = 0
    #: How the request left the system: ``"ok"`` (served normally),
    #: ``"retried"`` (served after >=1 timeout retry), ``"hedged"`` (the
    #: hedged duplicate finished first), or ``"timeout"`` (retry budget
    #: exhausted; ``start_s == finish_s`` = the give-up instant).
    outcome: str = "ok"
    #: Dispatch attempts this request consumed (1 = no retries).
    attempts: int = 1

    @property
    def service_s(self) -> float:
        """This request's share of accelerator time.

        For an unbatched request this is the platform's batch-1 serving
        latency; for a batched one it is the batch latency divided by the
        batch size, so utilization and sustainable-rate accounting sum to
        the time the accelerator was actually busy.
        """
        return self.result.latency_s / self.batch_size

    @property
    def sojourn_s(self) -> float:
        """Queueing delay + service: what the user experiences."""
        return self.finish_s - self.request.arrival_s

    @property
    def sojourn_ms(self) -> float:
        return self.sojourn_s * 1e3

    @property
    def padded_timesteps(self) -> int:
        """Sequence steps this request was padded by.

        ``result.task`` is the task the platform actually executed; when
        a length-aware batcher coalesced this request with longer ones,
        the execution ran at the batch maximum and the difference is
        padding.  0 for unbatched or same-length executions.
        """
        return self.result.task.timesteps - self.request.task.timesteps

    @property
    def padding_waste_flops(self) -> int:
        """FLOPs spent computing this request's padding (0 = no padding)."""
        return self.result.task.flops - self.request.task.flops
