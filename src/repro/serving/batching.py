"""Dynamic batching policies: coalesce queued same-task requests.

The paper argues (Section 1, Table 6) that a spatial accelerator can
meet stringent latency SLOs at **batch 1**, where throughput-oriented
designs like Brainwave batch requests to stay utilized.  To explore that
latency/throughput frontier instead of asserting it, the event loop
supports pluggable *batchers*: when a replica is free, its batcher
decides how long to wait and how many queued same-task requests to
coalesce into one batched execution (costed by the platform's
``batch_latency_s`` pipeline model — setup once, steady-state per item).

Six policies are built in:

* ``"none"`` — serve one request at a time.  This is the default and is
  bit-for-bit identical to the engine's historical stream behaviour
  (pinned by the golden parity tests).
* ``"size-cap"`` — never wait; when the replica frees up, greedily take
  the head plus any queued requests for the same task, up to
  ``max_batch``.
* ``"time-window"`` — additionally hold an idle replica for a short
  window after the head request arrives, letting a batch accumulate
  before launching (the classic server-side batching knob).
* ``"adaptive"`` — SLO-aware: hold only while the head request's
  deadline allows it, and cap the batch so its projected completion
  (via the platform cost model) still meets that deadline.
* ``"pad"`` — length-aware: coalesce mixed-length requests of one task
  *family*, padding everyone to the batch's longest sequence; the
  padding cost is accounted as ``StreamReport.padding_waste_frac``.
* ``"bucket"`` — length-aware with bounded padding: coalesce only
  within a geometric length band, so a stray long request cannot
  multiply a whole batch's cost.

Batchers register under a string key exactly like platforms and
schedulers do::

    @register_batcher("mypolicy")
    class MyBatcher(Batcher):
        ...

    engine.serve_stream(arrivals, batcher="mypolicy")

Look-ahead policies use :meth:`Scheduler.peek
<repro.serving.scheduler.Scheduler.peek>`, so they compose with any
discipline that implements it — pairing ``batcher="size-cap"`` with
``scheduler="coalesce"`` is particularly effective, since that
discipline already orders same-task requests back to back.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.errors import ServingError
from repro.serving.scheduler import QueuedRequest, Scheduler
from repro.serving.traffic import length_band
from repro.workloads.deepbench import RNNTask

__all__ = [
    "Batcher",
    "NoneBatcher",
    "SizeCapBatcher",
    "TimeWindowBatcher",
    "AdaptiveBatcher",
    "PadBatcher",
    "BucketBatcher",
    "register_batcher",
    "get_batcher",
    "available_batchers",
    "make_batcher",
]

#: Estimated batch latency: (task, batch_size) -> seconds.  Bound by the
#: event loop from the replica's platform cost model.
BatchCost = Callable[[RNNTask, int], float]


class Batcher:
    """Decides when a free replica launches and what it coalesces.

    The event loop consults the replica's batcher at two points:

    * :meth:`hold_until` — the replica is free and its queue non-empty;
      the batcher may delay the launch (returning a time later than
      ``now``) to let a batch accumulate.
    * :meth:`take` — the launch happens; the batcher pops the head
      request plus any compatible (same-task) requests to execute
      together.

    Subclasses usually override only those two hooks.  The loop calls
    :meth:`bind_cost` first, giving the batcher the replica platform's
    batched cost model for SLO-aware decisions.

    Example::

        >>> from repro.serving import get_batcher
        >>> b = get_batcher("size-cap", max_batch=4)
        >>> (b.name, b.max_batch)
        ('size-cap', 4)
    """

    #: Registry key; set by :func:`register_batcher`.
    name: str = "?"

    def __init__(self, *, max_batch: int = 8) -> None:
        if not isinstance(max_batch, int) or max_batch < 1:
            raise ServingError(f"max_batch must be a positive int, got {max_batch!r}")
        self.max_batch = max_batch
        self._cost: BatchCost | None = None

    def bind_cost(self, cost: BatchCost) -> None:
        """Attach the replica's batched cost model (set by the event loop)."""
        self._cost = cost

    def hold_until(self, queue: Scheduler, now: float) -> float:
        """Earliest time the replica should launch its next execution.

        Returning ``now`` (the default) launches immediately; returning a
        later time holds the idle replica so more requests can join the
        batch.  Called only when ``queue`` is non-empty.
        """
        return now

    def take(self, queue: Scheduler, now: float) -> list[QueuedRequest]:
        """Pop the batch to execute: the head plus compatible followers.

        The default implementation pops the scheduler's head, then keeps
        popping while the next request to serve is :meth:`compatible`
        with the head and the batch is under ``max_batch``.
        """
        return self._coalesce(queue, self.max_batch)

    def compatible(self, head: QueuedRequest, candidate: QueuedRequest) -> bool:
        """Whether ``candidate`` may join ``head``'s batch.

        The default requires the *same task* (identical sequence length
        included), so a batch shares one
        :class:`~repro.serving.platform.PreparedModel` and needs no
        padding.  The length-aware policies relax this to the task
        *family* (:class:`PadBatcher`) or a length band of it
        (:class:`BucketBatcher`).
        """
        return candidate.request.task == head.request.task

    def _coalesce(self, queue: Scheduler, limit: int) -> list[QueuedRequest]:
        head = queue.pop()
        batch = [head]
        while len(batch) < limit and len(queue):
            if not self.compatible(head, queue.peek()):
                break
            batch.append(queue.pop())
        return batch


_REGISTRY: dict[str, type[Batcher]] = {}

B = TypeVar("B", bound=type[Batcher])


def register_batcher(name: str) -> Callable[[B], B]:
    """Class decorator: register a :class:`Batcher` under ``name``.

    Registering a different class under an existing name raises
    :class:`~repro.errors.ServingError`, mirroring the platform and
    scheduler registries.

    Example::

        >>> from repro.serving import register_batcher, Batcher
        >>> from repro.serving.batching import unregister_batcher
        >>> @register_batcher("pair")
        ... class PairBatcher(Batcher):
        ...     def __init__(self):
        ...         super().__init__(max_batch=2)
        >>> from repro.serving import available_batchers
        >>> "pair" in available_batchers()
        True
        >>> unregister_batcher("pair")
    """

    def decorate(cls: B) -> B:
        if not (isinstance(cls, type) and issubclass(cls, Batcher)):
            raise ServingError(f"@register_batcher({name!r}) needs a Batcher subclass")
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise ServingError(
                f"batcher {name!r} already registered by {existing.__name__}"
            )
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def unregister_batcher(name: str) -> None:
    """Remove a registration (primarily for tests)."""
    _REGISTRY.pop(name, None)


def available_batchers() -> tuple[str, ...]:
    """Sorted keys of every registered batcher.

    Example::

        >>> from repro.serving import available_batchers
        >>> [b for b in ("adaptive", "none", "size-cap", "time-window")
        ...  if b in available_batchers()]
        ['adaptive', 'none', 'size-cap', 'time-window']
    """
    return tuple(sorted(_REGISTRY))


def get_batcher(name: str, **options: object) -> Batcher:
    """Instantiate a fresh batcher registered under ``name``.

    Keyword options go to the policy constructor (``max_batch``,
    ``window_ms``, ...).

    Example::

        >>> from repro.serving import get_batcher
        >>> get_batcher("time-window", max_batch=4, window_ms=1.0).name
        'time-window'
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ServingError(
            f"unknown batcher {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from None
    return cls(**options)


def make_batcher(
    spec: str | Batcher | Callable[[], Batcher],
    **options: object,
) -> Batcher:
    """Resolve a batcher spec: a registry key, an instance, or a factory.

    Fleets need one batcher *per replica* (each holds per-replica launch
    state), so they call this once per replica with a key or factory.

    Example::

        >>> from repro.serving import make_batcher, SizeCapBatcher
        >>> make_batcher("size-cap", max_batch=2).max_batch
        2
        >>> inst = SizeCapBatcher(max_batch=3)
        >>> make_batcher(inst) is inst
        True
    """
    if isinstance(spec, Batcher):
        if options:
            raise ServingError("batcher options only apply when given a registry key")
        return spec
    if isinstance(spec, str):
        return get_batcher(spec, **options)
    if callable(spec):
        if options:
            raise ServingError("batcher options only apply when given a registry key")
        batcher = spec()
        if not isinstance(batcher, Batcher):
            raise ServingError("batcher factory must return a Batcher")
        return batcher
    raise ServingError(f"cannot build a batcher from {spec!r}")


@register_batcher("none")
class NoneBatcher(Batcher):
    """Serve strictly one request per execution — the batch-1 default.

    This policy never waits and never coalesces, so the stream timeline
    it produces is bit-for-bit identical to the engine's historical
    unbatched behaviour (the golden parity tests pin it).  ``max_batch``
    is accepted for CLI uniformity and ignored.

    Example::

        >>> from repro.serving import get_batcher
        >>> get_batcher("none", max_batch=64).max_batch   # always batch 1
        1
    """

    def __init__(self, *, max_batch: int = 1) -> None:
        super().__init__(max_batch=1)

    def take(self, queue: Scheduler, now: float) -> list[QueuedRequest]:
        return [queue.pop()]


@register_batcher("size-cap")
class SizeCapBatcher(Batcher):
    """Greedy same-task coalescing up to ``max_batch``; never waits.

    When the replica frees up it takes whatever compatible backlog is
    already queued.  Under light load this degenerates to batch 1 (no
    added latency); under backlog it drains at the batched rate.

    Example::

        >>> from repro.serving import ServingEngine, uniform_arrivals
        >>> from repro.workloads.deepbench import task
        >>> t = task("lstm", 512, 25)
        >>> burst = uniform_arrivals(t, rate_per_s=1e6, n_requests=16)
        >>> report = ServingEngine("gpu").serve_stream(
        ...     burst, batcher="size-cap", max_batch=8)
        >>> report.mean_batch_size > 1.0
        True
    """


@register_batcher("time-window")
class TimeWindowBatcher(Batcher):
    """Hold an idle replica up to ``window_ms`` after the head arrives.

    The head request waits at most ``window_ms`` beyond its arrival (or
    not at all once ``max_batch`` requests are queued); followers that
    arrive inside the window join its batch.  This trades bounded added
    latency for throughput — the standard server-side batching knob.

    Example::

        >>> from repro.serving import get_batcher
        >>> b = get_batcher("time-window", window_ms=2.0)
        >>> (b.name, b.window_ms)
        ('time-window', 2.0)
    """

    def __init__(self, *, max_batch: int = 8, window_ms: float = 0.5) -> None:
        super().__init__(max_batch=max_batch)
        if window_ms < 0:
            raise ServingError("window_ms must be >= 0")
        self.window_ms = window_ms

    def hold_until(self, queue: Scheduler, now: float) -> float:
        if len(queue) >= self.max_batch:
            return now
        head = queue.peek()
        return max(now, head.request.arrival_s + self.window_ms / 1e3)


@register_batcher("pad")
class PadBatcher(Batcher):
    """Greedy family coalescing with padding: batch mixed-length
    same-family requests, executing everyone at the batch's longest
    length.

    This is what batched RNN serving on throughput-oriented hardware
    actually does — and what it costs: the execution is billed at the
    *padded* length, so every shorter request's excess shows up in
    :attr:`StreamReport.padding_waste_frac
    <repro.serving.engine.StreamReport.padding_waste_frac>`.  Like
    ``size-cap``, it never holds an idle replica.

    Example::

        >>> from repro.serving import ServingEngine, ZipfLength, uniform_arrivals
        >>> from repro.workloads.deepbench import task
        >>> burst = uniform_arrivals(task("gru", 512, 25), rate_per_s=1e6,
        ...                          n_requests=16, lengths=ZipfLength(10, 200))
        >>> report = ServingEngine("gpu").serve_stream(
        ...     burst, batcher="pad", max_batch=8)
        >>> (report.mean_batch_size > 1.0, report.padding_waste_frac > 0.0)
        (True, True)
    """

    def compatible(self, head: QueuedRequest, candidate: QueuedRequest) -> bool:
        return (
            candidate.request.task.family_key == head.request.task.family_key
        )


@register_batcher("bucket")
class BucketBatcher(Batcher):
    """Length-bucketed coalescing: batch same-family requests only within
    a geometric length band, so padding is bounded by the band ratio.

    The classic fix for padded batching (cf. bucketed batching in RNN
    serving systems): requests whose lengths fall in the same
    ``[base^k, base^(k+1))`` band coalesce and pad at most ``base``-fold;
    a stray long request can no longer multiply a whole batch's cost.
    On heavy-tailed (zipf) length mixes this beats ``pad`` on both
    wasted FLOPs and throughput.

    Example::

        >>> from repro.serving import get_batcher
        >>> b = get_batcher("bucket", max_batch=8, band_base=2.0)
        >>> (b.name, b.band_base)
        ('bucket', 2.0)
        >>> (b.band(10), b.band(15), b.band(16))
        ((8, 15), (8, 15), (16, 31))
    """

    def __init__(self, *, max_batch: int = 8, band_base: float = 2.0) -> None:
        super().__init__(max_batch=max_batch)
        if band_base <= 1.0:
            raise ServingError("band_base must be > 1")
        self.band_base = band_base

    def band(self, timesteps: int) -> tuple[int, int]:
        """The inclusive geometric length band containing ``timesteps``."""
        return length_band(timesteps, self.band_base)

    def compatible(self, head: QueuedRequest, candidate: QueuedRequest) -> bool:
        h, c = head.request.task, candidate.request.task
        return h.family_key == c.family_key and self.band(
            h.timesteps
        ) == self.band(c.timesteps)


@register_batcher("adaptive")
class AdaptiveBatcher(TimeWindowBatcher):
    """SLO-aware batching: wait and coalesce only as deadlines allow.

    Extends the time-window policy two ways, both driven by the head
    request's absolute deadline (arrival + its own or the stream SLO):

    * the hold is clipped so that a ``max_batch`` execution, costed by
      the platform's batched model, would still finish by the deadline;
    * :meth:`take` stops growing the batch once one more request would
      push the projected completion past the deadline — unless the
      head's deadline is already lost even at batch 1, in which case the
      policy switches to drain mode and batches maximally so the backlog
      (and everyone else's deadline) recovers sooner.

    With no SLO configured (infinite deadlines) it behaves exactly like
    ``"time-window"``.

    Example::

        >>> from repro.serving import get_batcher
        >>> b = get_batcher("adaptive", max_batch=16, window_ms=5.0)
        >>> (b.name, b.max_batch)
        ('adaptive', 16)
    """

    def __init__(self, *, max_batch: int = 8, window_ms: float = 2.0) -> None:
        super().__init__(max_batch=max_batch, window_ms=window_ms)

    def hold_until(self, queue: Scheduler, now: float) -> float:
        launch = super().hold_until(queue, now)
        head = queue.peek()
        if self._cost is not None and head.deadline_s != float("inf"):
            latest = head.deadline_s - self._cost(
                head.request.task, self.max_batch
            )
            launch = min(launch, latest)
        return max(now, launch)

    def take(self, queue: Scheduler, now: float) -> list[QueuedRequest]:
        head = queue.peek()
        limit = self.max_batch
        if self._cost is not None and head.deadline_s != float("inf"):
            task = head.request.task
            if now + self._cost(task, 1) <= head.deadline_s:
                limit = 1
                while (
                    limit < self.max_batch
                    and now + self._cost(task, limit + 1) <= head.deadline_s
                ):
                    limit += 1
            # else: the head's deadline is already lost even at batch 1 —
            # drain mode: batch maximally for throughput so the backlog
            # (and everyone else's deadline) recovers sooner.
        return self._coalesce(queue, limit)
