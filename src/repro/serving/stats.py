"""O(1)-memory online statistics for million-request streams.

:class:`~repro.serving.engine.StreamReport` materializes every
:class:`~repro.serving.request.ServeResponse` and sorts full sojourn
lists, so its memory grows linearly with the stream — fine for the
~10k-request runs the paper's tables need, infeasible for the
datacenter-scale traces the ROADMAP targets.  This module is the O(1)
alternative: :class:`StreamSummary` mirrors the ``StreamReport`` API
(percentiles, SLO attainment, padding waste, per-tenant /
per-priority / per-length-band slices) from a fixed-size set of online
accumulators, so ``serve_stream(..., mode="summary")`` can consume a
10M-request stream without ever holding it.

Design:

* **One accumulator per request class.**  Requests are grouped by
  ``(task, tenant, priority, slo_ms)``; each class keeps exact integer
  counters (count, SLO misses, batch sizes, executed/useful FLOPs),
  exact running float sums (sojourn, queueing delay, service time), and
  exact min/max.  Every report-level figure that is a sum or a count —
  ``n_requests``, ``slo_attainment``, ``mean_batch_size``,
  ``padding_waste_frac`` — therefore matches the materialized report
  *exactly*; float means agree to reordering (summation order differs).
  The root summary and every slice are rollups over class accumulators,
  so one update per request feeds all breakdowns at once.
* **Fixed-bucket log histogram for quantiles** (the mergeable
  alternative to the P² estimator, whose markers cannot be combined
  across slices).  Sojourns land in geometric buckets of ratio
  ``10^(1/128)`` (~1.8% wide), so a quantile read is within ~1% of the
  exact order statistic; each class additionally keeps its first
  :data:`EXACT_SAMPLE_CAP` sojourns verbatim, so small streams — and
  small slices of huge streams — report *exact* numpy-style
  interpolated percentiles.

Example::

    >>> from repro.serving import ServingEngine, uniform_arrivals
    >>> from repro.workloads.deepbench import task
    >>> summary = ServingEngine("gpu").serve_stream(
    ...     uniform_arrivals(task("lstm", 512, 25),
    ...                      rate_per_s=100, n_requests=50),
    ...     slo_ms=5.0, mode="summary")
    >>> (summary.n_requests, summary.scheduler, summary.batcher)
    (50, 'fifo', 'none')
    >>> summary.p50_ms <= summary.p99_ms
    True
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable

from repro.errors import ServingError
from repro.platforms import ELECTRICITY_USD_PER_KWH, device_usd_per_hour, tdp_of
from repro.serving.request import ServeRequest
from repro.serving.result import FaultStats, ServingResult
from repro.serving.traffic import length_band

if TYPE_CHECKING:  # pragma: no cover
    from repro.serving.autoscaler import ScaleEvent
    from repro.workloads.deepbench import RNNTask

__all__ = ["StreamSummary", "percentile", "EXACT_SAMPLE_CAP"]

#: Per-class exact reservoir: a class (and any slice made only of such
#: classes) with at most this many requests reports exact percentiles.
EXACT_SAMPLE_CAP = 64

#: Histogram geometry: log10-spaced buckets covering sojourns from
#: 1e-4 ms to 1e7 ms at 128 buckets per decade (~1.8% bucket ratio).
_HIST_LO_EXP = -4.0
_HIST_PER_DECADE = 128
_HIST_BUCKETS = 11 * _HIST_PER_DECADE
_HIST_RATIO = 10.0 ** (1.0 / _HIST_PER_DECADE)


def _bucket_index(value_ms: float) -> int:
    """Histogram bucket for a positive sojourn (clamped at both ends)."""
    idx = int((math.log10(value_ms) - _HIST_LO_EXP) * _HIST_PER_DECADE)
    if idx < 0:
        return 0
    if idx >= _HIST_BUCKETS:
        return _HIST_BUCKETS - 1
    return idx


def percentile(sorted_values: "list[float] | tuple[float, ...]", q: float) -> float:
    """Linear-interpolation percentile (numpy's default) on sorted data.

    Example::

        >>> from repro.serving.stats import percentile
        >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
        2.5
    """
    if not sorted_values:
        raise ServingError("percentile of an empty stream")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (q / 100.0) * (len(sorted_values) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    frac = rank - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


class _ClassAcc:
    """Online accumulator for one request class.

    A class is the finest slice the summary can report:
    ``(task, tenant, priority, request-level slo, outcome)``.
    Everything the summary (or any of its tenant/priority/length-band/
    outcome rollups) exposes is derived by merging these.  ``outcome``
    is ``"ok"`` everywhere outside fault-injected runs, so faultless
    grouping is unchanged.
    """

    __slots__ = (
        "tenant",
        "priority",
        "outcome",
        "slo_key",
        "eff_slo_ms",
        "timesteps",
        "useful_flops",
        "n",
        "sojourn_sum_ms",
        "queue_sum_s",
        "service_sum_s",
        "batch_sum",
        "batch_max",
        "miss",
        "exec_flops",
        "max_arrival_s",
        "max_finish_s",
        "min_sojourn_ms",
        "max_sojourn_ms",
        "samples",
        "counts",
        "plat",
    )

    def __init__(
        self,
        tenant: str,
        priority: int,
        slo_key: float | None,
        eff_slo_ms: float | None,
        timesteps: int,
        useful_flops: int,
        outcome: str = "ok",
    ) -> None:
        self.tenant = tenant
        self.priority = priority
        self.outcome = outcome
        #: The request-level ``slo_ms`` tag (before the stream fallback).
        self.slo_key = slo_key
        #: The SLO requests of this class are judged against (request
        #: tag, falling back to the stream SLO), ``None`` when neither
        #: is configured.
        self.eff_slo_ms = eff_slo_ms
        self.timesteps = timesteps
        self.useful_flops = useful_flops
        self.n = 0
        self.sojourn_sum_ms = 0.0
        self.queue_sum_s = 0.0
        self.service_sum_s = 0.0
        self.batch_sum = 0
        self.batch_max = 0
        self.miss = 0
        self.exec_flops = 0
        self.max_arrival_s = 0.0
        self.max_finish_s = 0.0
        self.min_sojourn_ms = math.inf
        self.max_sojourn_ms = 0.0
        #: Exact sojourns until the class outgrows the reservoir, then
        #: ``None`` (spilled into ``counts``).
        self.samples: list[float] | None = []
        self.counts: list[int] | None = None
        #: Executing platform -> [service_sum_s, count]: which hardware
        #: actually served this class's requests (energy attribution and
        #: per-platform capacity on mixed fleets; one entry when the
        #: fleet is homogeneous).
        self.plat: dict[str, list] = {}

    def add_sojourn(self, sojourn_ms: float) -> None:
        samples = self.samples
        if samples is not None:
            samples.append(sojourn_ms)
            if len(samples) > EXACT_SAMPLE_CAP:
                self._promote()
        else:
            self.counts[_bucket_index(sojourn_ms)] += 1  # type: ignore[index]

    def _promote(self) -> None:
        """Spill the exact reservoir into histogram buckets."""
        counts = [0] * _HIST_BUCKETS
        for value in self.samples:  # type: ignore[union-attr]
            counts[_bucket_index(value)] += 1
        self.counts = counts
        self.samples = None

    def clone(self) -> "_ClassAcc":
        """A deep-enough copy: merging into the clone never mutates the
        original (the reservoir/histogram lists are copied)."""
        new = _ClassAcc(
            tenant=self.tenant,
            priority=self.priority,
            slo_key=self.slo_key,
            eff_slo_ms=self.eff_slo_ms,
            timesteps=self.timesteps,
            useful_flops=self.useful_flops,
            outcome=self.outcome,
        )
        for name in (
            "n", "sojourn_sum_ms", "queue_sum_s", "service_sum_s",
            "batch_sum", "batch_max", "miss", "exec_flops",
            "max_arrival_s", "max_finish_s", "min_sojourn_ms",
            "max_sojourn_ms",
        ):
            setattr(new, name, getattr(self, name))
        new.samples = None if self.samples is None else list(self.samples)
        new.counts = None if self.counts is None else list(self.counts)
        new.plat = {name: list(entry) for name, entry in self.plat.items()}
        return new

    def absorb(self, other: "_ClassAcc") -> None:
        """Fold another accumulator of the *same class* into this one.

        Counters and sums add; extrema combine; the reservoir stays
        exact while the combined count fits :data:`EXACT_SAMPLE_CAP` and
        promotes to histogram buckets beyond it — the same threshold a
        single-stream accumulator applies, so a merged summary is in the
        identical samples-vs-counts state as the run it reassembles
        (which is what makes merged quantiles match the single-process
        run exactly, not just within tolerance).
        """
        self.n += other.n
        self.sojourn_sum_ms += other.sojourn_sum_ms
        plat = self.plat
        for name, entry in other.plat.items():
            mine = plat.get(name)
            if mine is None:
                plat[name] = list(entry)
            else:
                mine[0] += entry[0]
                mine[1] += entry[1]
        self.queue_sum_s += other.queue_sum_s
        self.service_sum_s += other.service_sum_s
        self.batch_sum += other.batch_sum
        self.miss += other.miss
        self.exec_flops += other.exec_flops
        if other.batch_max > self.batch_max:
            self.batch_max = other.batch_max
        if other.max_arrival_s > self.max_arrival_s:
            self.max_arrival_s = other.max_arrival_s
        if other.max_finish_s > self.max_finish_s:
            self.max_finish_s = other.max_finish_s
        if other.min_sojourn_ms < self.min_sojourn_ms:
            self.min_sojourn_ms = other.min_sojourn_ms
        if other.max_sojourn_ms > self.max_sojourn_ms:
            self.max_sojourn_ms = other.max_sojourn_ms
        if self.samples is not None and other.samples is not None:
            self.samples.extend(other.samples)
            if len(self.samples) > EXACT_SAMPLE_CAP:
                self._promote()
            return
        # At least one side already spilled: the result is a histogram.
        if self.samples is not None:
            self._promote()
        counts = self.counts
        if other.counts is not None:
            other_counts = other.counts
            for idx in range(_HIST_BUCKETS):
                c = other_counts[idx]
                if c:
                    counts[idx] += c  # type: ignore[index]
        else:
            for value in other.samples:  # type: ignore[union-attr]
                counts[_bucket_index(value)] += 1  # type: ignore[index]


class StreamSummary:
    """O(1)-memory mirror of :class:`~repro.serving.engine.StreamReport`.

    Produced by ``serve_stream(..., mode="summary")``: the event loop
    feeds every completed request through :meth:`observe_served` and
    drops it, so memory is bounded by the number of distinct request
    *classes* (task x tenant x priority x SLO tag), not by the stream
    length.  Counts and sums (``n_requests``, ``slo_attainment``,
    ``mean_batch_size``, ``padding_waste_frac``, per-slice request
    counts) match the materialized report exactly; ``p50_ms`` /
    ``p99_ms`` are histogram estimates within ~1% (exact while a slice
    holds at most :data:`EXACT_SAMPLE_CAP` requests).

    ``per_tenant()`` / ``per_priority()`` / ``per_length_band()`` return
    sub-summaries over the same accumulators — slicing allocates no
    per-request state either.

    Example::

        >>> from repro.serving import ServingEngine, poisson_arrivals
        >>> from repro.workloads.deepbench import task
        >>> summary = ServingEngine("gpu").serve_stream(
        ...     poisson_arrivals(task("lstm", 512, 25), rate_per_s=500,
        ...                      n_requests=200, seed=1, tenant="tts"),
        ...     slo_ms=5.0, mode="summary")
        >>> summary.tenants
        ('tts',)
        >>> summary.per_tenant()["tts"].n_requests
        200
    """

    def __init__(
        self,
        platform: str,
        *,
        slo_ms: float | None = None,
        scheduler: str = "fifo",
        batcher: str = "none",
        band_base: float = 2.0,
        faults: str = "none",
        _classes: "dict[tuple, _ClassAcc] | None" = None,
    ) -> None:
        if band_base <= 1.0:
            raise ServingError("band_base must be > 1")
        self.platform = platform
        self.slo_ms = slo_ms
        self.scheduler = scheduler
        self.batcher = batcher
        self.band_base = band_base
        self.faults = faults
        self.fault_stats = FaultStats()
        self.scale_events: "tuple[ScaleEvent, ...]" = ()
        self.policy: str | None = None
        self.replicas = 1
        self.active_replicas = 1
        #: Explicit per-replica platform roster for mixed fleets; empty
        #: means homogeneous (every replica is ``platform``).
        self._platforms: "tuple[str, ...]" = ()
        self._classes: dict[tuple, _ClassAcc] = (
            {} if _classes is None else _classes
        )
        self._replica_counts: list[int] = []
        #: Cache of executed-task FLOPs (task -> flops); the ``flops``
        #: property walks the task shape, far too slow per request.
        self._flops: dict["RNNTask", int] = {}
        # Identity fast path: streams overwhelmingly repeat the same
        # (task, tenant, priority, slo) class back to back.
        self._last_task: "RNNTask | None" = None
        self._last_req_key: tuple | None = None
        self._last_acc: _ClassAcc | None = None

    # -- ingestion --------------------------------------------------------

    def _flops_of(self, task: "RNNTask") -> int:
        flops = self._flops.get(task)
        if flops is None:
            flops = task.flops
            self._flops[task] = flops
        return flops

    def _class_for(self, request: ServeRequest, outcome: str) -> _ClassAcc:
        task = request.task
        key = (task, request.tenant, request.priority, request.slo_ms, outcome)
        acc = self._classes.get(key)
        if acc is None:
            slo = request.slo_ms
            eff = slo if slo is not None else self.slo_ms
            acc = _ClassAcc(
                tenant=request.tenant,
                priority=request.priority,
                slo_key=slo,
                eff_slo_ms=eff,
                timesteps=task.timesteps,
                useful_flops=self._flops_of(task),
                outcome=outcome,
            )
            self._classes[key] = acc
        self._last_task = task
        self._last_req_key = (
            request.tenant, request.priority, request.slo_ms, outcome
        )
        self._last_acc = acc
        return acc

    def observe_served(
        self,
        request: ServeRequest,
        result: ServingResult,
        start_s: float,
        finish_s: float,
        batch_size: int,
        outcome: str = "ok",
    ) -> None:
        """Fold one completed request into the summary.

        Called by the event loop (in any completion order) with the same
        fields a :class:`~repro.serving.request.ServeResponse` would
        carry; ``result`` is the executed (possibly padded, possibly
        batched) platform result, ``outcome`` how the request left the
        system (always ``"ok"`` outside fault-injected runs).
        """
        task = request.task
        acc = self._last_acc
        if (
            acc is None
            or task is not self._last_task
            or (request.tenant, request.priority, request.slo_ms, outcome)
            != self._last_req_key
        ):
            acc = self._class_for(request, outcome)
        arrival = request.arrival_s
        sojourn_ms = (finish_s - arrival) * 1e3
        acc.n += 1
        acc.sojourn_sum_ms += sojourn_ms
        acc.queue_sum_s += start_s - arrival
        service_s = result.latency_s / batch_size
        acc.service_sum_s += service_s
        entry = acc.plat.get(result.platform)
        if entry is None:
            acc.plat[result.platform] = [service_s, 1]
        else:
            entry[0] += service_s
            entry[1] += 1
        acc.batch_sum += batch_size
        if batch_size > acc.batch_max:
            acc.batch_max = batch_size
        exec_task = result.task
        acc.exec_flops += (
            acc.useful_flops if exec_task is task else self._flops_of(exec_task)
        )
        eff = acc.eff_slo_ms
        if eff is not None and sojourn_ms > eff:
            acc.miss += 1
        if arrival > acc.max_arrival_s:
            acc.max_arrival_s = arrival
        if finish_s > acc.max_finish_s:
            acc.max_finish_s = finish_s
        if sojourn_ms < acc.min_sojourn_ms:
            acc.min_sojourn_ms = sojourn_ms
        if sojourn_ms > acc.max_sojourn_ms:
            acc.max_sojourn_ms = sojourn_ms
        acc.add_sojourn(sojourn_ms)

    def observe_response(self, response) -> None:
        """Fold a materialized :class:`ServeResponse` into the summary.

        Example::

            >>> from repro.serving import ServingEngine
            >>> from repro.serving.stats import StreamSummary
            >>> from repro.workloads.deepbench import task
            >>> resp = ServingEngine("gpu").serve(task("lstm", 512, 25))
            >>> summary = StreamSummary("gpu", slo_ms=5.0)
            >>> summary.observe_response(resp)
            >>> summary.n_requests
            1
        """
        self.observe_served(
            response.request,
            response.result,
            response.start_s,
            response.finish_s,
            response.batch_size,
            outcome=response.outcome,
        )

    def note_assignment(self, replica: int, count: int = 1) -> None:
        """Count ``count`` requests dispatched to ``replica``.

        The general event loop calls this per arrival; the
        single-replica fast paths call it once at the end with the
        stream total.
        """
        counts = self._replica_counts
        if replica >= len(counts):
            counts.extend([0] * (replica + 1 - len(counts)))
        counts[replica] += count

    def finalize(
        self,
        *,
        scale_events: "tuple[ScaleEvent, ...]" = (),
        replicas: int = 1,
        active_replicas: int = 1,
        policy: str | None = None,
        fault_stats: "FaultStats | None" = None,
        platforms: "tuple[str, ...]" = (),
    ) -> "StreamSummary":
        """Attach end-of-stream metadata; raises on an empty stream."""
        if not self._classes:
            raise ServingError("stream produced no responses")
        self.scale_events = scale_events
        self.replicas = replicas
        self.active_replicas = active_replicas
        self.policy = policy
        if fault_stats is not None:
            self.fault_stats = fault_stats
        self._platforms = tuple(platforms)
        return self

    # -- merging ----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when no request has been folded in yet.

        An empty summary is the merge identity: it contributes no
        classes, no replicas, and no assignments.
        """
        return not self._classes

    def _check_mergeable(self, other: "StreamSummary") -> None:
        for attr in (
            "platform", "slo_ms", "scheduler", "batcher", "band_base", "faults",
        ):
            mine, theirs = getattr(self, attr), getattr(other, attr)
            if mine != theirs:
                raise ServingError(
                    f"cannot merge summaries with different {attr}: "
                    f"{mine!r} vs {theirs!r}"
                )

    def merge(self, *others: "StreamSummary") -> "StreamSummary":
        """Combine summaries of disjoint sub-streams into one report.

        This is what makes :class:`StreamSummary` the unit of *sharded*
        simulation (:mod:`repro.serving.parallel`): run one event loop
        per shard, summarize each shard online, then reassemble.  The
        operation is associative and never mutates its inputs, so shard
        results can be merged in any grouping (a seeded fuzz test pins
        this over random splits).  All inputs must share the stream
        configuration (platform, scheduler, batcher, SLO, band base).

        Counters and sums (``n_requests``, SLO misses, batch sizes,
        padding FLOPs) add exactly.  Per-class reservoirs concatenate
        while the combined class stays within
        :data:`EXACT_SAMPLE_CAP` and spill into the (bucket-wise
        additive) log histogram beyond it — the same promotion rule a
        single-stream accumulator applies, so the merged quantile state
        equals the single-process run's.  Replica accounting
        concatenates: shard *i*'s replicas follow shard *i-1*'s in
        ``per_replica_counts``, and ``replicas``/``active_replicas``
        sum.  Empty summaries (no observed requests) are merge
        identities.

        Example::

            >>> from repro.serving import ServingEngine, uniform_arrivals
            >>> from repro.workloads.deepbench import task
            >>> t = task("lstm", 512, 25)
            >>> def run(n, start):
            ...     return ServingEngine("gpu").serve_stream(
            ...         uniform_arrivals(t, rate_per_s=100, n_requests=n,
            ...                          start_s=start),
            ...         slo_ms=5.0, mode="summary")
            >>> merged = run(30, 0.0).merge(run(20, 1.7))
            >>> (merged.n_requests, merged.n_replicas)
            (50, 2)
        """
        merged = StreamSummary(
            self.platform,
            slo_ms=self.slo_ms,
            scheduler=self.scheduler,
            batcher=self.batcher,
            band_base=self.band_base,
            faults=self.faults,
        )
        parts = (self, *others)
        events: list = []
        policies = set()
        replicas = active = 0
        counts: list[int] = []
        roster: list[str] = []
        explicit_roster = False
        fault_stats = FaultStats()
        for part in parts:
            self._check_mergeable(part)
            for key, acc in part._classes.items():
                mine = merged._classes.get(key)
                if mine is None:
                    merged._classes[key] = acc.clone()
                else:
                    mine.absorb(acc)
            events.extend(part.scale_events)
            policies.add(part.policy)
            fault_stats = fault_stats.merge(part.fault_stats)
            if not part.is_empty:
                replicas += part.replicas
                active += part.active_replicas
                counts.extend(part.per_replica_counts)
                # Rosters concatenate in shard order, exactly like
                # per_replica_counts; shards without an explicit roster
                # contribute their homogeneous expansion.
                if part._platforms:
                    explicit_roster = True
                roster.extend(part.replica_platforms)
        merged.fault_stats = fault_stats
        merged._replica_counts = counts
        if explicit_roster:
            merged._platforms = tuple(roster)
        merged.replicas = max(replicas, 1)
        merged.active_replicas = max(active, 1)
        merged.scale_events = tuple(sorted(events, key=lambda e: e.time_s))
        merged.policy = policies.pop() if len(policies) == 1 else None
        return merged

    # -- folded counters --------------------------------------------------

    def _accs(self) -> "list[_ClassAcc]":
        return list(self._classes.values())

    @property
    def n_requests(self) -> int:
        return sum(acc.n for acc in self._accs())

    @property
    def n_replicas(self) -> int:
        return self.replicas

    @property
    def per_replica_counts(self) -> tuple[int, ...]:
        counts = list(self._replica_counts)
        counts.extend([0] * (self.replicas - len(counts)))
        return tuple(counts)

    @property
    def mean_ms(self) -> float:
        accs = self._accs()
        n = sum(acc.n for acc in accs)
        if n == 0:
            raise ServingError("stream produced no responses")
        return sum(acc.sojourn_sum_ms for acc in accs) / n

    @property
    def mean_queue_delay_ms(self) -> float:
        accs = self._accs()
        return sum(acc.queue_sum_s for acc in accs) * 1e3 / sum(
            acc.n for acc in accs
        )

    @property
    def mean_service_ms(self) -> float:
        accs = self._accs()
        return sum(acc.service_sum_s for acc in accs) * 1e3 / sum(
            acc.n for acc in accs
        )

    @property
    def mean_batch_size(self) -> float:
        accs = self._accs()
        return sum(acc.batch_sum for acc in accs) / sum(acc.n for acc in accs)

    @property
    def max_batch_size(self) -> int:
        return max(acc.batch_max for acc in self._accs())

    @property
    def throughput_rps(self) -> float:
        makespan = max(acc.max_finish_s for acc in self._accs())
        if makespan <= 0:
            return math.inf
        return self.n_requests / makespan

    @property
    def padding_waste_frac(self) -> float:
        accs = self._accs()
        executed = sum(acc.exec_flops for acc in accs)
        useful = sum(acc.n * acc.useful_flops for acc in accs)
        if executed <= 0:
            return 0.0
        return (executed - useful) / executed

    @property
    def offered_rate_per_s(self) -> float:
        span = max(acc.max_arrival_s for acc in self._accs())
        if span > 0:
            return self.n_requests / span
        return 0.0 if self.n_requests == 1 else math.inf

    @property
    def max_rate_per_s(self) -> float:
        """Sustainable rate of the serving capacity the stream used —
        mirroring ``StreamReport`` / ``FleetReport``.

        Homogeneous: one over the mean service time, times the (peak)
        replica count — the exact historical formula.  Mixed fleets sum
        each replica's own ``1 / mean_service`` under its platform
        (platforms that served nothing fall back to the fleet mean).
        """
        roster = self.replica_platforms
        if len(set(roster)) <= 1:
            return self.replicas / (self.mean_service_ms / 1e3)
        service, count = self._per_platform_service()
        fleet_mean = sum(service.values()) / self.n_requests
        rate = 0.0
        for name in roster:
            served = count.get(name, 0)
            mean = service[name] / served if served else fleet_mean
            rate += 1.0 / mean
        return rate

    @property
    def saturated(self) -> bool:
        return self.offered_rate_per_s >= self.max_rate_per_s

    # -- energy / TCO accounting ------------------------------------------

    def _per_platform_service(self) -> "tuple[dict[str, float], dict[str, int]]":
        service: dict[str, float] = {}
        count: dict[str, int] = {}
        for acc in self._accs():
            for name, entry in acc.plat.items():
                service[name] = service.get(name, 0.0) + entry[0]
                count[name] = count.get(name, 0) + entry[1]
        return service, count

    @property
    def makespan_s(self) -> float:
        """Wall-clock span of the stream: the last observed finish."""
        return max(acc.max_finish_s for acc in self._accs())

    @property
    def replica_platforms(self) -> "tuple[str, ...]":
        """Platform key of every provisioned replica, in replica order
        (shard order after a merge)."""
        if self._platforms:
            return self._platforms
        return (self.platform,) * self.replicas

    @property
    def per_platform_counts(self) -> "dict[str, int]":
        """Requests served per *executing* platform; sums to
        ``n_requests``."""
        _service, count = self._per_platform_service()
        return dict(sorted(count.items()))

    @property
    def energy_j(self) -> float:
        """Busy energy: accelerator-seconds × that platform's power
        draw, exactly as on :class:`~repro.serving.engine.StreamReport`."""
        service, _count = self._per_platform_service()
        return sum(
            seconds * tdp_of(name) for name, seconds in service.items()
        )

    @property
    def joules_per_request(self) -> float:
        """Busy energy per inference — the paper-style J/request figure."""
        return self.energy_j / self.n_requests

    @property
    def fleet_watt_hours(self) -> float:
        """Provisioned energy: every replica powered for the makespan
        (idle or not) — the electricity the TCO model bills."""
        watts = sum(tdp_of(name) for name in self.replica_platforms)
        return watts * self.makespan_s / 3600.0

    @property
    def cost_usd_per_1m_requests(self) -> float:
        """Electricity plus amortized capital for the provisioned fleet,
        normalized to one million requests — the capacity planner's
        objective (see ``StreamReport.cost_usd_per_1m_requests``)."""
        hours = self.makespan_s / 3600.0
        energy_usd = self.fleet_watt_hours / 1e3 * ELECTRICITY_USD_PER_KWH
        capital_usd = hours * sum(
            device_usd_per_hour(name) for name in self.replica_platforms
        )
        return (energy_usd + capital_usd) / self.n_requests * 1e6

    @property
    def slo_miss_rate(self) -> float:
        accs = self._accs()
        if any(acc.eff_slo_ms is None for acc in accs):
            raise ServingError("no SLO configured for this stream")
        return sum(acc.miss for acc in accs) / sum(acc.n for acc in accs)

    @property
    def slo_attainment(self) -> float:
        return 1.0 - self.slo_miss_rate

    @property
    def slo_attained(self) -> bool:
        return self.slo_ms is not None and self.p99_ms <= self.slo_ms

    def uniform_slo_ms(self) -> float | None:
        """The single request-level SLO every request carried, if any."""
        tags = {acc.slo_key for acc in self._accs()}
        if len(tags) == 1:
            return tags.pop()
        return None

    # -- quantiles --------------------------------------------------------

    def percentile_ms(self, q: float) -> float:
        """Sojourn percentile: exact while every class is inside its
        reservoir, histogram-estimated (~1%) beyond."""
        accs = self._accs()
        if not accs:
            raise ServingError("percentile of an empty stream")
        if all(acc.samples is not None for acc in accs):
            values: list[float] = []
            for acc in accs:
                values.extend(acc.samples)  # type: ignore[arg-type]
            values.sort()
            return percentile(values, q)
        counts = [0] * _HIST_BUCKETS
        for acc in accs:
            if acc.counts is not None:
                bucket_counts = acc.counts
                for idx in range(_HIST_BUCKETS):
                    c = bucket_counts[idx]
                    if c:
                        counts[idx] += c
            else:
                for value in acc.samples:  # type: ignore[union-attr]
                    counts[_bucket_index(value)] += 1
        total = sum(counts)
        rank = (q / 100.0) * (total - 1)
        cum = 0
        estimate = self.max_sojourn_ms
        for idx, c in enumerate(counts):
            if not c:
                continue
            if cum + c > rank:
                frac = (rank - cum + 0.5) / c
                lo_edge = 10.0 ** (_HIST_LO_EXP + idx / _HIST_PER_DECADE)
                estimate = lo_edge * _HIST_RATIO**frac
                break
            cum += c
        lo, hi = self.min_sojourn_ms, self.max_sojourn_ms
        return min(max(estimate, lo), hi)

    @property
    def min_sojourn_ms(self) -> float:
        return min(acc.min_sojourn_ms for acc in self._accs())

    @property
    def max_sojourn_ms(self) -> float:
        return max(acc.max_sojourn_ms for acc in self._accs())

    @property
    def p50_ms(self) -> float:
        return self.percentile_ms(50)

    @property
    def p99_ms(self) -> float:
        return self.percentile_ms(99)

    # -- slices -----------------------------------------------------------

    def _subset(self, accs: Iterable[tuple]) -> "StreamSummary":
        sub = StreamSummary(
            self.platform,
            slo_ms=self.slo_ms,
            scheduler=self.scheduler,
            batcher=self.batcher,
            band_base=self.band_base,
            faults=self.faults,
            _classes={key: self._classes[key] for key in accs},
        )
        # Stream-wide metadata (scale events, fault counters) is not
        # attributable to a slice; slices keep the identities.
        sub.scale_events = ()
        return sub

    @property
    def tenants(self) -> tuple[str, ...]:
        return tuple(sorted({acc.tenant for acc in self._accs()}))

    @property
    def priorities(self) -> tuple[int, ...]:
        return tuple(sorted({acc.priority for acc in self._accs()}))

    def per_tenant(self) -> "dict[str, StreamSummary]":
        """Sub-summaries keyed by tenant (same online accumulators)."""
        groups: dict[str, list[tuple]] = {}
        for key, acc in self._classes.items():
            groups.setdefault(acc.tenant, []).append(key)
        return {t: self._subset(groups[t]) for t in sorted(groups)}

    def per_priority(self) -> "dict[int, StreamSummary]":
        """Sub-summaries keyed by priority class."""
        groups: dict[int, list[tuple]] = {}
        for key, acc in self._classes.items():
            groups.setdefault(acc.priority, []).append(key)
        return {p: self._subset(groups[p]) for p in sorted(groups)}

    @property
    def outcomes(self) -> tuple[str, ...]:
        return tuple(sorted({acc.outcome for acc in self._accs()}))

    def per_outcome(self) -> "dict[str, StreamSummary]":
        """Sub-summaries keyed by outcome (``"ok"``/``"retried"``/
        ``"hedged"``/``"timeout"``).

        Per-outcome request counts always sum to ``n_requests``; outside
        fault-injected runs the only key is ``"ok"``.
        """
        groups: dict[str, list[tuple]] = {}
        for key, acc in self._classes.items():
            groups.setdefault(acc.outcome, []).append(key)
        return {o: self._subset(groups[o]) for o in sorted(groups)}

    def per_length_band(self, band_base: float = 2.0) -> "dict[str, StreamSummary]":
        """Sub-summaries keyed by geometric sequence-length band.

        The band base is fixed when the summary starts accumulating
        (``band_base`` at construction); asking for a different base
        afterwards raises — an online summary cannot re-bucket history.
        """
        if band_base != self.band_base:
            raise ServingError(
                f"summary accumulated length bands at base {self.band_base}; "
                f"re-run the stream with band_base={band_base} to re-bucket"
            )
        groups: dict[tuple[int, int], list[tuple]] = {}
        for key, acc in self._classes.items():
            band = length_band(acc.timesteps, band_base)
            groups.setdefault(band, []).append(key)
        return {
            f"T{lo}-{hi}": self._subset(groups[(lo, hi)])
            for lo, hi in sorted(groups)
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamSummary(platform={self.platform!r}, "
            f"n_requests={self.n_requests}, scheduler={self.scheduler!r}, "
            f"batcher={self.batcher!r})"
        )
