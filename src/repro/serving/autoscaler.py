"""Queue-depth/SLO-driven fleet autoscaling for stream simulations.

The ROADMAP's north star is elastic capacity for "heavy traffic from
millions of users": a fixed replica count either over-provisions the
quiet hours or saturates under bursts.  An :class:`Autoscaler` attached
to :meth:`Fleet.serve_stream <repro.serving.fleet.Fleet.serve_stream>`
grows and shrinks the *active* replica set while the discrete-event loop
runs:

* **scale up** when the ready-queue backlog exceeds
  ``depth_per_replica`` waiting requests per active replica, or (with an
  SLO configured) when the projected wait for a new arrival eats more
  than ``slo_headroom`` of the latency budget;
* **scale down**, one replica at a time, when the backlog is empty and
  at least one active replica is idle;
* both directions respect ``min_replicas``/``max_replicas`` bounds and a
  ``cooldown_s`` between consecutive scale events.

Scaling is deterministic — it is part of the simulation, driven only by
simulated time and queue state, so a given stream always produces the
same :class:`ScaleEvent` log (recorded on the resulting
:class:`~repro.serving.engine.StreamReport`).  Replicas added during a
run share the fleet's prepared-model cache, so scaling up never
recompiles a task the fleet has already seen.

Example::

    >>> from repro.serving import Autoscaler
    >>> scaler = Autoscaler(min_replicas=1, max_replicas=4)
    >>> scaler.reset()
    >>> d = scaler.decide(now=0.1, active=1, queue_depth=9,
    ...                   projected_wait_s=0.0, slo_ms=None)
    >>> (d.target, d.action)
    (3, 'up')
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ServingError

__all__ = ["Autoscaler", "ScaleDecision", "ScaleEvent"]


@dataclass(frozen=True)
class ScaleDecision:
    """What the policy wants: a target active-replica count and why.

    Example::

        >>> from repro.serving import ScaleDecision
        >>> ScaleDecision(target=3, action="up", reason="backlog").target
        3
    """

    target: int
    action: str  # "up" | "down"
    reason: str


@dataclass(frozen=True)
class ScaleEvent:
    """One applied scaling action, recorded on the stream report.

    Attributes:
        time_s: Simulated time the fleet resized.
        action: ``"up"`` or ``"down"``.
        replicas: Active replica count *after* the action.
        queue_depth: Requests waiting across active replicas at the time.
        reason: Human-readable trigger from the policy.

    Example::

        >>> from repro.serving import ScaleEvent
        >>> e = ScaleEvent(0.25, "up", 3, 12, "queue depth 12 > 4.0/replica")
        >>> (e.action, e.replicas, e.queue_depth)
        ('up', 3, 12)
    """

    time_s: float
    action: str
    replicas: int
    queue_depth: int
    reason: str


class Autoscaler:
    """The built-in queue-depth/SLO-driven scaling policy.

    Args:
        min_replicas: Floor for the active replica count (also the
            fleet's starting size when autoscaling a stream).
        max_replicas: Ceiling for the active replica count.
        depth_per_replica: Waiting requests per active replica the
            policy tolerates before growing; the scale-up target is
            ``ceil(queue_depth / depth_per_replica)``.
        slo_headroom: With an SLO configured, scale up when the
            projected queueing wait for a new arrival exceeds this
            fraction of the SLO budget.
        cooldown_s: Minimum simulated time between scale events.

    Example::

        >>> from repro.serving import Autoscaler
        >>> scaler = Autoscaler(min_replicas=2, max_replicas=8,
        ...                     depth_per_replica=4.0, cooldown_s=0.0)
        >>> scaler.reset()
        >>> scaler.decide(now=0.0, active=2, queue_depth=0,
        ...               projected_wait_s=0.0, slo_ms=None)  # nothing to do
        >>> scaler.decide(now=1.0, active=4, queue_depth=0,
        ...               projected_wait_s=0.0, slo_ms=None).action
        'down'
    """

    def __init__(
        self,
        *,
        min_replicas: int = 1,
        max_replicas: int = 8,
        depth_per_replica: float = 4.0,
        slo_headroom: float = 0.5,
        cooldown_s: float = 0.02,
    ) -> None:
        if min_replicas < 1:
            raise ServingError("min_replicas must be >= 1")
        if max_replicas < min_replicas:
            raise ServingError("max_replicas must be >= min_replicas")
        if depth_per_replica <= 0:
            raise ServingError("depth_per_replica must be positive")
        if not 0 < slo_headroom <= 1:
            raise ServingError("slo_headroom must be in (0, 1]")
        if cooldown_s < 0:
            raise ServingError("cooldown_s must be >= 0")
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.depth_per_replica = depth_per_replica
        self.slo_headroom = slo_headroom
        self.cooldown_s = cooldown_s
        self._last_event_s = -math.inf

    def reset(self) -> None:
        """Clear cooldown state; called by the event loop per stream."""
        self._last_event_s = -math.inf

    def decide(
        self,
        *,
        now: float,
        active: int,
        queue_depth: int,
        projected_wait_s: float,
        slo_ms: float | None,
    ) -> ScaleDecision | None:
        """Evaluate the policy at one instant of the simulation.

        Args:
            now: Simulated time.
            active: Current active replica count.
            queue_depth: Requests waiting (not yet serving) across the
                active replicas.
            projected_wait_s: Queueing wait a new arrival would face on
                the least-loaded active replica.
            slo_ms: The stream-level SLO, if any.

        Returns:
            A :class:`ScaleDecision` with a target different from
            ``active``, or ``None`` to leave the fleet alone.

        Deciding is side-effect free: the cooldown clock only advances
        when the caller actually applies the resize and says so via
        :meth:`note_applied`.  (It used to be charged here, so a
        decision the loop could not honor — scale-up with no replica
        factory — silently suppressed every later decision for a
        cooldown window.)
        """
        if now - self._last_event_s < self.cooldown_s:
            return None
        return self._evaluate(
            active=active,
            queue_depth=queue_depth,
            projected_wait_s=projected_wait_s,
            slo_ms=slo_ms,
        )

    def note_applied(self, now: float) -> None:
        """Start the cooldown window: the fleet resized at ``now``.

        Example::

            >>> from repro.serving import Autoscaler
            >>> scaler = Autoscaler(min_replicas=1, max_replicas=4,
            ...                     cooldown_s=1.0)
            >>> scaler.reset()
            >>> scaler.note_applied(0.0)
            >>> scaler.decide(now=0.5, active=1, queue_depth=99,
            ...               projected_wait_s=0.0, slo_ms=None) is None
            True
        """
        self._last_event_s = now

    def _evaluate(
        self,
        *,
        active: int,
        queue_depth: int,
        projected_wait_s: float,
        slo_ms: float | None,
    ) -> ScaleDecision | None:
        # Scale up: backlog beyond the per-replica depth budget, sized to
        # absorb the whole backlog in one step.
        if queue_depth > self.depth_per_replica * active:
            target = min(
                self.max_replicas,
                max(active + 1, math.ceil(queue_depth / self.depth_per_replica)),
            )
            if target > active:
                return ScaleDecision(
                    target,
                    "up",
                    f"queue depth {queue_depth} > "
                    f"{self.depth_per_replica:g}/replica across {active}",
                )
        # Scale up: the SLO budget is being eaten by queueing alone.
        if slo_ms is not None:
            budget_s = self.slo_headroom * slo_ms / 1e3
            if projected_wait_s > budget_s and active < self.max_replicas:
                return ScaleDecision(
                    active + 1,
                    "up",
                    f"projected wait {projected_wait_s * 1e3:.3g} ms > "
                    f"{self.slo_headroom:g} of {slo_ms:g} ms SLO",
                )
        # Scale down: no backlog and spare capacity — shed one replica.
        if (
            queue_depth == 0
            and projected_wait_s <= 0.0
            and active > self.min_replicas
        ):
            return ScaleDecision(active - 1, "down", "idle capacity, empty queue")
        return None
