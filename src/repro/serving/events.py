"""The heap-based discrete-event loop shared by engine and fleet streams.

One simulation drives both :meth:`ServingEngine.serve_stream` (a single
replica) and :meth:`Fleet.serve_stream` (N replicas behind a
dispatcher).  Two event kinds flow through a single heap:

* ``ARRIVAL`` — a request enters the system.  The dispatcher picks a
  replica, the replica's engine prepares/serves the model (compile-once
  cache; service times are deterministic per platform+task), and the
  request joins that replica's ready queue under its scheduler.
* ``FREE`` — a replica finishes a request and pops its scheduler for
  the next one.

The loop is O(n log n) in the number of requests: each request costs a
constant number of heap and scheduler operations.  With the FIFO
scheduler the timeline it produces is bit-for-bit identical to the
pre-refactor sequential simulations (pinned by the golden parity tests):
``start = max(arrival, replica_free_at)`` is evaluated with the same
floats in the same order.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.errors import ServingError
from repro.serving.request import ServeRequest, ServeResponse
from repro.serving.scheduler import QueuedRequest, Scheduler
from repro.workloads.deepbench import RNNTask

if TYPE_CHECKING:  # pragma: no cover
    from repro.serving.engine import ServingEngine

__all__ = ["normalize_arrivals", "run_stream"]

#: Event kinds; FREE sorts before ARRIVAL at equal timestamps so an
#: arrival always sees the replica's settled state.  (Either order
#: yields identical timelines — ``start = max(arrival, now)`` — this
#: just fixes the iteration order deterministically.)
_FREE, _ARRIVAL = 0, 1

#: Dispatcher: (seq, request, projected per-replica completion times)
#: -> replica index.
Dispatcher = Callable[[int, ServeRequest, Sequence[float]], int]


def normalize_arrivals(
    arrivals: Iterable[ServeRequest | RNNTask],
) -> list[ServeRequest]:
    """Sort a stream into arrival order and validate request ids.

    Bare :class:`RNNTask` items are wrapped as arrival-time-zero requests
    with ids taken from their position.  Duplicate ``request_id``s are
    rejected outright: a stream merged by hand from several generators
    almost always collides on ids (every generator numbers from 0), which
    silently breaks FIFO tie-breaking and per-request accounting — use
    :func:`repro.serving.traffic.mix`, which re-numbers globally.
    """
    requests: list[ServeRequest] = []
    for position, item in enumerate(arrivals):
        if isinstance(item, RNNTask):
            item = ServeRequest(task=item, request_id=position)
        requests.append(item)
    if not requests:
        raise ServingError("serve_stream needs at least one request")
    ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
    seen: set[int] = set()
    duplicates: set[int] = set()
    for req in ordered:
        if req.request_id in seen:
            duplicates.add(req.request_id)
        seen.add(req.request_id)
    if duplicates:
        shown = ", ".join(str(d) for d in sorted(duplicates)[:5])
        raise ServingError(
            f"duplicate request_id(s) in stream ({shown}); merge streams "
            f"with repro.serving.traffic.mix() to get globally unique ids"
        )
    return ordered


def run_stream(
    arrivals: Iterable[ServeRequest | RNNTask],
    *,
    engines: Sequence["ServingEngine"],
    schedulers: Sequence[Scheduler],
    dispatch: Dispatcher,
    slo_ms: float | None = None,
) -> tuple[list[ServeResponse], list[int]]:
    """Simulate a timestamped stream over one or more replicas.

    Args:
        arrivals: The request stream (any order; sorted internally).
        engines: One :class:`ServingEngine` per replica.
        schedulers: One scheduler per replica (same length as engines).
        dispatch: Assigns each arrival to a replica, given the projected
            completion time of all work already assigned to each replica
            (the classic join-the-shortest-queue signal).
        slo_ms: Stream-level SLO; per-request ``slo_ms`` overrides it
            when computing deadlines for deadline-aware schedulers.

    Returns:
        ``(responses, assignments)``, both indexed by arrival order —
        response ``i`` answers the ``i``-th request in arrival order no
        matter when the scheduler actually served it.
    """
    if len(engines) != len(schedulers):
        raise ServingError("need exactly one scheduler per replica")
    ordered = normalize_arrivals(arrivals)
    n = len(ordered)
    n_replicas = len(engines)

    responses: list[ServeResponse | None] = [None] * n
    assignments: list[int] = [-1] * n
    #: Projected completion of all work assigned to each replica; the
    #: dispatch signal (identical to the pre-refactor ``free_at``).
    work_until = [0.0] * n_replicas
    busy = [False] * n_replicas

    events: list[tuple[float, int, int]] = [
        (req.arrival_s, _ARRIVAL, seq) for seq, req in enumerate(ordered)
    ]
    heapq.heapify(events)

    def start_service(replica: int, now: float) -> None:
        entry = schedulers[replica].pop()
        req = entry.request
        start = max(req.arrival_s, now)
        finish = start + entry.service_s
        busy[replica] = True
        responses[entry.seq] = ServeResponse(
            request=req,
            result=entry.result,
            queue_delay_s=start - req.arrival_s,
            start_s=start,
            finish_s=finish,
        )
        heapq.heappush(events, (finish, _FREE, replica))

    while events:
        now, kind, index = heapq.heappop(events)
        if kind == _ARRIVAL:
            req = ordered[index]
            replica = dispatch(index, req, work_until)
            if not 0 <= replica < n_replicas:
                raise ServingError(f"dispatcher chose invalid replica {replica}")
            engine = engines[replica]
            result = engine.platform.serve(engine.prepare(req.task))
            entry = QueuedRequest(
                seq=index,
                request=req,
                result=result,
                service_s=result.latency_s,
                deadline_s=req.deadline_s(slo_ms),
            )
            work_until[replica] = (
                max(req.arrival_s, work_until[replica]) + result.latency_s
            )
            assignments[index] = replica
            schedulers[replica].push(entry)
            if not busy[replica]:
                start_service(replica, now)
        else:
            busy[index] = False
            if len(schedulers[index]):
                start_service(index, now)

    return responses, assignments  # type: ignore[return-value]
