"""The discrete-event loop shared by engine and fleet streams.

One simulation drives both :meth:`ServingEngine.serve_stream` (a single
replica) and :meth:`Fleet.serve_stream` (N replicas behind a
dispatcher).  Three event kinds flow through the simulation:

* ``FREE`` — a replica finishes an execution and consults its batcher
  for the next one.
* ``ARRIVAL`` — a request enters the system.  The autoscaler (if any)
  may first resize the active replica set; the dispatcher then picks a
  replica, the replica's engine prepares/serves the model (compile-once
  cache; service times are deterministic per platform+task), and the
  request joins that replica's ready queue under its scheduler.
* ``LAUNCH`` — a batcher held an idle replica open to let a batch
  accumulate (see :mod:`repro.serving.batching`); the hold expires and
  the replica launches whatever is ready.  Sorted after arrivals at
  equal timestamps so a request arriving exactly at the deadline still
  joins the batch.

The loop is O(n log n) in the number of requests and — this is the
million-request point — **O(1) in memory** along three axes:

* arrivals are consumed *incrementally*: only FREE/LAUNCH events live in
  the heap, and the next arrival is peeked from the (possibly lazy)
  input stream, so a generator or JSONL trace never materializes;
* with ``presorted=True``, :func:`normalize_arrivals` skips the
  materialize+sort+duplicate-set pass entirely and instead validates
  lazily that arrivals are time-ordered with strictly increasing
  ``request_id`` (what :func:`repro.serving.traffic.mix` and every
  built-in generator emit);
* with a :class:`~repro.serving.stats.StreamSummary` sink, responses
  are folded into O(1) online accumulators instead of being collected.

Two specialized loops peel off the hot common cases before the general
heap: a single replica with a non-holding batcher needs no event heap at
all (completions and arrivals merge in order), and the FIFO/unbatched
configuration — the paper's serving scenario — additionally needs no
scheduler queue, reducing each request to a handful of float ops.  Every
path evaluates ``start = max(arrival, replica_free_at)`` with the same
floats in the same order, so the FIFO + ``"none"`` timeline stays
bit-for-bit identical to the pre-refactor sequential simulations (pinned
by the golden parity tests).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from repro.errors import ServingError
from repro.serving.autoscaler import Autoscaler, ScaleEvent
from repro.serving.batching import Batcher, NoneBatcher
from repro.serving.request import ServeRequest, ServeResponse
from repro.serving.scheduler import FIFOScheduler, QueuedRequest, Scheduler
from repro.workloads.deepbench import RNNTask

if TYPE_CHECKING:  # pragma: no cover
    from repro.serving.engine import ServingEngine
    from repro.serving.stats import StreamSummary

__all__ = [
    "normalize_arrivals",
    "run_stream",
    "StreamOutcome",
    "StreamDispatcher",
    "single_replica_dispatch",
]

#: Event kinds; FREE sorts before ARRIVAL at equal timestamps so an
#: arrival always sees the replica's settled state, and LAUNCH sorts
#: after ARRIVAL so a same-instant arrival can join the launching batch.
_FREE, _ARRIVAL, _LAUNCH = 0, 1, 2

_INF = float("inf")

#: Legacy dispatcher: (seq, request, projected per-replica completion
#: times of the *active* replicas) -> replica index.
Dispatcher = Callable[[int, ServeRequest, Sequence[float]], int]

#: Factory appending one replica: () -> (engine, scheduler, batcher).
ReplicaFactory = Callable[[], "tuple[ServingEngine, Scheduler, Batcher]"]


class StreamDispatcher:
    """Incremental dispatcher protocol for fleet-scale streams.

    The legacy dispatcher contract hands every arrival a *snapshot* of
    all active replicas' projected completion times — an O(replicas)
    copy per request that turns least-loaded dispatch quadratic on big
    fleets.  A :class:`StreamDispatcher` instead receives *deltas*: the
    loop calls :meth:`assign` whenever one replica's projection changes
    and :meth:`resize` whenever the autoscaler changes the active set,
    so a policy can maintain its own O(log n) structure (see
    ``Fleet``'s least-loaded heap).  Plain callables keep working
    unchanged.

    Example::

        >>> from repro.serving.events import StreamDispatcher
        >>> class First(StreamDispatcher):
        ...     def choose(self, seq, request): return 0
        >>> First().choose(0, None)
        0
    """

    def choose(self, seq: int, request: ServeRequest) -> int:
        """Pick the replica for one arrival."""
        raise NotImplementedError  # pragma: no cover

    def assign(self, replica: int, work_until_s: float) -> None:
        """One replica's projected completion time advanced."""

    def resize(self, active: int, work_until: Sequence[float]) -> None:
        """The active replica set changed (autoscaler or stream start)."""


def single_replica_dispatch(
    seq: int, request: ServeRequest, work_until: Sequence[float]
) -> int:
    """The engine's trivial one-replica dispatcher (always replica 0).

    Passing this exact function lets :func:`run_stream` skip per-arrival
    dispatch bookkeeping entirely on the single-replica fast paths.
    """
    return 0


@dataclass(frozen=True)
class StreamOutcome:
    """Everything one stream simulation produced.

    Attributes:
        responses: One response per request, in arrival order — empty
            when the stream ran against a summary sink (``mode="summary"``),
            which folds responses online instead of collecting them.
        assignments: Replica index per request, in arrival order (empty
            in summary mode; the summary tracks per-replica counts).
        scale_events: Autoscaler actions applied during the run.
        n_replicas: Total replicas that existed by the end (grown
            replicas included) — the peak capacity the run used.
        active_replicas: Replicas still active when the stream drained
            (equal to ``n_replicas`` unless the autoscaler scaled down).

    Example::

        >>> from repro.serving import ServingEngine, uniform_arrivals
        >>> from repro.serving.events import run_stream
        >>> from repro.serving.scheduler import make_scheduler
        >>> from repro.workloads.deepbench import task
        >>> engine = ServingEngine("gpu")
        >>> arrivals = uniform_arrivals(task("lstm", 512, 25),
        ...                             rate_per_s=100, n_requests=3)
        >>> out = run_stream(arrivals, engines=(engine,),
        ...                  schedulers=(make_scheduler("fifo"),),
        ...                  dispatch=lambda seq, req, work: 0)
        >>> (len(out.responses), out.assignments, out.n_replicas)
        (3, [0, 0, 0], 1)
    """

    responses: "list[ServeResponse]"
    assignments: list[int]
    scale_events: tuple[ScaleEvent, ...] = ()
    n_replicas: int = 1
    active_replicas: int = 1


def _presorted_stream(
    arrivals: Iterable[ServeRequest | RNNTask],
) -> Iterator[ServeRequest]:
    """Lazily validate a pre-sorted stream: non-decreasing arrival times
    and strictly increasing request ids (which rules out duplicates with
    O(1) state — no id set is ever built)."""
    prev_arrival = -_INF
    prev_id: int | None = None
    position = 0
    for item in arrivals:
        if isinstance(item, RNNTask):
            item = ServeRequest(task=item, request_id=position)
        arrival = item.arrival_s
        if arrival < prev_arrival:
            raise ServingError(
                f"presorted stream is out of order: request "
                f"{item.request_id} arrives at {arrival} after "
                f"{prev_arrival}; pass presorted=False to sort"
            )
        rid = item.request_id
        if prev_id is not None and rid <= prev_id:
            raise ServingError(
                f"presorted stream needs strictly increasing request ids "
                f"(saw {rid} after {prev_id}); merge streams with "
                f"repro.serving.traffic.mix() — it renumbers globally — "
                f"or pass presorted=False"
            )
        prev_arrival = arrival
        prev_id = rid
        position += 1
        yield item


def normalize_arrivals(
    arrivals: Iterable[ServeRequest | RNNTask],
    *,
    presorted: bool = False,
) -> "list[ServeRequest] | Iterator[ServeRequest]":
    """Sort a stream into arrival order and validate request ids.

    Bare :class:`RNNTask` items are wrapped as arrival-time-zero requests
    with ids taken from their position.  Duplicate ``request_id``s are
    rejected outright: a stream merged by hand from several generators
    almost always collides on ids (every generator numbers from 0), which
    silently breaks FIFO tie-breaking and per-request accounting — use
    :func:`repro.serving.traffic.mix`, which re-numbers globally.

    With ``presorted=True`` the materialize+sort+duplicate-set pass is
    skipped: a *lazy* validator is returned instead, which checks — in
    O(1) memory, while the event loop consumes it — that arrivals are
    time-ordered with strictly increasing ids (every built-in generator,
    :func:`~repro.serving.traffic.mix`, and recorded traces satisfy
    this; monotone ids double as the duplicate check).  This is what
    lets ``serve_stream`` run a multi-million-request generator without
    holding it.

    Example::

        >>> from repro.serving.events import normalize_arrivals
        >>> from repro.serving import ServeRequest
        >>> from repro.workloads.deepbench import task
        >>> t = task("lstm", 512, 25)
        >>> reqs = [ServeRequest(task=t, arrival_s=0.2, request_id=1),
        ...         ServeRequest(task=t, arrival_s=0.1, request_id=0)]
        >>> [r.request_id for r in normalize_arrivals(reqs)]
        [0, 1]
        >>> lazy = normalize_arrivals(sorted(reqs, key=lambda r: r.arrival_s),
        ...                           presorted=True)
        >>> [r.request_id for r in lazy]       # validated as it streams
        [0, 1]
    """
    if presorted:
        return _presorted_stream(arrivals)
    requests: list[ServeRequest] = []
    for position, item in enumerate(arrivals):
        if isinstance(item, RNNTask):
            item = ServeRequest(task=item, request_id=position)
        requests.append(item)
    if not requests:
        raise ServingError("serve_stream needs at least one request")
    ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
    seen: set[int] = set()
    duplicates: set[int] = set()
    for req in ordered:
        if req.request_id in seen:
            duplicates.add(req.request_id)
        seen.add(req.request_id)
    if duplicates:
        shown = ", ".join(str(d) for d in sorted(duplicates)[:5])
        raise ServingError(
            f"duplicate request_id(s) in stream ({shown}); merge streams "
            f"with repro.serving.traffic.mix() to get globally unique ids"
        )
    return ordered


def run_stream(
    arrivals: Iterable[ServeRequest | RNNTask],
    *,
    engines: Sequence["ServingEngine"],
    schedulers: Sequence[Scheduler],
    dispatch: "Dispatcher | StreamDispatcher",
    slo_ms: float | None = None,
    batchers: Sequence[Batcher] | None = None,
    autoscaler: Autoscaler | None = None,
    replica_factory: ReplicaFactory | None = None,
    presorted: bool = False,
    summary: "StreamSummary | None" = None,
) -> StreamOutcome:
    """Simulate a timestamped stream over one or more replicas.

    Args:
        arrivals: The request stream — any iterable, including a lazy
            generator or trace reader (sorted internally unless
            ``presorted=True``).
        engines: One :class:`ServingEngine` per starting replica.
        schedulers: One scheduler per replica (same length as engines).
        dispatch: Assigns each arrival to a replica — either a legacy
            callable receiving the projected completion times of all
            *active* replicas (the classic join-the-shortest-queue
            signal), or an incremental :class:`StreamDispatcher`.
        slo_ms: Stream-level SLO; per-request ``slo_ms`` overrides it
            when computing deadlines for deadline-aware schedulers and
            SLO-aware batching.
        batchers: One batching policy per replica; defaults to the
            ``"none"`` policy everywhere (classic batch-1 serving).
        autoscaler: Optional policy resizing the active replica set as
            the stream runs; evaluated on every arrival and completion.
        replica_factory: Grows the fleet on scale-up; required when
            ``autoscaler`` may target more replicas than ``engines``.
        presorted: Trust (and lazily validate) that ``arrivals`` is
            already time-ordered with strictly increasing ids, skipping
            the materialize+sort pass — see :func:`normalize_arrivals`.
        summary: Optional :class:`~repro.serving.stats.StreamSummary`
            sink.  When given, completed requests are folded into its
            O(1) accumulators instead of being collected, and the
            returned outcome carries empty ``responses``/``assignments``.

    Returns:
        A :class:`StreamOutcome`; its responses and assignments are
        indexed by arrival order — response ``i`` answers the ``i``-th
        request in arrival order no matter when (or in which batch) the
        scheduler actually served it.

    Example::

        >>> from repro.serving import ServingEngine, uniform_arrivals
        >>> from repro.serving.events import run_stream
        >>> from repro.serving.scheduler import make_scheduler
        >>> from repro.workloads.deepbench import task
        >>> out = run_stream(
        ...     uniform_arrivals(task("lstm", 512, 25),
        ...                      rate_per_s=200, n_requests=4),
        ...     engines=(ServingEngine("gpu"),),
        ...     schedulers=(make_scheduler("fifo"),),
        ...     dispatch=lambda seq, req, work: 0)
        >>> [r.request.request_id for r in out.responses]
        [0, 1, 2, 3]
    """
    engine_list = list(engines)
    scheduler_list = list(schedulers)
    batcher_list = (
        [NoneBatcher() for _ in engine_list] if batchers is None else list(batchers)
    )
    if not (len(engine_list) == len(scheduler_list) == len(batcher_list)):
        raise ServingError("need exactly one scheduler and batcher per replica")

    def bind_cost(replica: int) -> None:
        engine = engine_list[replica]
        batcher_list[replica].bind_cost(
            lambda task, size, _e=engine: _e.batch_latency_s(task, size)
        )

    for replica in range(len(engine_list)):
        bind_cost(replica)

    stream = normalize_arrivals(arrivals, presorted=presorted)

    # A single replica whose batcher never holds (the base
    # ``hold_until`` is un-overridden) needs no event heap: completions
    # and arrivals merge in time order directly.  This covers the
    # paper's serving scenario and both benchmark configurations.
    if (
        len(engine_list) == 1
        and autoscaler is None
        and type(batcher_list[0]).hold_until is Batcher.hold_until
    ):
        scheduler = scheduler_list[0]
        batcher = batcher_list[0]
        if type(scheduler) is FIFOScheduler and type(batcher) is NoneBatcher:
            return _run_fifo_unbatched(
                stream, engine_list[0], dispatch, summary
            )
        return _run_single_replica(
            stream, engine_list[0], scheduler, batcher, dispatch, slo_ms, summary
        )

    return _run_heap(
        stream,
        engine_list,
        scheduler_list,
        batcher_list,
        bind_cost,
        dispatch,
        slo_ms,
        autoscaler,
        replica_factory,
        summary,
    )


def _choose_single(
    dispatch: "Dispatcher | StreamDispatcher",
    seq: int,
    req: ServeRequest,
    work: list[float],
) -> None:
    """Run a custom dispatcher against the one-replica view (parity with
    the general loop's contract, including its error)."""
    if isinstance(dispatch, StreamDispatcher):
        replica = dispatch.choose(seq, req)
    else:
        replica = dispatch(seq, req, work)
    if replica != 0:
        raise ServingError(f"dispatcher chose invalid replica {replica}")


def _run_fifo_unbatched(
    stream: Iterable[ServeRequest],
    engine: "ServingEngine",
    dispatch: "Dispatcher | StreamDispatcher",
    summary: "StreamSummary | None",
) -> StreamOutcome:
    """The hottest path: one replica, FIFO order, batch 1.

    Service order equals arrival order, so the whole simulation is the
    classic single-server recursion ``start = max(arrival, free_at)`` —
    no heap, no scheduler queue, no per-request :class:`QueuedRequest`.
    Identical floats in identical order to the general loop (golden
    parity holds bit for bit); with a summary sink it allocates nothing
    per request beyond the incoming request objects.
    """
    trivial = dispatch is single_replica_dispatch
    collect = summary is None
    responses: list[ServeResponse] = []
    append = responses.append
    observe = None if collect else summary.observe_served
    result_for = engine.result_for
    work = [0.0]
    if isinstance(dispatch, StreamDispatcher):
        dispatch.resize(1, work)
    free_at = 0.0
    n = 0
    last_task: RNNTask | None = None
    last_result = None
    for req in stream:
        task = req.task
        if task is not last_task:
            last_result = result_for(task)
            last_task = task
        result = last_result
        latency = result.latency_s
        arrival = req.arrival_s
        if not trivial:
            # Same contract order as the general loop: the dispatcher
            # sees the pre-assignment projection.
            _choose_single(dispatch, n, req, work)
            work[0] = (arrival if arrival > work[0] else work[0]) + latency
        start = arrival if arrival > free_at else free_at
        finish = start + latency
        free_at = finish
        if collect:
            append(
                ServeResponse(
                    request=req,
                    result=result,
                    queue_delay_s=start - arrival,
                    start_s=start,
                    finish_s=finish,
                )
            )
        else:
            observe(req, result, start, finish, 1)
        n += 1
    if n == 0:
        raise ServingError("serve_stream needs at least one request")
    if not collect:
        summary.note_assignment(0, n)
    return StreamOutcome(
        responses=responses,
        assignments=[0] * n if collect else [],
    )


def _run_single_replica(
    stream: Iterable[ServeRequest],
    engine: "ServingEngine",
    scheduler: Scheduler,
    batcher: Batcher,
    dispatch: "Dispatcher | StreamDispatcher",
    slo_ms: float | None,
    summary: "StreamSummary | None",
) -> StreamOutcome:
    """One replica, any scheduler, any non-holding batcher: merge
    completions and arrivals in time order without an event heap.

    Invariant: whenever the replica is idle its ready queue is empty
    (an arrival launches immediately when idle), so only completions
    that precede the next arrival need replaying before it queues.
    """
    trivial = dispatch is single_replica_dispatch
    collect = summary is None
    responses: list[ServeResponse | None] = []
    observe = None if collect else summary.observe_served
    result_for = engine.result_for
    none_batcher = type(batcher) is NoneBatcher
    push = scheduler.push
    pop = scheduler.pop
    qlen = scheduler.__len__
    work = [0.0]
    if isinstance(dispatch, StreamDispatcher):
        dispatch.resize(1, work)
    free_at = 0.0
    busy = False
    seq = 0
    last_task: RNNTask | None = None
    last_result = None
    stream_slo = slo_ms

    def launch(now: float) -> None:
        nonlocal free_at, busy
        if none_batcher:
            entries = [pop()]
        else:
            entries = batcher.take(scheduler, now)
            if not entries:
                raise ServingError(
                    f"batcher {batcher.name!r} returned an empty batch"
                )
        head = entries[0]
        arrival = head.request.arrival_s
        start = arrival if arrival > now else now
        if len(entries) == 1:
            # The exact pre-batching arithmetic: parity for batcher="none".
            finish = start + head.service_s
            if collect:
                responses[head.seq] = ServeResponse(
                    request=head.request,
                    result=head.result,
                    queue_delay_s=start - arrival,
                    start_s=start,
                    finish_s=finish,
                )
            else:
                observe(head.request, head.result, start, finish, 1)
        else:
            exec_task = _batch_exec_task(entries, batcher)
            result = engine.serve_batched(exec_task, len(entries))
            finish = start + result.latency_s
            size = len(entries)
            for index, entry in enumerate(entries):
                if collect:
                    responses[entry.seq] = ServeResponse(
                        request=entry.request,
                        result=result,
                        queue_delay_s=start - entry.request.arrival_s,
                        start_s=start,
                        finish_s=finish,
                        batch_size=size,
                        batch_index=index,
                    )
                else:
                    observe(entry.request, result, start, finish, size)
        busy = True
        free_at = finish

    for req in stream:
        t = req.arrival_s
        # Completions that fire no later than this arrival (FREE sorts
        # before ARRIVAL at equal stamps) launch first.
        while busy and free_at <= t:
            busy = False
            if qlen():
                launch(free_at)
        task = req.task
        if task is not last_task:
            last_result = result_for(task)
            last_task = task
        result = last_result
        if not trivial:
            _choose_single(dispatch, seq, req, work)
            work[0] = (t if t > work[0] else work[0]) + result.latency_s
        slo = req.slo_ms
        if slo is None:
            slo = stream_slo
        push(
            QueuedRequest(
                seq=seq,
                request=req,
                result=result,
                service_s=result.latency_s,
                deadline_s=_INF if slo is None else t + slo / 1e3,
            )
        )
        if collect:
            responses.append(None)
        seq += 1
        if not busy:
            launch(t)
    if seq == 0:
        raise ServingError("serve_stream needs at least one request")
    # Drain: replay the remaining FREE chain.
    while busy:
        busy = False
        if qlen():
            launch(free_at)
    if not collect:
        summary.note_assignment(0, seq)
    return StreamOutcome(
        responses=responses,  # type: ignore[arg-type]
        assignments=[0] * seq if collect else [],
    )


def _batch_exec_task(entries: "list[QueuedRequest]", batcher: Batcher) -> RNNTask:
    """The task a coalesced batch executes at: the head's task padded to
    the longest member (the pad/bucket policies).  Same-length batches
    reduce to the head's task exactly.  Mixing task *families* is a
    batcher bug."""
    head = entries[0]
    exec_task = head.request.task
    for e in entries[1:]:
        t = e.request.task
        if t == exec_task:
            continue
        if t.family_key != exec_task.family_key:
            raise ServingError(
                f"batcher {batcher.name!r} coalesced requests from "
                f"different task families into one batch"
            )
        exec_task = exec_task.padded_to(t.timesteps)
    return exec_task


def _run_heap(
    stream: Iterable[ServeRequest],
    engine_list: "list[ServingEngine]",
    scheduler_list: "list[Scheduler]",
    batcher_list: "list[Batcher]",
    bind_cost: Callable[[int], None],
    dispatch: "Dispatcher | StreamDispatcher",
    slo_ms: float | None,
    autoscaler: Autoscaler | None,
    replica_factory: ReplicaFactory | None,
    summary: "StreamSummary | None",
) -> StreamOutcome:
    """The general loop: N replicas, holds, autoscaling.

    Only FREE and LAUNCH events live in the heap; arrivals are peeked
    one at a time from the (possibly lazy) sorted stream, so the heap
    size is bounded by the replica count, not the stream length.
    """
    collect = summary is None
    rich = isinstance(dispatch, StreamDispatcher)
    responses: list[ServeResponse | None] = []
    assignments: list[int] = []
    observe = None if collect else summary.observe_served
    assign_note = None if collect else summary.note_assignment
    #: Projected completion of all work assigned to each replica; the
    #: dispatch signal (identical to the pre-refactor ``free_at``).  The
    #: projection assumes unbatched service, so with batching it is an
    #: upper bound — still the right join-the-shortest-queue signal.
    work_until = [0.0] * len(engine_list)
    busy = [False] * len(engine_list)
    #: Pending LAUNCH deadline per replica (None = not holding); a
    #: LAUNCH event is stale unless its time matches exactly.
    hold_at: list[float | None] = [None] * len(engine_list)
    active = len(engine_list)
    scale_events: list[ScaleEvent] = []
    if autoscaler is not None:
        autoscaler.reset()
    if rich:
        dispatch.resize(active, work_until)

    events: list[tuple[float, int, int]] = []

    def add_replica() -> None:
        if replica_factory is None:
            raise ServingError("autoscaler needs a replica_factory to scale up")
        engine, scheduler, batcher = replica_factory()
        engine_list.append(engine)
        scheduler_list.append(scheduler)
        batcher_list.append(batcher)
        work_until.append(0.0)
        busy.append(False)
        hold_at.append(None)
        bind_cost(len(engine_list) - 1)

    def autoscale(now: float) -> None:
        nonlocal active
        depth = sum(len(scheduler_list[j]) for j in range(active))
        wait = min(max(work_until[j] - now, 0.0) for j in range(active))
        decision = autoscaler.decide(
            now=now,
            active=active,
            queue_depth=depth,
            projected_wait_s=wait,
            slo_ms=slo_ms,
        )
        if decision is None or decision.target == active:
            return
        while len(engine_list) < decision.target:
            add_replica()
        active = decision.target
        scale_events.append(
            ScaleEvent(
                time_s=now,
                action=decision.action,
                replicas=active,
                queue_depth=depth,
                reason=decision.reason,
            )
        )
        if rich:
            dispatch.resize(active, work_until)

    def launch(replica: int, now: float) -> None:
        queue = scheduler_list[replica]
        batcher = batcher_list[replica]
        ready_at = batcher.hold_until(queue, now)
        if ready_at > now:
            if hold_at[replica] != ready_at:
                # A LAUNCH for this exact deadline is not yet scheduled
                # (re-entered holds with an unchanged deadline reuse the
                # event already in the heap).
                hold_at[replica] = ready_at
                heapq.heappush(events, (ready_at, _LAUNCH, replica))
            return
        hold_at[replica] = None
        entries = batcher.take(queue, now)
        if not entries:
            raise ServingError(f"batcher {batcher.name!r} returned an empty batch")
        head = entries[0]
        start = max(head.request.arrival_s, now)
        if len(entries) == 1:
            # The exact pre-batching arithmetic: parity for batcher="none".
            finish = start + head.service_s
            if collect:
                responses[head.seq] = ServeResponse(
                    request=head.request,
                    result=head.result,
                    queue_delay_s=start - head.request.arrival_s,
                    start_s=start,
                    finish_s=finish,
                )
            else:
                observe(head.request, head.result, start, finish, 1)
        else:
            exec_task = _batch_exec_task(entries, batcher)
            engine = engine_list[replica]
            result = engine.serve_batched(exec_task, len(entries))
            finish = start + result.latency_s
            size = len(entries)
            for index, entry in enumerate(entries):
                if collect:
                    responses[entry.seq] = ServeResponse(
                        request=entry.request,
                        result=result,
                        queue_delay_s=start - entry.request.arrival_s,
                        start_s=start,
                        finish_s=finish,
                        batch_size=size,
                        batch_index=index,
                    )
                else:
                    observe(entry.request, result, start, finish, size)
        busy[replica] = True
        heapq.heappush(events, (finish, _FREE, replica))

    arrival_iter = iter(stream)
    next_req = next(arrival_iter, None)
    seq = 0
    while events or next_req is not None:
        # Does the next arrival precede every heap event?  FREE sorts
        # before ARRIVAL at equal stamps, LAUNCH after — the same total
        # order the materialized heap produced.
        if next_req is not None:
            if events:
                top = events[0]
                arrival_s = next_req.arrival_s
                take_arrival = arrival_s < top[0] or (
                    arrival_s == top[0] and top[1] == _LAUNCH
                )
            else:
                take_arrival = True
        else:
            take_arrival = False
        if take_arrival:
            req = next_req
            now = req.arrival_s
            if autoscaler is not None:
                autoscale(now)
            if rich:
                replica = dispatch.choose(seq, req)
            else:
                view = (
                    work_until
                    if active == len(work_until)
                    else work_until[:active]
                )
                replica = dispatch(seq, req, view)
            if not 0 <= replica < active:
                raise ServingError(f"dispatcher chose invalid replica {replica}")
            engine = engine_list[replica]
            result = engine.result_for(req.task)
            entry = QueuedRequest(
                seq=seq,
                request=req,
                result=result,
                service_s=result.latency_s,
                deadline_s=req.deadline_s(slo_ms),
            )
            work_until[replica] = (
                max(req.arrival_s, work_until[replica]) + result.latency_s
            )
            if rich:
                dispatch.assign(replica, work_until[replica])
            if collect:
                responses.append(None)
                assignments.append(replica)
            else:
                assign_note(replica)
            scheduler_list[replica].push(entry)
            if not busy[replica]:
                launch(replica, now)
            seq += 1
            next_req = next(arrival_iter, None)
            continue
        now, kind, index = heapq.heappop(events)
        if kind == _FREE:
            busy[index] = False
            if autoscaler is not None:
                autoscale(now)
            if len(scheduler_list[index]):
                launch(index, now)
        else:  # _LAUNCH: stale unless this exact hold is still pending
            if busy[index] or hold_at[index] != now:
                continue
            if len(scheduler_list[index]):
                launch(index, now)
            else:
                hold_at[index] = None

    if seq == 0:
        raise ServingError("serve_stream needs at least one request")
    return StreamOutcome(
        responses=responses,  # type: ignore[arg-type]
        assignments=assignments,
        scale_events=tuple(scale_events),
        n_replicas=len(engine_list),
        active_replicas=active,
    )
