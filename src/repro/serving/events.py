"""The discrete-event loop shared by engine and fleet streams.

One simulation drives both :meth:`ServingEngine.serve_stream` (a single
replica) and :meth:`Fleet.serve_stream` (N replicas behind a
dispatcher).  Three event kinds flow through the simulation:

* ``FREE`` — a replica finishes an execution and consults its batcher
  for the next one.
* ``ARRIVAL`` — a request enters the system.  The autoscaler (if any)
  may first resize the active replica set; the dispatcher then picks a
  replica, the replica's engine prepares/serves the model (compile-once
  cache; service times are deterministic per platform+task), and the
  request joins that replica's ready queue under its scheduler.
* ``LAUNCH`` — a batcher held an idle replica open to let a batch
  accumulate (see :mod:`repro.serving.batching`); the hold expires and
  the replica launches whatever is ready.  Sorted after arrivals at
  equal timestamps so a request arriving exactly at the deadline still
  joins the batch.

Four more kinds exist only in the fault-aware loop (entered when a
:class:`~repro.serving.faults.FaultPolicy` other than ``"none"`` — or a
timeout/hedge — is configured): ``CRASH``/``RECOVER`` bracket a
replica's downtime (the in-flight batch aborts and requeues; recovery
rebuilds the engine through the replica factory, re-paying compile
warmup), ``TIMEOUT`` expires a request attempt (bounded retries, then a
``"timeout"`` outcome), and ``HEDGE`` dispatches a duplicate copy whose
first completion wins.  ``faults="none"`` never enters that loop, so
every existing timeline stays bit-identical and pays zero overhead.

The loop is O(n log n) in the number of requests and — this is the
million-request point — **O(1) in memory** along three axes:

* arrivals are consumed *incrementally*: only FREE/LAUNCH events live in
  the heap, and the next arrival is peeked from the (possibly lazy)
  input stream, so a generator or JSONL trace never materializes;
* with ``presorted=True``, :func:`normalize_arrivals` skips the
  materialize+sort+duplicate-set pass entirely and instead validates
  lazily that arrivals are time-ordered with strictly increasing
  ``request_id`` (what :func:`repro.serving.traffic.mix` and every
  built-in generator emit);
* with a :class:`~repro.serving.stats.StreamSummary` sink, responses
  are folded into O(1) online accumulators instead of being collected.

Two specialized loops peel off the hot common cases before the general
heap: a single replica with a non-holding batcher needs no event heap at
all (completions and arrivals merge in order), and the FIFO/unbatched
configuration — the paper's serving scenario — additionally needs no
scheduler queue, reducing each request to a handful of float ops.  Every
path evaluates ``start = max(arrival, replica_free_at)`` with the same
floats in the same order, so the FIFO + ``"none"`` timeline stays
bit-for-bit identical to the pre-refactor sequential simulations (pinned
by the golden parity tests).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from repro.errors import ServingError
from repro.serving.autoscaler import Autoscaler, ScaleEvent
from repro.serving.batching import Batcher, NoneBatcher
from repro.serving.faults import FaultPolicy, NoFaults
from repro.serving.request import ServeRequest, ServeResponse
from repro.serving.result import FaultStats
from repro.serving.scheduler import FIFOScheduler, QueuedRequest, Scheduler
from repro.workloads.deepbench import RNNTask

if TYPE_CHECKING:  # pragma: no cover
    from repro.serving.engine import ServingEngine
    from repro.serving.stats import StreamSummary

__all__ = [
    "normalize_arrivals",
    "run_stream",
    "StreamOutcome",
    "StreamDispatcher",
    "single_replica_dispatch",
]

#: Event kinds; FREE sorts before ARRIVAL at equal timestamps so an
#: arrival always sees the replica's settled state, and LAUNCH sorts
#: after ARRIVAL so a same-instant arrival can join the launching batch.
#: RECOVER (fault loop only) sorts with FREE — a replica recovering at
#: an arrival's instant may take it — while CRASH/TIMEOUT/HEDGE sort
#: after ARRIVAL, so a same-instant arrival is admitted before the
#: fault strikes.
_FREE, _RECOVER, _ARRIVAL, _LAUNCH, _CRASH, _TIMEOUT, _HEDGE = range(7)

_INF = float("inf")

#: Legacy dispatcher: (seq, request, projected per-replica completion
#: times of the *active* replicas) -> replica index.
Dispatcher = Callable[[int, ServeRequest, Sequence[float]], int]

#: Factory building the replica at one index slot:
#: (index) -> (engine, scheduler, batcher).  The index lets a mixed
#: fleet grow along its platform pattern and lets a crash recovery
#: rebuild a dead replica on its own platform.
ReplicaFactory = Callable[[int], "tuple[ServingEngine, Scheduler, Batcher]"]


class StreamDispatcher:
    """Incremental dispatcher protocol for fleet-scale streams.

    The legacy dispatcher contract hands every arrival a *snapshot* of
    all active replicas' projected completion times — an O(replicas)
    copy per request that turns least-loaded dispatch quadratic on big
    fleets.  A :class:`StreamDispatcher` instead receives *deltas*: the
    loop calls :meth:`assign` whenever one replica's projection changes
    and :meth:`resize` whenever the autoscaler changes the active set,
    so a policy can maintain its own O(log n) structure (see
    ``Fleet``'s least-loaded heap).  Plain callables keep working
    unchanged.

    Example::

        >>> from repro.serving.events import StreamDispatcher
        >>> class First(StreamDispatcher):
        ...     def choose(self, seq, request): return 0
        >>> First().choose(0, None)
        0
    """

    def choose(self, seq: int, request: ServeRequest) -> int:
        """Pick the replica for one arrival."""
        raise NotImplementedError  # pragma: no cover

    def assign(self, replica: int, work_until_s: float) -> None:
        """One replica's projected completion time advanced."""

    def resize(self, active: int, work_until: Sequence[float]) -> None:
        """The active replica set changed (autoscaler or stream start)."""

    def bind(self, engines: "Sequence[ServingEngine]") -> None:
        """The live replica list, before the stream starts.

        The loop mutates the bound list in place (autoscale growth
        appends, crash recovery replaces), so cost-aware dispatchers —
        which price each arrival under each replica's own platform —
        stay current without further calls.  Default: ignore it.
        """


def single_replica_dispatch(
    seq: int, request: ServeRequest, work_until: Sequence[float]
) -> int:
    """The engine's trivial one-replica dispatcher (always replica 0).

    Passing this exact function lets :func:`run_stream` skip per-arrival
    dispatch bookkeeping entirely on the single-replica fast paths.
    """
    return 0


@dataclass(frozen=True)
class StreamOutcome:
    """Everything one stream simulation produced.

    Attributes:
        responses: One response per request, in arrival order — empty
            when the stream ran against a summary sink (``mode="summary"``),
            which folds responses online instead of collecting them.
        assignments: Replica index per request, in arrival order (empty
            in summary mode; the summary tracks per-replica counts).
        scale_events: Autoscaler actions applied during the run.
        n_replicas: Total replicas that existed by the end (grown
            replicas included) — the peak capacity the run used.
        active_replicas: Replicas still active when the stream drained
            (equal to ``n_replicas`` unless the autoscaler scaled down).
        fault_stats: Injected-fault counters (all zero outside the
            fault-aware loop).

    Example::

        >>> from repro.serving import ServingEngine, uniform_arrivals
        >>> from repro.serving.events import run_stream
        >>> from repro.serving.scheduler import make_scheduler
        >>> from repro.workloads.deepbench import task
        >>> engine = ServingEngine("gpu")
        >>> arrivals = uniform_arrivals(task("lstm", 512, 25),
        ...                             rate_per_s=100, n_requests=3)
        >>> out = run_stream(arrivals, engines=(engine,),
        ...                  schedulers=(make_scheduler("fifo"),),
        ...                  dispatch=lambda seq, req, work: 0)
        >>> (len(out.responses), out.assignments, out.n_replicas)
        (3, [0, 0, 0], 1)
    """

    responses: "list[ServeResponse]"
    assignments: list[int]
    scale_events: tuple[ScaleEvent, ...] = ()
    n_replicas: int = 1
    active_replicas: int = 1
    fault_stats: FaultStats = FaultStats()


def _presorted_stream(
    arrivals: Iterable[ServeRequest | RNNTask],
) -> Iterator[ServeRequest]:
    """Lazily validate a pre-sorted stream: non-decreasing arrival times
    and strictly increasing request ids (which rules out duplicates with
    O(1) state — no id set is ever built)."""
    prev_arrival = -_INF
    prev_id: int | None = None
    position = 0
    for item in arrivals:
        if isinstance(item, RNNTask):
            item = ServeRequest(task=item, request_id=position)
        arrival = item.arrival_s
        if arrival < prev_arrival:
            raise ServingError(
                f"presorted stream is out of order: request "
                f"{item.request_id} arrives at {arrival} after "
                f"{prev_arrival}; pass presorted=False to sort"
            )
        rid = item.request_id
        if prev_id is not None and rid <= prev_id:
            raise ServingError(
                f"presorted stream needs strictly increasing request ids "
                f"(saw {rid} after {prev_id}); merge streams with "
                f"repro.serving.traffic.mix() — it renumbers globally — "
                f"or pass presorted=False"
            )
        prev_arrival = arrival
        prev_id = rid
        position += 1
        yield item


def normalize_arrivals(
    arrivals: Iterable[ServeRequest | RNNTask],
    *,
    presorted: bool = False,
) -> "list[ServeRequest] | Iterator[ServeRequest]":
    """Sort a stream into arrival order and validate request ids.

    Bare :class:`RNNTask` items are wrapped as arrival-time-zero requests
    with ids taken from their position.  Duplicate ``request_id``s are
    rejected outright: a stream merged by hand from several generators
    almost always collides on ids (every generator numbers from 0), which
    silently breaks FIFO tie-breaking and per-request accounting — use
    :func:`repro.serving.traffic.mix`, which re-numbers globally.

    With ``presorted=True`` the materialize+sort+duplicate-set pass is
    skipped: a *lazy* validator is returned instead, which checks — in
    O(1) memory, while the event loop consumes it — that arrivals are
    time-ordered with strictly increasing ids (every built-in generator,
    :func:`~repro.serving.traffic.mix`, and recorded traces satisfy
    this; monotone ids double as the duplicate check).  This is what
    lets ``serve_stream`` run a multi-million-request generator without
    holding it.

    Example::

        >>> from repro.serving.events import normalize_arrivals
        >>> from repro.serving import ServeRequest
        >>> from repro.workloads.deepbench import task
        >>> t = task("lstm", 512, 25)
        >>> reqs = [ServeRequest(task=t, arrival_s=0.2, request_id=1),
        ...         ServeRequest(task=t, arrival_s=0.1, request_id=0)]
        >>> [r.request_id for r in normalize_arrivals(reqs)]
        [0, 1]
        >>> lazy = normalize_arrivals(sorted(reqs, key=lambda r: r.arrival_s),
        ...                           presorted=True)
        >>> [r.request_id for r in lazy]       # validated as it streams
        [0, 1]
    """
    if presorted:
        return _presorted_stream(arrivals)
    requests: list[ServeRequest] = []
    for position, item in enumerate(arrivals):
        if isinstance(item, RNNTask):
            item = ServeRequest(task=item, request_id=position)
        requests.append(item)
    if not requests:
        raise ServingError("serve_stream needs at least one request")
    ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
    seen: set[int] = set()
    duplicates: set[int] = set()
    for req in ordered:
        if req.request_id in seen:
            duplicates.add(req.request_id)
        seen.add(req.request_id)
    if duplicates:
        shown = ", ".join(str(d) for d in sorted(duplicates)[:5])
        raise ServingError(
            f"duplicate request_id(s) in stream ({shown}); merge streams "
            f"with repro.serving.traffic.mix() to get globally unique ids"
        )
    return ordered


def run_stream(
    arrivals: Iterable[ServeRequest | RNNTask],
    *,
    engines: Sequence["ServingEngine"],
    schedulers: Sequence[Scheduler],
    dispatch: "Dispatcher | StreamDispatcher",
    slo_ms: float | None = None,
    batchers: Sequence[Batcher] | None = None,
    autoscaler: Autoscaler | None = None,
    replica_factory: ReplicaFactory | None = None,
    presorted: bool = False,
    summary: "StreamSummary | None" = None,
    faults: FaultPolicy | None = None,
    fault_seed: int = 0,
    timeout_ms: float | None = None,
    retries: int = 0,
    hedge_ms: float | None = None,
) -> StreamOutcome:
    """Simulate a timestamped stream over one or more replicas.

    Args:
        arrivals: The request stream — any iterable, including a lazy
            generator or trace reader (sorted internally unless
            ``presorted=True``).
        engines: One :class:`ServingEngine` per starting replica.
        schedulers: One scheduler per replica (same length as engines).
        dispatch: Assigns each arrival to a replica — either a legacy
            callable receiving the projected completion times of all
            *active* replicas (the classic join-the-shortest-queue
            signal), or an incremental :class:`StreamDispatcher`.
        slo_ms: Stream-level SLO; per-request ``slo_ms`` overrides it
            when computing deadlines for deadline-aware schedulers and
            SLO-aware batching.
        batchers: One batching policy per replica; defaults to the
            ``"none"`` policy everywhere (classic batch-1 serving).
        autoscaler: Optional policy resizing the active replica set as
            the stream runs; evaluated on every arrival and completion.
        replica_factory: Grows the fleet on scale-up; required when
            ``autoscaler`` may target more replicas than ``engines``.
        presorted: Trust (and lazily validate) that ``arrivals`` is
            already time-ordered with strictly increasing ids, skipping
            the materialize+sort pass — see :func:`normalize_arrivals`.
        summary: Optional :class:`~repro.serving.stats.StreamSummary`
            sink.  When given, completed requests are folded into its
            O(1) accumulators instead of being collected, and the
            returned outcome carries empty ``responses``/``assignments``.
        faults: Optional :class:`~repro.serving.faults.FaultPolicy`
            instance; anything other than ``"none"`` routes the stream
            through the fault-aware loop.  The loop calls
            ``faults.reset(fault_seed)``, so a given seed reproduces the
            same crash/straggler timeline on every run.
        fault_seed: Seed for the fault policy's deterministic draws.
        timeout_ms: Per-attempt latency budget; an attempt not finished
            within it is cancelled and (with ``retries``) re-dispatched,
            else answered with outcome ``"timeout"``.
        retries: Re-dispatches allowed after timeouts (needs
            ``timeout_ms``).
        hedge_ms: Dispatch a duplicate copy if the request has not
            finished this long after arrival; first completion wins and
            the loser is cancelled.

    Returns:
        A :class:`StreamOutcome`; its responses and assignments are
        indexed by arrival order — response ``i`` answers the ``i``-th
        request in arrival order no matter when (or in which batch) the
        scheduler actually served it.

    Example::

        >>> from repro.serving import ServingEngine, uniform_arrivals
        >>> from repro.serving.events import run_stream
        >>> from repro.serving.scheduler import make_scheduler
        >>> from repro.workloads.deepbench import task
        >>> out = run_stream(
        ...     uniform_arrivals(task("lstm", 512, 25),
        ...                      rate_per_s=200, n_requests=4),
        ...     engines=(ServingEngine("gpu"),),
        ...     schedulers=(make_scheduler("fifo"),),
        ...     dispatch=lambda seq, req, work: 0)
        >>> [r.request.request_id for r in out.responses]
        [0, 1, 2, 3]
    """
    engine_list = list(engines)
    scheduler_list = list(schedulers)
    batcher_list = (
        [NoneBatcher() for _ in engine_list] if batchers is None else list(batchers)
    )
    if not (len(engine_list) == len(scheduler_list) == len(batcher_list)):
        raise ServingError("need exactly one scheduler and batcher per replica")

    def bind_cost(replica: int) -> None:
        engine = engine_list[replica]
        batcher_list[replica].bind_cost(
            lambda task, size, _e=engine: _e.batch_latency_s(task, size)
        )

    for replica in range(len(engine_list)):
        bind_cost(replica)

    if timeout_ms is not None and timeout_ms <= 0:
        raise ServingError("timeout_ms must be positive when set")
    if hedge_ms is not None and hedge_ms <= 0:
        raise ServingError("hedge_ms must be positive when set")
    if retries < 0:
        raise ServingError("retries must be >= 0")
    if retries > 0 and timeout_ms is None:
        raise ServingError("retries need timeout_ms to be set")

    stream = normalize_arrivals(arrivals, presorted=presorted)

    # Any real fault policy — or a timeout/hedge, which are loop
    # features independent of the policy — routes through the separate
    # fault-aware loop.  ``faults="none"`` alone does not: the perfect-
    # machine paths below run untouched, bit-identical and overhead-free.
    if (
        (faults is not None and faults.name != "none")
        or timeout_ms is not None
        or hedge_ms is not None
    ):
        policy = faults if faults is not None else NoFaults()
        policy.reset(fault_seed)
        return _run_faulty(
            stream,
            engine_list,
            scheduler_list,
            batcher_list,
            bind_cost,
            dispatch,
            slo_ms,
            autoscaler,
            replica_factory,
            summary,
            policy,
            timeout_ms,
            retries,
            hedge_ms,
        )

    # A single replica whose batcher never holds (the base
    # ``hold_until`` is un-overridden) needs no event heap: completions
    # and arrivals merge in time order directly.  This covers the
    # paper's serving scenario and both benchmark configurations.
    if (
        len(engine_list) == 1
        and autoscaler is None
        and type(batcher_list[0]).hold_until is Batcher.hold_until
    ):
        scheduler = scheduler_list[0]
        batcher = batcher_list[0]
        if type(scheduler) is FIFOScheduler and type(batcher) is NoneBatcher:
            return _run_fifo_unbatched(
                stream, engine_list[0], dispatch, summary
            )
        return _run_single_replica(
            stream, engine_list[0], scheduler, batcher, dispatch, slo_ms, summary
        )

    return _run_heap(
        stream,
        engine_list,
        scheduler_list,
        batcher_list,
        bind_cost,
        dispatch,
        slo_ms,
        autoscaler,
        replica_factory,
        summary,
    )


def _choose_single(
    dispatch: "Dispatcher | StreamDispatcher",
    seq: int,
    req: ServeRequest,
    work: list[float],
) -> None:
    """Run a custom dispatcher against the one-replica view (parity with
    the general loop's contract, including its error)."""
    if isinstance(dispatch, StreamDispatcher):
        replica = dispatch.choose(seq, req)
    else:
        replica = dispatch(seq, req, work)
    if replica != 0:
        raise ServingError(f"dispatcher chose invalid replica {replica}")


def _run_fifo_unbatched(
    stream: Iterable[ServeRequest],
    engine: "ServingEngine",
    dispatch: "Dispatcher | StreamDispatcher",
    summary: "StreamSummary | None",
) -> StreamOutcome:
    """The hottest path: one replica, FIFO order, batch 1.

    Service order equals arrival order, so the whole simulation is the
    classic single-server recursion ``start = max(arrival, free_at)`` —
    no heap, no scheduler queue, no per-request :class:`QueuedRequest`.
    Identical floats in identical order to the general loop (golden
    parity holds bit for bit); with a summary sink it allocates nothing
    per request beyond the incoming request objects.
    """
    trivial = dispatch is single_replica_dispatch
    collect = summary is None
    responses: list[ServeResponse] = []
    append = responses.append
    observe = None if collect else summary.observe_served
    result_for = engine.result_for
    work = [0.0]
    if isinstance(dispatch, StreamDispatcher):
        dispatch.bind([engine])
        dispatch.resize(1, work)
    free_at = 0.0
    n = 0
    last_task: RNNTask | None = None
    last_result = None
    for req in stream:
        task = req.task
        if task is not last_task:
            last_result = result_for(task)
            last_task = task
        result = last_result
        latency = result.latency_s
        arrival = req.arrival_s
        if not trivial:
            # Same contract order as the general loop: the dispatcher
            # sees the pre-assignment projection.
            _choose_single(dispatch, n, req, work)
            work[0] = (arrival if arrival > work[0] else work[0]) + latency
        start = arrival if arrival > free_at else free_at
        finish = start + latency
        free_at = finish
        if collect:
            append(
                ServeResponse(
                    request=req,
                    result=result,
                    queue_delay_s=start - arrival,
                    start_s=start,
                    finish_s=finish,
                )
            )
        else:
            observe(req, result, start, finish, 1)
        n += 1
    if n == 0:
        raise ServingError("serve_stream needs at least one request")
    if not collect:
        summary.note_assignment(0, n)
    return StreamOutcome(
        responses=responses,
        assignments=[0] * n if collect else [],
    )


def _run_single_replica(
    stream: Iterable[ServeRequest],
    engine: "ServingEngine",
    scheduler: Scheduler,
    batcher: Batcher,
    dispatch: "Dispatcher | StreamDispatcher",
    slo_ms: float | None,
    summary: "StreamSummary | None",
) -> StreamOutcome:
    """One replica, any scheduler, any non-holding batcher: merge
    completions and arrivals in time order without an event heap.

    Invariant: whenever the replica is idle its ready queue is empty
    (an arrival launches immediately when idle), so only completions
    that precede the next arrival need replaying before it queues.
    """
    trivial = dispatch is single_replica_dispatch
    collect = summary is None
    responses: list[ServeResponse | None] = []
    observe = None if collect else summary.observe_served
    result_for = engine.result_for
    none_batcher = type(batcher) is NoneBatcher
    push = scheduler.push
    pop = scheduler.pop
    qlen = scheduler.__len__
    work = [0.0]
    if isinstance(dispatch, StreamDispatcher):
        dispatch.bind([engine])
        dispatch.resize(1, work)
    free_at = 0.0
    busy = False
    seq = 0
    last_task: RNNTask | None = None
    last_result = None
    stream_slo = slo_ms

    def launch(now: float) -> None:
        nonlocal free_at, busy
        if none_batcher:
            entries = [pop()]
        else:
            entries = batcher.take(scheduler, now)
            if not entries:
                raise ServingError(
                    f"batcher {batcher.name!r} returned an empty batch"
                )
        head = entries[0]
        arrival = head.request.arrival_s
        start = arrival if arrival > now else now
        if len(entries) == 1:
            # The exact pre-batching arithmetic: parity for batcher="none".
            finish = start + head.service_s
            if collect:
                responses[head.seq] = ServeResponse(
                    request=head.request,
                    result=head.result,
                    queue_delay_s=start - arrival,
                    start_s=start,
                    finish_s=finish,
                )
            else:
                observe(head.request, head.result, start, finish, 1)
        else:
            exec_task = _batch_exec_task(entries, batcher)
            result = engine.serve_batched(exec_task, len(entries))
            finish = start + result.latency_s
            size = len(entries)
            for index, entry in enumerate(entries):
                if collect:
                    responses[entry.seq] = ServeResponse(
                        request=entry.request,
                        result=result,
                        queue_delay_s=start - entry.request.arrival_s,
                        start_s=start,
                        finish_s=finish,
                        batch_size=size,
                        batch_index=index,
                    )
                else:
                    observe(entry.request, result, start, finish, size)
        busy = True
        free_at = finish

    for req in stream:
        t = req.arrival_s
        # Completions that fire no later than this arrival (FREE sorts
        # before ARRIVAL at equal stamps) launch first.
        while busy and free_at <= t:
            busy = False
            if qlen():
                launch(free_at)
        task = req.task
        if task is not last_task:
            last_result = result_for(task)
            last_task = task
        result = last_result
        if not trivial:
            _choose_single(dispatch, seq, req, work)
            work[0] = (t if t > work[0] else work[0]) + result.latency_s
        slo = req.slo_ms
        if slo is None:
            slo = stream_slo
        push(
            QueuedRequest(
                seq=seq,
                request=req,
                result=result,
                service_s=result.latency_s,
                deadline_s=_INF if slo is None else t + slo / 1e3,
            )
        )
        if collect:
            responses.append(None)
        seq += 1
        if not busy:
            launch(t)
    if seq == 0:
        raise ServingError("serve_stream needs at least one request")
    # Drain: replay the remaining FREE chain.
    while busy:
        busy = False
        if qlen():
            launch(free_at)
    if not collect:
        summary.note_assignment(0, seq)
    return StreamOutcome(
        responses=responses,  # type: ignore[arg-type]
        assignments=[0] * seq if collect else [],
    )


def _batch_exec_task(entries: "list[QueuedRequest]", batcher: Batcher) -> RNNTask:
    """The task a coalesced batch executes at: the head's task padded to
    the longest member (the pad/bucket policies).  Same-length batches
    reduce to the head's task exactly.  Mixing task *families* is a
    batcher bug."""
    head = entries[0]
    exec_task = head.request.task
    for e in entries[1:]:
        t = e.request.task
        if t == exec_task:
            continue
        if t.family_key != exec_task.family_key:
            raise ServingError(
                f"batcher {batcher.name!r} coalesced requests from "
                f"different task families into one batch"
            )
        exec_task = exec_task.padded_to(t.timesteps)
    return exec_task


def _run_heap(
    stream: Iterable[ServeRequest],
    engine_list: "list[ServingEngine]",
    scheduler_list: "list[Scheduler]",
    batcher_list: "list[Batcher]",
    bind_cost: Callable[[int], None],
    dispatch: "Dispatcher | StreamDispatcher",
    slo_ms: float | None,
    autoscaler: Autoscaler | None,
    replica_factory: ReplicaFactory | None,
    summary: "StreamSummary | None",
) -> StreamOutcome:
    """The general loop: N replicas, holds, autoscaling.

    Only FREE and LAUNCH events live in the heap; arrivals are peeked
    one at a time from the (possibly lazy) sorted stream, so the heap
    size is bounded by the replica count, not the stream length.
    """
    collect = summary is None
    rich = isinstance(dispatch, StreamDispatcher)
    responses: list[ServeResponse | None] = []
    assignments: list[int] = []
    observe = None if collect else summary.observe_served
    assign_note = None if collect else summary.note_assignment
    #: Projected completion of all work assigned to each replica; the
    #: dispatch signal (identical to the pre-refactor ``free_at``).  The
    #: projection assumes unbatched service, so with batching it is an
    #: upper bound — still the right join-the-shortest-queue signal.
    work_until = [0.0] * len(engine_list)
    busy = [False] * len(engine_list)
    #: Pending LAUNCH deadline per replica (None = not holding); a
    #: LAUNCH event is stale unless its time matches exactly.
    hold_at: list[float | None] = [None] * len(engine_list)
    active = len(engine_list)
    scale_events: list[ScaleEvent] = []
    if autoscaler is not None:
        autoscaler.reset()
    if rich:
        dispatch.bind(engine_list)
        dispatch.resize(active, work_until)

    events: list[tuple[float, int, int]] = []

    def add_replica() -> None:
        if replica_factory is None:
            raise ServingError("autoscaler needs a replica_factory to scale up")
        engine, scheduler, batcher = replica_factory(len(engine_list))
        engine_list.append(engine)
        scheduler_list.append(scheduler)
        batcher_list.append(batcher)
        work_until.append(0.0)
        busy.append(False)
        hold_at.append(None)
        bind_cost(len(engine_list) - 1)

    def autoscale(now: float) -> None:
        nonlocal active
        depth = sum(len(scheduler_list[j]) for j in range(active))
        wait = min(max(work_until[j] - now, 0.0) for j in range(active))
        decision = autoscaler.decide(
            now=now,
            active=active,
            queue_depth=depth,
            projected_wait_s=wait,
            slo_ms=slo_ms,
        )
        if decision is None or decision.target == active:
            return
        while len(engine_list) < decision.target:
            add_replica()
        active = decision.target
        # Cooldown is charged only here, once the resize actually took
        # effect — decide() itself is side-effect free.
        autoscaler.note_applied(now)
        scale_events.append(
            ScaleEvent(
                time_s=now,
                action=decision.action,
                replicas=active,
                queue_depth=depth,
                reason=decision.reason,
            )
        )
        if rich:
            dispatch.resize(active, work_until)

    def launch(replica: int, now: float) -> None:
        queue = scheduler_list[replica]
        batcher = batcher_list[replica]
        ready_at = batcher.hold_until(queue, now)
        if ready_at > now:
            if hold_at[replica] != ready_at:
                # A LAUNCH for this exact deadline is not yet scheduled
                # (re-entered holds with an unchanged deadline reuse the
                # event already in the heap).
                hold_at[replica] = ready_at
                heapq.heappush(events, (ready_at, _LAUNCH, replica))
            return
        hold_at[replica] = None
        entries = batcher.take(queue, now)
        if not entries:
            raise ServingError(f"batcher {batcher.name!r} returned an empty batch")
        head = entries[0]
        start = max(head.request.arrival_s, now)
        if len(entries) == 1:
            # The exact pre-batching arithmetic: parity for batcher="none".
            finish = start + head.service_s
            if collect:
                responses[head.seq] = ServeResponse(
                    request=head.request,
                    result=head.result,
                    queue_delay_s=start - head.request.arrival_s,
                    start_s=start,
                    finish_s=finish,
                )
            else:
                observe(head.request, head.result, start, finish, 1)
        else:
            exec_task = _batch_exec_task(entries, batcher)
            engine = engine_list[replica]
            result = engine.serve_batched(exec_task, len(entries))
            finish = start + result.latency_s
            size = len(entries)
            for index, entry in enumerate(entries):
                if collect:
                    responses[entry.seq] = ServeResponse(
                        request=entry.request,
                        result=result,
                        queue_delay_s=start - entry.request.arrival_s,
                        start_s=start,
                        finish_s=finish,
                        batch_size=size,
                        batch_index=index,
                    )
                else:
                    observe(entry.request, result, start, finish, size)
        busy[replica] = True
        heapq.heappush(events, (finish, _FREE, replica))

    arrival_iter = iter(stream)
    next_req = next(arrival_iter, None)
    seq = 0
    while events or next_req is not None:
        # Does the next arrival precede every heap event?  FREE sorts
        # before ARRIVAL at equal stamps, LAUNCH after — the same total
        # order the materialized heap produced.
        if next_req is not None:
            if events:
                top = events[0]
                arrival_s = next_req.arrival_s
                take_arrival = arrival_s < top[0] or (
                    arrival_s == top[0] and top[1] == _LAUNCH
                )
            else:
                take_arrival = True
        else:
            take_arrival = False
        if take_arrival:
            req = next_req
            now = req.arrival_s
            if autoscaler is not None:
                autoscale(now)
            if rich:
                replica = dispatch.choose(seq, req)
            else:
                view = (
                    work_until
                    if active == len(work_until)
                    else work_until[:active]
                )
                replica = dispatch(seq, req, view)
            if not 0 <= replica < active:
                raise ServingError(f"dispatcher chose invalid replica {replica}")
            engine = engine_list[replica]
            result = engine.result_for(req.task)
            entry = QueuedRequest(
                seq=seq,
                request=req,
                result=result,
                service_s=result.latency_s,
                deadline_s=req.deadline_s(slo_ms),
            )
            work_until[replica] = (
                max(req.arrival_s, work_until[replica]) + result.latency_s
            )
            if rich:
                dispatch.assign(replica, work_until[replica])
            if collect:
                responses.append(None)
                assignments.append(replica)
            else:
                assign_note(replica)
            scheduler_list[replica].push(entry)
            if not busy[replica]:
                launch(replica, now)
            seq += 1
            next_req = next(arrival_iter, None)
            continue
        now, kind, index = heapq.heappop(events)
        if kind == _FREE:
            busy[index] = False
            if autoscaler is not None:
                autoscale(now)
            if len(scheduler_list[index]):
                launch(index, now)
        else:  # _LAUNCH: stale unless this exact hold is still pending
            if busy[index] or hold_at[index] != now:
                continue
            if len(scheduler_list[index]):
                launch(index, now)
            else:
                hold_at[index] = None

    if seq == 0:
        raise ServingError("serve_stream needs at least one request")
    return StreamOutcome(
        responses=responses,  # type: ignore[arg-type]
        assignments=assignments,
        scale_events=tuple(scale_events),
        n_replicas=len(engine_list),
        active_replicas=active,
    )


class _Flight:
    """One request's life inside the fault-aware loop.

    A request may have several live *copies* (retries, hedges, requeues
    after a crash or preemption) in queues and in flight at once; the
    flight is the single source of truth for whether it already
    resolved, which attempt is current, and the straggler factor drawn
    for it.  Deleted from the pending map on resolution, so the loop's
    memory stays O(in-system), not O(stream).
    """

    __slots__ = (
        "index",
        "request",
        "result",
        "factor",
        "deadline_s",
        "attempts",
        "hedged",
        "done",
    )

    def __init__(
        self, index: int, request: ServeRequest, factor: float, deadline_s: float
    ) -> None:
        self.index = index
        self.request = request
        self.result = None  # batch-1 result, filled at first dispatch
        self.factor = factor
        self.deadline_s = deadline_s
        self.attempts = 1
        self.hedged = False
        self.done = False


def _run_faulty(
    stream: Iterable[ServeRequest],
    engine_list: "list[ServingEngine]",
    scheduler_list: "list[Scheduler]",
    batcher_list: "list[Batcher]",
    bind_cost: Callable[[int], None],
    dispatch: "Dispatcher | StreamDispatcher",
    slo_ms: float | None,
    autoscaler: Autoscaler | None,
    replica_factory: ReplicaFactory | None,
    summary: "StreamSummary | None",
    policy: FaultPolicy,
    timeout_ms: float | None,
    retries: int,
    hedge_ms: float | None,
) -> StreamOutcome:
    """The unreliable-hardware loop: crashes, stragglers, timeouts,
    hedges, and preemption on top of the general heap simulation.

    Never entered for ``faults="none"`` without a timeout/hedge, so it
    adds zero cost to the perfect-machine paths.  Structure mirrors
    :func:`_run_heap` with three extensions:

    * every scheduler entry is a *copy* of a :class:`_Flight`; stale
      copies (superseded attempts, already-resolved requests) are
      filtered out when a batch launches or completes, which is how
      cancellation works without reaching into scheduler internals;
    * replicas carry a ``dead`` flag and a generation counter — bumping
      the generation invalidates the scheduled FREE of an aborted
      (crashed or preempted) execution, whose live members requeue;
    * responses are recorded at completion (not launch), because only
      then is it known which copy won.

    Determinism: every policy draw hashes ``(seed, replica)`` or
    ``(seed, request_id)``; the loop itself is a deterministic function
    of the stream, so a seed reproduces the identical timeline across
    runs and shard layouts.
    """
    collect = summary is None
    rich = isinstance(dispatch, StreamDispatcher)
    responses: list[ServeResponse | None] = []
    assignments: list[int] = []
    observe = None if collect else summary.observe_served
    assign_note = None if collect else summary.note_assignment
    n_start = len(engine_list)
    work_until = [0.0] * n_start
    busy = [False] * n_start
    dead = [False] * n_start
    generation = [0] * n_start
    hold_at: list[float | None] = [None] * n_start
    #: Per-replica in-flight execution: (live entries, start, finish,
    #: result, batch size); None when idle/aborted.
    inflight: list[tuple | None] = [None] * n_start
    active = n_start
    scale_events: list[ScaleEvent] = []
    if autoscaler is not None:
        autoscaler.reset()
    if rich:
        dispatch.bind(engine_list)
        dispatch.resize(active, work_until)

    timeout_s = None if timeout_ms is None else timeout_ms / 1e3
    hedge_s = None if hedge_ms is None else hedge_ms / 1e3

    #: request_id -> _Flight for every unresolved request.
    pending: dict[int, _Flight] = {}
    #: entry.seq -> (flight, attempt, is_hedge) for every live copy.
    copy_info: dict[int, tuple[_Flight, int, bool]] = {}

    n_crashes = 0
    downtime_total = 0.0
    n_preemptions = 0
    n_retries = 0
    n_timeouts = 0
    n_hedges = 0
    n_hedge_wins = 0
    n_stragglers = 0

    events: list[tuple[float, int, int, float]] = []
    qseq = 0  # unique per scheduler push (copies included)
    dseq = 0  # unique per dispatch decision (retries/hedges included)

    def schedule_crash(replica: int, after_s: float) -> None:
        nxt = policy.next_crash(replica, after_s)
        if nxt is None:
            return
        crash_s, down_s = nxt
        heapq.heappush(events, (max(crash_s, after_s), _CRASH, replica, down_s))

    def add_replica(now: float) -> None:
        if replica_factory is None:
            raise ServingError("autoscaler needs a replica_factory to scale up")
        engine, scheduler, batcher = replica_factory(len(engine_list))
        engine_list.append(engine)
        scheduler_list.append(scheduler)
        batcher_list.append(batcher)
        work_until.append(0.0)
        busy.append(False)
        dead.append(False)
        generation.append(0)
        hold_at.append(None)
        inflight.append(None)
        replica = len(engine_list) - 1
        bind_cost(replica)
        schedule_crash(replica, now)

    def autoscale(now: float) -> None:
        nonlocal active
        depth = sum(len(scheduler_list[j]) for j in range(active))
        wait = min(max(work_until[j] - now, 0.0) for j in range(active))
        decision = autoscaler.decide(
            now=now,
            active=active,
            queue_depth=depth,
            projected_wait_s=wait,
            slo_ms=slo_ms,
        )
        if decision is None or decision.target == active:
            return
        while len(engine_list) < decision.target:
            add_replica(now)
        active = decision.target
        autoscaler.note_applied(now)
        scale_events.append(
            ScaleEvent(
                time_s=now,
                action=decision.action,
                replicas=active,
                queue_depth=depth,
                reason=decision.reason,
            )
        )
        if rich:
            dispatch.resize(active, work_until)

    def record(
        flight: _Flight,
        result,
        start: float,
        finish: float,
        size: int,
        index: int,
        outcome: str,
    ) -> None:
        req = flight.request
        if collect:
            responses[flight.index] = ServeResponse(
                request=req,
                result=result,
                queue_delay_s=start - req.arrival_s,
                start_s=start,
                finish_s=finish,
                batch_size=size,
                batch_index=index,
                outcome=outcome,
                attempts=flight.attempts,
            )
        else:
            observe(req, result, start, finish, size, outcome=outcome)

    def push_copy(
        flight: _Flight, now: float, is_hedge: bool
    ) -> tuple[int, QueuedRequest]:
        """Dispatch one copy of a flight to a replica's ready queue."""
        nonlocal qseq, dseq
        req = flight.request
        if rich:
            replica = dispatch.choose(dseq, req)
        else:
            view = work_until if active == len(work_until) else work_until[:active]
            replica = dispatch(dseq, req, view)
        dseq += 1
        if not 0 <= replica < active:
            raise ServingError(f"dispatcher chose invalid replica {replica}")
        result = engine_list[replica].result_for(req.task)
        if flight.result is None:
            flight.result = result
        entry = QueuedRequest(
            seq=qseq,
            request=req,
            result=result,
            service_s=result.latency_s * flight.factor,
            deadline_s=flight.deadline_s,
        )
        copy_info[qseq] = (flight, flight.attempts, is_hedge)
        qseq += 1
        work_until[replica] = max(now, work_until[replica]) + entry.service_s
        if rich:
            dispatch.assign(replica, work_until[replica])
        scheduler_list[replica].push(entry)
        return replica, entry

    def abort_execution(replica: int, now: float) -> None:
        """Abort the in-flight batch; live members requeue on the same
        replica (stale copies are dropped for good)."""
        nonlocal qseq
        batch = inflight[replica]
        inflight[replica] = None
        generation[replica] += 1  # the scheduled FREE goes stale
        busy[replica] = False
        entries = batch[0]
        queue = scheduler_list[replica]
        for entry in entries:
            flight, attempt, is_hedge = copy_info.pop(entry.seq)
            if flight.done or flight.attempts != attempt:
                continue
            requeued = QueuedRequest(
                seq=qseq,
                request=entry.request,
                result=entry.result,
                service_s=entry.service_s,
                deadline_s=entry.deadline_s,
            )
            copy_info[qseq] = (flight, attempt, is_hedge)
            qseq += 1
            queue.push(requeued)

    def launch(replica: int, now: float) -> None:
        if busy[replica] or dead[replica]:
            return
        queue = scheduler_list[replica]
        batcher = batcher_list[replica]
        live: list[QueuedRequest] = []
        while not live:
            if not len(queue):
                hold_at[replica] = None
                return
            ready_at = batcher.hold_until(queue, now)
            if ready_at > now:
                if hold_at[replica] != ready_at:
                    hold_at[replica] = ready_at
                    heapq.heappush(events, (ready_at, _LAUNCH, replica, 0.0))
                return
            hold_at[replica] = None
            entries = batcher.take(queue, now)
            if not entries:
                raise ServingError(
                    f"batcher {batcher.name!r} returned an empty batch"
                )
            for entry in entries:
                flight, attempt, _ = copy_info[entry.seq]
                if flight.done or flight.attempts != attempt:
                    del copy_info[entry.seq]  # cancelled while queued
                    continue
                live.append(entry)
        head = live[0]
        start = max(head.request.arrival_s, now)
        if len(live) == 1:
            result = head.result
            finish = start + head.service_s  # straggler-inflated
        else:
            exec_task = _batch_exec_task(live, batcher)
            result = engine_list[replica].serve_batched(exec_task, len(live))
            # The batch straggles with its slowest member.
            max_factor = max(copy_info[e.seq][0].factor for e in live)
            finish = start + result.latency_s * max_factor
        busy[replica] = True
        inflight[replica] = (live, start, finish, result, len(live))
        heapq.heappush(events, (finish, _FREE, replica, float(generation[replica])))

    for replica in range(n_start):
        schedule_crash(replica, 0.0)

    arrival_iter = iter(stream)
    next_req = next(arrival_iter, None)
    seq = 0
    while next_req is not None or pending:
        if next_req is not None:
            if events:
                top = events[0]
                arrival_s = next_req.arrival_s
                take_arrival = arrival_s < top[0] or (
                    arrival_s == top[0] and top[1] > _ARRIVAL
                )
            else:
                take_arrival = True
        else:
            take_arrival = False

        if take_arrival:
            req = next_req
            now = req.arrival_s
            if autoscaler is not None:
                autoscale(now)
            factor = policy.straggler_factor(req)
            if factor < 1.0:
                raise ServingError(
                    f"fault policy {policy.name!r} returned straggler factor "
                    f"{factor} < 1"
                )
            if factor > 1.0:
                n_stragglers += 1
            flight = _Flight(
                index=seq,
                request=req,
                factor=factor,
                deadline_s=req.deadline_s(slo_ms),
            )
            pending[req.request_id] = flight
            replica, entry = push_copy(flight, now, is_hedge=False)
            if collect:
                responses.append(None)
                assignments.append(replica)
            else:
                assign_note(replica)
            if timeout_s is not None:
                heapq.heappush(
                    events, (now + timeout_s, _TIMEOUT, req.request_id, 1.0)
                )
            if hedge_s is not None:
                heapq.heappush(
                    events, (now + hedge_s, _HEDGE, req.request_id, 0.0)
                )
            if (
                policy.preemptive
                and busy[replica]
                and not dead[replica]
                and inflight[replica] is not None
            ):
                rank = scheduler_list[replica].preemption_rank
                running = [
                    rank(e)
                    for e in inflight[replica][0]
                    if e.seq in copy_info
                    and not copy_info[e.seq][0].done
                ]
                running_rank = max(running) if running else -_INF
                if policy.preempts(rank(entry), running_rank):
                    abort_execution(replica, now)
                    n_preemptions += 1
            if not busy[replica]:
                launch(replica, now)
            seq += 1
            next_req = next(arrival_iter, None)
            continue

        now, kind, index, payload = heapq.heappop(events)

        if kind == _FREE:
            replica = index
            if payload != generation[replica]:
                continue  # execution was aborted (crash/preemption)
            busy[replica] = False
            batch = inflight[replica]
            inflight[replica] = None
            entries, start, finish, result, size = batch
            for position, entry in enumerate(entries):
                flight, attempt, is_hedge = copy_info.pop(entry.seq)
                if flight.done or flight.attempts != attempt:
                    continue  # a sibling copy already won, or superseded
                flight.done = True
                del pending[entry.request.request_id]
                if is_hedge:
                    n_hedge_wins += 1
                    outcome = "hedged"
                elif flight.attempts > 1:
                    outcome = "retried"
                else:
                    outcome = "ok"
                record(flight, result, start, finish, size, position, outcome)
            if autoscaler is not None:
                autoscale(now)
            launch(replica, now)

        elif kind == _RECOVER:
            replica = index
            dead[replica] = False
            if replica_factory is not None:
                # The replacement engine comes through the fleet's
                # factory: it shares the fleet's compile cache, so
                # recovery warmup costs exactly what a scale-up does.
                engine, _scheduler, _batcher = replica_factory(replica)
                engine_list[replica] = engine
                bind_cost(replica)
            schedule_crash(replica, now)
            work_until[replica] = max(work_until[replica], now)
            if rich:
                dispatch.assign(replica, work_until[replica])
            launch(replica, now)

        elif kind == _LAUNCH:
            replica = index
            # Stale unless this exact hold is still pending on a live,
            # idle replica (crashes clear holds; launches reschedule).
            if busy[replica] or dead[replica] or hold_at[replica] != now:
                continue
            launch(replica, now)

        elif kind == _CRASH:
            replica = index
            n_crashes += 1
            downtime_total += payload
            hold_at[replica] = None
            dead[replica] = True
            if busy[replica]:
                abort_execution(replica, now)
            recover_at = now + payload
            work_until[replica] = max(work_until[replica], recover_at)
            if rich:
                dispatch.assign(replica, work_until[replica])
            heapq.heappush(events, (recover_at, _RECOVER, replica, payload))

        elif kind == _TIMEOUT:
            flight = pending.get(index)
            if flight is None or flight.done or flight.attempts != payload:
                continue  # resolved, or a newer attempt reset the budget
            if flight.attempts <= retries:
                # Older copies (queued or in flight) go stale via the
                # attempt tag; the timeout budget restarts now.
                flight.attempts += 1
                n_retries += 1
                replica, _entry = push_copy(flight, now, is_hedge=False)
                heapq.heappush(
                    events,
                    (now + timeout_s, _TIMEOUT, index, float(flight.attempts)),
                )
                launch(replica, now)
            else:
                n_timeouts += 1
                flight.done = True
                del pending[index]
                record(flight, flight.result, now, now, 1, 0, "timeout")

        else:  # _HEDGE
            flight = pending.get(index)
            if flight is None or flight.done or flight.hedged:
                continue
            flight.hedged = True
            n_hedges += 1
            replica, _entry = push_copy(flight, now, is_hedge=True)
            launch(replica, now)

    if seq == 0:
        raise ServingError("serve_stream needs at least one request")
    return StreamOutcome(
        responses=responses,  # type: ignore[arg-type]
        assignments=assignments,
        scale_events=tuple(scale_events),
        n_replicas=len(engine_list),
        active_replicas=active,
        fault_stats=FaultStats(
            crashes=n_crashes,
            downtime_s=downtime_total,
            preemptions=n_preemptions,
            retries=n_retries,
            timeouts=n_timeouts,
            hedges=n_hedges,
            hedge_wins=n_hedge_wins,
            stragglers=n_stragglers,
        ),
    )
