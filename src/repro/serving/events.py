"""The heap-based discrete-event loop shared by engine and fleet streams.

One simulation drives both :meth:`ServingEngine.serve_stream` (a single
replica) and :meth:`Fleet.serve_stream` (N replicas behind a
dispatcher).  Three event kinds flow through a single heap:

* ``FREE`` — a replica finishes an execution and consults its batcher
  for the next one.
* ``ARRIVAL`` — a request enters the system.  The autoscaler (if any)
  may first resize the active replica set; the dispatcher then picks a
  replica, the replica's engine prepares/serves the model (compile-once
  cache; service times are deterministic per platform+task), and the
  request joins that replica's ready queue under its scheduler.
* ``LAUNCH`` — a batcher held an idle replica open to let a batch
  accumulate (see :mod:`repro.serving.batching`); the hold expires and
  the replica launches whatever is ready.  Sorted after arrivals at
  equal timestamps so a request arriving exactly at the deadline still
  joins the batch.

The loop is O(n log n) in the number of requests: each request costs a
constant number of heap and scheduler operations.  With the FIFO
scheduler and the ``"none"`` batcher the timeline it produces is
bit-for-bit identical to the pre-refactor sequential simulations (pinned
by the golden parity tests): ``start = max(arrival, replica_free_at)``
is evaluated with the same floats in the same order, and no ``LAUNCH``
events are ever created.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.errors import ServingError
from repro.serving.autoscaler import Autoscaler, ScaleEvent
from repro.serving.batching import Batcher, NoneBatcher
from repro.serving.request import ServeRequest, ServeResponse
from repro.serving.scheduler import QueuedRequest, Scheduler
from repro.workloads.deepbench import RNNTask

if TYPE_CHECKING:  # pragma: no cover
    from repro.serving.engine import ServingEngine

__all__ = ["normalize_arrivals", "run_stream", "StreamOutcome"]

#: Event kinds; FREE sorts before ARRIVAL at equal timestamps so an
#: arrival always sees the replica's settled state, and LAUNCH sorts
#: after ARRIVAL so a same-instant arrival can join the launching batch.
_FREE, _ARRIVAL, _LAUNCH = 0, 1, 2

#: Dispatcher: (seq, request, projected per-replica completion times of
#: the *active* replicas) -> replica index.
Dispatcher = Callable[[int, ServeRequest, Sequence[float]], int]

#: Factory appending one replica: () -> (engine, scheduler, batcher).
ReplicaFactory = Callable[[], "tuple[ServingEngine, Scheduler, Batcher]"]


@dataclass(frozen=True)
class StreamOutcome:
    """Everything one stream simulation produced.

    Attributes:
        responses: One response per request, in arrival order.
        assignments: Replica index per request, in arrival order.
        scale_events: Autoscaler actions applied during the run.
        n_replicas: Total replicas that existed by the end (grown
            replicas included) — the peak capacity the run used.
        active_replicas: Replicas still active when the stream drained
            (equal to ``n_replicas`` unless the autoscaler scaled down).

    Example::

        >>> from repro.serving import ServingEngine, uniform_arrivals
        >>> from repro.serving.events import run_stream
        >>> from repro.serving.scheduler import make_scheduler
        >>> from repro.workloads.deepbench import task
        >>> engine = ServingEngine("gpu")
        >>> arrivals = uniform_arrivals(task("lstm", 512, 25),
        ...                             rate_per_s=100, n_requests=3)
        >>> out = run_stream(arrivals, engines=(engine,),
        ...                  schedulers=(make_scheduler("fifo"),),
        ...                  dispatch=lambda seq, req, work: 0)
        >>> (len(out.responses), out.assignments, out.n_replicas)
        (3, [0, 0, 0], 1)
    """

    responses: "list[ServeResponse]"
    assignments: list[int]
    scale_events: tuple[ScaleEvent, ...] = ()
    n_replicas: int = 1
    active_replicas: int = 1


def normalize_arrivals(
    arrivals: Iterable[ServeRequest | RNNTask],
) -> list[ServeRequest]:
    """Sort a stream into arrival order and validate request ids.

    Bare :class:`RNNTask` items are wrapped as arrival-time-zero requests
    with ids taken from their position.  Duplicate ``request_id``s are
    rejected outright: a stream merged by hand from several generators
    almost always collides on ids (every generator numbers from 0), which
    silently breaks FIFO tie-breaking and per-request accounting — use
    :func:`repro.serving.traffic.mix`, which re-numbers globally.

    Example::

        >>> from repro.serving.events import normalize_arrivals
        >>> from repro.serving import ServeRequest
        >>> from repro.workloads.deepbench import task
        >>> t = task("lstm", 512, 25)
        >>> reqs = [ServeRequest(task=t, arrival_s=0.2, request_id=1),
        ...         ServeRequest(task=t, arrival_s=0.1, request_id=0)]
        >>> [r.request_id for r in normalize_arrivals(reqs)]
        [0, 1]
    """
    requests: list[ServeRequest] = []
    for position, item in enumerate(arrivals):
        if isinstance(item, RNNTask):
            item = ServeRequest(task=item, request_id=position)
        requests.append(item)
    if not requests:
        raise ServingError("serve_stream needs at least one request")
    ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
    seen: set[int] = set()
    duplicates: set[int] = set()
    for req in ordered:
        if req.request_id in seen:
            duplicates.add(req.request_id)
        seen.add(req.request_id)
    if duplicates:
        shown = ", ".join(str(d) for d in sorted(duplicates)[:5])
        raise ServingError(
            f"duplicate request_id(s) in stream ({shown}); merge streams "
            f"with repro.serving.traffic.mix() to get globally unique ids"
        )
    return ordered


def run_stream(
    arrivals: Iterable[ServeRequest | RNNTask],
    *,
    engines: Sequence["ServingEngine"],
    schedulers: Sequence[Scheduler],
    dispatch: Dispatcher,
    slo_ms: float | None = None,
    batchers: Sequence[Batcher] | None = None,
    autoscaler: Autoscaler | None = None,
    replica_factory: ReplicaFactory | None = None,
) -> StreamOutcome:
    """Simulate a timestamped stream over one or more replicas.

    Args:
        arrivals: The request stream (any order; sorted internally).
        engines: One :class:`ServingEngine` per starting replica.
        schedulers: One scheduler per replica (same length as engines).
        dispatch: Assigns each arrival to a replica, given the projected
            completion time of all work already assigned to each *active*
            replica (the classic join-the-shortest-queue signal).
        slo_ms: Stream-level SLO; per-request ``slo_ms`` overrides it
            when computing deadlines for deadline-aware schedulers and
            SLO-aware batching.
        batchers: One batching policy per replica; defaults to the
            ``"none"`` policy everywhere (classic batch-1 serving).
        autoscaler: Optional policy resizing the active replica set as
            the stream runs; evaluated on every arrival and completion.
        replica_factory: Grows the fleet on scale-up; required when
            ``autoscaler`` may target more replicas than ``engines``.

    Returns:
        A :class:`StreamOutcome`; its responses and assignments are
        indexed by arrival order — response ``i`` answers the ``i``-th
        request in arrival order no matter when (or in which batch) the
        scheduler actually served it.

    Example::

        >>> from repro.serving import ServingEngine, uniform_arrivals
        >>> from repro.serving.events import run_stream
        >>> from repro.serving.scheduler import make_scheduler
        >>> from repro.workloads.deepbench import task
        >>> out = run_stream(
        ...     uniform_arrivals(task("lstm", 512, 25),
        ...                      rate_per_s=200, n_requests=4),
        ...     engines=(ServingEngine("gpu"),),
        ...     schedulers=(make_scheduler("fifo"),),
        ...     dispatch=lambda seq, req, work: 0)
        >>> [r.request.request_id for r in out.responses]
        [0, 1, 2, 3]
    """
    engine_list = list(engines)
    scheduler_list = list(schedulers)
    batcher_list = (
        [NoneBatcher() for _ in engine_list] if batchers is None else list(batchers)
    )
    if not (len(engine_list) == len(scheduler_list) == len(batcher_list)):
        raise ServingError("need exactly one scheduler and batcher per replica")
    ordered = normalize_arrivals(arrivals)
    n = len(ordered)

    responses: list[ServeResponse | None] = [None] * n
    assignments: list[int] = [-1] * n
    #: Projected completion of all work assigned to each replica; the
    #: dispatch signal (identical to the pre-refactor ``free_at``).  The
    #: projection assumes unbatched service, so with batching it is an
    #: upper bound — still the right join-the-shortest-queue signal.
    work_until = [0.0] * len(engine_list)
    busy = [False] * len(engine_list)
    #: Pending LAUNCH deadline per replica (None = not holding); a
    #: LAUNCH event is stale unless its time matches exactly.
    hold_at: list[float | None] = [None] * len(engine_list)
    active = len(engine_list)
    scale_events: list[ScaleEvent] = []

    def bind_cost(replica: int) -> None:
        engine = engine_list[replica]
        batcher_list[replica].bind_cost(
            lambda task, size, _e=engine: _e.platform.batch_latency_s(
                _e.prepare(task), size, task=task
            )
        )

    for replica in range(len(engine_list)):
        bind_cost(replica)
    if autoscaler is not None:
        autoscaler.reset()

    events: list[tuple[float, int, int]] = [
        (req.arrival_s, _ARRIVAL, seq) for seq, req in enumerate(ordered)
    ]
    heapq.heapify(events)

    def add_replica() -> None:
        if replica_factory is None:
            raise ServingError("autoscaler needs a replica_factory to scale up")
        engine, scheduler, batcher = replica_factory()
        engine_list.append(engine)
        scheduler_list.append(scheduler)
        batcher_list.append(batcher)
        work_until.append(0.0)
        busy.append(False)
        hold_at.append(None)
        bind_cost(len(engine_list) - 1)

    def autoscale(now: float) -> None:
        nonlocal active
        depth = sum(len(scheduler_list[j]) for j in range(active))
        wait = min(max(work_until[j] - now, 0.0) for j in range(active))
        decision = autoscaler.decide(
            now=now,
            active=active,
            queue_depth=depth,
            projected_wait_s=wait,
            slo_ms=slo_ms,
        )
        if decision is None or decision.target == active:
            return
        while len(engine_list) < decision.target:
            add_replica()
        active = decision.target
        scale_events.append(
            ScaleEvent(
                time_s=now,
                action=decision.action,
                replicas=active,
                queue_depth=depth,
                reason=decision.reason,
            )
        )

    def launch(replica: int, now: float) -> None:
        queue = scheduler_list[replica]
        batcher = batcher_list[replica]
        ready_at = batcher.hold_until(queue, now)
        if ready_at > now:
            if hold_at[replica] != ready_at:
                # A LAUNCH for this exact deadline is not yet scheduled
                # (re-entered holds with an unchanged deadline reuse the
                # event already in the heap).
                hold_at[replica] = ready_at
                heapq.heappush(events, (ready_at, _LAUNCH, replica))
            return
        hold_at[replica] = None
        entries = batcher.take(queue, now)
        if not entries:
            raise ServingError(f"batcher {batcher.name!r} returned an empty batch")
        head = entries[0]
        start = max(head.request.arrival_s, now)
        if len(entries) == 1:
            # The exact pre-batching arithmetic: parity for batcher="none".
            finish = start + head.service_s
            responses[head.seq] = ServeResponse(
                request=head.request,
                result=head.result,
                queue_delay_s=start - head.request.arrival_s,
                start_s=start,
                finish_s=finish,
            )
        else:
            # The batch executes at the longest member's length: every
            # shorter request is padded up to it (the pad/bucket
            # policies).  Same-length batches reduce to the head's task
            # exactly.  Mixing task *families* is a batcher bug.
            exec_task = head.request.task
            for e in entries[1:]:
                t = e.request.task
                if t == exec_task:
                    continue
                if t.family_key != exec_task.family_key:
                    raise ServingError(
                        f"batcher {batcher.name!r} coalesced requests from "
                        f"different task families into one batch"
                    )
                exec_task = exec_task.padded_to(t.timesteps)
            engine = engine_list[replica]
            result = engine.serve_batched(exec_task, len(entries))
            finish = start + result.latency_s
            for index, entry in enumerate(entries):
                responses[entry.seq] = ServeResponse(
                    request=entry.request,
                    result=result,
                    queue_delay_s=start - entry.request.arrival_s,
                    start_s=start,
                    finish_s=finish,
                    batch_size=len(entries),
                    batch_index=index,
                )
        busy[replica] = True
        heapq.heappush(events, (finish, _FREE, replica))

    while events:
        now, kind, index = heapq.heappop(events)
        if kind == _ARRIVAL:
            req = ordered[index]
            if autoscaler is not None:
                autoscale(now)
            view = work_until if active == len(work_until) else work_until[:active]
            replica = dispatch(index, req, view)
            if not 0 <= replica < active:
                raise ServingError(f"dispatcher chose invalid replica {replica}")
            engine = engine_list[replica]
            result = engine.result_for(req.task)
            entry = QueuedRequest(
                seq=index,
                request=req,
                result=result,
                service_s=result.latency_s,
                deadline_s=req.deadline_s(slo_ms),
            )
            work_until[replica] = (
                max(req.arrival_s, work_until[replica]) + result.latency_s
            )
            assignments[index] = replica
            scheduler_list[replica].push(entry)
            if not busy[replica]:
                launch(replica, now)
        elif kind == _FREE:
            busy[index] = False
            if autoscaler is not None:
                autoscale(now)
            if len(scheduler_list[index]):
                launch(index, now)
        else:  # _LAUNCH: stale unless this exact hold is still pending
            if busy[index] or hold_at[index] != now:
                continue
            if len(scheduler_list[index]):
                launch(index, now)
            else:
                hold_at[index] = None

    return StreamOutcome(
        responses=responses,  # type: ignore[arg-type]
        assignments=assignments,
        scale_events=tuple(scale_events),
        n_replicas=len(engine_list),
        active_replicas=active,
    )
