"""Pluggable queue disciplines for the serving event loop.

Each replica in the discrete-event loop owns one :class:`Scheduler`: the
dispatcher pushes a :class:`QueuedRequest` when a request is assigned to
the replica, and the loop pops the next request to serve whenever the
replica frees up.  The discipline decides the pop order:

* ``"fifo"`` — arrival order; the baseline and the paper's model.
* ``"priority"`` — strict priority (larger ``ServeRequest.priority``
  first), FIFO within a class.
* ``"edf"`` — earliest deadline first, where a request's deadline is its
  arrival plus its own SLO (or the stream SLO); the classic real-time
  discipline for deadline-bound serving.
* ``"sjf"`` — shortest job first over the platform's known service
  times; minimizes mean sojourn at the cost of starving long tasks.
* ``"coalesce"`` — FIFO that keeps serving back-to-back requests for
  the task just served, exploiting the engine's compile cache and any
  on-chip weight residency before switching tasks.

Schedulers register under a string key exactly like platforms do::

    @register_scheduler("myorder")
    class MyScheduler(Scheduler):
        ...

    engine.serve_stream(arrivals, scheduler="myorder")

All disciplines are O(log n) per operation, keeping the event loop at
O(n log n) end to end.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.errors import ServingError
from repro.serving.request import ServeRequest
from repro.serving.result import ServingResult
from repro.workloads.deepbench import RNNTask

__all__ = [
    "QueuedRequest",
    "Scheduler",
    "FIFOScheduler",
    "PriorityScheduler",
    "EDFScheduler",
    "SJFScheduler",
    "CoalescingScheduler",
    "register_scheduler",
    "get_scheduler",
    "available_schedulers",
    "make_scheduler",
]


@dataclass(eq=False, slots=True)
class QueuedRequest:
    """A dispatched request waiting in one replica's ready queue.

    ``__slots__`` (via ``slots=True``): one of these is allocated per
    request on the event loop's hot path, and slots cut both the
    per-instance footprint and the attribute-access cost.

    Attributes:
        seq: Arrival-order index across the whole stream; every
            discipline breaks ties FIFO on it.
        request: The request itself (tenant, priority, SLO tags).
        result: The platform result, computed at dispatch time — service
            times are deterministic per (platform, task), so the
            scheduler may use them (SJF does).
        service_s: The request's service time on this replica.
        deadline_s: Absolute deadline (arrival + effective SLO), ``inf``
            when neither the request nor the stream has an SLO.
    """

    seq: int
    request: ServeRequest
    result: ServingResult = field(repr=False)
    service_s: float = 0.0
    deadline_s: float = float("inf")


class Scheduler(ABC):
    """Queue discipline for one replica: push on dispatch, pop when free.

    Example::

        >>> from repro.serving import get_scheduler
        >>> sched = get_scheduler("fifo")
        >>> (sched.name, len(sched))
        ('fifo', 0)
    """

    #: Registry key; set by :func:`register_scheduler`.
    name: str = "?"

    @abstractmethod
    def push(self, entry: QueuedRequest) -> None:
        """Admit a dispatched request to the ready queue."""

    @abstractmethod
    def pop(self) -> QueuedRequest:
        """Remove and return the next request to serve."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of requests waiting."""

    def peek(self) -> QueuedRequest:
        """Return (without removing) the request :meth:`pop` would serve next.

        Optional capability: the dynamic batching policies
        (:mod:`repro.serving.batching`) use it to look ahead for
        same-task requests to coalesce.  All built-in disciplines
        implement it; a discipline that does not cannot be combined with
        a look-ahead batcher.
        """
        raise ServingError(
            f"scheduler {self.name!r} does not implement peek(); "
            f"look-ahead batching policies need it"
        )

    def preemption_rank(self, entry: QueuedRequest) -> float:
        """Urgency rank a preemptive fault policy compares (larger = more urgent).

        The fault-aware event loop (:mod:`repro.serving.faults`) asks the
        replica's discipline how urgent a request is when deciding whether
        a new arrival may abort the in-flight batch.  The default ranks by
        the request's strict priority class; disciplines with their own
        notion of urgency (e.g. EDF) may override it.
        """
        return float(entry.request.priority)


class _KeyedScheduler(Scheduler):
    """Heap-ordered discipline over a per-entry key; ties break FIFO."""

    def __init__(self) -> None:
        self._heap: list[tuple] = []

    def key(self, entry: QueuedRequest) -> tuple:
        raise NotImplementedError  # pragma: no cover

    def push(self, entry: QueuedRequest) -> None:
        # seq is unique, so the trailing entry is never compared.
        heapq.heappush(self._heap, (*self.key(entry), entry.seq, entry))

    def pop(self) -> QueuedRequest:
        if not self._heap:
            raise ServingError("pop from an empty ready queue")
        return heapq.heappop(self._heap)[-1]

    def peek(self) -> QueuedRequest:
        if not self._heap:
            raise ServingError("peek into an empty ready queue")
        return self._heap[0][-1]

    def __len__(self) -> int:
        return len(self._heap)


_REGISTRY: dict[str, type[Scheduler]] = {}

S = TypeVar("S", bound=type[Scheduler])


def register_scheduler(name: str) -> Callable[[S], S]:
    """Class decorator: register a :class:`Scheduler` under ``name``.

    Registering a second class under an existing name raises
    :class:`~repro.errors.ServingError`.

    Example::

        >>> from repro.serving import register_scheduler, Scheduler
        >>> from repro.serving.scheduler import unregister_scheduler
        >>> @register_scheduler("lifo")
        ... class LIFOScheduler(Scheduler):
        ...     def __init__(self): self._stack = []
        ...     def push(self, entry): self._stack.append(entry)
        ...     def pop(self): return self._stack.pop()
        ...     def __len__(self): return len(self._stack)
        >>> from repro.serving import available_schedulers
        >>> "lifo" in available_schedulers()
        True
        >>> unregister_scheduler("lifo")
    """

    def decorate(cls: S) -> S:
        if not (isinstance(cls, type) and issubclass(cls, Scheduler)):
            raise ServingError(
                f"@register_scheduler({name!r}) needs a Scheduler subclass"
            )
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise ServingError(
                f"scheduler {name!r} already registered by {existing.__name__}"
            )
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def unregister_scheduler(name: str) -> None:
    """Remove a registration (primarily for tests)."""
    _REGISTRY.pop(name, None)


def available_schedulers() -> tuple[str, ...]:
    """Sorted keys of every registered scheduler.

    Example::

        >>> from repro.serving import available_schedulers
        >>> [s for s in ("coalesce", "edf", "fifo", "priority", "sjf")
        ...  if s in available_schedulers()]
        ['coalesce', 'edf', 'fifo', 'priority', 'sjf']
    """
    return tuple(sorted(_REGISTRY))


def get_scheduler(name: str, **options: object) -> Scheduler:
    """Instantiate a fresh scheduler registered under ``name``.

    Example::

        >>> from repro.serving import get_scheduler
        >>> get_scheduler("edf").name
        'edf'
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ServingError(
            f"unknown scheduler {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from None
    return cls(**options)


def make_scheduler(
    spec: str | Scheduler | Callable[[], Scheduler],
) -> Scheduler:
    """Resolve a scheduler spec: a registry key, an instance, or a factory.

    Fleets need one scheduler *per replica*, so they call this once per
    replica with a key or factory; a shared instance would interleave
    queues and is rejected at the fleet layer.
    """
    if isinstance(spec, Scheduler):
        return spec
    if isinstance(spec, str):
        return get_scheduler(spec)
    if callable(spec):
        sched = spec()
        if not isinstance(sched, Scheduler):
            raise ServingError("scheduler factory must return a Scheduler")
        return sched
    raise ServingError(f"cannot build a scheduler from {spec!r}")


def _doc_entry(seq: int, **overrides: object) -> QueuedRequest:
    """Build a throwaway :class:`QueuedRequest` (docstring examples only)."""
    from repro.serving.result import ServingResult
    from repro.workloads.deepbench import task

    t = overrides.pop("task", task("lstm", 512, 25))
    request = ServeRequest(
        task=t,
        request_id=seq,
        priority=overrides.pop("priority", 0),
    )
    return QueuedRequest(
        seq=seq,
        request=request,
        result=ServingResult(platform="doc", task=t, latency_s=1e-3,
                             effective_tflops=0.0),
        **overrides,
    )


@register_scheduler("fifo")
class FIFOScheduler(_KeyedScheduler):
    """Serve in arrival order — the pre-refactor behaviour, bit for bit.

    Example::

        >>> from repro.serving.scheduler import FIFOScheduler, _doc_entry
        >>> sched = FIFOScheduler()
        >>> for seq in (2, 0, 1): sched.push(_doc_entry(seq))
        >>> [sched.pop().seq for _ in range(3)]
        [0, 1, 2]
    """

    def key(self, entry: QueuedRequest) -> tuple:
        return ()


@register_scheduler("priority")
class PriorityScheduler(_KeyedScheduler):
    """Strict priority: larger ``request.priority`` first, FIFO within.

    Example::

        >>> from repro.serving.scheduler import PriorityScheduler, _doc_entry
        >>> sched = PriorityScheduler()
        >>> sched.push(_doc_entry(0, priority=0))
        >>> sched.push(_doc_entry(1, priority=9))
        >>> sched.pop().seq
        1
    """

    def key(self, entry: QueuedRequest) -> tuple:
        return (-entry.request.priority,)


@register_scheduler("edf")
class EDFScheduler(_KeyedScheduler):
    """Earliest deadline first over per-request (or stream) SLOs.

    Example::

        >>> from repro.serving.scheduler import EDFScheduler, _doc_entry
        >>> sched = EDFScheduler()
        >>> sched.push(_doc_entry(0, deadline_s=0.9))
        >>> sched.push(_doc_entry(1, deadline_s=0.2))
        >>> sched.pop().seq
        1
    """

    def key(self, entry: QueuedRequest) -> tuple:
        return (entry.deadline_s,)

    def preemption_rank(self, entry: QueuedRequest) -> float:
        # Earlier deadline = more urgent; negate so larger still wins.
        return -entry.deadline_s


@register_scheduler("sjf")
class SJFScheduler(_KeyedScheduler):
    """Shortest job first over the platform's deterministic service times.

    Example::

        >>> from repro.serving.scheduler import SJFScheduler, _doc_entry
        >>> sched = SJFScheduler()
        >>> sched.push(_doc_entry(0, service_s=5e-3))
        >>> sched.push(_doc_entry(1, service_s=1e-3))
        >>> sched.pop().seq
        1
    """

    def key(self, entry: QueuedRequest) -> tuple:
        return (entry.service_s,)


@register_scheduler("coalesce")
class CoalescingScheduler(Scheduler):
    """FIFO that groups back-to-back requests for the same task.

    After serving a request, any queued request for the *same* task jumps
    the line (oldest first), so runs of one task are served contiguously
    and the compile cache / on-chip weights stay hot; when the run dries
    up, the discipline falls back to plain FIFO for the next task.

    Example::

        >>> from repro.serving.scheduler import CoalescingScheduler, _doc_entry
        >>> from repro.workloads.deepbench import task
        >>> a, b = task("lstm", 512, 25), task("gru", 512, 25)
        >>> sched = CoalescingScheduler()
        >>> for seq, t in ((0, a), (1, b), (2, a)): sched.push(_doc_entry(seq, task=t))
        >>> [sched.pop().seq for _ in range(3)]    # the 'a' run coalesces
        [0, 2, 1]
    """

    def __init__(self) -> None:
        self._buckets: dict[RNNTask, deque[QueuedRequest]] = {}
        #: Lazy FIFO heap of (seq, task); entries served out-of-band via
        #: coalescing are skipped when they surface.
        self._order: list[tuple[int, RNNTask]] = []
        self._last_task: RNNTask | None = None
        self._size = 0

    def push(self, entry: QueuedRequest) -> None:
        self._buckets.setdefault(entry.request.task, deque()).append(entry)
        # seq is unique, so the task in the tuple is never compared.
        heapq.heappush(self._order, (entry.seq, entry.request.task))
        self._size += 1

    def _front(self, verb: str) -> QueuedRequest:
        """The entry :meth:`pop` would serve next (shared with peek).

        Prefers the bucket of the task just served, then falls back to
        FIFO via the marker heap, discarding stale markers for requests
        that already jumped the line.
        """
        if self._size == 0:
            raise ServingError(f"{verb} an empty ready queue")
        bucket = (
            self._buckets.get(self._last_task)
            if self._last_task is not None
            else None
        )
        if bucket:
            return bucket[0]
        while True:
            seq, task = self._order[0]
            candidates = self._buckets.get(task)
            if candidates and candidates[0].seq == seq:
                return candidates[0]
            heapq.heappop(self._order)

    def pop(self) -> QueuedRequest:
        entry = self._front("pop from")
        task = entry.request.task
        bucket = self._buckets[task]
        bucket.popleft()
        if self._order and self._order[0][0] == entry.seq:
            heapq.heappop(self._order)
        # else: served out of FIFO order via coalescing; its marker goes
        # stale and _front discards it when it surfaces.
        if not bucket:
            self._buckets.pop(task, None)
        self._last_task = task
        self._size -= 1
        return entry

    def peek(self) -> QueuedRequest:
        return self._front("peek into")

    def __len__(self) -> int:
        return self._size
