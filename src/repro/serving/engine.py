"""The serving engine: compile-once sessions and batch/stream requests.

The paper's serving scenario (Section 1) is a stream of individual
batch-1 requests under a stringent latency window.  The engine models
one accelerator running that loop:

* a keyed cache of :class:`~repro.serving.platform.PreparedModel` per
  task — the platform's compile phase (for Plasticine: parameter
  selection, mapping, cycle simulation) runs once and every later
  request for the same task reuses it;
* ``serve`` / ``serve_batch`` for one-off and grouped requests;
* ``serve_stream`` — a heap-based discrete-event simulation of a
  single-server queue over timestamped arrivals (see
  :mod:`repro.serving.events`), with a pluggable queue discipline
  (:mod:`repro.serving.scheduler`) and per-request queueing delay,
  SLO, tenant, and priority accounting.

Example::

    engine = ServingEngine("plasticine")
    first = engine.serve(task)            # compiles, then serves
    again = engine.serve(task)            # cache hit: no re-mapping
    report = engine.serve_stream(poisson_arrivals(task, rate_per_s=400,
                                                  n_requests=2000),
                                 slo_ms=5.0, scheduler="edf")
    print(report.p99_ms, report.slo_miss_rate)
    print({t: r.p99_ms for t, r in report.per_tenant().items()})
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Iterable

from repro.errors import ServingError
from repro.platforms import ELECTRICITY_USD_PER_KWH, device_usd_per_hour, tdp_of
from repro.serving.autoscaler import ScaleEvent
from repro.serving.batching import Batcher, make_batcher
from repro.serving.events import run_stream, single_replica_dispatch
from repro.serving.faults import FaultPolicy, make_fault_policy
from repro.serving.platform import Platform, PreparedModel, get_platform
from repro.serving.request import ServeRequest, ServeResponse
from repro.serving.result import FaultStats, ServingResult
from repro.serving.scheduler import Scheduler, make_scheduler
# ``percentile`` is shared with the O(1) summary so both
# representations interpolate identically.
from repro.serving.stats import StreamSummary, percentile as _percentile
from repro.serving.traffic import length_band, poisson_arrivals, uniform_arrivals
from repro.workloads.deepbench import RNNTask

__all__ = [
    "ServeRequest",
    "ServeResponse",
    "StreamReport",
    "StreamSummary",
    "CacheStats",
    "ServingEngine",
    "poisson_arrivals",
    "uniform_arrivals",
]

#: Default bound on the per-shape result memo (see
#: :meth:`ServingEngine.result_for`); far above any realistic number of
#: distinct (task, batch) shapes, it only exists so an adversarial
#: stream of unique shapes cannot grow the memo without bound.
DEFAULT_MEMO_CAPACITY = 4096


@dataclass
class CacheStats:
    """Prepared-model cache counters.

    Example::

        >>> from repro.serving import ServingEngine
        >>> from repro.workloads.deepbench import task
        >>> engine = ServingEngine("gpu")
        >>> _ = engine.serve(task("lstm", 512, 25))   # compile miss
        >>> _ = engine.serve(task("lstm", 512, 25))   # cache hit
        >>> (engine.cache_stats.hits, engine.cache_stats.misses)
        (1, 1)
    """

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses




@dataclass(frozen=True)
class StreamReport:
    """Aggregate outcome of a request stream against an SLO.

    Responses are ordered by arrival, whatever order the scheduler
    actually served them in; ``per_tenant()`` and ``per_priority()``
    slice the same stream into per-class sub-reports.  ``batcher``
    records the batching policy that ran the stream (``"none"`` = the
    paper's batch-1 serving) and ``scale_events`` any autoscaler actions
    applied during it.

    Example::

        >>> from repro.serving import ServingEngine, uniform_arrivals
        >>> from repro.workloads.deepbench import task
        >>> report = ServingEngine("gpu").serve_stream(
        ...     uniform_arrivals(task("lstm", 512, 25),
        ...                      rate_per_s=100, n_requests=50),
        ...     slo_ms=5.0)
        >>> (report.n_requests, report.scheduler, report.batcher)
        (50, 'fifo', 'none')
        >>> report.p50_ms <= report.p99_ms
        True
    """

    platform: str
    responses: tuple[ServeResponse, ...] = field(repr=False)
    slo_ms: float | None = None
    scheduler: str = "fifo"
    batcher: str = "none"
    scale_events: tuple[ScaleEvent, ...] = field(default=(), repr=False)
    #: Fault policy the stream ran under (``"none"`` = perfect machine).
    faults: str = "none"
    #: Injected-fault counters (all zero outside fault-injected runs).
    fault_stats: FaultStats = field(default=FaultStats(), repr=False)

    def __post_init__(self) -> None:
        if not self.responses:
            raise ServingError("stream produced no responses")

    @property
    def n_requests(self) -> int:
        return len(self.responses)

    @cached_property
    def _sojourns_ms(self) -> tuple[float, ...]:
        # cached_property writes through __dict__, which frozen
        # dataclasses permit; the responses tuple never changes.
        return tuple(sorted(r.sojourn_ms for r in self.responses))

    @property
    def p50_ms(self) -> float:
        return _percentile(self._sojourns_ms, 50)

    @property
    def p99_ms(self) -> float:
        return _percentile(self._sojourns_ms, 99)

    @property
    def mean_ms(self) -> float:
        return sum(self._sojourns_ms) / len(self._sojourns_ms)

    @property
    def mean_queue_delay_ms(self) -> float:
        return sum(r.queue_delay_s for r in self.responses) * 1e3 / self.n_requests

    @property
    def mean_service_ms(self) -> float:
        """Average per-request accelerator time (batched requests count
        their share of the batch latency)."""
        return sum(r.service_s for r in self.responses) * 1e3 / self.n_requests

    def uniform_slo_ms(self) -> float | None:
        """The single request-level SLO every request carried, if any.

        ``None`` when requests carry mixed (or no) per-request SLO tags —
        callers then fall back to the stream-level SLO.
        """
        tags = {r.request.slo_ms for r in self.responses}
        if len(tags) == 1:
            return tags.pop()
        return None

    # -- batching ---------------------------------------------------------

    @property
    def mean_batch_size(self) -> float:
        """Average coalesced batch size across requests (1.0 = unbatched)."""
        return sum(r.batch_size for r in self.responses) / self.n_requests

    @property
    def max_batch_size(self) -> int:
        """Largest batch any request was served in."""
        return max(r.batch_size for r in self.responses)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of stream makespan."""
        makespan = max(r.finish_s for r in self.responses)
        if makespan <= 0:
            return math.inf
        return self.n_requests / makespan

    # -- variable-length / padding accounting ----------------------------

    @property
    def padding_waste_frac(self) -> float:
        """Fraction of executed FLOPs wasted on sequence padding.

        A batched execution of mixed-length requests runs every request
        at the longest member's length (the ``pad`` / ``bucket``
        policies); the excess over each request's own work is waste.
        Unbatched (batch-1) serving — the paper's spatial-accelerator
        scenario — never pads, so this is 0.0 for ``batcher="none"``.

        Example::

            >>> from repro.serving import ServingEngine, uniform_arrivals
            >>> from repro.workloads.deepbench import task
            >>> report = ServingEngine("gpu").serve_stream(
            ...     uniform_arrivals(task("lstm", 512, 25),
            ...                      rate_per_s=100, n_requests=10))
            >>> report.padding_waste_frac
            0.0
        """
        executed = sum(r.result.task.flops for r in self.responses)
        useful = sum(r.request.task.flops for r in self.responses)
        if executed <= 0:
            return 0.0
        return (executed - useful) / executed

    def per_length_band(self, band_base: float = 2.0) -> "dict[str, StreamReport]":
        """Sub-reports keyed by geometric sequence-length band.

        Requests are grouped by their *own* ``timesteps`` into bands
        ``[base^k, base^(k+1))``, labelled ``"T16-31"`` etc., so tail
        latency can be read per length class — long requests hiding
        behind a healthy global P99 show up here.

        Example::

            >>> from repro.serving import (ServingEngine, ZipfLength,
            ...                            poisson_arrivals)
            >>> from repro.workloads.deepbench import task
            >>> report = ServingEngine("gpu").serve_stream(poisson_arrivals(
            ...     task("lstm", 512, 25), rate_per_s=500, n_requests=40,
            ...     seed=1, lengths=ZipfLength(8, 120)))
            >>> bands = report.per_length_band()
            >>> sum(b.n_requests for b in bands.values()) == report.n_requests
            True
        """
        groups: dict[tuple[int, int], list[ServeResponse]] = {}
        for r in self.responses:
            band = length_band(r.request.task.timesteps, band_base)
            groups.setdefault(band, []).append(r)
        return {
            f"T{lo}-{hi}": self._subset(groups[(lo, hi)])
            for lo, hi in sorted(groups)
        }

    @property
    def offered_rate_per_s(self) -> float:
        """Arrival rate implied by the stream's time span.

        A single request has no rate (0.0); several requests arriving
        at the same instant are an infinite-rate burst.
        """
        span = max(r.request.arrival_s for r in self.responses)
        if span > 0:
            return self.n_requests / span
        return 0.0 if self.n_requests == 1 else math.inf

    @property
    def max_rate_per_s(self) -> float:
        """Sustainable rate: one over the mean service time."""
        mean_service = sum(r.service_s for r in self.responses) / self.n_requests
        return 1.0 / mean_service

    @property
    def saturated(self) -> bool:
        """True when arrivals outpace what the server can drain."""
        return self.offered_rate_per_s >= self.max_rate_per_s

    # -- energy / TCO accounting ------------------------------------------

    @property
    def makespan_s(self) -> float:
        """Wall-clock span of the stream: the last response's finish."""
        return max(r.finish_s for r in self.responses)

    @property
    def replica_platforms(self) -> tuple[str, ...]:
        """Platform key of every *provisioned* replica.

        One engine here; :class:`~repro.serving.fleet.FleetReport`
        overrides this with the fleet's actual (possibly mixed) roster,
        and every provisioned-energy number below follows along.
        """
        return (self.platform,)

    @property
    def per_platform_counts(self) -> dict[str, int]:
        """Responses served per *executing* platform.

        Keyed by ``result.platform`` — the platform that actually ran
        each request — so mixed fleets attribute work correctly and the
        values always sum to ``n_requests``.
        """
        counts: dict[str, int] = {}
        for r in self.responses:
            key = r.result.platform
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def energy_j(self) -> float:
        """Busy energy: accelerator-seconds × that platform's power draw.

        Each response is charged at the power of the platform that
        *executed* it (Table 4/5 measured peak when reported, TDP
        otherwise), summed over its share of accelerator time — idle
        replicas contribute nothing here (see :attr:`fleet_watt_hours`
        for the provisioned bill).
        """
        return sum(
            r.service_s * tdp_of(r.result.platform) for r in self.responses
        )

    @property
    def joules_per_request(self) -> float:
        """Busy energy per inference — the paper-style J/request figure."""
        return self.energy_j / self.n_requests

    @property
    def fleet_watt_hours(self) -> float:
        """Provisioned energy: every replica powered for the makespan.

        This is what the electricity meter sees — a provisioned
        accelerator burns its TDP whether or not the dispatcher sends it
        work — and it is the energy term the TCO model bills.
        """
        watts = sum(tdp_of(p) for p in self.replica_platforms)
        return watts * self.makespan_s / 3600.0

    @property
    def cost_usd_per_1m_requests(self) -> float:
        """Total cost of ownership normalized to one million requests.

        Electricity for the provisioned fleet over the makespan
        (:attr:`fleet_watt_hours` at :data:`ELECTRICITY_USD_PER_KWH`)
        plus linear capital amortization of every provisioned device
        (:func:`repro.platforms.device_usd_per_hour`), divided by the
        requests actually served and scaled to 1M.  This is the
        objective the capacity planner (:mod:`repro.dse.capacity`)
        minimizes.
        """
        hours = self.makespan_s / 3600.0
        energy_usd = self.fleet_watt_hours / 1e3 * ELECTRICITY_USD_PER_KWH
        capital_usd = hours * sum(
            device_usd_per_hour(p) for p in self.replica_platforms
        )
        return (energy_usd + capital_usd) / self.n_requests * 1e6

    def _effective_slo_ms(self, response: ServeResponse) -> float:
        slo = response.request.effective_slo_ms(self.slo_ms)
        if slo is None:
            raise ServingError("no SLO configured for this stream")
        return slo

    @property
    def slo_miss_rate(self) -> float:
        """Fraction of requests whose sojourn exceeded their SLO.

        Each request is judged against its own ``slo_ms`` when set,
        falling back to the stream-level SLO otherwise.
        """
        misses = sum(
            1
            for r in self.responses
            if r.sojourn_ms > self._effective_slo_ms(r)
        )
        return misses / self.n_requests

    @property
    def slo_attainment(self) -> float:
        """Fraction of requests that met their SLO (1 - miss rate)."""
        return 1.0 - self.slo_miss_rate

    @property
    def slo_attained(self) -> bool:
        return self.slo_ms is not None and self.p99_ms <= self.slo_ms

    # -- multi-tenant / multi-class breakdowns ---------------------------

    @property
    def tenants(self) -> tuple[str, ...]:
        """Sorted tenant names present in the stream."""
        return tuple(sorted({r.request.tenant for r in self.responses}))

    @property
    def priorities(self) -> tuple[int, ...]:
        """Sorted priority classes present in the stream."""
        return tuple(sorted({r.request.priority for r in self.responses}))

    def _subset(self, responses: Iterable[ServeResponse]) -> "StreamReport":
        # Deliberately a plain StreamReport (not type(self)): subclass
        # extras such as fleet assignments do not slice meaningfully, and
        # scale events are stream-wide rather than per-class.
        return StreamReport(
            platform=self.platform,
            responses=tuple(responses),
            slo_ms=self.slo_ms,
            scheduler=self.scheduler,
            batcher=self.batcher,
            faults=self.faults,
        )

    def per_tenant(self) -> dict[str, "StreamReport"]:
        """Sub-reports keyed by tenant, each over that tenant's requests."""
        groups: dict[str, list[ServeResponse]] = {}
        for r in self.responses:
            groups.setdefault(r.request.tenant, []).append(r)
        return {t: self._subset(groups[t]) for t in sorted(groups)}

    def per_priority(self) -> dict[int, "StreamReport"]:
        """Sub-reports keyed by priority class."""
        groups: dict[int, list[ServeResponse]] = {}
        for r in self.responses:
            groups.setdefault(r.request.priority, []).append(r)
        return {p: self._subset(groups[p]) for p in sorted(groups)}

    @property
    def outcomes(self) -> tuple[str, ...]:
        """Sorted outcomes present (``("ok",)`` outside fault runs)."""
        return tuple(sorted({r.outcome for r in self.responses}))

    def per_outcome(self) -> dict[str, "StreamReport"]:
        """Sub-reports keyed by outcome: how fault-injected requests
        left the system (``"ok"``/``"retried"``/``"hedged"``/
        ``"timeout"``); counts always sum to ``n_requests``.

        Example::

            >>> from repro.serving import ServingEngine, uniform_arrivals
            >>> from repro.workloads.deepbench import task
            >>> report = ServingEngine("gpu").serve_stream(
            ...     uniform_arrivals(task("lstm", 512, 25),
            ...                      rate_per_s=100, n_requests=10))
            >>> sorted(report.per_outcome()) == ["ok"]
            True
        """
        groups: dict[str, list[ServeResponse]] = {}
        for r in self.responses:
            groups.setdefault(r.outcome, []).append(r)
        return {o: self._subset(groups[o]) for o in sorted(groups)}


class ServingEngine:
    """One accelerator's serving session: compile once, serve many.

    Args:
        platform: A registry key (``"plasticine"``, ``"brainwave"``,
            ``"cpu"``, ``"gpu"``, or anything registered via
            ``@register_platform``) or an already-built
            :class:`~repro.serving.platform.Platform` instance.
        cache: Optional externally-owned prepared-model cache, keyed by
            task.  A :class:`~repro.serving.fleet.Fleet` passes one
            shared dict so replicas compile each task only once.
        memoize: Memoize per-shape serving results (default on).  The
            four built-in platforms are deterministic, so the cost model
            needs consulting only once per distinct ``(compile_key,
            timesteps, batch_size)`` shape; every later request of that
            shape reuses the identical (frozen) result.  Turn off to
            force a cost-model walk per request (benchmarking the
            unmemoized loop).
        memo: Optional externally-owned result memo, shared the same way
            ``cache`` is (a fleet passes one dict across replicas).
        memo_capacity: Bound on the memo; least-recently-used shapes are
            evicted beyond it.
        **platform_options: Forwarded to the platform constructor when
            ``platform`` is a key.

    Example::

        >>> from repro.serving import ServingEngine
        >>> from repro.workloads.deepbench import task
        >>> engine = ServingEngine("gpu")
        >>> first = engine.serve(task("lstm", 512, 25))    # compiles
        >>> again = engine.serve(task("lstm", 512, 25))    # cache hit
        >>> first.result == again.result, engine.cache_stats.misses
        (True, 1)
    """

    def __init__(
        self,
        platform: str | Platform,
        *,
        cache: dict[RNNTask, PreparedModel] | None = None,
        memoize: bool = True,
        memo: dict | None = None,
        memo_capacity: int = DEFAULT_MEMO_CAPACITY,
        **platform_options: object,
    ) -> None:
        if isinstance(platform, Platform):
            if platform_options:
                raise ServingError(
                    "platform options only apply when platform is given by name"
                )
            self.platform = platform
        else:
            self.platform = get_platform(platform, **platform_options)
        if memo_capacity < 1:
            raise ServingError("memo_capacity must be >= 1")
        self._cache: dict[RNNTask, PreparedModel] = cache if cache is not None else {}
        self.memoize = bool(memoize)
        #: Result memo: task -> batch-1 ServingResult, (task, B) -> the
        #: batched result.  Insertion order doubles as the LRU order.
        self._memo: dict = memo if memo is not None else {}
        self._memo_capacity = memo_capacity
        self.cache_stats = CacheStats()

    def _memo_get(self, key):
        """LRU lookup: a hit is refreshed to most-recently-used."""
        memo = self._memo
        result = memo.get(key)
        if result is not None and next(reversed(memo)) is not key:
            # Refresh recency (dicts iterate in insertion order).
            del memo[key]
            memo[key] = result
        return result

    def _memo_put(self, key, result) -> None:
        memo = self._memo
        if len(memo) >= self._memo_capacity:
            memo.pop(next(iter(memo)))
        memo[key] = result

    @property
    def platform_name(self) -> str:
        return self.platform.name

    def prepare(self, task: RNNTask) -> PreparedModel:
        """Fetch (or compile and cache) the prepared model for a task.

        The cache is keyed by the platform's :meth:`Platform.compile_key
        <repro.serving.platform.Platform.compile_key>`: on
        length-flexible platforms (all four built-ins) every
        sequence-length variant of a task family shares one compiled
        model, so a variable-length stream compiles each family once.
        The returned model may therefore have been prepared for a
        different length of the same family — serve through
        :meth:`result_for` (or :meth:`Platform.serve_request
        <repro.serving.platform.Platform.serve_request>`), which
        re-costs it for the actual task.
        """
        key = self.platform.compile_key(task)
        prepared = self._cache.get(key)
        if prepared is not None:
            self.cache_stats.hits += 1
            return prepared
        self.cache_stats.misses += 1
        prepared = self.platform.prepare(task)
        self._cache[key] = prepared
        return prepared

    def result_for(self, task: RNNTask) -> ServingResult:
        """The batch-1 serving result for a task, via the compile cache.

        With ``memoize`` on (the default), the platform cost model is
        consulted once per distinct shape and the identical frozen
        :class:`~repro.serving.result.ServingResult` is returned for
        every later request of that shape — service times are
        deterministic per (platform, task), so this cannot change any
        stream timeline, only the time spent recomputing it.  A memo hit
        counts as a cache hit in :attr:`cache_stats`, exactly as the
        prepared-model hit it replaces did.

        Example::

            >>> from repro.serving import ServingEngine
            >>> from repro.workloads.deepbench import task
            >>> engine = ServingEngine("gpu")
            >>> t = task("lstm", 512, 25)
            >>> short = engine.result_for(t.with_timesteps(5))   # compiles
            >>> long = engine.result_for(t.with_timesteps(500))  # cache hit
            >>> (short.latency_s < long.latency_s, engine.cache_stats.misses)
            (True, 1)
            >>> engine.result_for(t.with_timesteps(5)) is short  # memoized
            True
        """
        if self.memoize:
            result = self._memo_get(task)
            if result is not None:
                self.cache_stats.hits += 1
                return result
            result = self.platform.serve_request(self.prepare(task), task)
            self._memo_put(task, result)
            return result
        return self.platform.serve_request(self.prepare(task), task)

    def clear_cache(self) -> None:
        self._cache.clear()
        self._memo.clear()
        self.cache_stats = CacheStats()

    def _as_request(self, request: ServeRequest | RNNTask) -> ServeRequest:
        if isinstance(request, RNNTask):
            return ServeRequest(task=request)
        return request

    def serve(self, request: ServeRequest | RNNTask) -> ServeResponse:
        """Serve one request, with no queueing ahead of it."""
        req = self._as_request(request)
        result = self.result_for(req.task)
        return ServeResponse(
            request=req,
            result=result,
            queue_delay_s=0.0,
            start_s=req.arrival_s,
            finish_s=req.arrival_s + result.latency_s,
        )

    def serve_batch(
        self, requests: Iterable[ServeRequest | RNNTask]
    ) -> tuple[ServeResponse, ...]:
        """Serve a group of independent requests (each unqueued).

        Results are identical to calling :meth:`serve` per request; the
        batch path exists so callers can hand over a workload in one call
        and still hit the prepared-model cache across duplicates.  For a
        *coalesced* execution of same-task requests, see
        :meth:`serve_batched`.
        """
        return tuple(self.serve(r) for r in requests)

    def serve_batched(self, task: RNNTask, batch_size: int) -> ServingResult:
        """Serve ``batch_size`` same-task requests as one batched execution.

        Uses the platform's batched cost model (setup once, steady-state
        per item — see :meth:`Platform.batch_latency_s
        <repro.serving.platform.Platform.batch_latency_s>`) against the
        cached prepared model.

        Example::

            >>> from repro.serving import ServingEngine
            >>> from repro.workloads.deepbench import task
            >>> engine = ServingEngine("gpu")
            >>> t1 = engine.serve(task("lstm", 512, 25)).result.latency_s
            >>> res = engine.serve_batched(task("lstm", 512, 25), 8)
            >>> (res.batch_size, res.latency_s < 8 * t1)
            (8, True)
        """
        if self.memoize:
            key = (task, batch_size)
            result = self._memo_get(key)
            if result is not None:
                self.cache_stats.hits += 1
                return result
            result = self.platform.serve_batched(
                self.prepare(task), batch_size, task=task
            )
            self._memo_put(key, result)
            return result
        return self.platform.serve_batched(self.prepare(task), batch_size, task=task)

    def batch_latency_s(self, task: RNNTask, batch_size: int) -> float:
        """Latency of a batched execution, from the cached prepared model.

        Memoized through the same per-shape result memo as
        :meth:`serve_batched` (``batch_latency_s(prepared, B)`` and
        ``serve_batched(..., B).latency_s`` are the same number by the
        platform contract).
        """
        if self.memoize:
            return self.serve_batched(task, batch_size).latency_s
        return self.platform.batch_latency_s(
            self.prepare(task), batch_size, task=task
        )

    def serve_stream(
        self,
        arrivals: Iterable[ServeRequest | RNNTask],
        *,
        slo_ms: float | None = None,
        scheduler: str | Scheduler | Callable[[], Scheduler] = "fifo",
        batcher: str | Batcher | Callable[[], Batcher] = "none",
        max_batch: int | None = None,
        mode: str = "full",
        presorted: bool = False,
        faults: str | FaultPolicy | Callable[[], FaultPolicy] = "none",
        fault_seed: int = 0,
        timeout_ms: float | None = None,
        retries: int = 0,
        hedge_ms: float | None = None,
    ) -> "StreamReport | StreamSummary":
        """Run a timestamped stream through a single-server queue.

        The ``scheduler`` picks the queue discipline (``"fifo"``
        reproduces the classic arrival-order simulation exactly) and the
        ``batcher`` the dynamic batching policy — the default ``"none"``
        serves one request at a time (batch 1, as the paper's serving
        scenario demands) and is bit-identical to the historical
        behaviour; ``"size-cap"``, ``"time-window"``, and ``"adaptive"``
        coalesce queued same-task requests into batched executions (see
        :mod:`repro.serving.batching`).  ``max_batch`` forwards to the
        named batching policy's cap.

        ``mode`` picks the report representation.  The default
        ``"full"`` materializes every response into a
        :class:`StreamReport` — bit-identical to the historical
        behaviour, with memory linear in the stream.  ``"summary"``
        folds responses into a
        :class:`~repro.serving.stats.StreamSummary` as they complete:
        identical counts/sums (n, SLO attainment, batch sizes, padding
        waste), estimated percentiles, and memory *independent of the
        stream length* — the mode for million-request streams.

        Arrivals may be given in any order — they are sorted internally,
        so pre-sorting the input buys nothing *unless* you say so:
        ``presorted=True`` promises the stream is already time-ordered
        with strictly increasing request ids (true of every built-in
        generator, of :func:`repro.serving.traffic.mix`, and of recorded
        traces), letting the loop consume a lazy generator without ever
        materializing it.  Merged multi-stream inputs must carry
        globally unique request ids either way (use ``mix``).

        ``faults`` injects unreliable hardware (see
        :mod:`repro.serving.faults`): a registered policy name
        (``"crash"``, ``"straggler"``, ``"preempt"``, ``"chaos"``), a
        policy instance, or a factory.  ``fault_seed`` makes the whole
        fault timeline reproducible.  ``timeout_ms``/``retries`` bound
        each attempt's queue-to-finish time and re-dispatch on expiry;
        ``hedge_ms`` launches a duplicate copy of any request still
        unfinished after that long (first completion wins).  With the
        default ``"none"`` policy and no timeout/hedge the simulation
        is bit-identical to the fault-free path.
        """
        sched = make_scheduler(scheduler)
        options = {} if max_batch is None else {"max_batch": max_batch}
        batch_policy = make_batcher(batcher, **options)
        if mode not in ("full", "summary"):
            raise ServingError(
                f"unknown stream mode {mode!r}; expected 'full' or 'summary'"
            )
        policy = make_fault_policy(faults)
        faultless = (
            policy.name == "none"
            and timeout_ms is None
            and hedge_ms is None
            and retries == 0  # so a timeout-less retries still validates
        )
        fault_kwargs = (
            {}
            if faultless
            else {
                "faults": policy,
                "fault_seed": fault_seed,
                "timeout_ms": timeout_ms,
                "retries": retries,
                "hedge_ms": hedge_ms,
            }
        )
        if mode == "summary":
            summary = StreamSummary(
                self.platform_name,
                slo_ms=slo_ms,
                scheduler=sched.name,
                batcher=batch_policy.name,
                faults=policy.name,
            )
            outcome = run_stream(
                arrivals,
                engines=(self,),
                schedulers=(sched,),
                dispatch=single_replica_dispatch,
                slo_ms=slo_ms,
                batchers=(batch_policy,),
                presorted=presorted,
                summary=summary,
                **fault_kwargs,
            )
            return summary.finalize(fault_stats=outcome.fault_stats)
        outcome = run_stream(
            arrivals,
            engines=(self,),
            schedulers=(sched,),
            dispatch=single_replica_dispatch,
            slo_ms=slo_ms,
            batchers=(batch_policy,),
            presorted=presorted,
            **fault_kwargs,
        )
        return StreamReport(
            platform=self.platform_name,
            responses=tuple(outcome.responses),
            slo_ms=slo_ms,
            scheduler=sched.name,
            batcher=batch_policy.name,
            faults=policy.name,
            fault_stats=outcome.fault_stats,
        )
