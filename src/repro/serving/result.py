"""The uniform per-request serving outcome, shared by every platform.

:class:`ServingResult` is the row every platform produces for Table 6 —
latency, effective TFLOPS, and (where modelled) power — regardless of
whether it came from the cycle-level Plasticine simulator or one of the
analytical baseline models.  It used to live in :mod:`repro.api`; it now
sits under :mod:`repro.serving` so the platform registry and the engine
can use it without importing the legacy API module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.workloads.deepbench import RNNTask

if TYPE_CHECKING:  # only for annotations; avoids eager heavy imports
    from repro.mapping.mapper import MappedDesign
    from repro.plasticine.simulator import SimulationResult

__all__ = ["FaultStats", "ServingResult"]


@dataclass(frozen=True)
class ServingResult:
    """Uniform serving outcome across platforms.

    ``batch_size`` is 1 for the classic batch-1 request; a batched
    execution (see :meth:`Platform.serve_batched
    <repro.serving.platform.Platform.serve_batched>`) produces one
    result for the whole batch, with ``latency_s`` the batch completion
    time and ``effective_tflops`` counting every request's work.

    Example::

        >>> from repro.serving import ServingEngine
        >>> from repro.workloads.deepbench import task
        >>> res = ServingEngine("gpu").serve(task("lstm", 512, 25)).result
        >>> res.platform, res.batch_size, res.latency_ms < 50
        ('gpu', 1, True)
    """

    platform: str
    task: RNNTask
    latency_s: float
    effective_tflops: float
    power_w: float | None = None
    cycles_per_step: int | None = None
    design: "MappedDesign | None" = field(default=None, repr=False, compare=False)
    simulation: "SimulationResult | None" = field(default=None, repr=False, compare=False)
    notes: tuple[str, ...] = ()
    #: Number of same-task requests this execution served together.
    batch_size: int = 1

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def throughput_rps(self) -> float:
        """Requests completed per second of execution (batch / latency)."""
        return self.batch_size / self.latency_s

    def speedup_over(self, other: "ServingResult") -> float:
        """How much faster *this* platform is than ``other`` (>1 = faster)."""
        return other.latency_s / self.latency_s


@dataclass(frozen=True)
class FaultStats:
    """Stream-level fault-injection counters.

    Produced by the fault-aware event loop (see
    :mod:`repro.serving.faults`) and attached to every
    ``StreamReport``/``StreamSummary``.  A faultless run carries the
    all-zero record, which is also the identity for :meth:`merge` — the
    reason this lives next to :class:`ServingResult` rather than in the
    stats module is that both reports and summaries (and the parallel
    shard merge) need it without import cycles.

    Example::

        >>> from repro.serving import FaultStats
        >>> a = FaultStats(crashes=1, downtime_s=0.5, retries=2)
        >>> b = FaultStats(retries=1, hedges=3, hedge_wins=1)
        >>> a.merge(b)
        FaultStats(crashes=1, downtime_s=0.5, preemptions=0, retries=3, timeouts=0, hedges=3, hedge_wins=1, stragglers=0)
        >>> FaultStats().any, a.any
        (False, True)
    """

    #: Replica crash events injected into the stream.
    crashes: int = 0
    #: Total replica-seconds spent dead (summed over crashes).
    downtime_s: float = 0.0
    #: In-flight executions aborted by a higher-priority arrival.
    preemptions: int = 0
    #: Re-dispatches after a per-request timeout expired.
    retries: int = 0
    #: Requests that exhausted their retry budget (outcome ``"timeout"``).
    timeouts: int = 0
    #: Hedged duplicate dispatches issued.
    hedges: int = 0
    #: Requests whose hedge copy finished first (outcome ``"hedged"``).
    hedge_wins: int = 0
    #: Executions whose service time was straggler-inflated.
    stragglers: int = 0

    @property
    def any(self) -> bool:
        """Whether any fault was injected (False for the identity record)."""
        return self != FaultStats()

    def merge(self, other: "FaultStats") -> "FaultStats":
        """Field-wise sum — associative, with ``FaultStats()`` as identity."""
        return FaultStats(
            crashes=self.crashes + other.crashes,
            downtime_s=self.downtime_s + other.downtime_s,
            preemptions=self.preemptions + other.preemptions,
            retries=self.retries + other.retries,
            timeouts=self.timeouts + other.timeouts,
            hedges=self.hedges + other.hedges,
            hedge_wins=self.hedge_wins + other.hedge_wins,
            stragglers=self.stragglers + other.stragglers,
        )
