"""The uniform per-request serving outcome, shared by every platform.

:class:`ServingResult` is the row every platform produces for Table 6 —
latency, effective TFLOPS, and (where modelled) power — regardless of
whether it came from the cycle-level Plasticine simulator or one of the
analytical baseline models.  It used to live in :mod:`repro.api`; it now
sits under :mod:`repro.serving` so the platform registry and the engine
can use it without importing the legacy API module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.workloads.deepbench import RNNTask

if TYPE_CHECKING:  # only for annotations; avoids eager heavy imports
    from repro.mapping.mapper import MappedDesign
    from repro.plasticine.simulator import SimulationResult

__all__ = ["ServingResult"]


@dataclass(frozen=True)
class ServingResult:
    """Uniform serving outcome across platforms."""

    platform: str
    task: RNNTask
    latency_s: float
    effective_tflops: float
    power_w: float | None = None
    cycles_per_step: int | None = None
    design: "MappedDesign | None" = field(default=None, repr=False, compare=False)
    simulation: "SimulationResult | None" = field(default=None, repr=False, compare=False)
    notes: tuple[str, ...] = ()

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    def speedup_over(self, other: "ServingResult") -> float:
        """How much faster *this* platform is than ``other`` (>1 = faster)."""
        return other.latency_s / self.latency_s
