"""The uniform per-request serving outcome, shared by every platform.

:class:`ServingResult` is the row every platform produces for Table 6 —
latency, effective TFLOPS, and (where modelled) power — regardless of
whether it came from the cycle-level Plasticine simulator or one of the
analytical baseline models.  It used to live in :mod:`repro.api`; it now
sits under :mod:`repro.serving` so the platform registry and the engine
can use it without importing the legacy API module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.workloads.deepbench import RNNTask

if TYPE_CHECKING:  # only for annotations; avoids eager heavy imports
    from repro.mapping.mapper import MappedDesign
    from repro.plasticine.simulator import SimulationResult

__all__ = ["ServingResult"]


@dataclass(frozen=True)
class ServingResult:
    """Uniform serving outcome across platforms.

    ``batch_size`` is 1 for the classic batch-1 request; a batched
    execution (see :meth:`Platform.serve_batched
    <repro.serving.platform.Platform.serve_batched>`) produces one
    result for the whole batch, with ``latency_s`` the batch completion
    time and ``effective_tflops`` counting every request's work.

    Example::

        >>> from repro.serving import ServingEngine
        >>> from repro.workloads.deepbench import task
        >>> res = ServingEngine("gpu").serve(task("lstm", 512, 25)).result
        >>> res.platform, res.batch_size, res.latency_ms < 50
        ('gpu', 1, True)
    """

    platform: str
    task: RNNTask
    latency_s: float
    effective_tflops: float
    power_w: float | None = None
    cycles_per_step: int | None = None
    design: "MappedDesign | None" = field(default=None, repr=False, compare=False)
    simulation: "SimulationResult | None" = field(default=None, repr=False, compare=False)
    notes: tuple[str, ...] = ()
    #: Number of same-task requests this execution served together.
    batch_size: int = 1

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def throughput_rps(self) -> float:
        """Requests completed per second of execution (batch / latency)."""
        return self.batch_size / self.latency_s

    def speedup_over(self, other: "ServingResult") -> float:
        """How much faster *this* platform is than ``other`` (>1 = faster)."""
        return other.latency_s / self.latency_s
