"""Composable traffic generation: arrival processes, mixes, and traces.

The paper's serving scenario is a stream of batch-1 requests; real
data-center RNN serving adds multiple tenants, bursty arrivals, and
per-request deadlines on top.  This module generates that traffic:

* :func:`poisson_arrivals` / :func:`uniform_arrivals` — the classic
  open-loop processes;
* :func:`mmpp_arrivals` — a two-state Markov-modulated Poisson process
  (quiet/burst), the standard model for bursty interactive traffic;
* :func:`diurnal_arrivals` — a non-homogeneous Poisson process whose
  rate ramps sinusoidally over a period (a compressed day/night cycle);
* :func:`mix` — interleave several single-tenant streams into one
  multi-tenant workload with globally unique request ids;
* :func:`record_trace` / :func:`replay_trace` — JSONL capture and exact
  replay of any stream.

Every generator is seeded and deterministic: the same arguments produce
the identical request sequence, so experiments and tests are repeatable.
All generators accept ``tenant``, ``priority``, and ``slo_ms`` tags that
flow through to the schedulers and per-tenant report breakdowns.

Real RNN traffic is also **length-distributed**: utterances and
sentences vary, and padding a batch to its longest member is the
dominant cost of batched RNN serving.  Every generator therefore accepts
a ``lengths`` sampler (:class:`FixedLength`, :class:`UniformLength`,
:class:`ZipfLength`, or :class:`EmpiricalLength` built from a recorded
trace) that attaches a per-request ``timesteps`` override to each
arrival via :meth:`RNNTask.with_timesteps
<repro.workloads.deepbench.RNNTask.with_timesteps>`.  Length sampling
draws from its own seeded RNG stream, so attaching a distribution never
perturbs the arrival times.
"""

from __future__ import annotations

import heapq
import json
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from functools import cached_property
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import ServingError, WorkloadError
from repro.serving.request import ServeRequest
from repro.workloads.deepbench import RNNTask

__all__ = [
    "LengthSampler",
    "FixedLength",
    "UniformLength",
    "ZipfLength",
    "EmpiricalLength",
    "length_sampler",
    "length_band",
    "lengths_from_trace",
    "poisson_arrivals",
    "uniform_arrivals",
    "mmpp_arrivals",
    "diurnal_arrivals",
    "mix",
    "record_trace",
    "replay_trace",
    "iter_trace",
    "request_to_json",
    "request_from_json",
]

#: Chunk size for vectorized lazy RNG draws: big enough to amortize the
#: numpy call, small enough that a lazy stream's working set stays tiny.
_CHUNK = 8192


def _check_stream_args(rate_per_s: float, n_requests: int) -> None:
    if rate_per_s <= 0:
        raise ServingError("rate_per_s must be positive")
    if n_requests < 1:
        raise ServingError("n_requests must be >= 1")


# -- sequence-length distributions ---------------------------------------

#: Seed-stream tag separating length sampling from arrival-time sampling:
#: the same ``seed`` yields the same arrival times with or without a
#: length distribution attached.
_LENGTH_STREAM = 0x4C454E  # "LEN"


class LengthSampler(ABC):
    """Seeded per-request sequence-length distribution.

    Samplers are pure descriptions; all randomness comes from the
    generator-owned RNG passed to :meth:`sample`, so the same traffic
    seed reproduces the same lengths.

    Example::

        >>> from repro.serving import FixedLength
        >>> import numpy as np
        >>> FixedLength(25).sample(np.random.default_rng(0))
        25
    """

    @abstractmethod
    def sample(self, rng) -> int:
        """Draw one sequence length (``timesteps >= 1``)."""


@dataclass(frozen=True)
class FixedLength(LengthSampler):
    """Every request gets the same length — the paper's fixed-T scenario
    expressed through the variable-length machinery.

    Example::

        >>> from repro.serving import FixedLength
        >>> import numpy as np
        >>> rng = np.random.default_rng(7)
        >>> {FixedLength(50).sample(rng) for _ in range(5)}
        {50}
    """

    timesteps: int

    def __post_init__(self) -> None:
        if self.timesteps < 1:
            raise ServingError("FixedLength timesteps must be >= 1")

    def sample(self, rng) -> int:
        return self.timesteps


@dataclass(frozen=True)
class UniformLength(LengthSampler):
    """Lengths drawn uniformly from ``[lo, hi]`` inclusive.

    Example::

        >>> from repro.serving import UniformLength
        >>> import numpy as np
        >>> rng = np.random.default_rng(3)
        >>> all(10 <= UniformLength(10, 20).sample(rng) <= 20
        ...     for _ in range(50))
        True
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo < 1 or self.hi < self.lo:
            raise ServingError(f"need 1 <= lo <= hi, got [{self.lo}, {self.hi}]")

    def sample(self, rng) -> int:
        return int(rng.integers(self.lo, self.hi + 1))


@dataclass(frozen=True)
class ZipfLength(LengthSampler):
    """Zipf-distributed lengths on ``[lo, hi]``: short sequences dominate,
    long ones form a heavy tail — the shape interactive speech/translation
    traffic actually has, and the worst case for padded batching.

    ``P(length = lo + k) ∝ (k + 1)^-alpha``.

    Example::

        >>> from repro.serving import ZipfLength
        >>> import numpy as np
        >>> rng = np.random.default_rng(0)
        >>> draws = [ZipfLength(10, 200).sample(rng) for _ in range(200)]
        >>> (min(draws) >= 10, max(draws) <= 200,
        ...  sum(d < 30 for d in draws) > sum(d > 100 for d in draws))
        (True, True, True)
    """

    lo: int
    hi: int
    alpha: float = 1.2

    def __post_init__(self) -> None:
        if self.lo < 1 or self.hi < self.lo:
            raise ServingError(f"need 1 <= lo <= hi, got [{self.lo}, {self.hi}]")
        if self.alpha <= 0:
            raise ServingError("ZipfLength alpha must be positive")

    @cached_property
    def _probs(self):
        import numpy as np

        ranks = np.arange(1, self.hi - self.lo + 2, dtype=float)
        weights = ranks**-self.alpha
        return weights / weights.sum()

    @cached_property
    def _cdf(self):
        # ``Generator.choice(n, p=probs)`` recomputes this cumsum on
        # every call — the hot cost of sampling a million lengths.
        # Caching it and replaying choice's own algorithm (one uniform
        # draw + a right-bisect on the normalized cdf) produces the
        # *identical* draw sequence an order of magnitude faster.
        cdf = self._probs.cumsum()
        cdf /= cdf[-1]
        return cdf

    def sample(self, rng) -> int:
        return self.lo + int(self._cdf.searchsorted(rng.random(), side="right"))


@dataclass(frozen=True)
class EmpiricalLength(LengthSampler):
    """Lengths resampled (with replacement) from an observed population —
    e.g. the ``timesteps`` column of a recorded trace.

    Example::

        >>> from repro.serving import EmpiricalLength
        >>> import numpy as np
        >>> rng = np.random.default_rng(1)
        >>> sampler = EmpiricalLength((5, 5, 80))
        >>> set(sampler.sample(rng) for _ in range(60)) <= {5, 80}
        True
    """

    population: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.population:
            raise ServingError("EmpiricalLength needs a non-empty population")
        if any(t < 1 for t in self.population):
            raise ServingError("EmpiricalLength lengths must be >= 1")

    def sample(self, rng) -> int:
        return int(self.population[int(rng.integers(len(self.population)))])


def length_sampler(spec: str) -> LengthSampler:
    """Parse a CLI-style length-distribution spec into a sampler.

    Accepted forms (see ``docs/CLI.md``):

    * ``fixed:T`` — every request T steps;
    * ``uniform:LO:HI`` — uniform on [LO, HI];
    * ``zipf:LO:HI`` / ``zipf:LO:HI:ALPHA`` — Zipf on [LO, HI];
    * ``trace:PATH`` — empirical, resampled from a recorded JSONL trace.

    Example::

        >>> from repro.serving import length_sampler
        >>> length_sampler("zipf:10:200:1.5").alpha
        1.5
        >>> length_sampler("uniform:10:50").hi
        50
    """
    kind, _, rest = spec.partition(":")
    fields = rest.split(":") if rest else []
    try:
        if kind == "fixed" and len(fields) == 1:
            return FixedLength(int(fields[0]))
        if kind == "uniform" and len(fields) == 2:
            return UniformLength(int(fields[0]), int(fields[1]))
        if kind == "zipf" and len(fields) in (2, 3):
            alpha = float(fields[2]) if len(fields) == 3 else 1.2
            return ZipfLength(int(fields[0]), int(fields[1]), alpha)
        if kind == "trace" and rest:
            return lengths_from_trace(rest)
    except ValueError as exc:
        raise ServingError(f"bad length-distribution spec {spec!r}: {exc}") from exc
    raise ServingError(
        f"bad length-distribution spec {spec!r}; expected fixed:T, "
        f"uniform:LO:HI, zipf:LO:HI[:ALPHA], or trace:PATH"
    )


def length_band(timesteps: int, band_base: float = 2.0) -> tuple[int, int]:
    """The inclusive geometric band ``[lo, hi]`` containing ``timesteps``.

    Bands partition lengths into ``[base^k, base^(k+1))`` intervals —
    the grouping used by the ``bucket`` batcher and by
    :meth:`StreamReport.per_length_band
    <repro.serving.engine.StreamReport.per_length_band>`.  Edges are
    found by exact multiplication up from 1 rather than a float
    logarithm, so boundary lengths land in the right band (``floor(log)``
    puts 1000 in base-10 band 2 because ``log10(1000)`` rounds below 3).

    Example::

        >>> from repro.serving import length_band
        >>> (length_band(15), length_band(16), length_band(1))
        ((8, 15), (16, 31), (1, 1))
        >>> length_band(1000, band_base=10)
        (1000, 9999)
    """
    if band_base <= 1.0:
        raise ServingError("band_base must be > 1")
    if timesteps < 1:
        raise ServingError("timesteps must be >= 1")
    lo = 1.0
    while lo * band_base <= timesteps:
        lo *= band_base
    return math.ceil(lo), math.ceil(lo * band_base) - 1


def lengths_from_trace(path: str | Path) -> EmpiricalLength:
    """Build an empirical length sampler from a recorded trace's
    per-request ``timesteps`` (see :func:`record_trace`).

    Example::

        >>> import os, tempfile
        >>> from repro.serving import (lengths_from_trace, record_trace,
        ...                            uniform_arrivals)
        >>> from repro.workloads.deepbench import task
        >>> reqs = uniform_arrivals(task("lstm", 512, 25),
        ...                         rate_per_s=10, n_requests=3)
        >>> p = os.path.join(tempfile.mkdtemp(), "t.jsonl")
        >>> lengths_from_trace(record_trace(reqs, p)).population
        (25, 25, 25)
    """
    return EmpiricalLength(
        tuple(req.task.timesteps for req in replay_trace(path))
    )


def _request_stream(
    times: Iterator[float],
    task: RNNTask,
    start_s: float,
    tenant: str,
    priority: int,
    slo_ms: float | None,
    lengths: LengthSampler | None,
    seed: int,
) -> Iterator[ServeRequest]:
    """Wrap a lazy arrival-time stream into tagged requests.

    Length sampling draws from its own seeded RNG stream
    (``(seed, _LENGTH_STREAM)``), so attaching a distribution never
    perturbs the arrival times — and the interleaved lazy draws are
    value-identical to the historical draw-all-upfront order.
    """
    if lengths is None:
        for i, t in enumerate(times):
            yield ServeRequest(
                task=task,
                arrival_s=start_s + t,
                request_id=i,
                tenant=tenant,
                priority=priority,
                slo_ms=slo_ms,
            )
        return
    import numpy as np

    rng = np.random.default_rng((seed, _LENGTH_STREAM))
    sample = lengths.sample
    for i, t in enumerate(times):
        yield ServeRequest(
            task=task.with_timesteps(sample(rng)),
            arrival_s=start_s + t,
            request_id=i,
            tenant=tenant,
            priority=priority,
            slo_ms=slo_ms,
        )


def _poisson_times(rate_per_s: float, n_requests: int, seed: int) -> Iterator[float]:
    """Exponential inter-arrival times, drawn lazily in chunks.

    Chunked ``Generator.exponential`` draws are bit-identical to one
    ``size=n`` draw, and the Python running sum is the same sequential
    IEEE-754 addition ``np.cumsum`` performs — so the lazy stream equals
    the historical materialized one float for float.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    scale = 1.0 / rate_per_s
    t = 0.0
    remaining = n_requests
    while remaining:
        draw = rng.exponential(scale, size=min(_CHUNK, remaining))
        remaining -= len(draw)
        for gap in draw.tolist():
            t += gap
            yield t


def poisson_arrivals(
    task: RNNTask,
    *,
    rate_per_s: float,
    n_requests: int,
    seed: int = 0,
    start_s: float = 0.0,
    tenant: str = "default",
    priority: int = 0,
    slo_ms: float | None = None,
    lengths: LengthSampler | None = None,
    materialize: bool = True,
) -> "tuple[ServeRequest, ...] | Iterator[ServeRequest]":
    """A Poisson request stream for one task (exponential inter-arrivals).

    The same seed at two different rates yields time-scaled copies of the
    same stream, which keeps rate sweeps comparable.  ``lengths`` draws a
    per-request ``timesteps`` override from its own seeded stream, so
    arrival times are identical with or without it.

    ``materialize=False`` returns a lazy generator producing the *same
    requests* one at a time (RNG draws are chunked internally), so a
    multi-million-request stream can feed ``serve_stream(...,
    presorted=True)`` in O(1) memory.

    Example::

        >>> from repro.serving import poisson_arrivals
        >>> from repro.workloads.deepbench import task
        >>> reqs = poisson_arrivals(task("lstm", 512, 25),
        ...                         rate_per_s=100, n_requests=5, seed=0)
        >>> (len(reqs), reqs[0].tenant, reqs[0].request_id)
        (5, 'default', 0)
        >>> all(a.arrival_s < b.arrival_s for a, b in zip(reqs, reqs[1:]))
        True
        >>> lazy = poisson_arrivals(task("lstm", 512, 25), rate_per_s=100,
        ...                         n_requests=5, seed=0, materialize=False)
        >>> tuple(lazy) == reqs
        True
    """
    _check_stream_args(rate_per_s, n_requests)
    stream = _request_stream(
        _poisson_times(rate_per_s, n_requests, seed),
        task, start_s, tenant, priority, slo_ms, lengths, seed,
    )
    return tuple(stream) if materialize else stream


def _uniform_times(rate_per_s: float, n_requests: int) -> Iterator[float]:
    period = 1.0 / rate_per_s
    for i in range(n_requests):
        yield (i + 1) * period


def uniform_arrivals(
    task: RNNTask,
    *,
    rate_per_s: float,
    n_requests: int,
    start_s: float = 0.0,
    tenant: str = "default",
    priority: int = 0,
    slo_ms: float | None = None,
    seed: int = 0,
    lengths: LengthSampler | None = None,
    materialize: bool = True,
) -> "tuple[ServeRequest, ...] | Iterator[ServeRequest]":
    """A deterministic evenly-spaced request stream for one task.

    ``seed`` only feeds the optional ``lengths`` sampler — the arrival
    times themselves are deterministic.  ``materialize=False`` returns
    the same stream as a lazy generator.

    Example::

        >>> from repro.serving import uniform_arrivals
        >>> from repro.workloads.deepbench import task
        >>> reqs = uniform_arrivals(task("lstm", 512, 25),
        ...                         rate_per_s=10, n_requests=3)
        >>> [round(r.arrival_s, 3) for r in reqs]
        [0.1, 0.2, 0.3]
    """
    _check_stream_args(rate_per_s, n_requests)
    stream = _request_stream(
        _uniform_times(rate_per_s, n_requests),
        task, start_s, tenant, priority, slo_ms, lengths, seed,
    )
    return tuple(stream) if materialize else stream


def mmpp_arrivals(
    task: RNNTask,
    *,
    quiet_rate_per_s: float,
    burst_rate_per_s: float,
    n_requests: int,
    quiet_dwell_s: float = 0.25,
    burst_dwell_s: float = 0.05,
    seed: int = 0,
    start_s: float = 0.0,
    tenant: str = "default",
    priority: int = 0,
    slo_ms: float | None = None,
    lengths: LengthSampler | None = None,
    materialize: bool = True,
) -> "tuple[ServeRequest, ...] | Iterator[ServeRequest]":
    """A two-state Markov-modulated Poisson process (quiet vs burst).

    The process alternates between a quiet state and a burst state; dwell
    times in each state are exponential with the given means, and within
    a state arrivals are Poisson at that state's rate.  The result is the
    bursty traffic real interactive services see: long stretches near the
    quiet rate punctuated by short storms at the burst rate.

    Example::

        >>> from repro.serving import mmpp_arrivals
        >>> from repro.workloads.deepbench import task
        >>> t = task("lstm", 512, 25)
        >>> reqs = mmpp_arrivals(t, quiet_rate_per_s=50, burst_rate_per_s=2000,
        ...                      n_requests=20, seed=1)
        >>> len(reqs)
        20
        >>> reqs == mmpp_arrivals(t, quiet_rate_per_s=50,
        ...                       burst_rate_per_s=2000, n_requests=20, seed=1)
        True
    """
    _check_stream_args(quiet_rate_per_s, n_requests)
    if burst_rate_per_s <= 0:
        raise ServingError("burst_rate_per_s must be positive")
    if quiet_dwell_s <= 0 or burst_dwell_s <= 0:
        raise ServingError("dwell times must be positive")

    def times() -> Iterator[float]:
        import numpy as np

        rng = np.random.default_rng(seed)
        rates = (quiet_rate_per_s, burst_rate_per_s)
        dwells = (quiet_dwell_s, burst_dwell_s)
        state = 0
        t = 0.0
        state_end = float(rng.exponential(dwells[state]))
        produced = 0
        while produced < n_requests:
            gap = float(rng.exponential(1.0 / rates[state]))
            if t + gap < state_end:
                t += gap
                produced += 1
                yield t
            else:
                # No arrival before the state flips; jump to the boundary.
                t = state_end
                state = 1 - state
                state_end = t + float(rng.exponential(dwells[state]))

    stream = _request_stream(
        times(), task, start_s, tenant, priority, slo_ms, lengths, seed
    )
    return tuple(stream) if materialize else stream


def diurnal_arrivals(
    task: RNNTask,
    *,
    base_rate_per_s: float,
    peak_rate_per_s: float,
    period_s: float,
    n_requests: int,
    seed: int = 0,
    start_s: float = 0.0,
    tenant: str = "default",
    priority: int = 0,
    slo_ms: float | None = None,
    lengths: LengthSampler | None = None,
    materialize: bool = True,
) -> "tuple[ServeRequest, ...] | Iterator[ServeRequest]":
    """A sinusoidal rate ramp: a compressed day/night traffic cycle.

    Generates a non-homogeneous Poisson process via thinning against the
    peak rate, with ``rate(t) = base + (peak - base) * (1 - cos(2*pi*t /
    period)) / 2`` — the stream starts at the base rate, crests at the
    peak half a period in, and returns to base.

    Example::

        >>> from repro.serving import diurnal_arrivals
        >>> from repro.workloads.deepbench import task
        >>> reqs = diurnal_arrivals(task("lstm", 512, 25),
        ...                         base_rate_per_s=20, peak_rate_per_s=500,
        ...                         period_s=2.0, n_requests=30, seed=4)
        >>> (len(reqs), reqs[0].arrival_s > 0)
        (30, True)
    """
    _check_stream_args(base_rate_per_s, n_requests)
    if peak_rate_per_s < base_rate_per_s:
        raise ServingError("peak_rate_per_s must be >= base_rate_per_s")
    if period_s <= 0:
        raise ServingError("period_s must be positive")

    def times() -> Iterator[float]:
        import numpy as np

        rng = np.random.default_rng(seed)
        swing = peak_rate_per_s - base_rate_per_s
        t = 0.0
        produced = 0
        while produced < n_requests:
            t += float(rng.exponential(1.0 / peak_rate_per_s))
            rate = base_rate_per_s + swing * (
                1.0 - math.cos(2.0 * math.pi * t / period_s)
            ) / 2.0
            if float(rng.uniform()) * peak_rate_per_s <= rate:
                produced += 1
                yield t

    stream = _request_stream(
        times(), task, start_s, tenant, priority, slo_ms, lengths, seed
    )
    return tuple(stream) if materialize else stream


def _lazy_mix(streams: tuple[Iterable[ServeRequest], ...]) -> Iterator[ServeRequest]:
    """K-way merge of already-sorted streams, renumbered on the fly.

    ``heapq.merge`` breaks arrival-time ties by stream position, and each
    sorted input stream is already in ``(arrival_s, request_id)`` order,
    so the merged order matches the eager path's
    ``(arrival_s, stream_idx, request_id)`` sort key exactly.
    """
    merged = heapq.merge(*streams, key=lambda req: req.arrival_s)
    new_id = 0
    for req in merged:
        yield replace(req, request_id=new_id)
        new_id += 1


def mix(
    *streams: Iterable[ServeRequest], presorted: bool = False
) -> "tuple[ServeRequest, ...] | Iterator[ServeRequest]":
    """Interleave several streams into one multi-tenant workload.

    Requests are merged in arrival order (ties break by stream position,
    then by original id) and re-numbered with globally unique
    ``request_id``s — the per-stream ids almost always collide, and the
    event loop rejects duplicate ids outright.  Tenant, priority, and
    per-request SLO tags are preserved.

    With ``presorted=True`` the inputs are promised to be individually
    time-ordered (every built-in generator is — including their
    ``materialize=False`` lazy forms) and the merge happens lazily with
    O(#streams) memory, returning a generator suitable for
    ``serve_stream(..., presorted=True)``.

    Example::

        >>> from repro.serving import mix, uniform_arrivals
        >>> from repro.workloads.deepbench import task
        >>> t = task("lstm", 512, 25)
        >>> merged = mix(
        ...     uniform_arrivals(t, rate_per_s=10, n_requests=3, tenant="a"),
        ...     uniform_arrivals(t, rate_per_s=10, n_requests=3, tenant="b"))
        >>> [r.request_id for r in merged]       # globally re-numbered
        [0, 1, 2, 3, 4, 5]
        >>> [r.tenant for r in merged]
        ['a', 'b', 'a', 'b', 'a', 'b']
    """
    if not streams:
        raise ServingError("mix needs at least one stream")
    if presorted:
        return _lazy_mix(streams)
    tagged = [
        (req.arrival_s, stream_idx, req.request_id, req)
        for stream_idx, stream in enumerate(streams)
        for req in stream
    ]
    if not tagged:
        raise ServingError("mix needs at least one request across its streams")
    tagged.sort(key=lambda item: item[:3])
    return tuple(
        replace(req, request_id=new_id)
        for new_id, (_, _, _, req) in enumerate(tagged)
    )


#: Trace schema version, recorded on every line for forward compatibility.
#: v2 added ``layers``/``decoder_timesteps`` and dropped the always-1
#: ``batch`` field; v1 traces still replay (a non-1 ``batch`` is
#: rejected — per-request batching was never representable).
_TRACE_VERSION = 2


def request_to_json(req: ServeRequest) -> dict:
    """One request as a trace-schema dict (the JSONL wire format).

    The same schema serves two transports: trace files
    (:func:`record_trace`) and the live server's socket protocol
    (:class:`~repro.serving.server.ServingServer`) — a recorded trace
    can be replayed against a socket with no translation.

    Example::

        >>> from repro.serving import ServeRequest, request_to_json
        >>> from repro.workloads.deepbench import task
        >>> rec = request_to_json(ServeRequest(task=task("lstm", 512, 25)))
        >>> (rec["v"], rec["kind"], rec["hidden"], rec["tenant"])
        (2, 'lstm', 512, 'default')
    """
    return {
        "v": _TRACE_VERSION,
        "kind": req.task.kind,
        "hidden": req.task.hidden,
        "timesteps": req.task.timesteps,
        "layers": req.task.layers,
        "decoder_timesteps": req.task.decoder_timesteps,
        "in_table6": req.task.in_table6,
        "arrival_s": req.arrival_s,
        "request_id": req.request_id,
        "tenant": req.tenant,
        "priority": req.priority,
        "slo_ms": req.slo_ms,
    }


def request_from_json(rec: dict, *, where: str = "request record") -> ServeRequest:
    """Parse one trace-schema dict back into a :class:`ServeRequest`.

    The inverse of :func:`request_to_json`, shared by trace replay and
    the live server.  ``where`` names the source in error messages
    (trace line, socket peer).  Raises
    :class:`~repro.errors.ServingError` on malformed records — *every*
    malformed record: non-dict JSON values and records whose fields
    fail task validation (an unknown kind, a non-positive size) land
    here too, so a trace replayer or socket handler catching
    ``ServingError`` really does survive arbitrary input.

    Example::

        >>> from repro.serving import ServeRequest, request_from_json
        >>> from repro.serving import request_to_json
        >>> from repro.workloads.deepbench import task
        >>> req = ServeRequest(task=task("gru", 256, 50), tenant="asr")
        >>> request_from_json(request_to_json(req)) == req
        True
        >>> request_from_json([1, 2])
        Traceback (most recent call last):
            ...
        repro.errors.ServingError: bad request record: expected a JSON \
object, got list
    """
    if not isinstance(rec, dict):
        raise ServingError(
            f"bad {where}: expected a JSON object, got {type(rec).__name__}"
        )
    try:
        if rec.get("batch", 1) != 1:
            # v1 recorded the (removed, always-1) RNNTask.batch field.
            raise ServingError(
                f"{where} carries batch={rec['batch']}; per-request "
                f"batch sizes were never supported — batching is a "
                f"serving policy, not a task attribute"
            )
        return ServeRequest(
            task=RNNTask(
                rec["kind"],
                rec["hidden"],
                rec["timesteps"],
                layers=rec.get("layers", 1),
                decoder_timesteps=rec.get("decoder_timesteps", 0),
                in_table6=rec.get("in_table6", True),
            ),
            arrival_s=rec["arrival_s"] if rec.get("arrival_s") is not None else 0.0,
            request_id=rec.get("request_id", 0),
            tenant=rec.get("tenant", "default"),
            priority=rec.get("priority", 0),
            slo_ms=rec.get("slo_ms"),
        )
    except ServingError:
        raise
    except (KeyError, TypeError, ValueError, WorkloadError) as exc:
        # WorkloadError: RNNTask validation (unknown kind, bad sizes)
        # must not escape as a non-serving exception past a handler
        # that promised ServingError for malformed records.
        raise ServingError(f"bad {where}: {exc}") from exc


def record_trace(requests: Iterable[ServeRequest], path: str | Path) -> Path:
    """Write a stream to a JSONL trace file (one request per line).

    Floats are serialized with ``repr`` precision, so
    :func:`replay_trace` reproduces the exact same requests — and
    therefore the exact same :class:`~repro.serving.engine.StreamReport`.

    Example::

        >>> import os, tempfile
        >>> from repro.serving import record_trace, replay_trace, uniform_arrivals
        >>> from repro.workloads.deepbench import task
        >>> reqs = uniform_arrivals(task("lstm", 512, 25),
        ...                         rate_per_s=10, n_requests=3)
        >>> path = os.path.join(tempfile.mkdtemp(), "stream.jsonl")
        >>> replay_trace(record_trace(reqs, path)) == reqs
        True
    """
    path = Path(path)
    # Written line by line so recording a lazy multi-million-request
    # stream never materializes it — but into a sibling temp file that
    # only replaces ``path`` on success, so an empty stream or a
    # mid-stream generator failure cannot clobber an existing trace.
    tmp = path.parent / (path.name + ".partial")
    try:
        n = 0
        with tmp.open("w") as handle:
            for req in requests:
                handle.write(
                    json.dumps(request_to_json(req), sort_keys=True) + "\n"
                )
                n += 1
        if not n:
            raise ServingError("refusing to record an empty trace")
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    tmp.replace(path)
    return path


def _parse_trace_line(line: str, lineno: int, path: Path) -> ServeRequest:
    where = f"trace line {lineno} in {path}"
    try:
        rec = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServingError(f"bad {where}: {exc}") from exc
    return request_from_json(rec, where=where)


def _iter_trace(path: Path) -> Iterator[ServeRequest]:
    n = 0
    with path.open() as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            yield _parse_trace_line(line, lineno, path)
            n += 1
    if not n:
        raise ServingError(f"trace {path} holds no requests")


def iter_trace(path: str | Path) -> Iterator[ServeRequest]:
    """Stream a JSONL trace lazily, one request at a time.

    The streaming counterpart of :func:`replay_trace`: the file is read
    line by line, so replaying a multi-gigabyte trace through
    ``serve_stream(..., presorted=True, mode="summary")`` never loads it
    into memory.  Parsing, validation, and error messages are identical
    to :func:`replay_trace` (which is just ``tuple(iter_trace(path))``).

    Example::

        >>> import os, tempfile
        >>> from repro.serving import iter_trace, record_trace, uniform_arrivals
        >>> from repro.workloads.deepbench import task
        >>> reqs = uniform_arrivals(task("lstm", 512, 25),
        ...                         rate_per_s=10, n_requests=3)
        >>> p = record_trace(reqs, os.path.join(tempfile.mkdtemp(), "t.jsonl"))
        >>> tuple(iter_trace(p)) == reqs
        True
    """
    path = Path(path)
    if not path.exists():
        raise ServingError(f"trace file not found: {path}")
    return _iter_trace(path)


def replay_trace(path: str | Path) -> tuple[ServeRequest, ...]:
    """Load a JSONL trace back into the identical request stream.

    Example::

        >>> from repro.serving import replay_trace
        >>> from repro.errors import ServingError
        >>> try:
        ...     replay_trace("no/such/trace.jsonl")
        ... except ServingError as exc:
        ...     print("rejected")
        rejected
    """
    return tuple(iter_trace(path))
