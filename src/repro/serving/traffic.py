"""Composable traffic generation: arrival processes, mixes, and traces.

The paper's serving scenario is a stream of batch-1 requests; real
data-center RNN serving adds multiple tenants, bursty arrivals, and
per-request deadlines on top.  This module generates that traffic:

* :func:`poisson_arrivals` / :func:`uniform_arrivals` — the classic
  open-loop processes;
* :func:`mmpp_arrivals` — a two-state Markov-modulated Poisson process
  (quiet/burst), the standard model for bursty interactive traffic;
* :func:`diurnal_arrivals` — a non-homogeneous Poisson process whose
  rate ramps sinusoidally over a period (a compressed day/night cycle);
* :func:`mix` — interleave several single-tenant streams into one
  multi-tenant workload with globally unique request ids;
* :func:`record_trace` / :func:`replay_trace` — JSONL capture and exact
  replay of any stream.

Every generator is seeded and deterministic: the same arguments produce
the identical request sequence, so experiments and tests are repeatable.
All generators accept ``tenant``, ``priority``, and ``slo_ms`` tags that
flow through to the schedulers and per-tenant report breakdowns.
"""

from __future__ import annotations

import json
import math
from dataclasses import replace
from pathlib import Path
from typing import Iterable

from repro.errors import ServingError
from repro.serving.request import ServeRequest
from repro.workloads.deepbench import RNNTask

__all__ = [
    "poisson_arrivals",
    "uniform_arrivals",
    "mmpp_arrivals",
    "diurnal_arrivals",
    "mix",
    "record_trace",
    "replay_trace",
]


def _check_stream_args(rate_per_s: float, n_requests: int) -> None:
    if rate_per_s <= 0:
        raise ServingError("rate_per_s must be positive")
    if n_requests < 1:
        raise ServingError("n_requests must be >= 1")


def poisson_arrivals(
    task: RNNTask,
    *,
    rate_per_s: float,
    n_requests: int,
    seed: int = 0,
    start_s: float = 0.0,
    tenant: str = "default",
    priority: int = 0,
    slo_ms: float | None = None,
) -> tuple[ServeRequest, ...]:
    """A Poisson request stream for one task (exponential inter-arrivals).

    The same seed at two different rates yields time-scaled copies of the
    same stream, which keeps rate sweeps comparable.

    Example::

        >>> from repro.serving import poisson_arrivals
        >>> from repro.workloads.deepbench import task
        >>> reqs = poisson_arrivals(task("lstm", 512, 25),
        ...                         rate_per_s=100, n_requests=5, seed=0)
        >>> (len(reqs), reqs[0].tenant, reqs[0].request_id)
        (5, 'default', 0)
        >>> all(a.arrival_s < b.arrival_s for a, b in zip(reqs, reqs[1:]))
        True
    """
    _check_stream_args(rate_per_s, n_requests)
    import numpy as np

    rng = np.random.default_rng(seed)
    inter = rng.exponential(1.0 / rate_per_s, size=n_requests)
    arrivals = np.cumsum(inter)
    return tuple(
        ServeRequest(
            task=task,
            arrival_s=start_s + float(t),
            request_id=i,
            tenant=tenant,
            priority=priority,
            slo_ms=slo_ms,
        )
        for i, t in enumerate(arrivals)
    )


def uniform_arrivals(
    task: RNNTask,
    *,
    rate_per_s: float,
    n_requests: int,
    start_s: float = 0.0,
    tenant: str = "default",
    priority: int = 0,
    slo_ms: float | None = None,
) -> tuple[ServeRequest, ...]:
    """A deterministic evenly-spaced request stream for one task.

    Example::

        >>> from repro.serving import uniform_arrivals
        >>> from repro.workloads.deepbench import task
        >>> reqs = uniform_arrivals(task("lstm", 512, 25),
        ...                         rate_per_s=10, n_requests=3)
        >>> [round(r.arrival_s, 3) for r in reqs]
        [0.1, 0.2, 0.3]
    """
    _check_stream_args(rate_per_s, n_requests)
    period = 1.0 / rate_per_s
    return tuple(
        ServeRequest(
            task=task,
            arrival_s=start_s + (i + 1) * period,
            request_id=i,
            tenant=tenant,
            priority=priority,
            slo_ms=slo_ms,
        )
        for i in range(n_requests)
    )


def mmpp_arrivals(
    task: RNNTask,
    *,
    quiet_rate_per_s: float,
    burst_rate_per_s: float,
    n_requests: int,
    quiet_dwell_s: float = 0.25,
    burst_dwell_s: float = 0.05,
    seed: int = 0,
    start_s: float = 0.0,
    tenant: str = "default",
    priority: int = 0,
    slo_ms: float | None = None,
) -> tuple[ServeRequest, ...]:
    """A two-state Markov-modulated Poisson process (quiet vs burst).

    The process alternates between a quiet state and a burst state; dwell
    times in each state are exponential with the given means, and within
    a state arrivals are Poisson at that state's rate.  The result is the
    bursty traffic real interactive services see: long stretches near the
    quiet rate punctuated by short storms at the burst rate.

    Example::

        >>> from repro.serving import mmpp_arrivals
        >>> from repro.workloads.deepbench import task
        >>> t = task("lstm", 512, 25)
        >>> reqs = mmpp_arrivals(t, quiet_rate_per_s=50, burst_rate_per_s=2000,
        ...                      n_requests=20, seed=1)
        >>> len(reqs)
        20
        >>> reqs == mmpp_arrivals(t, quiet_rate_per_s=50,
        ...                       burst_rate_per_s=2000, n_requests=20, seed=1)
        True
    """
    _check_stream_args(quiet_rate_per_s, n_requests)
    if burst_rate_per_s <= 0:
        raise ServingError("burst_rate_per_s must be positive")
    if quiet_dwell_s <= 0 or burst_dwell_s <= 0:
        raise ServingError("dwell times must be positive")
    import numpy as np

    rng = np.random.default_rng(seed)
    rates = (quiet_rate_per_s, burst_rate_per_s)
    dwells = (quiet_dwell_s, burst_dwell_s)
    state = 0
    t = 0.0
    state_end = float(rng.exponential(dwells[state]))
    times: list[float] = []
    while len(times) < n_requests:
        gap = float(rng.exponential(1.0 / rates[state]))
        if t + gap < state_end:
            t += gap
            times.append(t)
        else:
            # No arrival before the state flips; jump to the boundary.
            t = state_end
            state = 1 - state
            state_end = t + float(rng.exponential(dwells[state]))
    return tuple(
        ServeRequest(
            task=task,
            arrival_s=start_s + at,
            request_id=i,
            tenant=tenant,
            priority=priority,
            slo_ms=slo_ms,
        )
        for i, at in enumerate(times)
    )


def diurnal_arrivals(
    task: RNNTask,
    *,
    base_rate_per_s: float,
    peak_rate_per_s: float,
    period_s: float,
    n_requests: int,
    seed: int = 0,
    start_s: float = 0.0,
    tenant: str = "default",
    priority: int = 0,
    slo_ms: float | None = None,
) -> tuple[ServeRequest, ...]:
    """A sinusoidal rate ramp: a compressed day/night traffic cycle.

    Generates a non-homogeneous Poisson process via thinning against the
    peak rate, with ``rate(t) = base + (peak - base) * (1 - cos(2*pi*t /
    period)) / 2`` — the stream starts at the base rate, crests at the
    peak half a period in, and returns to base.

    Example::

        >>> from repro.serving import diurnal_arrivals
        >>> from repro.workloads.deepbench import task
        >>> reqs = diurnal_arrivals(task("lstm", 512, 25),
        ...                         base_rate_per_s=20, peak_rate_per_s=500,
        ...                         period_s=2.0, n_requests=30, seed=4)
        >>> (len(reqs), reqs[0].arrival_s > 0)
        (30, True)
    """
    _check_stream_args(base_rate_per_s, n_requests)
    if peak_rate_per_s < base_rate_per_s:
        raise ServingError("peak_rate_per_s must be >= base_rate_per_s")
    if period_s <= 0:
        raise ServingError("period_s must be positive")
    import numpy as np

    rng = np.random.default_rng(seed)
    swing = peak_rate_per_s - base_rate_per_s
    t = 0.0
    times: list[float] = []
    while len(times) < n_requests:
        t += float(rng.exponential(1.0 / peak_rate_per_s))
        rate = base_rate_per_s + swing * (1.0 - math.cos(2.0 * math.pi * t / period_s)) / 2.0
        if float(rng.uniform()) * peak_rate_per_s <= rate:
            times.append(t)
    return tuple(
        ServeRequest(
            task=task,
            arrival_s=start_s + at,
            request_id=i,
            tenant=tenant,
            priority=priority,
            slo_ms=slo_ms,
        )
        for i, at in enumerate(times)
    )


def mix(*streams: Iterable[ServeRequest]) -> tuple[ServeRequest, ...]:
    """Interleave several streams into one multi-tenant workload.

    Requests are merged in arrival order (ties break by stream position,
    then by original id) and re-numbered with globally unique
    ``request_id``s — the per-stream ids almost always collide, and the
    event loop rejects duplicate ids outright.  Tenant, priority, and
    per-request SLO tags are preserved.

    Example::

        >>> from repro.serving import mix, uniform_arrivals
        >>> from repro.workloads.deepbench import task
        >>> t = task("lstm", 512, 25)
        >>> merged = mix(
        ...     uniform_arrivals(t, rate_per_s=10, n_requests=3, tenant="a"),
        ...     uniform_arrivals(t, rate_per_s=10, n_requests=3, tenant="b"))
        >>> [r.request_id for r in merged]       # globally re-numbered
        [0, 1, 2, 3, 4, 5]
        >>> [r.tenant for r in merged]
        ['a', 'b', 'a', 'b', 'a', 'b']
    """
    if not streams:
        raise ServingError("mix needs at least one stream")
    tagged = [
        (req.arrival_s, stream_idx, req.request_id, req)
        for stream_idx, stream in enumerate(streams)
        for req in stream
    ]
    if not tagged:
        raise ServingError("mix needs at least one request across its streams")
    tagged.sort(key=lambda item: item[:3])
    return tuple(
        replace(req, request_id=new_id)
        for new_id, (_, _, _, req) in enumerate(tagged)
    )


#: Trace schema version, recorded on every line for forward compatibility.
_TRACE_VERSION = 1


def record_trace(requests: Iterable[ServeRequest], path: str | Path) -> Path:
    """Write a stream to a JSONL trace file (one request per line).

    Floats are serialized with ``repr`` precision, so
    :func:`replay_trace` reproduces the exact same requests — and
    therefore the exact same :class:`~repro.serving.engine.StreamReport`.

    Example::

        >>> import os, tempfile
        >>> from repro.serving import record_trace, replay_trace, uniform_arrivals
        >>> from repro.workloads.deepbench import task
        >>> reqs = uniform_arrivals(task("lstm", 512, 25),
        ...                         rate_per_s=10, n_requests=3)
        >>> path = os.path.join(tempfile.mkdtemp(), "stream.jsonl")
        >>> replay_trace(record_trace(reqs, path)) == reqs
        True
    """
    path = Path(path)
    lines = []
    for req in requests:
        lines.append(
            json.dumps(
                {
                    "v": _TRACE_VERSION,
                    "kind": req.task.kind,
                    "hidden": req.task.hidden,
                    "timesteps": req.task.timesteps,
                    "batch": req.task.batch,
                    "in_table6": req.task.in_table6,
                    "arrival_s": req.arrival_s,
                    "request_id": req.request_id,
                    "tenant": req.tenant,
                    "priority": req.priority,
                    "slo_ms": req.slo_ms,
                },
                sort_keys=True,
            )
        )
    if not lines:
        raise ServingError("refusing to record an empty trace")
    path.write_text("\n".join(lines) + "\n")
    return path


def replay_trace(path: str | Path) -> tuple[ServeRequest, ...]:
    """Load a JSONL trace back into the identical request stream.

    Example::

        >>> from repro.serving import replay_trace
        >>> from repro.errors import ServingError
        >>> try:
        ...     replay_trace("no/such/trace.jsonl")
        ... except ServingError as exc:
        ...     print("rejected")
        rejected
    """
    path = Path(path)
    if not path.exists():
        raise ServingError(f"trace file not found: {path}")
    requests: list[ServeRequest] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
            requests.append(
                ServeRequest(
                    task=RNNTask(
                        rec["kind"],
                        rec["hidden"],
                        rec["timesteps"],
                        batch=rec.get("batch", 1),
                        in_table6=rec.get("in_table6", True),
                    ),
                    arrival_s=rec["arrival_s"],
                    request_id=rec["request_id"],
                    tenant=rec.get("tenant", "default"),
                    priority=rec.get("priority", 0),
                    slo_ms=rec.get("slo_ms"),
                )
            )
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ServingError(f"bad trace line {lineno} in {path}: {exc}") from exc
    if not requests:
        raise ServingError(f"trace {path} holds no requests")
    return tuple(requests)
