"""Scale-out serving: schedule one stream across N engine replicas.

The ROADMAP's north star is fleet-scale traffic; a single batch-1
accelerator saturates at ``1 / service_time`` requests per second.  A
:class:`Fleet` models the obvious scale-out: N replicas behind a
dispatcher — identical replicas of one platform, or a heterogeneous
*mix* (``"plasticine:2,brainwave:1,gpu:1"``) pairing a spatial tier
with throughput or edge tiers the way the paper's Table 6 compares
them.  Three dispatch policies are built in:

* ``"round-robin"`` — request *i* goes to replica ``i % N``; oblivious
  to load, cheap, and the right baseline.
* ``"least-loaded"`` — each request goes to the replica that will
  *complete* it first.  On a homogeneous fleet every replica costs the
  same, so this is join-the-shortest-queue; on a mixed fleet the
  projected completion is evaluated under each replica's own cost
  model (a 1760-unit LSTM is cheap on Plasticine, expensive on a CPU
  tier), which is what makes heterogeneous fleets worth provisioning.
* ``"affinity"`` — sticky routing: the first request of a key (task
  family, tenant, or sequence-length band — see ``affinity_by``) picks
  the platform whose replica would finish it soonest, and later
  requests with the same key stay on that platform tier while it has
  active replicas.  Keeps each tier's compile caches hot and gives
  every class a stable latency profile.

Dispatch decides *which replica* gets a request on arrival; each replica
then orders its own ready queue with a pluggable scheduler
(:mod:`repro.serving.scheduler`) and coalesces it with a pluggable
batching policy (:mod:`repro.serving.batching`), one instance of each
per replica.  The simulation itself is the shared heap-based event loop
in :mod:`repro.serving.events`.

Replicas of the same platform share one prepared-model cache, so a
fleet compiles each (platform, task) pair exactly once no matter how
many replicas serve it — including replicas added mid-stream by an
:class:`~repro.serving.autoscaler.Autoscaler`, which grows and shrinks
the active set against queue depth and SLO pressure and logs its
actions on the report.  Mixed fleets keep one cache *per platform*:
prepared models never cross platforms
(:meth:`~repro.serving.platform.Platform._check_prepared`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from itertools import groupby
from typing import Callable, Iterable, Sequence

from repro.errors import ServingError
from repro.serving.autoscaler import Autoscaler
from repro.serving.batching import Batcher, make_batcher
from repro.serving.engine import ServeRequest, ServeResponse, ServingEngine, StreamReport
from repro.serving.events import StreamDispatcher, run_stream
from repro.serving.faults import FaultPolicy, make_fault_policy
from repro.serving.platform import Platform, PreparedModel
from repro.serving.scheduler import Scheduler, make_scheduler
from repro.serving.stats import StreamSummary
from repro.serving.traffic import length_band
from repro.workloads.deepbench import RNNTask

__all__ = [
    "Fleet",
    "FleetReport",
    "SCHEDULING_POLICIES",
    "AFFINITY_KEYS",
    "parse_fleet_mix",
]

SCHEDULING_POLICIES = ("round-robin", "least-loaded", "affinity")

#: Request attributes the ``affinity`` policy can pin a platform tier by.
AFFINITY_KEYS = ("task", "tenant", "length-band")


def parse_fleet_mix(spec: str) -> tuple[str, ...]:
    """Expand a fleet-mix spec into one platform name per replica.

    The spec is a comma-separated list of ``platform[:count]`` entries
    (count defaults to 1), mirroring the CLI's ``--mix`` idiom:

        >>> parse_fleet_mix("plasticine:2,brainwave:1,gpu")
        ('plasticine', 'plasticine', 'brainwave', 'gpu')

    Platform names are validated by the registry when the engines are
    built, not here; malformed counts raise
    :class:`~repro.errors.ServingError` immediately.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ServingError(f"empty fleet mix spec {spec!r}")
    names: list[str] = []
    for entry in spec.split(","):
        entry = entry.strip()
        name, _, count_str = entry.partition(":")
        name = name.strip()
        if not name:
            raise ServingError(f"empty platform entry in fleet mix {spec!r}")
        if count_str:
            try:
                count = int(count_str)
            except ValueError:
                raise ServingError(
                    f"bad replica count {count_str.strip()!r} in fleet "
                    f"mix {spec!r}"
                ) from None
            if count < 1:
                raise ServingError(
                    f"replica count must be >= 1 in fleet mix {spec!r}"
                )
        else:
            count = 1
        names.extend([name] * count)
    return tuple(names)


def _mix_label(names: Sequence[str]) -> str:
    """Canonical ``name:count`` label for a replica roster."""
    return ",".join(
        f"{name}:{len(list(run))}" for name, run in groupby(names)
    )


def _no_active_replicas() -> ServingError:
    return ServingError(
        "cannot dispatch: the fleet has no active replicas (the active "
        "set was resized to 0 mid-stream)"
    )


class _RoundRobinDispatcher(StreamDispatcher):
    """Request *i* to active replica ``i % N`` — oblivious and O(1)."""

    def __init__(self) -> None:
        self._active = 0

    def resize(self, active: int, work_until: Sequence[float]) -> None:
        self._active = active

    def choose(self, seq: int, request: ServeRequest) -> int:
        if self._active < 1:
            # A resize drove the active set to zero; ``seq % 0`` would
            # surface as a bare ZeroDivisionError deep in the event loop.
            raise _no_active_replicas()
        return seq % self._active


class _LeastLoadedDispatcher(StreamDispatcher):
    """Join-the-shortest-queue in O(log replicas) per arrival.

    The naive policy re-scans every active replica's projected
    completion time on each arrival — an O(replicas) pass that turns
    large-fleet streams quadratic.  This version keeps a lazy-deletion
    heap of ``(projected_completion, replica)``: :meth:`assign` pushes a
    fresh entry whenever the event loop advances one replica's
    projection (projections only ever grow, so older entries for the
    same replica are strictly smaller and recognized as stale), and
    :meth:`choose` pops stale or deactivated entries until the top is
    live.  The ``(value, index)`` heap order reproduces the naive scan's
    tie-break (earliest completion, lowest index) exactly.
    """

    def __init__(self) -> None:
        self._active = 0
        self._values: list[float] = []
        self._heap: list[tuple[float, int]] = []

    def resize(self, active: int, work_until: Sequence[float]) -> None:
        values = self._values
        for j in range(len(values), len(work_until)):
            values.append(work_until[j])
        if active > self._active:
            # Newly (re)activated replicas re-enter the heap at their
            # current projection; deactivated ones are pruned lazily.
            for j in range(self._active, active):
                heapq.heappush(self._heap, (values[j], j))
        self._active = active

    def choose(self, seq: int, request: ServeRequest) -> int:
        active = self._active
        if active < 1:
            raise _no_active_replicas()
        heap = self._heap
        values = self._values
        while True:
            while heap:
                value, j = heap[0]
                if j < active and values[j] == value:
                    return j
                heapq.heappop(heap)
            # Every entry went stale at once (reachable when crashes or
            # a resize-down → resize-up cycle invalidate the whole
            # heap); re-seed the live projections instead of indexing
            # into an empty heap.
            for j in range(active):
                heapq.heappush(heap, (values[j], j))

    def assign(self, replica: int, work_until_s: float) -> None:
        self._values[replica] = work_until_s
        heapq.heappush(self._heap, (work_until_s, replica))


class _CostAwareDispatcher(StreamDispatcher):
    """Shared machinery for dispatchers that rank replicas by projected
    completion under each replica's *own* cost model.

    On a heterogeneous fleet "least loaded" is ill-defined without the
    cost model: the replica that frees up first may still finish the
    request last if its platform serves the task slowly.  Subclasses
    call :meth:`_best_in` over candidate replica indices; the projected
    completion is ``max(arrival, free_at) + latency(replica, task)``,
    with the per-replica latency read through the engine's memoized
    cost model (O(1) after first sight of a shape).
    """

    def __init__(self) -> None:
        self._active = 0
        self._values: list[float] = []
        self._engines: Sequence[ServingEngine] = ()

    def bind(self, engines: Sequence[ServingEngine]) -> None:
        self._engines = engines

    def resize(self, active: int, work_until: Sequence[float]) -> None:
        values = self._values
        for j in range(len(values), len(work_until)):
            values.append(work_until[j])
        self._active = active

    def assign(self, replica: int, work_until_s: float) -> None:
        self._values[replica] = work_until_s

    def _completion(self, j: int, request: ServeRequest) -> float:
        free_at = self._values[j]
        arrival = request.arrival_s
        start = arrival if arrival > free_at else free_at
        return start + self._engines[j].result_for(request.task).latency_s

    def _best_in(self, candidates: Iterable[int], request: ServeRequest) -> int:
        best_j = -1
        best = 0.0
        for j in candidates:
            completion = self._completion(j, request)
            if best_j < 0 or completion < best:
                best_j, best = j, completion
        return best_j


class _HeterogeneousLeastLoadedDispatcher(_CostAwareDispatcher):
    """Least-loaded for mixed fleets: earliest projected *completion*.

    O(active) per arrival — mixed fleets are small (a handful of
    tiers), and the per-replica latency lookup is memoized, so the scan
    stays cheap; homogeneous fleets keep the O(log N) heap dispatcher
    and its bit-identical tie-breaks.
    """

    def choose(self, seq: int, request: ServeRequest) -> int:
        if self._active < 1:
            raise _no_active_replicas()
        return self._best_in(range(self._active), request)


class _AffinityDispatcher(_CostAwareDispatcher):
    """Sticky platform-tier routing keyed by task/tenant/length band.

    The first request of a key is placed like heterogeneous
    least-loaded (earliest projected completion fleet-wide) and *pins*
    the key to the chosen replica's platform; subsequent requests with
    the same key are balanced by projected completion across that
    platform's active replicas only.  A key whose pinned platform loses
    all active replicas (autoscale shrink) is re-pinned by a fresh
    fleet-wide scan.
    """

    def __init__(self, key_of: Callable[[ServeRequest], object]) -> None:
        super().__init__()
        self._key_of = key_of
        self._pins: dict[object, str] = {}

    def choose(self, seq: int, request: ServeRequest) -> int:
        active = self._active
        if active < 1:
            raise _no_active_replicas()
        engines = self._engines
        key = self._key_of(request)
        pinned = self._pins.get(key)
        if pinned is not None:
            j = self._best_in(
                (j for j in range(active) if engines[j].platform_name == pinned),
                request,
            )
            if j >= 0:
                return j
        j = self._best_in(range(active), request)
        self._pins[key] = engines[j].platform_name
        return j


def _affinity_key_fn(affinity_by: str) -> Callable[[ServeRequest], object]:
    if affinity_by == "task":
        # One key per task *family*: length variants share the compiled
        # state (length-flexible platforms), so they share the pin too.
        return lambda request: request.task.with_timesteps(1)
    if affinity_by == "tenant":
        return lambda request: request.tenant
    if affinity_by == "length-band":
        return lambda request: length_band(request.task.timesteps, 2.0)
    raise ServingError(
        f"unknown affinity key {affinity_by!r}; "
        f"known: {', '.join(AFFINITY_KEYS)}"
    )


@dataclass(frozen=True)
class FleetReport(StreamReport):
    """A stream report plus the per-replica assignment it came from.

    Example::

        >>> from repro.serving import Fleet, uniform_arrivals
        >>> from repro.workloads.deepbench import task
        >>> fleet = Fleet("gpu", replicas=2, policy="round-robin")
        >>> report = fleet.serve_stream(uniform_arrivals(
        ...     task("lstm", 512, 25), rate_per_s=100, n_requests=10))
        >>> (report.n_replicas, report.per_replica_counts)
        (2, (5, 5))
    """

    policy: str = "round-robin"
    assignments: tuple[int, ...] = field(default=(), repr=False)
    #: Total replicas the stream used (autoscaled replicas included) —
    #: the peak capacity, not derived from the assignments, so idle
    #: replicas still count toward it.
    replicas: int = 1
    #: Replicas still active when the stream drained; below ``replicas``
    #: when the autoscaler scaled down.
    active_replicas: int = 1
    #: Platform key of each provisioned replica, in replica order.
    #: Empty means "homogeneous" (every replica is ``platform``) so
    #: reports built before mixed fleets existed keep working.
    platforms: tuple[str, ...] = field(default=(), repr=False)

    @property
    def n_replicas(self) -> int:
        return self.replicas

    @property
    def replica_platforms(self) -> tuple[str, ...]:
        if self.platforms:
            return self.platforms
        return (self.platform,) * self.n_replicas

    @property
    def max_rate_per_s(self) -> float:
        """Sustainable rate of the whole fleet, not one replica.

        A homogeneous fleet sustains ``replicas / mean_service`` — the
        pre-heterogeneity formula, kept exact.  A mixed fleet sums each
        replica's *own* ``1 / mean_service`` (its platform's mean over
        the responses it could have served); multiplying a fleet-wide
        mean by the replica count would let a slow edge tier inflate
        the fast tier's capacity and vice versa.  Platforms that served
        nothing fall back to the fleet-wide mean.

        With autoscaling this is the *peak* capacity the stream reached
        (``replicas`` engines); the policy can re-grow to it on demand.
        """
        roster = self.replica_platforms
        if len(set(roster)) <= 1:
            return super().max_rate_per_s * self.n_replicas
        service: dict[str, float] = {}
        count: dict[str, int] = {}
        for r in self.responses:
            key = r.result.platform
            service[key] = service.get(key, 0.0) + r.service_s
            count[key] = count.get(key, 0) + 1
        fleet_mean = sum(service.values()) / self.n_requests
        rate = 0.0
        for name in roster:
            served = count.get(name, 0)
            mean = service[name] / served if served else fleet_mean
            rate += 1.0 / mean
        return rate

    @property
    def per_replica_counts(self) -> tuple[int, ...]:
        counts = [0] * self.n_replicas
        for replica in self.assignments:
            counts[replica] += 1
        return tuple(counts)

    def replica_utilization(self) -> tuple[float, ...]:
        """Busy fraction of each replica over the stream's makespan."""
        makespan = max(r.finish_s for r in self.responses)
        busy = [0.0] * self.n_replicas
        for replica, resp in zip(self.assignments, self.responses):
            busy[replica] += resp.service_s
        return tuple(b / makespan for b in busy)


class Fleet:
    """N engine replicas — of one platform or a mix — behind a dispatcher.

    ``platform`` accepts a single platform (name or instance), a
    sequence of per-replica platforms, or a fleet-mix spec string
    (``"name[:count],..."`` — see :func:`parse_fleet_mix`).  With a
    single platform, ``replicas`` keeps its historical default of 2; a
    roster fixes the replica count itself.

    Example::

        >>> from repro.serving import Fleet
        >>> fleet = Fleet("gpu", replicas=3, policy="least-loaded")
        >>> (fleet.n_replicas, fleet.platform_name)
        (3, 'gpu')
        >>> mixed = Fleet("plasticine:2,brainwave:1,gpu")
        >>> (mixed.n_replicas, mixed.platform_name, mixed.is_heterogeneous)
        (4, 'plasticine:2,brainwave:1,gpu:1', True)
    """

    def __init__(
        self,
        platform: "str | Platform | Sequence[str | Platform]",
        *,
        replicas: int | None = None,
        policy: str = "round-robin",
        affinity_by: str = "task",
        **platform_options: object,
    ) -> None:
        if policy not in SCHEDULING_POLICIES:
            raise ServingError(
                f"unknown scheduling policy {policy!r}; "
                f"known: {', '.join(SCHEDULING_POLICIES)}"
            )
        if affinity_by not in AFFINITY_KEYS:
            raise ServingError(
                f"unknown affinity key {affinity_by!r}; "
                f"known: {', '.join(AFFINITY_KEYS)}"
            )
        if isinstance(platform, str) and (":" in platform or "," in platform):
            platform = parse_fleet_mix(platform)
        if isinstance(platform, (str, Platform)):
            if replicas is None:
                replicas = 2
            pattern: tuple[str | Platform, ...] = (platform,)
        else:
            pattern = tuple(platform)
            if not pattern:
                raise ServingError("a fleet needs at least one replica")
            if replicas is None:
                replicas = len(pattern)
            elif replicas != len(pattern):
                raise ServingError(
                    f"replicas={replicas} contradicts the {len(pattern)}"
                    f"-replica platform roster; drop one of the two"
                )
        if replicas < 1:
            raise ServingError("a fleet needs at least one replica")
        named = {spec for spec in pattern if isinstance(spec, str)}
        if platform_options and (len(named) != len(pattern) or len(named) > 1):
            raise ServingError(
                "platform options only apply when every replica is the "
                "same platform given by name"
            )
        self.policy = policy
        self._affinity_by = affinity_by
        #: Replica index ``i`` runs ``pattern[i % len(pattern)]`` — the
        #: roster repeats, so autoscaled growth extends the mix in the
        #: same proportions instead of cloning one arbitrary tier.
        self._pattern = pattern
        self._platform_options = platform_options
        # One compile cache and one result memo *per platform*: each
        # (platform, shape) pair prepares once no matter how many
        # replicas serve it — even replicas the autoscaler adds
        # mid-stream — while prepared models never cross platforms
        # (Platform._check_prepared forbids the handoff).
        self._caches: dict[object, dict[RNNTask, PreparedModel]] = {}
        self._memos: dict[object, dict] = {}
        self.engines = tuple(self._new_engine(i) for i in range(replicas))

    def _spec_for(self, index: int) -> "str | Platform":
        return self._pattern[index % len(self._pattern)]

    def _platform_name_for(self, index: int) -> str:
        spec = self._spec_for(index)
        return spec if isinstance(spec, str) else spec.name

    def _new_engine(self, index: int) -> ServingEngine:
        spec = self._spec_for(index)
        # Same-name string specs share caches; distinct Platform
        # instances keep their own (their options may differ).
        key: object = spec if isinstance(spec, str) else id(spec)
        return ServingEngine(
            spec,
            cache=self._caches.setdefault(key, {}),
            memo=self._memos.setdefault(key, {}),
            **self._platform_options,
        )

    @property
    def n_replicas(self) -> int:
        return len(self.engines)

    @property
    def replica_platforms(self) -> tuple[str, ...]:
        """Platform key of each replica, in replica order."""
        return tuple(e.platform_name for e in self.engines)

    @property
    def is_heterogeneous(self) -> bool:
        return len(set(self.replica_platforms)) > 1

    @property
    def platform_name(self) -> str:
        """One platform name, or the canonical mix label for mixed fleets."""
        roster = self.replica_platforms
        if len(set(roster)) == 1:
            return roster[0]
        return _mix_label(roster)

    def _dispatcher(self) -> StreamDispatcher:
        # A fresh (stateful) incremental dispatcher per stream run; the
        # event loop feeds it per-replica projection deltas instead of
        # handing every arrival an O(replicas) snapshot.
        if self.policy == "round-robin":
            return _RoundRobinDispatcher()
        if self.policy == "affinity":
            return _AffinityDispatcher(_affinity_key_fn(self._affinity_by))
        if self.is_heterogeneous:
            # Mixed fleets need the cost-aware ranking; homogeneous
            # fleets keep the O(log N) heap and its exact tie-breaks.
            return _HeterogeneousLeastLoadedDispatcher()
        return _LeastLoadedDispatcher()

    def serve_stream(
        self,
        arrivals: Iterable[ServeRequest | RNNTask],
        *,
        slo_ms: float | None = None,
        scheduler: str | Callable[[], Scheduler] = "fifo",
        batcher: str | Callable[[], Batcher] = "none",
        max_batch: int | None = None,
        autoscaler: Autoscaler | None = None,
        mode: str = "full",
        presorted: bool = False,
        faults: str | FaultPolicy | Callable[[], FaultPolicy] = "none",
        fault_seed: int = 0,
        timeout_ms: float | None = None,
        retries: int = 0,
        hedge_ms: float | None = None,
        summary: StreamSummary | None = None,
    ) -> "FleetReport | StreamSummary":
        """Dispatch a timestamped stream across the replicas.

        The dispatcher assigns every request to a replica on arrival (no
        work stealing afterwards); each replica orders its own ready
        queue with a fresh instance of ``scheduler`` and coalesces it
        with a fresh instance of ``batcher`` — pass registry keys or
        zero-argument factories, not shared instances.  With an
        ``autoscaler``, the stream starts on the autoscaler's
        ``min_replicas`` and the active set grows and shrinks as the
        policy dictates; every replica (initial or grown) shares the
        fleet's compile cache, and the applied
        :class:`~repro.serving.autoscaler.ScaleEvent` log lands on the
        report.

        ``mode`` and ``presorted`` behave exactly as on
        :meth:`ServingEngine.serve_stream
        <repro.serving.engine.ServingEngine.serve_stream>`:
        ``mode="summary"`` folds responses into a
        :class:`~repro.serving.stats.StreamSummary` (O(1) memory, with
        online per-replica counts instead of per-request assignments)
        and ``presorted=True`` streams a lazy time-ordered input without
        materializing it.

        ``faults``/``fault_seed``/``timeout_ms``/``retries``/
        ``hedge_ms`` inject unreliable hardware exactly as on
        :meth:`ServingEngine.serve_stream`; replicas that crash recover
        through the fleet's replica factory, so a recovery re-binds the
        engine against the shared compile cache rather than silently
        reusing the dead instance.

        ``summary`` (``mode="summary"`` only) supplies the sink the
        event loop folds completions into instead of a fresh
        :class:`~repro.serving.stats.StreamSummary` — the hook the DSE
        runner's early-abort :class:`~repro.dse.runner.PruningSummary`
        plugs into.  The caller owns its labels and its finalization.
        """
        if isinstance(scheduler, Scheduler):
            raise ServingError(
                "a fleet needs one scheduler per replica; pass a registry "
                "key or a factory, not a Scheduler instance"
            )
        if isinstance(batcher, Batcher):
            raise ServingError(
                "a fleet needs one batcher per replica; pass a registry "
                "key or a factory, not a Batcher instance"
            )
        options = {} if max_batch is None else {"max_batch": max_batch}

        def new_scheduler() -> Scheduler:
            return make_scheduler(scheduler)

        def new_batcher() -> Batcher:
            return make_batcher(batcher, **options)

        engines = list(self.engines)
        if autoscaler is not None:
            # Start at the policy floor; growth happens via the factory.
            while len(engines) < autoscaler.min_replicas:
                engines.append(self._new_engine(len(engines)))
            del engines[max(autoscaler.min_replicas, 1):]
        schedulers = [new_scheduler() for _ in engines]
        batchers = [new_batcher() for _ in engines]

        def replica_factory(index: int) -> tuple[ServingEngine, Scheduler, Batcher]:
            # ``index`` is the replica slot being (re)built: autoscaled
            # growth extends the fleet's platform pattern, and a crash
            # recovery rebuilds the dead replica on its *own* platform
            # rather than whatever tier happens to come first.
            return self._new_engine(index), new_scheduler(), new_batcher()

        if mode not in ("full", "summary"):
            raise ServingError(
                f"unknown stream mode {mode!r}; expected 'full' or 'summary'"
            )
        fault_policy = make_fault_policy(faults)
        faultless = (
            fault_policy.name == "none"
            and timeout_ms is None
            and hedge_ms is None
            and retries == 0  # so a timeout-less retries still validates
        )
        fault_kwargs = (
            {}
            if faultless
            else {
                "faults": fault_policy,
                "fault_seed": fault_seed,
                "timeout_ms": timeout_ms,
                "retries": retries,
                "hedge_ms": hedge_ms,
            }
        )
        if summary is not None and mode != "summary":
            raise ServingError(
                "a summary sink only makes sense with mode='summary'"
            )
        if mode == "summary" and summary is None:
            summary = StreamSummary(
                self.platform_name,
                slo_ms=slo_ms,
                scheduler=schedulers[0].name,
                batcher=batchers[0].name,
                faults=fault_policy.name,
            )
        outcome = run_stream(
            arrivals,
            engines=engines,
            schedulers=schedulers,
            batchers=batchers,
            dispatch=self._dispatcher(),
            slo_ms=slo_ms,
            autoscaler=autoscaler,
            replica_factory=replica_factory,
            presorted=presorted,
            summary=summary,
            **fault_kwargs,
        )
        roster = tuple(
            self._platform_name_for(i) for i in range(outcome.n_replicas)
        )
        if summary is not None:
            return summary.finalize(
                scale_events=outcome.scale_events,
                replicas=outcome.n_replicas,
                active_replicas=outcome.active_replicas,
                policy=self.policy,
                fault_stats=outcome.fault_stats,
                platforms=roster if self.is_heterogeneous else (),
            )
        return FleetReport(
            platform=self.platform_name,
            responses=tuple(outcome.responses),
            slo_ms=slo_ms,
            scheduler=schedulers[0].name,
            batcher=batchers[0].name,
            scale_events=outcome.scale_events,
            policy=self.policy,
            assignments=tuple(outcome.assignments),
            replicas=outcome.n_replicas,
            active_replicas=outcome.active_replicas,
            faults=fault_policy.name,
            fault_stats=outcome.fault_stats,
            platforms=roster if self.is_heterogeneous else (),
        )
